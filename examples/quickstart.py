#!/usr/bin/env python
"""Quickstart: slice a part, print it through the simulated stack, capture
the OFFRAMPS transaction stream, and detect a Flaw3D Trojan.

Run:  python examples/quickstart.py
"""

from repro import (
    CaptureComparator,
    apply_reduction,
    run_print,
    sliced_program,
    standard_part,
)


def main() -> None:
    # 1. Slice a 16 mm calibration square (the repo's stand-in for Cura).
    program = sliced_program(standard_part())
    print(f"sliced {sum(1 for _ in program.executable())} G-code commands")

    # 2. Print it on the simulated Prusa-like machine with the OFFRAMPS
    #    board capturing step-count transactions every 0.1 s. The time-noise
    #    model emulates the asynchrony of a real machine.
    golden = run_print(program, noise_sigma=0.0005, noise_seed=1)
    print(
        f"golden print: {golden.status.value} in {golden.duration_s:.0f} simulated "
        f"seconds, {len(golden.capture)} transactions captured"
    )
    print("final step counts:", golden.final_counts())

    # 3. Attack: a Flaw3D-style bootloader Trojan halves extrusion.
    trojaned = apply_reduction(program, 0.5)
    suspect = run_print(trojaned, noise_sigma=0.0005, noise_seed=2)
    print(
        f"trojaned print: {suspect.status.value}, deposited "
        f"{suspect.plant.trace.total_extruded_mm:.1f} mm of filament vs "
        f"{golden.plant.trace.total_extruded_mm:.1f} mm golden"
    )

    # 4. Detect: the paper's 5% margin + final 0% check.
    report = CaptureComparator().compare_captures(golden.capture, suspect.capture)
    print()
    print(report.render(max_mismatch_lines=5))


if __name__ == "__main__":
    main()
