#!/usr/bin/env python
"""Trojan gallery: run every Table I Trojan and report its physical effect.

This is the example form of the Table I experiment: T0 (golden) plus T1-T9,
each printed on the simulated machine with the Trojan loaded into the
OFFRAMPS FPGA fabric, scored by part-quality metrics instead of photographs.

Run:  python examples/trojan_gallery.py            (full suite, ~30 s)
      python examples/trojan_gallery.py T2 T7      (just those Trojans)
"""

import sys

from repro.experiments.table1 import (
    render_table1,
    run_table1,
    run_trojan_session,
    _score,  # noqa: F401 (re-exported for API illustration)
)
from repro.experiments.workloads import sliced_program, table1_part
from repro.physics.quality import compare_traces


def run_selected(trojan_ids) -> None:
    program = sliced_program(table1_part())
    golden = run_trojan_session(None, program=program)
    print(f"T0 golden: {golden.status.value}, {golden.duration_s:.0f}s simulated")
    for trojan_id in trojan_ids:
        result = run_trojan_session(trojan_id, program=program)
        quality = compare_traces(golden.plant.trace, result.plant.trace)
        print(f"\n=== {trojan_id}: {result.trojan.describe()}")
        print(f"  print status: {result.status.value}"
              + (f" ({result.kill_reason})" if result.kill_reason else ""))
        anomalies = quality.anomalies()
        print("  part anomalies:", "; ".join(anomalies) if anomalies else "none")
        if result.plant.damaged:
            for line in result.plant.damage_summary():
                print(f"  HARDWARE DAMAGE: {line}")
        if result.missed_steps:
            print(f"  {result.missed_steps} step pulses lost at disabled drivers")


def main() -> None:
    selected = [arg.upper() for arg in sys.argv[1:]]
    if selected:
        run_selected(selected)
        return
    rows = run_table1()
    print(render_table1(rows))
    confirmed = sum(1 for row in rows if row.manifested)
    print(f"\n{confirmed}/{len(rows)} rows manifested their designed effect")


if __name__ == "__main__":
    main()
