#!/usr/bin/env python
"""Logic-analyzer mode: record the raw control signals of a print.

The paper describes the MITM FPGA doubling as "a rudimentary digital logic
analyzer". This example prints a small part with every control signal traced,
then reports per-signal statistics and the Section V-B overhead budget, and
finally runs a live streaming detector that aborts a Trojaned print
mid-flight.

Run:  python examples/logic_analyzer.py
"""

from repro import PrintSession, sliced_program, tiny_part
from repro.analysis import analyze_overhead
from repro.detection import StreamingDetector
from repro.experiments.runner import run_print
from repro.gcode.transforms import apply_relocation


def main() -> None:
    program = sliced_program(tiny_part())

    print("=== capture: all control signals traced")
    traced = run_print(program, trace_signals=True)
    tracer = traced.tracer
    print(f"{tracer.total_events()} signal events on {len(tracer.signal_names)} signals")
    for name in tracer.signal_names:
        trace = tracer.trace(name)
        if not len(trace):
            continue
        freq = trace.max_frequency_hz
        freq_text = f"{freq / 1e3:7.2f} kHz peak" if freq else "   --          "
        print(f"  {name:<16} {len(trace):>7} events  {freq_text}")

    print("\n=== Section V-B overhead budget")
    print(analyze_overhead(tracer).render())

    print("\n=== live detection: abort a relocation Trojan mid-print")
    golden = run_print(program, noise_sigma=0.0005, noise_seed=5)
    session = PrintSession(apply_relocation(program, 10))
    StreamingDetector(
        golden.capture.transactions,
        session.uart_bus,
        on_alarm=lambda mismatch: session.firmware.kill(
            f"Trojan suspected at transaction {mismatch.index} "
            f"({mismatch.column}: {mismatch.golden_value} vs {mismatch.suspect_value})"
        ),
    )
    result = session.run()
    print(f"print status: {result.status.value}")
    print(f"kill reason : {result.kill_reason}")
    saved = golden.duration_s - result.duration_s
    print(f"aborted {saved:.0f} simulated seconds early — the paper's "
          "machine-time/material saving")


if __name__ == "__main__":
    main()
