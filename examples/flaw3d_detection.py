#!/usr/bin/env python
"""Flaw3D detection walkthrough: Table II + Figure 4 as a narrative.

Reproduces the paper's detection evaluation end to end: registers a golden
capture, runs the eight Flaw3D test cases, prints the Table II rows, and
finishes with the Figure 4 panels for the relocation Trojan.

Run:  python examples/flaw3d_detection.py          (~60 s of simulation)
"""

from repro.detection import GoldenStore
from repro.experiments.figure4 import run_figure4
from repro.experiments.table2 import run_table2


def main() -> None:
    print("Running Table II (golden + control + 8 Flaw3D prints)...\n")
    result = run_table2()
    print(result.render())

    # The golden capture can be persisted for future prints of this part.
    store = GoldenStore()
    store.register("cal_cylinder", result.golden.capture)
    print(f"\nregistered golden capture ({len(result.golden.capture)} transactions) "
          f"for parts: {store.names()}")

    print("\nRegenerating Figure 4 (relocation Trojan, period 20)...\n")
    figure = run_figure4()
    print(figure.render())


if __name__ == "__main__":
    main()
