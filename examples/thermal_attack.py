#!/usr/bin/env python
"""Thermal attacks: the T6 denial-of-service and the T7 destructive Trojan.

Shows the cyber-physical loop that makes these two Trojans interesting:

* T6 cuts MOSFET power below the firmware — Marlin's heating watchdog
  notices the temperature never rises and kills the print (a safe failure).
* T7 forces the MOSFET on below the firmware — Marlin panics on MAXTEMP and
  calls kill(), but its kill only drives the *upstream* signal; the FPGA
  keeps the gate closed and the hotend heats past its damage threshold.

Run:  python examples/thermal_attack.py
"""

from repro import make_trojan, run_print, sliced_program, tiny_part


def main() -> None:
    program = sliced_program(tiny_part())

    print("=== T6: heater denial of service")
    t6 = run_print(program, trojan=make_trojan("T6"))
    print(f"  firmware status : {t6.status.value}")
    print(f"  kill reason     : {t6.kill_reason}")
    print(f"  material printed: {t6.plant.trace.total_extruded_mm:.2f} mm")
    print(f"  hotend peak     : {t6.plant.hotend.peak_temp_c:.0f} C")
    print(f"  hardware damage : {t6.plant.damaged}")

    print("\n=== T7: forced thermal runaway (destructive)")
    # grace_s keeps physics running after the firmware dies — that is when
    # the damage happens.
    t7 = run_print(program, trojan=make_trojan("T7"), grace_s=40.0)
    print(f"  firmware status : {t7.status.value}")
    print(f"  kill reason     : {t7.kill_reason}")
    print(f"  hotend peak     : {t7.plant.hotend.peak_temp_c:.0f} C "
          f"(spec max 260 C, damage at 290 C)")
    for line in t7.plant.damage_summary():
        print(f"  HARDWARE DAMAGE : {line}")
    print("  note: the firmware DID panic and call kill() — the Trojan simply "
          "ignored it, exactly the paper's observation.")


if __name__ == "__main__":
    main()
