"""Side-channel baseline and simulation-golden tests."""

import pytest

from repro.core.capture import Transaction
from repro.detection.baselines import (
    SideChannelDetector,
    SideChannelModel,
    activity_profiles,
    observe,
)
from repro.detection.comparator import CaptureComparator
from repro.detection.simgolden import golden_from_simulation
from repro.errors import DetectionError


def _txns(rows):
    return [Transaction(i, *row) for i, row in enumerate(rows, start=1)]


def _steady_print(e_scale=1.0, n=30):
    """A synthetic print: steady X/Y motion, proportional extrusion."""
    return _txns(
        [(i * 500, i * 400, 120, int(i * 800 * e_scale)) for i in range(1, n + 1)]
    )


class TestActivityProfiles:
    def test_per_motor_unsigned_magnitudes(self):
        txns = _txns([(100, -50, 0, 10), (50, -100, 0, 30)])
        profiles = activity_profiles(txns)
        assert profiles["X"] == [100.0, 50.0]
        assert profiles["Y"] == [50.0, 50.0]
        assert profiles["E"] == [10.0, 20.0]

    def test_direction_information_lost(self):
        forward = activity_profiles(_txns([(100, 0, 0, 0)]))
        backward = activity_profiles(_txns([(-100, 0, 0, 0)]))
        assert forward == backward

    def test_empty_rejected(self):
        with pytest.raises(DetectionError):
            activity_profiles([])


class TestObservation:
    def test_noise_is_seeded(self):
        txns = _steady_print(n=3)
        model = SideChannelModel(seed=5)
        assert observe(txns, model) == observe(txns, model)

    def test_different_seeds_differ(self):
        txns = _steady_print(n=5)
        assert observe(txns, SideChannelModel(seed=1)) != observe(
            txns, SideChannelModel(seed=2)
        )

    def test_quantisation_applied(self):
        txns = _txns([(1000, 0, 0, 0)])
        values = observe(
            txns,
            SideChannelModel(
                noise_fraction=0, noise_floor=0, quantization_steps=100, repetitions=1
            ),
        )
        assert values["X"][0] % 100 == 0

    def test_repetition_averaging_reduces_noise(self):
        txns = _steady_print(n=40)
        ideal = activity_profiles(txns)["X"]

        def rms_error(repetitions):
            obs = observe(
                txns, SideChannelModel(repetitions=repetitions, seed=9)
            )["X"]
            return (
                sum((o - i) ** 2 for o, i in zip(obs, ideal)) / len(ideal)
            ) ** 0.5

        assert rms_error(16) < rms_error(1)

    def test_never_negative(self):
        txns = _txns([(1, 0, 0, 0)] * 3)
        values = observe(txns, SideChannelModel(noise_floor=50, seed=3, repetitions=1))
        assert all(v >= 0 for channel in values.values() for v in channel)

    def test_invalid_model(self):
        with pytest.raises(DetectionError):
            SideChannelModel(noise_fraction=-0.1)
        with pytest.raises(DetectionError):
            SideChannelModel(repetitions=0)


class TestSideChannelDetector:
    def test_calibration_quiet_on_clean_pair(self):
        golden = _steady_print()
        detector = SideChannelDetector()
        threshold = detector.calibrate_threshold(golden, golden)
        assert threshold > 0
        report = detector.compare(golden, golden, suspect_seed_offset=2)
        assert not report.trojan_likely

    def test_gross_attack_visible_on_e_channel(self):
        golden = _steady_print()
        halved = _steady_print(e_scale=0.5)
        detector = SideChannelDetector()
        detector.calibrate_threshold(golden, golden)
        report = detector.compare(golden, halved)
        assert report.trojan_likely
        assert report.worst_channel == "E"

    def test_stealthy_attack_invisible(self):
        golden = _steady_print()
        slight = _steady_print(e_scale=0.98)
        detector = SideChannelDetector()
        detector.calibrate_threshold(golden, golden)
        assert not detector.compare(golden, slight).trojan_likely

    def test_lossless_comparator_catches_what_baseline_misses(self):
        golden = _steady_print()
        slight = _steady_print(e_scale=0.98)
        report = CaptureComparator().compare(golden, slight)
        assert report.trojan_likely  # final 0% check

    def test_idle_windows_excluded(self):
        golden = _txns([(0, 0, 0, 0)] * 10)  # a print that never moves
        detector = SideChannelDetector()
        report = detector.compare(golden, golden)
        assert report.largest_relative_diff == 0.0


class TestSimulationGolden:
    def test_sim_golden_detects_trojan(self, tiny_program, tiny_golden_noisy):
        from repro.gcode.transforms.flaw3d import apply_reduction
        from repro.experiments.runner import run_print

        sim_golden = golden_from_simulation(tiny_program)
        suspect = run_print(
            apply_reduction(tiny_program, 0.5), noise_sigma=0.0005, noise_seed=31
        )
        report = CaptureComparator().compare_captures(sim_golden, suspect.capture)
        assert report.trojan_likely

    def test_sim_golden_accepts_clean_noisy_print(self, tiny_program, tiny_golden_noisy):
        sim_golden = golden_from_simulation(tiny_program)
        report = CaptureComparator().compare_captures(
            sim_golden, tiny_golden_noisy.capture
        )
        assert not report.trojan_likely
