"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self, sim):
        assert sim.now == 0

    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [100]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(250, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [250]

    def test_callback_args_passed(self, sim):
        got = []
        sim.schedule(1, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_time_ordering(self, sim):
        order = []
        sim.schedule(300, lambda: order.append("c"))
        sim.schedule(100, lambda: order.append("a"))
        sim.schedule(200, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_break_at_same_instant(self, sim):
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(100, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_events_scheduled_from_callbacks(self, sim):
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(10, lambda: fired.append(("inner", sim.now)))

        sim.schedule(5, outer)
        sim.run()
        assert fired == [("outer", 5), ("inner", 15)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(10, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.pending

    def test_pending_lifecycle(self, sim):
        handle = sim.schedule(10, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending
        assert handle.fired


class TestRunControl:
    def test_run_until_advances_clock_exactly(self, sim):
        sim.schedule(100, lambda: None)
        sim.run(until_ns=500)
        assert sim.now == 500

    def test_run_until_excludes_later_events(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append("early"))
        sim.schedule(900, lambda: fired.append("late"))
        sim.run(until_ns=500)
        assert fired == ["early"]
        sim.run()
        assert fired == ["early", "late"]

    def test_run_for_relative_window(self, sim):
        sim.schedule(100, lambda: None)
        sim.run(until_ns=200)
        fired = []
        sim.schedule(100, lambda: fired.append(sim.now))
        sim.run_for(150)
        assert fired == [300]
        assert sim.now == 350

    def test_max_events_cap(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        dispatched = sim.run(max_events=3)
        assert dispatched == 3
        assert fired == [0, 1, 2]

    def test_max_events_cap_does_not_advance_clock_past_pending(self, sim):
        # Regression: run(until_ns=..., max_events=...) used to jump the
        # clock to until_ns even when capped mid-window, so the next
        # dispatch moved _now backwards.
        times = []
        for t in (10, 20, 30):
            sim.schedule_at(t, lambda t=t: times.append(t))
        dispatched = sim.run(until_ns=100, max_events=1)
        assert dispatched == 1
        assert sim.now == 10  # not 100: events at 20/30 are still pending
        observed = []
        sim.schedule_at(15, lambda: observed.append(sim.now))
        sim.run(until_ns=100)
        assert observed == [15]
        assert times == [10, 20, 30]
        assert sim.now == 100

    def test_max_events_cap_with_only_cancelled_pending_advances(self, sim):
        fired = []
        sim.schedule_at(10, lambda: fired.append(10))
        late = sim.schedule_at(50, lambda: fired.append(50))
        late.cancel()
        sim.run(until_ns=100, max_events=1)
        assert fired == [10]
        assert sim.now == 100  # nothing runnable remains inside the window

    def test_stop_from_callback(self, sim):
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule(1, stopper)
        sim.schedule(2, lambda: fired.append("after"))
        sim.run()
        assert fired == ["stop"]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_events_dispatched_counter(self, sim):
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        sim.run()
        assert sim.events_dispatched == 5

    def test_reentrant_run_rejected(self, sim):
        def inner():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1, inner)
        sim.run()


class TestPendingCounter:
    """``pending_events`` is a live counter now, not an O(n) queue scan."""

    def test_counts_scheduled_events(self, sim):
        for i in range(4):
            sim.schedule(i + 1, lambda: None)
        assert sim.pending_events == 4

    def test_dispatch_decrements(self, sim):
        sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        sim.run(until_ns=15)
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0

    def test_cancel_decrements_immediately(self, sim):
        handle = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1

    def test_double_cancel_decrements_once(self, sim):
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 0

    def test_cancel_after_fire_does_not_decrement(self, sim):
        handle = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        sim.run(until_ns=15)
        handle.cancel()  # already fired: a no-op, not a double-count
        assert sim.pending_events == 1

    def test_step_decrements(self, sim):
        sim.schedule(10, lambda: None)
        assert sim.step() is True
        assert sim.pending_events == 0


class TestRunIntrospection:
    """The fast path reads the kernel's dispatch window and next deadline."""

    def test_next_event_time(self, sim):
        assert sim.next_event_time() is None
        sim.schedule(50, lambda: None)
        sim.schedule(10, lambda: None)
        assert sim.next_event_time() == 10

    def test_next_event_time_skips_cancelled(self, sim):
        early = sim.schedule(10, lambda: None)
        sim.schedule(50, lambda: None)
        early.cancel()
        assert sim.next_event_time() == 50

    def test_run_until_ns_visible_during_run_only(self, sim):
        seen = []
        sim.schedule(10, lambda: seen.append(sim.run_until_ns))
        assert sim.run_until_ns is None
        sim.run(until_ns=100)
        assert seen == [100]
        assert sim.run_until_ns is None

    def test_run_until_ns_none_for_unbounded_run(self, sim):
        seen = []
        sim.schedule(10, lambda: seen.append(sim.run_until_ns))
        sim.run()
        assert seen == [None]


class TestPeriodicTasks:
    def test_fires_every_period(self, sim):
        ticks = []
        sim.every(100, lambda: ticks.append(sim.now))
        sim.run(until_ns=550)
        assert ticks == [100, 200, 300, 400, 500]

    def test_custom_start_delay(self, sim):
        ticks = []
        sim.every(100, lambda: ticks.append(sim.now), start_delay_ns=10)
        sim.run(until_ns=250)
        assert ticks == [10, 110, 210]

    def test_cancel_stops_future_fires(self, sim):
        ticks = []
        task = sim.every(100, lambda: ticks.append(sim.now))
        sim.run(until_ns=250)
        task.cancel()
        sim.run(until_ns=1000)
        assert ticks == [100, 200]
        assert task.cancelled

    def test_fire_count_tracked(self, sim):
        task = sim.every(50, lambda: None)
        sim.run(until_ns=500)
        assert task.fires == 10

    def test_zero_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0, lambda: None)

    def test_cancel_from_within_callback(self, sim):
        ticks = []
        holder = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                holder["task"].cancel()

        holder["task"] = sim.every(10, tick)
        sim.run(until_ns=1000)
        assert ticks == [10, 20, 30]
