"""Incremental sweep engine: suspect caching, parametric grids, reports.

The properties that make `repro sweep` an incremental, resumable engine:

* a repeat sweep over the same persistent cache directory re-simulates
  **zero** sessions (suspects included — the acceptance criterion);
* a grown grid simulates only its delta;
* a cache-schema version bump invalidates every stale entry;
* a corrupted suspect entry degrades to one re-simulation, never a wrong
  or missing result;
* parametric axis sweeps expand to ordinary scenarios whose sessions are
  content-keyed like any other;
* the CSV/HTML reports agree with the text output's verdicts.
"""

import csv
import io
import os
import pickle

import pytest

import repro.experiments.batch as batch
from repro.detection.protocol import Verdict
from repro.errors import ReproError
from repro.experiments.batch import GoldenPrintCache, SessionCache
from repro.experiments.report import (
    CSV_COLUMNS,
    render_csv,
    render_html,
    summary_stats,
    sweep_rows,
    write_reports,
)
from repro.experiments.scenario import (
    AXIS_SWEEPS,
    ScenarioSpec,
    compile_scenario,
    grid_names,
    grid_scenarios,
    run_sweep,
    trojan_attack_variant,
)
from repro.physics.quality import fan_deficit_fraction
from tests.conftest import corrupt_file

# The two-scenario / four-session reference grid lives in conftest.py as the
# shared session-scoped ``tiny_grid`` fixture (it is also what the batch and
# distribution suites exercise).


def _forbid_simulation(monkeypatch):
    def _fail(spec):
        raise AssertionError(f"re-simulated a cached session: {spec.label!r}")

    monkeypatch.setattr(batch, "_execute_to_summary", _fail)


def _count_simulations(monkeypatch):
    counted = []
    real = batch._execute_to_summary

    def _counting(spec):
        counted.append(spec.label)
        return real(spec)

    monkeypatch.setattr(batch, "_execute_to_summary", _counting)
    return counted


class TestSessionCacheAlias:
    def test_golden_print_cache_is_session_cache(self):
        assert GoldenPrintCache is SessionCache

    def test_stats_shape(self):
        cache = SessionCache()
        cache.get("missing")
        assert cache.stats() == {
            "hits": 0,
            "misses": 1,
            "disk_hits": 0,
            "entries": 0,
        }

    def test_schema_version_exported(self):
        assert batch.cache_schema_version() == batch._CACHE_FORMAT


@pytest.mark.slow
class TestIncrementalSweeps:
    @pytest.fixture(scope="class")
    def warm_dir(self, tmp_path_factory, tiny_grid):
        """A cache directory populated by one cold tiny-grid sweep."""
        directory = str(tmp_path_factory.mktemp("session-cache"))
        result = run_sweep(tiny_grid, cache=SessionCache(directory=directory))
        assert result.ok
        assert result.sessions_simulated == result.sessions_total == 4
        return directory, result

    def test_repeat_sweep_hits_cache_completely(
        self, warm_dir, tiny_grid, monkeypatch
    ):
        directory, first = warm_dir
        _forbid_simulation(monkeypatch)
        second = run_sweep(tiny_grid, cache=SessionCache(directory=directory))
        assert second.cache_misses == 0
        assert second.sessions_simulated == 0
        assert second.cache_hits == first.sessions_total
        assert second.cache_disk_hits == first.sessions_total
        assert second.ok == first.ok
        for a, b in zip(first.outcomes, second.outcomes):
            assert {k: v.as_dict() for k, v in a.verdicts.items()} == {
                k: v.as_dict() for k, v in b.verdicts.items()
            }

    def test_grown_grid_simulates_only_the_delta(
        self, warm_dir, tiny_grid, monkeypatch
    ):
        directory, _ = warm_dir
        counted = _count_simulations(monkeypatch)
        grown = tiny_grid + [
            ScenarioSpec(
                name="T5@tiny",
                part="tiny",
                attack="T5",
                detectors=("golden", "quality"),
                seed=42,
                noise_sigma=0.0,
            )
        ]
        result = run_sweep(grown, cache=SessionCache(directory=directory))
        # T5 shares the noise-free tiny golden with T2, so the delta is
        # exactly one session: the T5 suspect.
        assert counted == ["T5@tiny/T5"]
        assert result.sessions_simulated == 1
        assert result.sessions_total == 5

    def test_schema_version_bump_invalidates_stale_entries(
        self, warm_dir, tiny_grid, monkeypatch
    ):
        directory, _ = warm_dir
        key = compile_scenario(tiny_grid[1])[1].content_key()
        assert SessionCache(directory=directory).get(key) is not None
        monkeypatch.setattr(batch, "_CACHE_FORMAT", batch._CACHE_FORMAT + 1)
        stale = SessionCache(directory=directory)
        assert stale.get(key) is None
        assert stale.misses == 1

    def test_corrupted_suspect_entry_degrades_to_resimulation(
        self, warm_dir, tiny_grid, monkeypatch
    ):
        directory, first = warm_dir
        suspect_key = compile_scenario(tiny_grid[1])[1].content_key()
        path = os.path.join(directory, f"{suspect_key}.summary.pkl")
        assert os.path.exists(path)
        corrupt_file(path, b"torn write garbage")
        counted = _count_simulations(monkeypatch)
        result = run_sweep(tiny_grid, cache=SessionCache(directory=directory))
        assert counted == ["T2@tiny/T2"]
        assert result.ok == first.ok
        # The re-simulation repopulated the entry for the next sweep.
        assert SessionCache(directory=directory).get(suspect_key) is not None


@pytest.mark.slow
class TestTable1Acceptance:
    """The acceptance criterion, on the real ``table1`` grid."""

    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("table1-cache"))
        scenarios = grid_scenarios("table1")
        first = run_sweep(
            scenarios, cache=SessionCache(directory=directory), grid="table1"
        )
        second = run_sweep(
            scenarios, cache=SessionCache(directory=directory), grid="table1"
        )
        return first, second

    def test_second_sweep_resimulates_zero_sessions(self, runs):
        first, second = runs
        assert first.sessions_simulated == first.sessions_total == 10
        assert second.cache_misses == 0
        assert second.sessions_simulated == 0
        assert second.cache_hits == first.sessions_total

    def test_csv_report_agrees_with_text_verdicts(self, runs):
        _, second = runs
        text_triples = set()
        for line in second.render().splitlines():
            fields = line.split()
            if len(fields) >= 3 and fields[2] in ("TROJAN", "clean"):
                text_triples.add((fields[0], fields[1], fields[2]))
        csv_triples = {
            (row["scenario"], row["detector"], row["verdict"])
            for row in csv.DictReader(io.StringIO(render_csv(second)))
        }
        assert csv_triples == text_triples
        assert len(csv_triples) == sum(len(o.verdicts) for o in second.outcomes)


class TestParametricGrids:
    def test_axis_sweeps_registered_as_grids(self):
        assert {"t2-curve", "t9-curve", "curves"} <= set(grid_names())
        assert {"t2-curve", "t9-curve"} <= set(AXIS_SWEEPS)

    def test_t2_curve_expands_to_variant_scenarios(self):
        scenarios = grid_scenarios("t2-curve")
        assert [sc.attack for sc in scenarios] == [
            "T2[keep_fraction=0.25]",
            "T2[keep_fraction=0.5]",
            "T2[keep_fraction=0.75]",
            "T2[keep_fraction=0.9]",
        ]
        assert all(sc.part == "tiny" for sc in scenarios)
        assert len({sc.name for sc in scenarios}) == len(scenarios)

    def test_curves_grid_is_the_union_of_axis_sweeps(self):
        union = {sc.name for sc in grid_scenarios("curves")}
        per_sweep = {
            sc.name
            for sweep_name in AXIS_SWEEPS
            for sc in grid_scenarios(sweep_name)
        }
        assert union == per_sweep

    def test_variant_registration_is_idempotent_and_keyed_by_params(self):
        name = trojan_attack_variant("T9", arm_delay_s=2.5)
        assert name == "T9[arm_delay_s=2.5]"
        assert trojan_attack_variant("T9", arm_delay_s=2.5) == name
        other = trojan_attack_variant("T9", arm_delay_s=7.5)
        assert other != name
        from repro.experiments.scenario import get_attack

        assert get_attack(name).trojan_params["arm_delay_s"] == 2.5
        assert get_attack(name).trojan_params["scale"] == 0.15  # base retained

    def test_variant_without_overrides_is_the_base_attack(self):
        assert trojan_attack_variant("T2") == "T2"

    def test_variant_of_gcode_attack_rejected(self):
        with pytest.raises(ReproError):
            trojan_attack_variant("dr0wned-void", factor=0.5)

    @pytest.fixture
    def attack_registry(self):
        """Snapshot/restore ATTACKS so collision tests can't leak entries."""
        from repro.experiments.scenario import ATTACKS

        snapshot = dict(ATTACKS)
        yield ATTACKS
        ATTACKS.clear()
        ATTACKS.update(snapshot)

    def test_float_formatting_collision_raises_not_wrong_trojan(
        self, attack_registry
    ):
        # %g folds 0.5000000001 onto "0.5": same name, different physics.
        # Silently reusing the registered variant would sweep the wrong
        # Trojan config — it must raise instead.
        name = trojan_attack_variant("T2", keep_fraction=0.5)
        assert name == "T2[keep_fraction=0.5]"
        with pytest.raises(ReproError, match="different"):
            trojan_attack_variant("T2", keep_fraction=0.5000000001)

    def test_user_registered_attack_under_variant_name_raises(
        self, attack_registry
    ):
        from repro.experiments.scenario import AttackDef, register_attack

        register_attack(
            AttackDef(
                name="T2[keep_fraction=0.33]",
                kind="fpga",
                trojan_id="T2",
                trojan_params={"keep_fraction": 0.9},
            )
        )
        with pytest.raises(ReproError, match="already registered"):
            trojan_attack_variant("T2", keep_fraction=0.33)

    def test_reregistering_identical_variant_stays_idempotent(
        self, attack_registry
    ):
        first = trojan_attack_variant("T9", arm_delay_s=3.5)
        assert trojan_attack_variant("T9", arm_delay_s=3.5) == first

    def test_variant_sessions_have_distinct_content_keys(self):
        base = compile_scenario(
            ScenarioSpec(name="a", part="tiny", attack="T2", noise_sigma=0.0)
        )[1]
        variant = compile_scenario(
            ScenarioSpec(
                name="b",
                part="tiny",
                attack=trojan_attack_variant("T2", keep_fraction=0.25),
                noise_sigma=0.0,
            )
        )[1]
        assert base.content_key() != variant.content_key()


class TestFanDeficitFraction:
    S = 1_000_000_000  # ns

    def test_identical_profiles_have_zero_deficit(self):
        profile = [(0, 0.0), (10 * self.S, 1.0), (50 * self.S, 0.0)]
        assert fan_deficit_fraction(profile, 60 * self.S, profile, 60 * self.S) == 0.0

    def test_sliver_sabotage_is_normalized_by_print_length(self):
        golden = [(0, 0.0), (40 * self.S, 1.0)]
        sabotaged = [(0, 0.0), (40 * self.S, 1.0), (57 * self.S, 0.15)]
        deficit = fan_deficit_fraction(golden, 60 * self.S, sabotaged, 60 * self.S)
        assert deficit == pytest.approx(3.0 / 60.0)

    def test_longer_print_same_fractional_deficit(self):
        # The same 5% sabotaged share registers identically at any length.
        golden = [(0, 1.0)]
        short = [(0, 1.0), (19 * self.S, 0.0)]
        long_ = [(0, 1.0), (190 * self.S, 0.0)]
        a = fan_deficit_fraction(golden, 20 * self.S, short, 20 * self.S)
        b = fan_deficit_fraction(golden, 200 * self.S, long_, 200 * self.S)
        assert a == pytest.approx(0.05)
        assert b == pytest.approx(0.05)

    def test_low_golden_duty_is_ignored(self):
        golden = [(0, 0.04)]  # below the duty floor: nothing to collapse
        suspect = [(0, 0.0)]
        assert fan_deficit_fraction(golden, 10 * self.S, suspect, 10 * self.S) == 0.0

    def test_empty_profiles_are_zero(self):
        assert fan_deficit_fraction([], 0, [], 0) == 0.0
        assert fan_deficit_fraction([(0, 1.0)], 10 * self.S, [], 0) == 0.0


@pytest.mark.slow
class TestDurationAwareFanDetection:
    def test_t9_on_tiny_is_caught(self):
        # The known full-grid miss: T9's 10s arm delay on the ~60s tiny
        # coupon leaves the whole-print mean duty above the collapse
        # threshold; the normalized-time deficit still sees it.
        result = run_sweep(
            [
                ScenarioSpec(
                    name="T9@tiny",
                    part="tiny",
                    attack="T9",
                    detectors=("golden", "quality"),
                    seed=42,
                    noise_sigma=0.0,
                )
            ]
        )
        verdict = result.outcomes[0].verdicts["quality"]
        assert verdict.trojan_likely
        assert "fan duty deficit" in verdict.detail


class TestVerdictSerialization:
    def test_as_dict_is_plain_and_dropping_report(self):
        verdict = Verdict(
            detector="golden",
            trojan_likely=True,
            score=42.5,
            detail="d",
            report=object(),
        )
        flat = verdict.as_dict()
        assert flat == {
            "detector": "golden",
            "trojan_likely": True,
            "score": 42.5,
            "detail": "d",
        }
        assert all(isinstance(k, str) for k in flat)

    def test_without_report(self):
        verdict = Verdict("q", False, 0.0, "ok", report=object())
        stripped = verdict.without_report()
        assert stripped.report is None
        assert stripped.as_dict() == verdict.as_dict()
        clean = Verdict("q", False, 0.0, "ok")
        assert clean.without_report() is clean

    def test_pickle_drops_the_live_report(self):
        # A lambda report stands in for live detector state (e.g. the
        # StreamingDetector RealtimeDetector attaches): unpicklable as-is.
        verdict = Verdict("realtime", True, 14.0, "alarm", report=lambda: None)
        with pytest.raises(Exception):
            pickle.dumps(verdict.report)
        loaded = pickle.loads(pickle.dumps(verdict))
        assert loaded.report is None
        assert loaded.as_dict() == verdict.as_dict()
        assert loaded.trojan_likely is True


class TestFailedScenarios:
    """A failing session surfaces as a FAILED row, not a dead sweep."""

    @pytest.fixture
    def broken_attack(self):
        from repro.experiments.scenario import ATTACKS, AttackDef, register_attack

        snapshot = dict(ATTACKS)
        register_attack(
            AttackDef(
                name="broken-trojan",
                kind="fpga",
                description="registered id that no worker can instantiate",
                trojan_id="T999",
            )
        )
        yield "broken-trojan"
        ATTACKS.clear()
        ATTACKS.update(snapshot)

    def test_sweep_reports_failure_instead_of_raising(self, broken_attack):
        scenarios = [
            ScenarioSpec(
                name="broken@tiny",
                part="tiny",
                attack=broken_attack,
                detectors=("golden", "quality"),
                seed=42,
                noise_sigma=0.0,
            )
        ]
        result = run_sweep(scenarios)
        outcome = result.outcomes[0]
        assert outcome.failed
        assert not outcome.detected
        assert not outcome.missed  # failed, not silently missed
        assert result.sessions_failed == 1
        assert not result.ok
        for verdict in outcome.verdicts.values():
            assert not verdict.trojan_likely
            assert "session failed" in verdict.detail
            assert "T999" in verdict.detail
        assert "FAILED" in result.render()

    def test_failed_outcome_flows_into_reports(self, broken_attack):
        scenarios = [
            ScenarioSpec(
                name="broken@tiny",
                part="tiny",
                attack=broken_attack,
                detectors=("golden",),
                seed=42,
                noise_sigma=0.0,
            )
        ]
        result = run_sweep(scenarios)
        rows = sweep_rows(result)
        assert all(row["outcome"] == "failed" for row in rows)
        assert all(row["suspect_status"] == "failed" for row in rows)
        stats = summary_stats(result)
        assert stats["sessions_failed"] == 1
        assert stats["ok"] is False
        page = render_html(result)
        assert 'class="failed"' in page
        assert "sessions failed" in page


@pytest.mark.slow
class TestSweepReports:
    @pytest.fixture(scope="class")
    def result(self, tiny_grid):
        return run_sweep(tiny_grid, cache=SessionCache(), grid="mini")

    def test_rows_cover_every_scenario_detector_pair(self, result):
        rows = sweep_rows(result)
        assert len(rows) == sum(len(o.verdicts) for o in result.outcomes)
        assert {row["scenario"] for row in rows} == {
            o.scenario.name for o in result.outcomes
        }
        for row in rows:
            assert set(row) == set(CSV_COLUMNS)
            assert row["outcome"] in (
                "ok", "detected", "missed", "false-positive", "failed",
            )

    def test_csv_round_trips(self, result):
        parsed = list(csv.DictReader(io.StringIO(render_csv(result))))
        assert [row["scenario"] for row in parsed] == [
            row["scenario"] for row in sweep_rows(result)
        ]
        attack_rows = [row for row in parsed if row["kind"] == "attack"]
        assert attack_rows and all(r["outcome"] == "detected" for r in attack_rows)

    def test_html_is_self_contained_and_mentions_everything(self, result):
        page = render_html(result)
        assert page.startswith("<!DOCTYPE html>")
        assert "<style>" in page
        assert "src=" not in page and "href=" not in page  # no external assets
        for outcome in result.outcomes:
            assert outcome.scenario.name in page
        assert "cache hits / misses" in page
        assert "wall clock" in page

    def test_summary_stats_match_result(self, result):
        stats = summary_stats(result)
        assert stats["scenarios"] == len(result.outcomes)
        assert stats["attacks_detected"] == result.attacks_detected
        assert stats["sessions_total"] == result.sessions_total == 4
        assert stats["grid"] == "mini"

    def test_write_reports_writes_requested_files(self, result, tmp_path):
        csv_path = str(tmp_path / "sweep.csv")
        html_path = str(tmp_path / "sweep.html")
        written = write_reports(result, csv_path=csv_path, html_path=html_path)
        assert written == [csv_path, html_path]
        with open(csv_path, encoding="utf-8") as handle:
            assert handle.readline().strip() == ",".join(CSV_COLUMNS)
        with open(html_path, encoding="utf-8") as handle:
            assert "<table>" in handle.read()
        assert write_reports(result) == []
