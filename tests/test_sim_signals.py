"""Unit tests for the wire abstractions."""

import pytest

from repro.errors import SimulationError
from repro.sim.signals import AnalogWire, DigitalWire, Edge, PwmWire, StepWire


class TestDigitalWire:
    def test_initial_value(self, sim):
        assert DigitalWire(sim, "w").value == 0
        assert DigitalWire(sim, "w", initial=1).value == 1

    def test_drive_changes_value(self, sim):
        wire = DigitalWire(sim, "w")
        wire.drive(1)
        assert wire.value == 1

    def test_edge_callback_fires_on_transition(self, sim):
        wire = DigitalWire(sim, "w")
        seen = []
        wire.on_edge(lambda w, v, t: seen.append((v, t)))
        wire.drive(1)
        assert seen == [(1, 0)]

    def test_no_callback_without_transition(self, sim):
        wire = DigitalWire(sim, "w")
        seen = []
        wire.on_edge(lambda w, v, t: seen.append(v))
        wire.drive(0)
        wire.drive(0)
        assert seen == []

    def test_rising_only_subscription(self, sim):
        wire = DigitalWire(sim, "w")
        rising = []
        wire.on_edge(lambda w, v, t: rising.append(v), Edge.RISING)
        wire.drive(1)
        wire.drive(0)
        wire.drive(1)
        assert rising == [1, 1]

    def test_falling_only_subscription(self, sim):
        wire = DigitalWire(sim, "w")
        falling = []
        wire.on_edge(lambda w, v, t: falling.append(v), Edge.FALLING)
        wire.drive(1)
        wire.drive(0)
        assert falling == [0]

    def test_edge_count(self, sim):
        wire = DigitalWire(sim, "w")
        for value in (1, 0, 1, 0):
            wire.drive(value)
        assert wire.edge_count == 4

    def test_truthy_values_normalised(self, sim):
        wire = DigitalWire(sim, "w")
        wire.drive(5)
        assert wire.value == 1

    def test_timestamp_follows_sim_clock(self, sim):
        wire = DigitalWire(sim, "w")
        seen = []
        wire.on_edge(lambda w, v, t: seen.append(t))
        sim.schedule(123, lambda: wire.drive(1))
        sim.run()
        assert seen == [123]


class TestStepWire:
    def test_pulse_count(self, sim):
        wire = StepWire(sim, "s")
        for _ in range(3):
            wire.pulse()
        assert wire.pulse_count == 3

    def test_pulse_callback_receives_width(self, sim):
        wire = StepWire(sim, "s")
        seen = []
        wire.on_pulse(lambda w, t, width: seen.append((t, width)))
        wire.pulse(width_ns=1500)
        assert seen == [(0, 1500)]

    def test_zero_width_rejected(self, sim):
        wire = StepWire(sim, "s")
        with pytest.raises(SimulationError):
            wire.pulse(width_ns=0)

    def test_min_interval_tracking(self, sim):
        wire = StepWire(sim, "s")
        for at in (0, 100, 150, 400):
            sim.schedule_at(at, wire.pulse)
        sim.run()
        assert wire.min_interval_ns == 50

    def test_max_frequency_from_min_interval(self, sim):
        wire = StepWire(sim, "s")
        sim.schedule_at(0, wire.pulse)
        sim.schedule_at(1000, wire.pulse)  # 1 us apart -> 1 MHz
        sim.run()
        assert wire.max_frequency_hz == pytest.approx(1e6)

    def test_max_frequency_none_for_single_pulse(self, sim):
        wire = StepWire(sim, "s")
        wire.pulse()
        assert wire.max_frequency_hz is None

    def test_min_width_tracking(self, sim):
        wire = StepWire(sim, "s")
        wire.pulse(width_ns=3000)
        wire.pulse(width_ns=1000)
        wire.pulse(width_ns=2000)
        assert wire.min_width_ns == 1000


class TestPwmWire:
    def test_duty_clamped(self, sim):
        wire = PwmWire(sim, "p")
        wire.drive(1.7)
        assert wire.duty == 1.0
        wire.drive(-0.5)
        assert wire.duty == 0.0

    def test_change_callback(self, sim):
        wire = PwmWire(sim, "p")
        seen = []
        wire.on_change(lambda w, d, t: seen.append(d))
        wire.drive(0.5)
        wire.drive(0.5)  # no change, no callback
        wire.drive(0.8)
        assert seen == [0.5, 0.8]

    def test_update_count(self, sim):
        wire = PwmWire(sim, "p")
        wire.drive(0.1)
        wire.drive(0.2)
        assert wire.update_count == 2


class TestAnalogWire:
    def test_value_and_callback(self, sim):
        wire = AnalogWire(sim, "a", initial=1.0)
        seen = []
        wire.on_change(lambda w, v, t: seen.append(v))
        wire.drive(2.5)
        assert wire.value == 2.5
        assert seen == [2.5]

    def test_no_callback_on_identical_value(self, sim):
        wire = AnalogWire(sim, "a", initial=3.0)
        seen = []
        wire.on_change(lambda w, v, t: seen.append(v))
        wire.drive(3.0)
        assert seen == []


class TestClaiming:
    def test_claim_and_release(self, sim):
        wire = DigitalWire(sim, "w")
        wire.claim("firmware")
        assert wire.driver == "firmware"
        wire.release("firmware")
        assert wire.driver is None

    def test_release_by_non_owner_is_noop(self, sim):
        wire = DigitalWire(sim, "w")
        wire.claim("a")
        wire.release("b")
        assert wire.driver == "a"
