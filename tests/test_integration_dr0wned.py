"""dr0wned-style attack end to end: a void inserted before slicing ships.

The dr0wned attack modifies design files so the sliced G-code contains
sub-millimetre voids at stress points. OFFRAMPS sits *after* the firmware,
so — like Flaw3D — the attack is visible in the commanded step stream no
matter how early in the toolchain it was planted. These tests run the voided
program on the full stack and confirm both the physical effect and the
detection.
"""

import pytest

from repro.detection.comparator import CaptureComparator
from repro.experiments.runner import run_print
from repro.gcode.transforms.edits import insert_void


@pytest.fixture(scope="module")
def voided_result(tiny_program):
    # Carve a void through the part's core (the part sits at 95..105 mm).
    voided = insert_void(tiny_program, (98.0, 98.0, 0.0, 102.0, 102.0, 2.0))
    return run_print(voided, noise_sigma=0.0005, noise_seed=41)


class TestPhysicalEffect:
    def test_material_missing_from_core(self, tiny_golden, voided_result):
        golden_e = tiny_golden.plant.trace.total_extruded_mm
        voided_e = voided_result.plant.trace.total_extruded_mm
        assert voided_e < golden_e * 0.9

    def test_motion_unchanged(self, tiny_golden, voided_result):
        # The stealth of dr0wned: the head still traces every path.
        assert voided_result.final_counts()["X"] == tiny_golden.final_counts()["X"]
        assert voided_result.final_counts()["Y"] == tiny_golden.final_counts()["Y"]

    def test_print_completes_normally(self, voided_result):
        assert voided_result.completed


class TestDetection:
    def test_void_detected_against_golden(self, tiny_golden_noisy, voided_result):
        report = CaptureComparator().compare_captures(
            tiny_golden_noisy.capture, voided_result.capture
        )
        assert report.trojan_likely

    def test_detected_via_e_column(self, tiny_golden_noisy, voided_result):
        report = CaptureComparator().compare_captures(
            tiny_golden_noisy.capture, voided_result.capture
        )
        columns = {m.column for m in report.mismatches} | {
            m.column for m in report.final_mismatches
        }
        assert columns == {"E"}  # motion matches; only extrusion diverges
