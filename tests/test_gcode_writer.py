"""Serializer tests, including the parse/write round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcode.ast import Command, GcodeProgram, Word
from repro.gcode.checksum import line_checksum, split_checksum, wrap_with_checksum
from repro.gcode.parser import parse_line, parse_program
from repro.gcode.writer import write_line, write_program


class TestWriter:
    def test_simple_command(self):
        cmd = Command(letter="G", code=1.0, params=[Word("X", 10.0), Word("E", 0.5)])
        assert write_line(cmd) == "G1 X10 E0.5"

    def test_comment_appended(self):
        cmd = Command(letter="G", code=28.0, comment="home")
        assert write_line(cmd) == "G28 ;home"

    def test_comment_only(self):
        cmd = Command(comment="note")
        assert write_line(cmd) == ";note"

    def test_line_number_prefix(self):
        cmd = Command(letter="G", code=28.0, line_number=7)
        assert write_line(cmd) == "N7 G28"

    def test_checksum_appended(self):
        cmd = Command(letter="G", code=28.0, line_number=3)
        line = write_line(cmd, with_checksum=True)
        assert line == wrap_with_checksum(3, "G28")

    def test_program_trailing_newline(self):
        program = GcodeProgram([Command(letter="G", code=28.0)])
        assert write_program(program) == "G28\n"

    def test_empty_program(self):
        assert write_program(GcodeProgram()) == ""


class TestChecksum:
    def test_known_value(self):
        # XOR of the bytes of "N3 G28": 78^51^32^71^50^56 == 16.
        assert line_checksum("N3 G28") == 16

    def test_split_checksum(self):
        payload, checksum = split_checksum("N3 G28*16")
        assert payload == "N3 G28"
        assert checksum == 16

    def test_split_without_checksum(self):
        payload, checksum = split_checksum("G1 X5")
        assert payload == "G1 X5"
        assert checksum is None

    def test_wrap_then_validate(self):
        line = wrap_with_checksum(12, "G1 X5 Y2")
        cmd = parse_line(line, validate_checksum=True)
        assert cmd.line_number == 12
        assert cmd.get("X") == 5


# --------------------------------------------------------------------------
# Property-based round-trip
# --------------------------------------------------------------------------
_letters = st.sampled_from("XYZEFSPR")
_values = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000).map(float),
    st.floats(
        min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
    ).map(lambda v: round(v, 4)),
)


def _command_strategy():
    def build(code, params, comment, line_number):
        unique = []
        seen = set()
        for letter, value in params:
            if letter not in seen:
                seen.add(letter)
                unique.append(Word(letter, value))
        return Command(
            letter="G" if code < 100 else "M",
            code=float(int(code % 100)),
            params=unique,
            comment=comment,
            line_number=line_number,
        )

    return st.builds(
        build,
        st.integers(min_value=0, max_value=199),
        st.lists(st.tuples(_letters, _values), max_size=5),
        st.one_of(st.none(), st.text(alphabet=" abcdefg_:.", max_size=15).map(str.strip)),
        st.one_of(st.none(), st.integers(min_value=0, max_value=99_999)),
    )


class TestRoundTripProperties:
    @given(_command_strategy())
    @settings(max_examples=200, deadline=None)
    def test_write_parse_roundtrip(self, cmd):
        line = write_line(cmd)
        parsed = parse_line(line)
        assert parsed.name == cmd.name
        assert parsed.line_number == cmd.line_number
        for word in cmd.params:
            assert parsed.get(word.letter) == pytest.approx(word.value)

    @given(_command_strategy())
    @settings(max_examples=100, deadline=None)
    def test_serialization_is_stable(self, cmd):
        once = write_line(cmd)
        twice = write_line(parse_line(once))
        assert once == twice

    @given(st.lists(_command_strategy(), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_program_roundtrip(self, commands):
        program = GcodeProgram(list(commands))
        text = write_program(program)
        reparsed = parse_program(text)
        assert write_program(reparsed) == text

    @given(_command_strategy(), st.integers(min_value=1, max_value=9999))
    @settings(max_examples=100, deadline=None)
    def test_checksummed_roundtrip_validates(self, cmd, line_number):
        framed = Command(
            letter=cmd.letter, code=cmd.code, params=cmd.params, line_number=line_number
        )
        line = write_line(framed, with_checksum=True)
        parsed = parse_line(line, validate_checksum=True)
        assert parsed.line_number == line_number
