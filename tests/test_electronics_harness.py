"""Tests for the pin inventory and the interposable signal harness."""

import pytest

from repro.electronics.harness import SignalHarness
from repro.electronics.pins import (
    AXES,
    ENDSTOP_SIGNALS,
    SIGNALS,
    SignalDirection,
    SignalKind,
    signal_name,
)
from repro.errors import OfframpsError


class TestPins:
    def test_all_axes_have_motion_signals(self):
        for axis in AXES:
            for function in ("STEP", "DIR", "EN"):
                assert f"{axis}_{function}" in SIGNALS

    def test_signal_count(self):
        # 4 axes x 3 motion signals + 3 PWM + 3 endstops + 2 thermistors
        assert len(SIGNALS) == 4 * 3 + 3 + 3 + 2

    def test_ramps_pin_numbers(self):
        assert SIGNALS["X_STEP"].mega_pin == 54
        assert SIGNALS["D10_HOTEND"].mega_pin == 10
        assert SIGNALS["Z_MIN"].mega_pin == 18

    def test_directions(self):
        assert SIGNALS["X_STEP"].direction is SignalDirection.ARDUINO_TO_RAMPS
        assert SIGNALS["X_MIN"].direction is SignalDirection.RAMPS_TO_ARDUINO
        assert SIGNALS["T0_HOTEND"].direction is SignalDirection.RAMPS_TO_ARDUINO

    def test_kinds(self):
        assert SIGNALS["E_STEP"].kind is SignalKind.STEP
        assert SIGNALS["E_DIR"].kind is SignalKind.DIGITAL
        assert SIGNALS["D9_FAN"].kind is SignalKind.PWM
        assert SIGNALS["T1_BED"].kind is SignalKind.ANALOG

    def test_signal_name_helper(self):
        assert signal_name("x", "step") == "X_STEP"
        with pytest.raises(KeyError):
            signal_name("Q", "STEP")


class TestHarnessForwarding:
    def test_step_pulses_forward(self, sim):
        harness = SignalHarness(sim)
        harness.upstream("X_STEP").pulse()
        assert harness.downstream("X_STEP").pulse_count == 1

    def test_digital_levels_forward(self, sim):
        harness = SignalHarness(sim)
        harness.upstream("X_DIR").drive(1)
        assert harness.downstream("X_DIR").value == 1

    def test_pwm_forwards(self, sim):
        harness = SignalHarness(sim)
        harness.upstream("D9_FAN").drive(0.6)
        assert harness.downstream("D9_FAN").duty == 0.6

    def test_analog_forwards(self, sim):
        harness = SignalHarness(sim)
        harness.upstream("T0_HOTEND").drive(2.5)
        assert harness.downstream("T0_HOTEND").value == 2.5

    def test_unknown_signal_rejected(self, sim):
        harness = SignalHarness(sim)
        with pytest.raises(OfframpsError):
            harness.path("BOGUS")

    def test_subset_harness(self, sim):
        harness = SignalHarness(sim, names=["X_STEP", "X_DIR"])
        assert "X_STEP" in harness
        assert "Y_STEP" not in harness

    def test_pulse_width_preserved(self, sim):
        harness = SignalHarness(sim)
        seen = []
        harness.downstream("X_STEP").on_pulse(lambda w, t, width: seen.append(width))
        harness.upstream("X_STEP").pulse(width_ns=3333)
        assert seen == [3333]


class TestInterception:
    def test_interceptor_blocks_forwarding(self, sim):
        harness = SignalHarness(sim)
        path = harness.path("X_STEP")
        path.install_interceptor("test", lambda p, kind, value, t: None)  # swallow
        harness.upstream("X_STEP").pulse()
        assert harness.downstream("X_STEP").pulse_count == 0

    def test_interceptor_can_redrive(self, sim):
        harness = SignalHarness(sim)
        path = harness.path("X_STEP")
        path.install_interceptor(
            "test", lambda p, kind, value, t: p.downstream.pulse(int(value))
        )
        harness.upstream("X_STEP").pulse()
        assert harness.downstream("X_STEP").pulse_count == 1

    def test_double_interception_rejected(self, sim):
        harness = SignalHarness(sim)
        path = harness.path("X_DIR")
        path.install_interceptor("a", lambda *args: None)
        with pytest.raises(OfframpsError):
            path.install_interceptor("b", lambda *args: None)

    def test_same_owner_can_reinstall(self, sim):
        harness = SignalHarness(sim)
        path = harness.path("X_DIR")
        path.install_interceptor("a", lambda *args: None)
        path.install_interceptor("a", lambda *args: None)  # no error

    def test_remove_restores_forwarding(self, sim):
        harness = SignalHarness(sim)
        path = harness.path("X_DIR")
        path.install_interceptor("a", lambda *args: None)
        harness.upstream("X_DIR").drive(1)
        assert harness.downstream("X_DIR").value == 0  # swallowed
        path.remove_interceptor("a")
        assert harness.downstream("X_DIR").value == 1  # resynced

    def test_remove_by_wrong_owner_rejected(self, sim):
        harness = SignalHarness(sim)
        path = harness.path("X_DIR")
        path.install_interceptor("a", lambda *args: None)
        with pytest.raises(OfframpsError):
            path.remove_interceptor("b")

    def test_pwm_resync_after_removal(self, sim):
        harness = SignalHarness(sim)
        path = harness.path("D9_FAN")
        path.install_interceptor("a", lambda *args: None)
        harness.upstream("D9_FAN").drive(0.8)
        path.remove_interceptor("a")
        assert harness.downstream("D9_FAN").duty == 0.8
