"""Stepper executor tests: exact step emission, timing, homing moves."""

import pytest

from repro.electronics.harness import SignalHarness
from repro.firmware.config import MarlinConfig
from repro.firmware.planner import MotionPlanner
from repro.firmware.stepper import StepperExecutor
from repro.sim.time import S


def _bench(sim, **config_kwargs):
    config = MarlinConfig(**config_kwargs)
    harness = SignalHarness(sim)
    planner = MotionPlanner(config)
    stepper = StepperExecutor(sim, config, harness, planner)
    return harness, planner, stepper


class TestBlockExecution:
    def test_exact_step_counts(self, sim):
        harness, planner, stepper = _bench(sim)
        planner.add_move({"X": 1000, "Y": 700}, 50.0)
        stepper.wake()
        sim.run(until_ns=60 * S)
        assert harness.upstream("X_STEP").pulse_count == 1000
        assert harness.upstream("Y_STEP").pulse_count == 700
        assert stepper.steps_emitted["X"] == 1000
        assert stepper.steps_emitted["Y"] == 700

    def test_negative_steps_set_dir_low(self, sim):
        harness, planner, stepper = _bench(sim)
        planner.add_move({"X": -500}, 50.0)
        stepper.wake()
        sim.run(until_ns=60 * S)
        assert harness.upstream("X_DIR").value == 0
        assert stepper.steps_emitted["X"] == -500

    def test_enable_asserted_on_motion(self, sim):
        harness, planner, stepper = _bench(sim)
        assert harness.upstream("X_EN").value == 1  # disabled at boot
        planner.add_move({"X": 10}, 50.0)
        stepper.wake()
        assert harness.upstream("X_EN").value == 0

    def test_blocks_chain_without_gap(self, sim):
        harness, planner, stepper = _bench(sim)
        planner.add_move({"X": 500}, 50.0)
        planner.add_move({"X": 500}, 50.0)
        stepper.wake()
        sim.run(until_ns=60 * S)
        assert stepper.blocks_executed == 2
        assert harness.upstream("X_STEP").pulse_count == 1000

    def test_duration_close_to_kinematic_estimate(self, sim):
        harness, planner, stepper = _bench(sim)
        # 50mm at 50mm/s with accel 1000: t = d/v + v/a = 1.0 + 0.05 = 1.05s
        planner.add_move({"X": 5000}, 50.0)
        stepper.wake()
        done_at = []
        stepper.on_idle.append(lambda: done_at.append(sim.now))
        sim.run(until_ns=60 * S)
        assert done_at and done_at[0] / 1e9 == pytest.approx(1.05, rel=0.05)

    def test_cruise_step_rate_matches_feedrate(self, sim):
        harness, planner, stepper = _bench(sim)
        planner.add_move({"X": 10_000}, 100.0)  # long cruise at 100mm/s
        stepper.wake()
        sim.run(until_ns=60 * S)
        # 100 mm/s * 100 steps/mm = 10 kHz -> min interval 100 us
        assert harness.upstream("X_STEP").min_interval_ns == pytest.approx(
            100_000, rel=0.05
        )

    def test_multi_axis_bresenham_exact(self, sim):
        harness, planner, stepper = _bench(sim)
        planner.add_move({"X": 997, "Y": 311, "Z": 89, "E": 13}, 40.0)
        stepper.wake()
        sim.run(until_ns=120 * S)
        assert harness.upstream("X_STEP").pulse_count == 997
        assert harness.upstream("Y_STEP").pulse_count == 311
        assert harness.upstream("Z_STEP").pulse_count == 89
        assert harness.upstream("E_STEP").pulse_count == 13

    def test_abort_stops_mid_block(self, sim):
        harness, planner, stepper = _bench(sim)
        planner.add_move({"X": 10_000}, 10.0)
        stepper.wake()
        sim.run(until_ns=1 * S)
        stepper.abort()
        emitted = harness.upstream("X_STEP").pulse_count
        assert 0 < emitted < 10_000
        sim.run(until_ns=60 * S)
        assert harness.upstream("X_STEP").pulse_count == emitted
        assert stepper.idle

    def test_disable_steppers(self, sim):
        harness, planner, stepper = _bench(sim)
        stepper.enable_steppers()
        stepper.disable_steppers(["X"])
        assert harness.upstream("X_EN").value == 1
        assert harness.upstream("Y_EN").value == 0


class TestTimeNoise:
    def _total_duration(self, sigma, seed):
        from repro.sim.kernel import Simulator

        sim = Simulator()
        harness, planner, stepper = _bench(
            sim, time_noise_sigma=sigma, time_noise_seed=seed
        )
        for _ in range(5):
            planner.add_move({"X": 2000}, 50.0)
            planner.add_move({"X": -2000}, 50.0)
        stepper.wake()
        done = []
        stepper.on_idle.append(lambda: done.append(sim.now))
        sim.run(until_ns=300 * S)
        return done[0]

    def test_noise_changes_timing(self):
        base = self._total_duration(0.0, 0)
        noisy = self._total_duration(0.005, 1)
        assert noisy != base
        assert abs(noisy - base) / base < 0.02  # bounded wander

    def test_noise_is_deterministic_per_seed(self):
        assert self._total_duration(0.005, 7) == self._total_duration(0.005, 7)

    def test_different_seeds_differ(self):
        assert self._total_duration(0.005, 1) != self._total_duration(0.005, 2)

    def test_step_counts_unaffected_by_noise(self, sim):
        harness, planner, stepper = _bench(sim, time_noise_sigma=0.01, time_noise_seed=3)
        planner.add_move({"X": 1234}, 60.0)
        stepper.wake()
        sim.run(until_ns=60 * S)
        assert harness.upstream("X_STEP").pulse_count == 1234


class TestHomeMove:
    def test_stops_on_condition(self, sim):
        harness, planner, stepper = _bench(sim)
        hit_state = {"steps": 0}
        results = []

        def stop_when():
            return hit_state["steps"] >= 250

        harness.upstream("X_STEP").on_pulse(
            lambda w, t, width: hit_state.__setitem__("steps", hit_state["steps"] + 1)
        )
        stepper.home_move("X", -1, 100.0, 50.0, stop_when, lambda hit, n: results.append((hit, n)))
        sim.run(until_ns=60 * S)
        assert results and results[0][0] is True
        assert results[0][1] == pytest.approx(250, abs=2)

    def test_gives_up_at_max_travel(self, sim):
        harness, planner, stepper = _bench(sim)
        results = []
        stepper.home_move("X", -1, 5.0, 50.0, lambda: False, lambda hit, n: results.append((hit, n)))
        sim.run(until_ns=60 * S)
        assert results == [(False, 500)]

    def test_busy_stepper_rejects_homing(self, sim):
        from repro.errors import FirmwareError

        harness, planner, stepper = _bench(sim)
        planner.add_move({"X": 5000}, 10.0)
        stepper.wake()
        with pytest.raises(FirmwareError):
            stepper.home_move("X", -1, 5.0, 50.0, None, lambda hit, n: None)
