"""Contract lint v2: cross-file rules, baseline lifecycle, SARIF, config.

The centerpiece tests are the regression demos: each contract rule is
pointed at a fixture tree re-introducing the historical bug class it was
built for — the PR 7 missing-``fast_path``-in-``content_key`` aliasing
bug for CACHE001 (including a copy of the *real* ``batch.py`` with the
line deleted), and an unbumped wire-field addition for WIRE003 — and
must fire. Around them: TOCTOU/lock-consistency/detector-conformance
fixture pairs, the findings-baseline add/resolve/stale lifecycle,
SARIF 2.1.0 output shape, LINT000 dead-suppression detection, and
fail-loud config validation.
"""

import json
import os

import pytest

from repro.analysis.lint import (
    CONTRACTS_BY_CODE,
    LintConfig,
    LintConfigError,
    load_config,
    render_json,
    render_sarif_result,
    render_text,
    rule_catalog,
    run_lint,
    update_baseline,
    update_wire_baseline,
)
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_tree(tmp_path, files):
    """Write a fixture tree ({relpath: source}) under tmp_path."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


def lint_tree(tmp_path, config=None, paths=None, profile=None):
    return run_lint(
        paths=paths,
        root=str(tmp_path),
        config=config or LintConfig(paths=(".",)),
        profile=profile,
    )


def codes(result):
    return [f.rule for f in result.findings]


def fixture_config(**rule_options):
    """A fixture-tree config with WIRE002 scoped away.

    The fixture classes deliberately reuse the production wire names
    (SessionSpec, Verdict) so the contract rules resolve them; scoping
    WIRE002 to a directory that does not exist keeps its unrelated
    payload-type findings out of these assertions.
    """
    options = {"WIRE002": {"include": ["no-such-dir"]}}
    options.update(rule_options)
    return LintConfig(paths=(".",), rule_options=options)


# ======================================================================
# CACHE001 — cache-key completeness (the PR 7 fast_path aliasing class)
# ======================================================================
SPEC_OK = '''\
import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class SessionSpec:
    program: str
    noise_seed: int = 0
    fast_path: bool = True
    label: str = ""
    cacheable: bool = True

    def content_key(self) -> str:
        digest = hashlib.sha256()
        digest.update(
            repr((self.program, self.noise_seed, self.fast_path)).encode()
        )
        return digest.hexdigest()
'''

# The PR 7 bug, re-introduced: fast_path exists but never reaches the digest.
SPEC_MISSING_FAST_PATH = SPEC_OK.replace(", self.fast_path", "")


class TestCache001:
    def test_regression_pr7_missing_fast_path_is_flagged(self, tmp_path):
        write_tree(tmp_path, {"batch.py": SPEC_MISSING_FAST_PATH})
        result = lint_tree(tmp_path, config=fixture_config())
        assert codes(result) == ["CACHE001"]
        (finding,) = result.findings
        assert "fast_path" in finding.message
        assert "content_key" in finding.message
        # Anchored at the field declaration, not the whole class.
        assert finding.line == 9

    def test_complete_key_is_clean(self, tmp_path):
        write_tree(tmp_path, {"batch.py": SPEC_OK})
        assert lint_tree(tmp_path, config=fixture_config()).ok

    def test_regression_pr7_on_the_real_batch_module(self, tmp_path):
        """Deleting the real batch.py's fast_path digest line must fire."""
        with open(
            os.path.join(REPO_ROOT, "src/repro/experiments/batch.py"),
            encoding="utf-8",
        ) as handle:
            source = handle.read()
        assert "self.fast_path,\n" in source
        broken = source.replace("self.fast_path,\n", "")
        write_tree(tmp_path, {"batch.py": broken})
        result = lint_tree(tmp_path)
        cache_findings = [f for f in result.findings if f.rule == "CACHE001"]
        assert len(cache_findings) == 1
        assert "fast_path" in cache_findings[0].message
        # The shipped (unmodified) module is clean.
        write_tree(tmp_path, {"batch.py": source})
        assert "CACHE001" not in codes(lint_tree(tmp_path))

    def test_missing_key_method_is_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "batch.py": (
                    "from dataclasses import dataclass\n\n"
                    "@dataclass\nclass SessionSpec:\n    program: str\n"
                )
            },
        )
        result = lint_tree(tmp_path, config=fixture_config())
        assert codes(result) == ["CACHE001"]
        assert "no content_key()" in result.findings[0].message

    def test_stale_exemption_is_flagged(self, tmp_path):
        config = fixture_config(
            CACHE001={"exempt-fields": ["label", "cacheable", "fast_path"]}
        )
        write_tree(tmp_path, {"batch.py": SPEC_OK})
        result = lint_tree(tmp_path, config=config)
        assert codes(result) == ["CACHE001"]
        assert "stale exemption" in result.findings[0].message

    def test_exempt_fields_do_not_fire(self, tmp_path):
        # label/cacheable are exempt by default and absent from the key.
        write_tree(tmp_path, {"batch.py": SPEC_OK})
        assert "CACHE001" not in codes(lint_tree(tmp_path))

    def test_suppression_applies_to_contract_findings(self, tmp_path):
        suppressed = SPEC_MISSING_FAST_PATH.replace(
            "    fast_path: bool = True",
            "    # repro: lint-ignore[CACHE001] demo waiver\n"
            "    fast_path: bool = True",
        )
        write_tree(tmp_path, {"batch.py": suppressed})
        result = lint_tree(tmp_path, config=fixture_config())
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["CACHE001"]


# ======================================================================
# WIRE003 — wire-schema drift vs. the version constant
# ======================================================================
WIRE_V2 = '''\
from dataclasses import dataclass

WIRE_FORMAT = 2


@dataclass(frozen=True)
class Job:
    index: int
    name: str
'''


def wire_config(tmp_path):
    return LintConfig(
        paths=(".",),
        rule_options={
            "WIRE003": {
                "schema-file": "wire-schema.json",
                "protocols": {
                    "demo": {
                        "version": "wire.py::WIRE_FORMAT",
                        "classes": ["wire.py::Job"],
                    }
                },
            }
        },
    )


class TestWire003:
    def seed(self, tmp_path, source=WIRE_V2):
        write_tree(tmp_path, {"wire.py": source})
        config = wire_config(tmp_path)
        update_wire_baseline(root=str(tmp_path), config=config)
        return config

    def test_missing_baseline_asks_for_snapshot(self, tmp_path):
        write_tree(tmp_path, {"wire.py": WIRE_V2})
        result = lint_tree(tmp_path, config=wire_config(tmp_path))
        assert codes(result) == ["WIRE003"]
        assert "--update-wire-baseline" in result.findings[0].message

    def test_unchanged_schema_is_clean(self, tmp_path):
        config = self.seed(tmp_path)
        assert lint_tree(tmp_path, config=config).ok

    def test_regression_unbumped_field_addition_is_flagged(self, tmp_path):
        """Adding a wire field without bumping WIRE_FORMAT must fire."""
        config = self.seed(tmp_path)
        write_tree(
            tmp_path, {"wire.py": WIRE_V2.replace(
                "    name: str", "    name: str\n    retries: int = 0"
            )}
        )
        result = lint_tree(tmp_path, config=config)
        assert codes(result) == ["WIRE003"]
        (finding,) = result.findings
        assert "WIRE_FORMAT is still 2" in finding.message
        assert "class Job" in finding.message
        assert finding.path == "wire.py"

    def test_bumped_change_asks_for_baseline_refresh(self, tmp_path):
        config = self.seed(tmp_path)
        changed = WIRE_V2.replace("WIRE_FORMAT = 2", "WIRE_FORMAT = 3").replace(
            "    name: str", "    name: str\n    retries: int = 0"
        )
        write_tree(tmp_path, {"wire.py": changed})
        result = lint_tree(tmp_path, config=config)
        assert codes(result) == ["WIRE003"]
        assert "was bumped" in result.findings[0].message
        # Refreshing the baseline settles the new shape as canonical.
        update_wire_baseline(root=str(tmp_path), config=config)
        assert lint_tree(tmp_path, config=config).ok

    def test_version_bump_without_schema_change_wants_refresh(self, tmp_path):
        config = self.seed(tmp_path)
        write_tree(
            tmp_path,
            {"wire.py": WIRE_V2.replace("WIRE_FORMAT = 2", "WIRE_FORMAT = 3")},
        )
        result = lint_tree(tmp_path, config=config)
        assert codes(result) == ["WIRE003"]
        assert "still records the old version" in result.findings[0].message

    def test_field_reorder_counts_as_drift(self, tmp_path):
        config = self.seed(tmp_path)
        write_tree(
            tmp_path,
            {"wire.py": WIRE_V2.replace(
                "    index: int\n    name: str", "    name: str\n    index: int"
            )},
        )
        result = lint_tree(tmp_path, config=config)
        assert codes(result) == ["WIRE003"]

    def test_dict_shape_functions_and_constants_fingerprint(self, tmp_path):
        files = {
            "api.py": (
                "SCHEMA_VERSION = 1\n"
                "COLUMNS = (\"id\", \"state\")\n\n"
                "def job_json(job):\n"
                "    return {\"id\": job.id, \"state\": job.state}\n"
            )
        }
        write_tree(tmp_path, files)
        config = LintConfig(
            paths=(".",),
            rule_options={
                "WIRE003": {
                    "schema-file": "wire-schema.json",
                    "protocols": {
                        "api": {
                            "version": "api.py::SCHEMA_VERSION",
                            "functions": ["api.py::job_json"],
                            "constants": ["api.py::COLUMNS"],
                        }
                    },
                }
            },
        )
        update_wire_baseline(root=str(tmp_path), config=config)
        assert lint_tree(tmp_path, config=config).ok
        # A new job_json key without a version bump is drift.
        files["api.py"] = files["api.py"].replace(
            '"state": job.state}', '"state": job.state, "extra": 1}'
        )
        write_tree(tmp_path, files)
        result = lint_tree(tmp_path, config=config)
        assert codes(result) == ["WIRE003"]
        assert "job_json()" in result.findings[0].message

    def test_partial_run_does_not_false_positive(self, tmp_path):
        config = self.seed(tmp_path)
        write_tree(tmp_path, {"other.py": "x = 1\n"})
        # Linting only other.py: wire.py is not in the model, so the
        # protocol is skipped rather than reported as "removed".
        result = lint_tree(tmp_path, config=config, paths=["other.py"])
        assert result.ok

    def test_committed_repo_wire_baseline_matches_the_tree(self):
        """The committed .repro-wire-schema.json is in sync with src/."""
        result = run_lint(root=REPO_ROOT)
        assert [f for f in result.findings if f.rule == "WIRE003"] == []


# ======================================================================
# CONC001 — check-then-use (TOCTOU)
# ======================================================================
class TestConc001:
    def test_exists_then_open_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "def read(path):\n"
                    "    if os.path.exists(path):\n"
                    "        with open(path) as handle:\n"
                    "            return handle.read()\n"
                    "    return None\n"
                )
            },
        )
        result = lint_tree(tmp_path)
        assert codes(result) == ["CONC001"]
        assert "TOCTOU" in result.findings[0].message

    def test_eafp_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    "def read(path):\n"
                    "    try:\n"
                    "        with open(path) as handle:\n"
                    "            return handle.read()\n"
                    "    except FileNotFoundError:\n"
                    "        return None\n"
                )
            },
        )
        assert lint_tree(tmp_path).ok

    def test_exists_guarded_use_inside_oserror_try_is_clean(self, tmp_path):
        # The sanctioned work-dir idiom: probe for cheap skip, but the
        # use itself tolerates losing the race.
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "def claim(path, dest):\n"
                    "    if os.path.exists(path):\n"
                    "        try:\n"
                    "            os.rename(path, dest)\n"
                    "        except OSError:\n"
                    "            return False\n"
                    "    return True\n"
                )
            },
        )
        assert lint_tree(tmp_path).ok

    def test_listdir_then_unlink_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "def reset(directory):\n"
                    "    for name in sorted(os.listdir(directory)):\n"
                    "        os.unlink(os.path.join(directory, name))\n"
                )
            },
        )
        result = lint_tree(tmp_path)
        assert codes(result) == ["CONC001"]
        assert "listdir" in result.findings[0].message

    def test_os_replace_is_not_a_flagged_use(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "def publish(tmp, final):\n"
                    "    if os.path.exists(tmp):\n"
                    "        os.replace(tmp, final)\n"
                )
            },
        )
        assert lint_tree(tmp_path).ok

    def test_unrelated_paths_do_not_pair(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "def read(a, b):\n"
                    "    if os.path.exists(a):\n"
                    "        with open(b) as handle:\n"
                    "            return handle.read()\n"
                )
            },
        )
        assert lint_tree(tmp_path).ok

    def test_shipped_work_dir_protocol_is_clean(self):
        """distrib.py's claim/rename protocol passes its own new rule."""
        result = run_lint(
            paths=["src/repro/experiments/distrib.py"], root=REPO_ROOT
        )
        assert [f for f in result.findings if f.rule == "CONC001"] == []


# ======================================================================
# CONC002 — lock-consistency
# ======================================================================
LOCKED_OK = '''\
import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = []

    def add(self, row):
        with self._lock:
            self._rows.append(row)

    def snapshot(self):
        with self._lock:
            return list(self._rows)
'''

LOCKED_BAD = LOCKED_OK.replace(
    "    def snapshot(self):\n        with self._lock:\n            return list(self._rows)",
    "    def snapshot(self):\n        return list(self._rows)",
)


class TestConc002:
    def test_unlocked_access_of_guarded_attr_fires(self, tmp_path):
        write_tree(tmp_path, {"store.py": LOCKED_BAD})
        result = lint_tree(tmp_path)
        assert codes(result) == ["CONC002"]
        (finding,) = result.findings
        assert "self._rows" in finding.message
        assert "snapshot()" in finding.message

    def test_consistent_locking_is_clean(self, tmp_path):
        write_tree(tmp_path, {"store.py": LOCKED_OK})
        assert lint_tree(tmp_path).ok

    def test_init_is_exempt(self, tmp_path):
        # __init__ touches _rows lock-free by construction; that is fine.
        write_tree(tmp_path, {"store.py": LOCKED_OK})
        result = lint_tree(tmp_path)
        assert "CONC002" not in codes(result)

    def test_lockless_class_is_skipped(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    "import queue\n\n"
                    "class Manager:\n"
                    "    def __init__(self):\n"
                    "        self._q = queue.Queue()\n"
                    "    def put(self, item):\n"
                    "        self._q.put(item)\n"
                    "    def get(self):\n"
                    "        return self._q.get()\n"
                )
            },
        )
        assert lint_tree(tmp_path).ok

    def test_shipped_job_store_is_lock_consistent(self):
        result = run_lint(paths=["src/repro/service"], root=REPO_ROOT)
        assert [f for f in result.findings if f.rule == "CONC002"] == []


# ======================================================================
# DET005 — Detector protocol conformance
# ======================================================================
DETECTORS_OK = '''\
from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class Verdict:
    detector: str
    trojan_likely: bool


class _FittedMixin:
    name = "detector"

    def fit(self, golden):
        self._golden = golden
        return self


class GoodDetector(_FittedMixin):
    name = "good"

    def score(self, suspect):
        return Verdict(detector=self.name, trojan_likely=False)


DETECTOR_CLASSES = {GoodDetector.name: GoodDetector}
'''


class TestDet005:
    def run(self, tmp_path, source):
        write_tree(tmp_path, {"protocol.py": source})
        config = fixture_config(
            DET005={"registry": "protocol.py::DETECTOR_CLASSES"}
        )
        return lint_tree(tmp_path, config=config)

    def test_conformant_registry_is_clean(self, tmp_path):
        assert self.run(tmp_path, DETECTORS_OK).ok

    def test_missing_score_fires(self, tmp_path):
        broken = DETECTORS_OK.replace(
            "    def score(self, suspect):\n"
            "        return Verdict(detector=self.name, trojan_likely=False)\n",
            "    pass\n",
        )
        result = self.run(tmp_path, broken)
        assert codes(result) == ["DET005"]
        assert "no score()" in result.findings[0].message

    def test_drifted_signature_fires(self, tmp_path):
        drifted = DETECTORS_OK.replace(
            "def score(self, suspect):", "def score(self, suspect, threshold):"
        )
        result = self.run(tmp_path, drifted)
        assert codes(result) == ["DET005"]
        assert "(self, suspect)" in result.findings[0].message

    def test_non_verdict_return_fires(self, tmp_path):
        wrong = DETECTORS_OK.replace(
            "        return Verdict(detector=self.name, trojan_likely=False)",
            "        return {\"detector\": self.name}",
        )
        result = self.run(tmp_path, wrong)
        assert codes(result) == ["DET005"]
        assert "Verdict" in result.findings[0].message

    def test_missing_name_fires(self, tmp_path):
        nameless = DETECTORS_OK.replace('    name = "good"\n', "").replace(
            '    name = "detector"\n\n', ""
        ).replace(
            "DETECTOR_CLASSES = {GoodDetector.name: GoodDetector}",
            'DETECTOR_CLASSES = {"good": GoodDetector}',
        ).replace(
            "return Verdict(detector=self.name, trojan_likely=False)",
            'return Verdict(detector="good", trojan_likely=False)',
        )
        result = self.run(tmp_path, nameless)
        assert codes(result) == ["DET005"]
        assert "`name`" in result.findings[0].message

    def test_fit_resolves_through_bases(self, tmp_path):
        # GoodDetector has no own fit(); the mixin's counts.
        assert self.run(tmp_path, DETECTORS_OK).ok

    def test_shipped_detector_registry_conforms(self):
        result = run_lint(paths=["src/repro/detection"], root=REPO_ROOT)
        assert [f for f in result.findings if f.rule == "DET005"] == []


# ======================================================================
# LINT000 — unknown rule ids in suppressions
# ======================================================================
class TestLint000:
    def test_unknown_code_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {"mod.py": "x = 1  # repro: lint-ignore[DET0XX] typo'd waiver\n"},
        )
        result = lint_tree(tmp_path)
        assert codes(result) == ["LINT000"]
        assert "DET0XX" in result.findings[0].message

    def test_known_codes_do_not_fire(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    "import time\n"
                    "t = time.time()  # repro: lint-ignore[DET003] measured\n"
                )
            },
        )
        assert lint_tree(tmp_path).ok

    def test_contract_codes_are_known(self, tmp_path):
        write_tree(
            tmp_path,
            {"mod.py": "x = 1  # repro: lint-ignore[CACHE001, WIRE003] demo\n"},
        )
        assert lint_tree(tmp_path).ok

    def test_docstrings_describing_the_syntax_do_not_fire(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    '"""Suppress with ``# repro: lint-ignore[RULE]``."""\n'
                    "x = 1\n"
                )
            },
        )
        assert lint_tree(tmp_path).ok

    def test_star_is_known(self, tmp_path):
        write_tree(
            tmp_path,
            {"mod.py": "import time\nt = time.time()  # repro: lint-ignore[*] demo\n"},
        )
        assert lint_tree(tmp_path).ok


# ======================================================================
# Config validation — unknown keys/options fail loud
# ======================================================================
class TestConfigValidation:
    def test_unknown_top_level_key_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\npathz = [\"src\"]\n", encoding="utf-8"
        )
        with pytest.raises(LintConfigError) as excinfo:
            load_config(str(tmp_path))
        assert "pathz" in str(excinfo.value)
        assert "valid keys" in str(excinfo.value)

    def test_unknown_rule_option_raises_with_valid_options(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint.WIRE002]\nwire-allowlst = []\n", encoding="utf-8"
        )
        with pytest.raises(LintConfigError) as excinfo:
            load_config(str(tmp_path))
        message = str(excinfo.value)
        assert "wire-allowlst" in message
        assert "wire-allowlist" in message  # the valid spelling is offered

    def test_unknown_rule_table_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint.DET999]\ninclude = [\"src\"]\n", encoding="utf-8"
        )
        with pytest.raises(LintConfigError):
            load_config(str(tmp_path))

    def test_profile_unknown_disable_code_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint.profile.tests]\ndisable = [\"DET03\"]\n",
            encoding="utf-8",
        )
        with pytest.raises(LintConfigError) as excinfo:
            load_config(str(tmp_path))
        assert "DET03" in str(excinfo.value)

    def test_unknown_profile_name_at_run_time_raises(self, tmp_path):
        with pytest.raises(LintConfigError) as excinfo:
            run_lint(root=str(tmp_path), config=LintConfig(), profile="nope")
        assert "nope" in str(excinfo.value)

    def test_cli_exits_2_on_config_error(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\npathz = [\"src\"]\n", encoding="utf-8"
        )
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", "mod.py", "--root", str(tmp_path)]) == 2
        assert "lint config error" in capsys.readouterr().err

    def test_missing_pyproject_means_defaults(self, tmp_path):
        assert load_config(str(tmp_path)) == LintConfig()

    def test_repo_pyproject_validates(self):
        config = load_config(REPO_ROOT)
        assert config.paths == ("src", "scripts", "benchmarks")
        assert config.baseline == ".repro-lint-baseline.json"
        assert "tests" in config.profiles


# ======================================================================
# Profiles
# ======================================================================
class TestProfiles:
    def config(self):
        return LintConfig(
            paths=("src",),
            profiles={
                "tests": __import__(
                    "repro.analysis.lint", fromlist=["LintProfile"]
                ).LintProfile(paths=("tests",), disable=("DET003",))
            },
        )

    def test_profile_rescopes_paths_and_disables_rules(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/mod.py": "import time\nt = time.time()\n",
                "tests/test_mod.py": (
                    "import time\nimport pickle\n"
                    "def save(path, payload):\n"
                    "    t = time.time()\n"
                    "    with open(path, \"wb\") as handle:\n"
                    "        pickle.dump(payload, handle)\n"
                ),
            },
        )
        config = self.config()
        default = lint_tree(tmp_path, config=config)
        assert codes(default) == ["DET003"]
        profiled = lint_tree(tmp_path, config=config, profile="tests")
        # DET003 is disabled, WIRE001 stays on, and only tests/ is scanned.
        assert codes(profiled) == ["WIRE001", "WIRE001"]
        assert all(f.path.startswith("tests/") for f in profiled.findings)


# ======================================================================
# Baseline lifecycle — add, warn, resolve, stale, prune
# ======================================================================
BAD_MOD = "key = hash(name)\n"


def baseline_config():
    return LintConfig(paths=(".",), baseline="lint-baseline.json")


class TestBaselineLifecycle:
    def test_new_finding_fails_without_baseline(self, tmp_path):
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        result = lint_tree(tmp_path, config=baseline_config())
        assert not result.ok
        assert codes(result) == ["DET001"]

    def test_update_then_rerun_warns_instead_of_failing(self, tmp_path):
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        config = baseline_config()
        path, count = update_baseline(root=str(tmp_path), config=config)
        assert count == 1
        entries = json.loads(open(path, encoding="utf-8").read())["entries"]
        assert entries[0]["rule"] == "DET001"
        assert "TODO" in entries[0]["justification"]
        result = lint_tree(tmp_path, config=config)
        assert result.ok
        assert [f.rule for f, _ in result.baselined] == ["DET001"]
        assert "baselined" in render_text(result)

    def test_baselined_findings_carry_their_justification(self, tmp_path):
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        config = baseline_config()
        path, _ = update_baseline(root=str(tmp_path), config=config)
        data = json.loads(open(path, encoding="utf-8").read())
        data["entries"][0]["justification"] = "legacy key; tracked in #42"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        result = lint_tree(tmp_path, config=config)
        (pair,) = result.baselined
        assert pair[1].justification == "legacy key; tracked in #42"
        payload = json.loads(render_json(result))
        assert payload["baselined"][0]["justification"] == (
            "legacy key; tracked in #42"
        )

    def test_justification_survives_update(self, tmp_path):
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        config = baseline_config()
        path, _ = update_baseline(root=str(tmp_path), config=config)
        data = json.loads(open(path, encoding="utf-8").read())
        data["entries"][0]["justification"] = "kept on purpose"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        update_baseline(root=str(tmp_path), config=config)
        data = json.loads(open(path, encoding="utf-8").read())
        assert data["entries"][0]["justification"] == "kept on purpose"

    def test_new_finding_still_fails_alongside_baselined_one(self, tmp_path):
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        config = baseline_config()
        update_baseline(root=str(tmp_path), config=config)
        write_tree(tmp_path, {"other.py": "import time\nt = time.time()\n"})
        result = lint_tree(tmp_path, config=config)
        assert codes(result) == ["DET003"]  # the new one fails
        assert [f.rule for f, _ in result.baselined] == ["DET001"]

    def test_fixed_finding_reports_stale_entry(self, tmp_path):
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        config = baseline_config()
        update_baseline(root=str(tmp_path), config=config)
        write_tree(
            tmp_path,
            {"mod.py": "import zlib\nkey = zlib.crc32(name.encode())\n"},
        )
        result = lint_tree(tmp_path, config=config)
        assert result.ok  # stale entries warn, they do not fail
        assert [entry.rule for entry in result.stale_baseline] == ["DET001"]
        assert "stale baseline entry" in render_text(result)

    def test_update_prunes_stale_entries(self, tmp_path):
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        config = baseline_config()
        path, _ = update_baseline(root=str(tmp_path), config=config)
        write_tree(tmp_path, {"mod.py": "x = 1\n"})
        _, count = update_baseline(root=str(tmp_path), config=config)
        assert count == 0
        assert json.loads(open(path, encoding="utf-8").read())["entries"] == []

    def test_malformed_baseline_fails_loud(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "x = 1\n"})
        (tmp_path / "lint-baseline.json").write_text("[]", encoding="utf-8")
        with pytest.raises(LintConfigError):
            lint_tree(tmp_path, config=baseline_config())

    def test_update_baseline_requires_configured_path(self, tmp_path):
        with pytest.raises(LintConfigError):
            update_baseline(root=str(tmp_path), config=LintConfig(paths=(".",)))

    def test_cli_update_baseline_round_trip(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\n"
            'paths = ["."]\n'
            'baseline = "lint-baseline.json"\n',
            encoding="utf-8",
        )
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        assert main(["lint", "--root", str(tmp_path)]) == 1
        assert main(["lint", "--root", str(tmp_path), "--update-baseline"]) == 0
        assert main(["lint", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out


# ======================================================================
# SARIF 2.1.0 output
# ======================================================================
class TestSarif:
    def test_document_shape(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": (
                    "import time\n"
                    "a = hash(b)\n"
                    "t = time.time()  # repro: lint-ignore[DET003] measured\n"
                )
            },
        )
        result = lint_tree(tmp_path)
        document = json.loads(render_sarif_result(result))
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        # Both registries are described, contract rules included.
        assert {"DET001", "CACHE001", "WIRE003", "CONC001", "CONC002",
                "DET005", "LINT000"} <= rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]
        new = [r for r in run["results"] if r.get("baselineState") == "new"]
        (finding,) = new
        assert finding["ruleId"] == "DET001"
        assert finding["level"] == "error"
        location = finding["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "mod.py"
        assert location["region"]["startLine"] == 2
        assert location["region"]["startColumn"] >= 1
        notes = [r for r in run["results"] if r["level"] == "note"]
        (note,) = notes
        assert note["suppressions"][0]["kind"] == "inSource"

    def test_baselined_findings_are_warnings_with_unchanged_state(
        self, tmp_path
    ):
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        config = baseline_config()
        update_baseline(root=str(tmp_path), config=config)
        result = lint_tree(tmp_path, config=config)
        document = json.loads(render_sarif_result(result))
        (entry,) = document["runs"][0]["results"]
        assert entry["level"] == "warning"
        assert entry["baselineState"] == "unchanged"
        assert "baselined" in entry["message"]["text"]

    def test_cli_writes_sarif_file(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": BAD_MOD})
        out = tmp_path / "lint.sarif"
        code = main(
            ["lint", "mod.py", "--root", str(tmp_path), "--sarif", str(out)]
        )
        assert code == 1  # findings still fail the run
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"]


# ======================================================================
# Catalog / registry coherence
# ======================================================================
def test_contract_rules_are_in_the_catalog():
    catalog = rule_catalog()
    for code, cls in CONTRACTS_BY_CODE.items():
        assert code in catalog
        assert cls.summary in catalog
        assert "contract rule (cross-file)" in catalog
        assert cls.rationale and cls.fix and cls.name
