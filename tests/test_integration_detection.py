"""End-to-end detection: Flaw3D Trojans caught, clean prints pass."""

import pytest

from repro.analysis.drift import drift_between
from repro.detection.comparator import CaptureComparator
from repro.detection.realtime import StreamingDetector
from repro.experiments.runner import PrintSession, run_print
from repro.gcode.transforms.flaw3d import apply_reduction, apply_relocation


@pytest.fixture(scope="module")
def comparator():
    return CaptureComparator()


@pytest.fixture(scope="module")
def reduction_half(tiny_program):
    return run_print(apply_reduction(tiny_program, 0.5), noise_sigma=0.0005, noise_seed=21)


@pytest.fixture(scope="module")
def reduction_stealthy(tiny_program):
    return run_print(apply_reduction(tiny_program, 0.98), noise_sigma=0.0005, noise_seed=22)


@pytest.fixture(scope="module")
def relocation_20(tiny_program):
    return run_print(apply_relocation(tiny_program, 20), noise_sigma=0.0005, noise_seed=23)


class TestGoldenVsControl:
    def test_no_false_positive(self, comparator, tiny_golden_noisy, tiny_control_noisy):
        report = comparator.compare_captures(
            tiny_golden_noisy.capture, tiny_control_noisy.capture
        )
        assert not report.trojan_likely

    def test_drift_below_margin(self, tiny_golden_noisy, tiny_control_noisy):
        stats = drift_between(
            tiny_golden_noisy.capture.transactions,
            tiny_control_noisy.capture.transactions,
        )
        assert stats.within_margin(5.0)
        assert stats.final_totals_equal


class TestReductionDetection:
    def test_gross_reduction_floods_mismatches(
        self, comparator, tiny_golden_noisy, reduction_half
    ):
        report = comparator.compare_captures(
            tiny_golden_noisy.capture, reduction_half.capture
        )
        assert report.trojan_likely
        assert report.mismatch_count > 10
        assert report.final_check_failed
        assert any(m.column == "E" for m in report.mismatches)

    def test_stealthy_reduction_caught_by_final_check(
        self, comparator, tiny_golden_noisy, reduction_stealthy
    ):
        report = comparator.compare_captures(
            tiny_golden_noisy.capture, reduction_stealthy.capture
        )
        assert report.trojan_likely
        assert report.final_check_failed  # the 0% margin is what catches 2%

    def test_reduction_starves_the_part(self, tiny_golden_noisy, reduction_half):
        golden_e = tiny_golden_noisy.plant.trace.total_extruded_mm
        trojan_e = reduction_half.plant.trace.total_extruded_mm
        assert trojan_e / golden_e == pytest.approx(0.5, abs=0.08)


class TestRelocationDetection:
    def test_relocation_flagged_with_equal_totals(
        self, comparator, tiny_golden_noisy, relocation_20
    ):
        report = comparator.compare_captures(
            tiny_golden_noisy.capture, relocation_20.capture
        )
        assert report.trojan_likely
        assert report.mismatch_count > 0
        # Relocation conserves filament: the final E totals match.
        golden_final = tiny_golden_noisy.capture.final
        suspect_final = relocation_20.capture.final
        assert golden_final.e == suspect_final.e

    def test_relocation_shifts_timeline_on_xy(
        self, comparator, tiny_golden_noisy, relocation_20
    ):
        report = comparator.compare_captures(
            tiny_golden_noisy.capture, relocation_20.capture
        )
        assert any(m.column in ("X", "Y") for m in report.mismatches)


class TestRealtimeDetection:
    def test_streaming_alarm_fires_mid_print(self, tiny_golden_noisy, tiny_program):
        trojaned = apply_reduction(tiny_program, 0.5)
        session = PrintSession(trojaned)
        alarms = []
        StreamingDetector(
            tiny_golden_noisy.capture.transactions,
            session.uart_bus,
            on_alarm=alarms.append,
        )
        result = session.run()
        assert alarms, "streaming detector never alarmed"
        # The alarm arrived before the print ended (early abort opportunity).
        assert alarms[0].index < len(result.capture)

    def test_streaming_detector_can_abort_print(self, tiny_golden_noisy, tiny_program):
        trojaned = apply_reduction(tiny_program, 0.5)
        session = PrintSession(trojaned)
        StreamingDetector(
            tiny_golden_noisy.capture.transactions,
            session.uart_bus,
            on_alarm=lambda m: session.firmware.kill("Trojan suspected (detector abort)"),
        )
        result = session.run()
        assert result.killed
        assert "Trojan suspected" in result.kill_reason

    def test_streaming_quiet_on_clean_print(self, tiny_golden_noisy, tiny_program):
        session = PrintSession(tiny_program)
        alarms = []
        StreamingDetector(
            tiny_golden_noisy.capture.transactions,
            session.uart_bus,
            on_alarm=alarms.append,
        )
        session.run()
        assert alarms == []
