"""dr0wned-style edit tests: void insertion and scaling."""

import pytest

from repro.errors import GcodeError
from repro.gcode.parser import parse_program
from repro.gcode.transforms.edits import insert_void, scale_moves

PROGRAM = """G92 E0
G1 X10 Y10 Z1 E1 F1800
G1 X20 Y10 E2
G1 X30 Y10 E3
G1 X40 Y10 E4
"""


class TestInsertVoid:
    def test_starves_moves_in_region(self):
        program = parse_program(PROGRAM)
        out = insert_void(program, (15, 5, 0, 35, 15, 2))
        # moves ending at x=20 and x=30 are inside; x=10 and x=40 are not
        assert out.total_extrusion_mm() == pytest.approx(2.0)

    def test_path_still_fully_traced(self):
        program = parse_program(PROGRAM)
        out = insert_void(program, (15, 5, 0, 35, 15, 2))
        xs = [cmd.get("X") for cmd in out.moves() if cmd.has("X")]
        # Moves are split at the region boundary (x=15 and x=35) but the
        # head still visits every original endpoint, in order.
        assert xs == [10, 15, 20, 30, 35, 40]

    def test_void_segments_marked_and_dry(self):
        program = parse_program(PROGRAM)
        out = insert_void(program, (15, 5, 0, 35, 15, 2))
        dry = [cmd for cmd in out.moves() if cmd.comment == "void"]
        assert len(dry) == 3  # one per crossing move
        assert all(not cmd.has("E") for cmd in dry)

    def test_partial_crossing_deposits_proportionally(self):
        program = parse_program("G92 E0\nG1 X0 Y10 Z1 F1800\nG1 X20 Y10 E2")
        # Region covers x in [10, 30]: exactly half the second move.
        out = insert_void(program, (10, 5, 0, 30, 15, 2))
        assert out.total_extrusion_mm() == pytest.approx(1.0, abs=1e-3)

    def test_e_chain_stays_consistent(self):
        program = parse_program(PROGRAM)
        out = insert_void(program, (15, 5, 0, 35, 15, 2))
        e_values = [cmd.get("E") for cmd in out.moves() if cmd.has("E")]
        assert e_values == sorted(e_values)  # still monotonic

    def test_region_outside_print_is_identity(self):
        program = parse_program(PROGRAM)
        out = insert_void(program, (100, 100, 100, 110, 110, 110))
        assert out.total_extrusion_mm() == pytest.approx(program.total_extrusion_mm())

    def test_z_bounds_respected(self):
        program = parse_program(PROGRAM)
        out = insert_void(program, (0, 0, 5, 100, 100, 6))  # z window above print
        assert out.total_extrusion_mm() == pytest.approx(4.0)

    def test_malformed_region_rejected(self):
        with pytest.raises(GcodeError):
            insert_void(parse_program(PROGRAM), (10, 0, 0, 5, 10, 10))


class TestScaleMoves:
    def test_scales_about_centroid(self):
        program = parse_program("G1 X0 Y0\nG1 X10 Y0\nG1 X10 Y10\nG1 X0 Y10")
        out = scale_moves(program, 0.5)
        xs = [cmd.get("X") for cmd in out.moves()]
        assert min(xs) == pytest.approx(2.5)
        assert max(xs) == pytest.approx(7.5)

    def test_explicit_center(self):
        program = parse_program("G1 X10 Y10")
        out = scale_moves(program, 2.0, center=(0, 0))
        assert list(out.moves())[0].get("X") == pytest.approx(20.0)

    def test_scale_preserves_e(self):
        program = parse_program("G92 E0\nG1 X10 Y10 E5")
        out = scale_moves(program, 0.9)
        assert list(out.moves())[0].get("E") == 5

    def test_invalid_scale(self):
        with pytest.raises(GcodeError):
            scale_moves(parse_program("G1 X1 Y1"), 0.0)

    def test_no_moves_rejected(self):
        with pytest.raises(GcodeError):
            scale_moves(parse_program("M104 S200"), 0.5)
