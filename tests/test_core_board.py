"""OFFRAMPS board and FPGA fabric tests."""

import pytest

from repro.core.board import JumperMode, OfframpsBoard, TrojanAction
from repro.core.fpga import FPGA_CLOCK_HZ, FpgaFabric, MAX_PROPAGATION_DELAY_NS
from repro.electronics.harness import SignalHarness
from repro.errors import OfframpsError


def _board(sim):
    harness = SignalHarness(sim)
    return harness, OfframpsBoard(sim, harness)


class TestFabric:
    def test_clock_constants(self):
        assert FPGA_CLOCK_HZ == 100_000_000
        assert MAX_PROPAGATION_DELAY_NS == pytest.approx(12.923)

    def test_quantize_rounds_up_to_tick(self, sim):
        fabric = FpgaFabric(sim)
        assert fabric.quantize(0) == 0
        assert fabric.quantize(1) == 10
        assert fabric.quantize(10) == 10
        assert fabric.quantize(11) == 20

    def test_forward_applies_delay(self, sim):
        fabric = FpgaFabric(sim)
        fired = []
        fabric.forward(lambda: fired.append(sim.now))
        sim.run()
        assert fired == [13]  # ceil(12.923)

    def test_at_next_tick(self, sim):
        fabric = FpgaFabric(sim)
        fired = []
        sim.schedule_at(15, lambda: fabric.at_next_tick(lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [20]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(OfframpsError):
            FpgaFabric(sim, propagation_delay_ns=-1)


class TestJumpers:
    def test_default_bypass(self, sim):
        harness, board = _board(sim)
        assert board.mode("X_STEP") is JumperMode.BYPASS
        harness.upstream("X_STEP").pulse()
        assert harness.downstream("X_STEP").pulse_count == 1

    def test_fpga_mode_forwards_with_delay(self, sim):
        harness, board = _board(sim)
        board.set_mode("X_STEP", JumperMode.FPGA)
        times = []
        harness.downstream("X_STEP").on_pulse(lambda w, t, width: times.append(t))
        sim.schedule_at(100, harness.upstream("X_STEP").pulse)
        sim.run()
        assert times == [113]

    def test_unknown_signal(self, sim):
        harness, board = _board(sim)
        with pytest.raises(OfframpsError):
            board.set_mode("NOPE", JumperMode.FPGA)

    def test_route_group(self, sim):
        harness, board = _board(sim)
        board.route_through_fpga(["X_STEP", "Y_STEP"])
        assert board.intercepted_signals() == ["X_STEP", "Y_STEP"]

    def test_return_to_bypass(self, sim):
        harness, board = _board(sim)
        board.set_mode("X_DIR", JumperMode.FPGA)
        board.set_mode("X_DIR", JumperMode.BYPASS)
        harness.upstream("X_DIR").drive(1)
        assert harness.downstream("X_DIR").value == 1


class TestTrojanMux:
    def test_drop_action(self, sim):
        harness, board = _board(sim)
        board.set_mode("E_STEP", JumperMode.FPGA)
        board.register_interceptor("E_STEP", lambda p, k, v, t: TrojanAction.drop())
        harness.upstream("E_STEP").pulse()
        sim.run()
        assert harness.downstream("E_STEP").pulse_count == 0
        assert board.events_dropped == 1

    def test_replace_action(self, sim):
        harness, board = _board(sim)
        board.set_mode("D9_FAN", JumperMode.FPGA)
        board.register_interceptor(
            "D9_FAN", lambda p, k, v, t: TrojanAction.replace(v * 0.5)
        )
        harness.upstream("D9_FAN").drive(0.8)
        sim.run()
        assert harness.downstream("D9_FAN").duty == pytest.approx(0.4)
        assert board.events_replaced == 1

    def test_pass_action_forwards(self, sim):
        harness, board = _board(sim)
        board.set_mode("D9_FAN", JumperMode.FPGA)
        board.register_interceptor("D9_FAN", lambda p, k, v, t: TrojanAction.passthrough())
        harness.upstream("D9_FAN").drive(0.8)
        sim.run()
        assert harness.downstream("D9_FAN").duty == pytest.approx(0.8)

    def test_first_non_pass_wins(self, sim):
        harness, board = _board(sim)
        board.set_mode("D9_FAN", JumperMode.FPGA)
        board.register_interceptor("D9_FAN", lambda p, k, v, t: None)
        board.register_interceptor("D9_FAN", lambda p, k, v, t: TrojanAction.replace(0.1))
        board.register_interceptor("D9_FAN", lambda p, k, v, t: TrojanAction.replace(0.9))
        harness.upstream("D9_FAN").drive(0.5)
        sim.run()
        assert harness.downstream("D9_FAN").duty == pytest.approx(0.1)

    def test_unregister(self, sim):
        harness, board = _board(sim)
        board.set_mode("D9_FAN", JumperMode.FPGA)
        handler = lambda p, k, v, t: TrojanAction.drop()  # noqa: E731
        board.register_interceptor("D9_FAN", handler)
        board.unregister_interceptor("D9_FAN", handler)
        harness.upstream("D9_FAN").drive(0.5)
        sim.run()
        assert harness.downstream("D9_FAN").duty == pytest.approx(0.5)


class TestInjection:
    def test_inject_pulse(self, sim):
        harness, board = _board(sim)
        board.inject_pulse("X_STEP")
        assert harness.downstream("X_STEP").pulse_count == 1
        assert harness.upstream("X_STEP").pulse_count == 0  # Arduino never saw it

    def test_inject_level(self, sim):
        harness, board = _board(sim)
        board.inject_level("X_EN", 1)
        assert harness.downstream("X_EN").value == 1

    def test_inject_duty(self, sim):
        harness, board = _board(sim)
        board.inject_level("D10_HOTEND", 1.0)
        assert harness.downstream("D10_HOTEND").duty == 1.0

    def test_inject_pulse_on_level_signal_rejected(self, sim):
        harness, board = _board(sim)
        with pytest.raises(OfframpsError):
            board.inject_pulse("X_DIR")

    def test_inject_level_on_step_signal_rejected(self, sim):
        harness, board = _board(sim)
        with pytest.raises(OfframpsError):
            board.inject_level("X_STEP", 1)

    def test_injection_counted(self, sim):
        harness, board = _board(sim)
        board.inject_pulse("X_STEP")
        board.inject_level("X_EN", 1)
        assert board.events_injected == 2

    def test_downstream_level_readback(self, sim):
        harness, board = _board(sim)
        board.inject_level("D9_FAN", 0.7)
        assert board.downstream_level("D9_FAN") == pytest.approx(0.7)
