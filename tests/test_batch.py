"""BatchRunner tests: spec keying, dedup, cache, failure isolation, parity."""

import pickle

import pytest

from repro.experiments.batch import (
    BatchRunner,
    GoldenPrintCache,
    execute_spec,
    failure_summary,
    run_sessions,
    shared_cache,
    summarize_result,
)
from repro.firmware.marlin import PrinterStatus


@pytest.fixture
def spec(spec_factory):
    """This module's historical defaults: a noisy print of the tiny coupon."""
    return spec_factory(noise_sigma=0.0005, noise_seed=11)


class TestSessionSpecKeys:
    def test_key_is_stable(self, spec):
        assert spec().content_key() == spec().content_key()

    def test_key_changes_with_physics_fields(self, spec):
        base = spec().content_key()
        assert spec(noise_seed=12).content_key() != base
        assert spec(uart_period_ms=50).content_key() != base
        assert spec(trojan_id="T2").content_key() != base
        assert (
            spec(trojan_id="T2", trojan_params={"keep_fraction": 0.7}).content_key()
            != spec(trojan_id="T2").content_key()
        )

    def test_key_ignores_presentation_fields(self, spec):
        assert (
            spec(label="a", cacheable=True).content_key()
            == spec(label="b").content_key()
        )

    def test_key_changes_with_program(self, spec, standard_program):
        assert spec().content_key() != spec(program=standard_program).content_key()


class TestSummaryFidelity:
    def test_summary_matches_live_result(self, spec):
        one = spec(label="golden")
        result = execute_spec(one)
        summary = summarize_result(result, label="golden", spec_key=one.content_key())
        assert summary.status is result.status
        assert summary.completed == result.completed
        assert summary.final_counts == result.final_counts()
        assert summary.transactions == result.capture.transactions
        assert summary.capture.transactions == result.capture.transactions
        assert summary.trace is result.plant.trace
        assert summary.missed_steps == result.missed_steps

    def test_trojan_counters_harvested(self, spec):
        summary = run_sessions(
            [spec(trojan_id="T2", trojan_params={"keep_fraction": 0.5})]
        )[0]
        assert summary.trojan_id == "T2"
        assert summary.trojan_category == "PM"
        assert summary.trojan_stats.get("pulses_masked", 0) > 0


class TestBatchRunner:
    def test_serial_batch_preserves_order_and_labels(self, spec):
        specs = [
            spec(noise_seed=21, label="first"),
            spec(noise_seed=22, label="second"),
        ]
        summaries = run_sessions(specs)
        assert [s.label for s in summaries] == ["first", "second"]
        assert all(s.completed for s in summaries)
        assert summaries[0].transactions != summaries[1].transactions

    def test_identical_specs_deduplicated(self, spec):
        cache = GoldenPrintCache()
        specs = [
            spec(label="a", cacheable=True),
            spec(label="b", cacheable=True),
        ]
        summaries = BatchRunner(workers=1, cache=cache).run(specs)
        assert len(cache) == 1  # computed once
        assert summaries[0].transactions == summaries[1].transactions
        assert [s.label for s in summaries] == ["a", "b"]

    def test_cache_hit_across_batches(self, spec):
        cache = GoldenPrintCache()
        one = spec(cacheable=True)
        first = BatchRunner(workers=1, cache=cache).run([one])[0]
        assert cache.hits == 0
        second = BatchRunner(workers=1, cache=cache).run([one])[0]
        assert cache.hits == 1
        assert second.transactions == first.transactions

    def test_cache_participation_is_order_independent(self, spec):
        # Regression: a non-cacheable spec ahead of an identical cacheable
        # one used to suppress both cache lookup and population.
        cache = GoldenPrintCache()
        specs = [
            spec(label="plain", cacheable=False),
            spec(label="golden", cacheable=True),
        ]
        BatchRunner(workers=1, cache=cache).run(specs)
        assert len(cache) == 1  # populated despite the non-cacheable twin
        BatchRunner(workers=1, cache=cache).run(specs)
        assert cache.hits == 1  # and consulted on the next batch

    def test_uncacheable_specs_bypass_cache(self, spec):
        cache = GoldenPrintCache()
        BatchRunner(workers=1, cache=cache).run([spec(cacheable=False)])
        assert len(cache) == 0

    def test_cache_true_resolves_to_shared_cache(self):
        runner = BatchRunner(workers=1, cache=True)
        assert runner.cache is shared_cache()

    def test_parallel_matches_serial_exactly(self, spec):
        specs = [
            spec(noise_seed=31, label="golden"),
            spec(noise_seed=32, label="control"),
        ]
        serial = run_sessions(specs, workers=1)
        parallel = run_sessions(specs, workers=2)
        for s, p in zip(serial, parallel):
            assert s.transactions == p.transactions
            assert s.final_counts == p.final_counts
            assert s.status is p.status
            assert s.duration_s == p.duration_s
            assert s.events_dispatched == p.events_dispatched

    def test_timeout_propagates_through_batch(self, spec):
        summary = run_sessions([spec(timeout_s=1.0)])[0]
        assert summary.status is PrinterStatus.TIMED_OUT
        assert summary.timed_out
        assert not summary.completed

    def test_route_through_fpga_spec(self, spec):
        bypass, mitm = run_sessions(
            [
                spec(noise_sigma=0.0),
                spec(noise_sigma=0.0, route_all_through_fpga=True),
            ]
        )
        assert bypass.completed and mitm.completed
        assert bypass.final_counts == mitm.final_counts


class TestProgressCallback:
    """The per-completed-session hook distribution workers heartbeat from."""

    def test_serial_run_reports_each_session(self, spec):
        seen = []
        summaries = BatchRunner(workers=1).run(
            [spec(noise_seed=41), spec(noise_seed=42)], progress=seen.append
        )
        assert len(seen) == 2
        assert {s.spec_key for s in seen} == {s.spec_key for s in summaries}

    def test_parallel_run_reports_each_session(self, spec):
        seen = []
        summaries = BatchRunner(workers=2).run(
            [spec(noise_seed=43), spec(noise_seed=44)], progress=seen.append
        )
        assert len(seen) == 2
        assert {s.spec_key for s in seen} == {s.spec_key for s in summaries}

    def test_cache_hits_and_dedup_do_not_report(self, spec):
        cache = GoldenPrintCache()
        one = spec(cacheable=True, label="a")
        twin = spec(cacheable=True, label="b")
        runner = BatchRunner(workers=1, cache=cache)
        seen = []
        runner.run([one, twin], progress=seen.append)
        assert len(seen) == 1  # dedup: one execution, one progress tick
        seen.clear()
        runner.run([one], progress=seen.append)
        assert seen == []  # cache hit: nothing executed, nothing reported

    def test_failed_session_still_reports_progress(self, spec):
        seen = []
        BatchRunner(workers=1).run(
            [spec(trojan_id="T999", label="boom")], progress=seen.append
        )
        assert len(seen) == 1
        assert seen[0].failed


class TestFailureIsolation:
    """One raising session must not abandon its batch (or poison the cache)."""

    def test_serial_batch_survives_a_crashing_spec(self, spec):
        cache = GoldenPrintCache()
        specs = [
            spec(label="ok", cacheable=True),
            # An unknown trojan id raises inside execute_spec.
            spec(trojan_id="T999", label="boom", cacheable=True),
            spec(noise_seed=12, label="ok2", cacheable=True),
        ]
        summaries = BatchRunner(workers=1, cache=cache).run(specs)
        assert [s.label for s in summaries] == ["ok", "boom", "ok2"]
        assert summaries[0].completed and summaries[2].completed
        failed = summaries[1]
        assert failed.failed
        assert failed.status is PrinterStatus.FAILED
        assert "T999" in failed.error
        assert failed.transactions == []
        # Survivors are cached; the failure is not.
        assert len(cache) == 2
        assert cache.get(specs[1].content_key()) is None

    def test_parallel_batch_survives_a_crashing_spec(self, spec):
        specs = [
            spec(label="ok", cacheable=True),
            spec(trojan_id="T999", label="boom", cacheable=True),
            spec(noise_seed=12, label="ok2", cacheable=True),
        ]
        parallel = run_sessions(specs, workers=2)
        assert [s.label for s in parallel] == ["ok", "boom", "ok2"]
        assert parallel[1].failed and "T999" in parallel[1].error
        serial = run_sessions(specs, workers=1)
        for s, p in zip(serial, parallel):
            assert s.status is p.status
            assert s.transactions == p.transactions

    def test_failure_is_retried_on_the_next_batch(self, spec):
        cache = GoldenPrintCache()
        bad = spec(trojan_id="T999", cacheable=True)
        runner = BatchRunner(workers=1, cache=cache)
        assert runner.run([bad])[0].failed
        assert runner.run([bad])[0].failed
        assert cache.hits == 0  # a failure is never served from the cache

    def test_strict_mode_raises_after_caching_survivors(self, spec):
        from repro.errors import ReproError

        cache = GoldenPrintCache()
        specs = [
            spec(label="ok", cacheable=True),
            spec(trojan_id="T999", label="boom", cacheable=True),
        ]
        with pytest.raises(ReproError, match="boom.*T999"):
            run_sessions(specs, cache=cache, strict=True)
        # The survivor was still executed and cached before the raise.
        assert len(cache) == 1
        assert cache.get(specs[0].content_key()) is not None

    def test_strict_mode_is_silent_without_failures(self, spec):
        summaries = run_sessions([spec()], strict=True)
        assert summaries[0].completed

    def test_failure_summary_carries_spec_identity(self, spec):
        one = spec(trojan_id="T2", label="who")
        summary = failure_summary(one, ValueError("boom"))
        assert summary.label == "who"
        assert summary.spec_key == one.content_key()
        assert summary.trojan_id == "T2"
        assert summary.error == "ValueError: boom"
        assert not summary.completed and not summary.killed


class TestSummaryPickleBoundary:
    def test_capture_memo_is_not_serialized(self, spec):
        summary = run_sessions([spec()])[0]
        rebuilt = summary.capture  # builds the memo
        assert "_capture" in vars(summary)
        loaded = pickle.loads(pickle.dumps(summary))
        assert "_capture" not in vars(loaded)
        # The capture is rebuilt on demand from the serialized transactions.
        assert loaded.capture.transactions == rebuilt.transactions

    def test_memo_free_pickle_is_smaller(self, spec):
        summary = run_sessions([spec()])[0]
        without_memo = len(pickle.dumps(summary))
        _ = summary.capture
        with_memo_state = dict(vars(summary))  # what the old pickle shipped
        assert len(pickle.dumps(with_memo_state)) > without_memo

    def test_relabeled_copy_rebuilds_capture_independently(self, spec):
        summary = run_sessions([spec()])[0]
        _ = summary.capture
        clone = summary.relabeled("other")
        assert clone.capture.transactions == summary.capture.transactions
