"""BatchRunner tests: spec keying, dedup, cache, failure isolation, parity."""

import pickle

from repro.experiments.batch import (
    BatchRunner,
    GoldenPrintCache,
    SessionSpec,
    execute_spec,
    failure_summary,
    run_sessions,
    shared_cache,
    summarize_result,
)
from repro.firmware.marlin import PrinterStatus


def _spec(tiny_program, **overrides):
    defaults = dict(program=tiny_program, noise_sigma=0.0005, noise_seed=11)
    defaults.update(overrides)
    return SessionSpec(**defaults)


class TestSessionSpecKeys:
    def test_key_is_stable(self, tiny_program):
        assert _spec(tiny_program).content_key() == _spec(tiny_program).content_key()

    def test_key_changes_with_physics_fields(self, tiny_program):
        base = _spec(tiny_program).content_key()
        assert _spec(tiny_program, noise_seed=12).content_key() != base
        assert _spec(tiny_program, uart_period_ms=50).content_key() != base
        assert _spec(tiny_program, trojan_id="T2").content_key() != base
        assert (
            _spec(tiny_program, trojan_id="T2", trojan_params={"keep_fraction": 0.7}).content_key()
            != _spec(tiny_program, trojan_id="T2").content_key()
        )

    def test_key_ignores_presentation_fields(self, tiny_program):
        assert (
            _spec(tiny_program, label="a", cacheable=True).content_key()
            == _spec(tiny_program, label="b").content_key()
        )

    def test_key_changes_with_program(self, standard_program, tiny_program):
        assert _spec(tiny_program).content_key() != _spec(standard_program).content_key()


class TestSummaryFidelity:
    def test_summary_matches_live_result(self, tiny_program):
        spec = _spec(tiny_program, label="golden")
        result = execute_spec(spec)
        summary = summarize_result(result, label="golden", spec_key=spec.content_key())
        assert summary.status is result.status
        assert summary.completed == result.completed
        assert summary.final_counts == result.final_counts()
        assert summary.transactions == result.capture.transactions
        assert summary.capture.transactions == result.capture.transactions
        assert summary.trace is result.plant.trace
        assert summary.missed_steps == result.missed_steps

    def test_trojan_counters_harvested(self, tiny_program):
        spec = _spec(tiny_program, trojan_id="T2", trojan_params={"keep_fraction": 0.5})
        summary = run_sessions([spec])[0]
        assert summary.trojan_id == "T2"
        assert summary.trojan_category == "PM"
        assert summary.trojan_stats.get("pulses_masked", 0) > 0


class TestBatchRunner:
    def test_serial_batch_preserves_order_and_labels(self, tiny_program):
        specs = [
            _spec(tiny_program, noise_seed=21, label="first"),
            _spec(tiny_program, noise_seed=22, label="second"),
        ]
        summaries = run_sessions(specs)
        assert [s.label for s in summaries] == ["first", "second"]
        assert all(s.completed for s in summaries)
        assert summaries[0].transactions != summaries[1].transactions

    def test_identical_specs_deduplicated(self, tiny_program):
        cache = GoldenPrintCache()
        specs = [
            _spec(tiny_program, label="a", cacheable=True),
            _spec(tiny_program, label="b", cacheable=True),
        ]
        summaries = BatchRunner(workers=1, cache=cache).run(specs)
        assert len(cache) == 1  # computed once
        assert summaries[0].transactions == summaries[1].transactions
        assert [s.label for s in summaries] == ["a", "b"]

    def test_cache_hit_across_batches(self, tiny_program):
        cache = GoldenPrintCache()
        spec = _spec(tiny_program, cacheable=True)
        first = BatchRunner(workers=1, cache=cache).run([spec])[0]
        assert cache.hits == 0
        second = BatchRunner(workers=1, cache=cache).run([spec])[0]
        assert cache.hits == 1
        assert second.transactions == first.transactions

    def test_cache_participation_is_order_independent(self, tiny_program):
        # Regression: a non-cacheable spec ahead of an identical cacheable
        # one used to suppress both cache lookup and population.
        cache = GoldenPrintCache()
        specs = [
            _spec(tiny_program, label="plain", cacheable=False),
            _spec(tiny_program, label="golden", cacheable=True),
        ]
        BatchRunner(workers=1, cache=cache).run(specs)
        assert len(cache) == 1  # populated despite the non-cacheable twin
        BatchRunner(workers=1, cache=cache).run(specs)
        assert cache.hits == 1  # and consulted on the next batch

    def test_uncacheable_specs_bypass_cache(self, tiny_program):
        cache = GoldenPrintCache()
        spec = _spec(tiny_program, cacheable=False)
        BatchRunner(workers=1, cache=cache).run([spec])
        assert len(cache) == 0

    def test_cache_true_resolves_to_shared_cache(self, tiny_program):
        runner = BatchRunner(workers=1, cache=True)
        assert runner.cache is shared_cache()

    def test_parallel_matches_serial_exactly(self, tiny_program):
        specs = [
            _spec(tiny_program, noise_seed=31, label="golden"),
            _spec(tiny_program, noise_seed=32, label="control"),
        ]
        serial = run_sessions(specs, workers=1)
        parallel = run_sessions(specs, workers=2)
        for s, p in zip(serial, parallel):
            assert s.transactions == p.transactions
            assert s.final_counts == p.final_counts
            assert s.status is p.status
            assert s.duration_s == p.duration_s
            assert s.events_dispatched == p.events_dispatched

    def test_timeout_propagates_through_batch(self, tiny_program):
        summary = run_sessions([_spec(tiny_program, timeout_s=1.0)])[0]
        assert summary.status is PrinterStatus.TIMED_OUT
        assert summary.timed_out
        assert not summary.completed

    def test_route_through_fpga_spec(self, tiny_program):
        bypass, mitm = run_sessions(
            [
                _spec(tiny_program, noise_sigma=0.0),
                _spec(tiny_program, noise_sigma=0.0, route_all_through_fpga=True),
            ]
        )
        assert bypass.completed and mitm.completed
        assert bypass.final_counts == mitm.final_counts


class TestFailureIsolation:
    """One raising session must not abandon its batch (or poison the cache)."""

    def test_serial_batch_survives_a_crashing_spec(self, tiny_program):
        cache = GoldenPrintCache()
        specs = [
            _spec(tiny_program, label="ok", cacheable=True),
            # An unknown trojan id raises inside execute_spec.
            _spec(tiny_program, trojan_id="T999", label="boom", cacheable=True),
            _spec(tiny_program, noise_seed=12, label="ok2", cacheable=True),
        ]
        summaries = BatchRunner(workers=1, cache=cache).run(specs)
        assert [s.label for s in summaries] == ["ok", "boom", "ok2"]
        assert summaries[0].completed and summaries[2].completed
        failed = summaries[1]
        assert failed.failed
        assert failed.status is PrinterStatus.FAILED
        assert "T999" in failed.error
        assert failed.transactions == []
        # Survivors are cached; the failure is not.
        assert len(cache) == 2
        assert cache.get(specs[1].content_key()) is None

    def test_parallel_batch_survives_a_crashing_spec(self, tiny_program):
        specs = [
            _spec(tiny_program, label="ok", cacheable=True),
            _spec(tiny_program, trojan_id="T999", label="boom", cacheable=True),
            _spec(tiny_program, noise_seed=12, label="ok2", cacheable=True),
        ]
        parallel = run_sessions(specs, workers=2)
        assert [s.label for s in parallel] == ["ok", "boom", "ok2"]
        assert parallel[1].failed and "T999" in parallel[1].error
        serial = run_sessions(specs, workers=1)
        for s, p in zip(serial, parallel):
            assert s.status is p.status
            assert s.transactions == p.transactions

    def test_failure_is_retried_on_the_next_batch(self, tiny_program):
        cache = GoldenPrintCache()
        bad = _spec(tiny_program, trojan_id="T999", cacheable=True)
        runner = BatchRunner(workers=1, cache=cache)
        assert runner.run([bad])[0].failed
        assert runner.run([bad])[0].failed
        assert cache.hits == 0  # a failure is never served from the cache

    def test_strict_mode_raises_after_caching_survivors(self, tiny_program):
        import pytest

        from repro.errors import ReproError

        cache = GoldenPrintCache()
        specs = [
            _spec(tiny_program, label="ok", cacheable=True),
            _spec(tiny_program, trojan_id="T999", label="boom", cacheable=True),
        ]
        with pytest.raises(ReproError, match="boom.*T999"):
            run_sessions(specs, cache=cache, strict=True)
        # The survivor was still executed and cached before the raise.
        assert len(cache) == 1
        assert cache.get(specs[0].content_key()) is not None

    def test_strict_mode_is_silent_without_failures(self, tiny_program):
        summaries = run_sessions([_spec(tiny_program)], strict=True)
        assert summaries[0].completed

    def test_failure_summary_carries_spec_identity(self, tiny_program):
        spec = _spec(tiny_program, trojan_id="T2", label="who")
        summary = failure_summary(spec, ValueError("boom"))
        assert summary.label == "who"
        assert summary.spec_key == spec.content_key()
        assert summary.trojan_id == "T2"
        assert summary.error == "ValueError: boom"
        assert not summary.completed and not summary.killed


class TestSummaryPickleBoundary:
    def test_capture_memo_is_not_serialized(self, tiny_program):
        summary = run_sessions([_spec(tiny_program)])[0]
        rebuilt = summary.capture  # builds the memo
        assert "_capture" in vars(summary)
        loaded = pickle.loads(pickle.dumps(summary))
        assert "_capture" not in vars(loaded)
        # The capture is rebuilt on demand from the serialized transactions.
        assert loaded.capture.transactions == rebuilt.transactions

    def test_memo_free_pickle_is_smaller(self, tiny_program):
        summary = run_sessions([_spec(tiny_program)])[0]
        without_memo = len(pickle.dumps(summary))
        _ = summary.capture
        with_memo_state = dict(vars(summary))  # what the old pickle shipped
        assert len(pickle.dumps(with_memo_state)) > without_memo

    def test_relabeled_copy_rebuilds_capture_independently(self, tiny_program):
        summary = run_sessions([_spec(tiny_program)])[0]
        _ = summary.capture
        clone = summary.relabeled("other")
        assert clone.capture.transactions == summary.capture.transactions
