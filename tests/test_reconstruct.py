"""Toolpath-reconstruction tests: IP recovery from captured signals."""

import pytest

from repro.analysis.reconstruct import (
    dimensional_error_mm,
    reconstruct_from_trace,
    reconstruct_from_transactions,
)
from repro.errors import DetectionError
from repro.experiments.runner import run_print


@pytest.fixture(scope="module")
def traced_print(tiny_program):
    """A tiny-coupon print with full signal tracing enabled."""
    return run_print(tiny_program, trace_signals=True)


class TestTraceReconstruction:
    def test_footprint_recovered(self, traced_print):
        part = reconstruct_from_trace(traced_print.tracer)
        # The tiny part is a 10 mm box; the outer perimeter is inset by half
        # an extrusion width (0.225 mm per side).
        error = dimensional_error_mm(part, 9.55, 9.55)
        assert error < 0.3, part.summary()

    def test_layer_structure_recovered(self, traced_print):
        part = reconstruct_from_trace(traced_print.tracer)
        assert part.layer_count == 3
        assert part.height_mm == pytest.approx(0.9, abs=0.05)

    def test_filament_use_recovered(self, traced_print):
        part = reconstruct_from_trace(traced_print.tracer)
        gross = traced_print.plant.trace.gross_extruded_mm
        assert part.extruded_mm == pytest.approx(gross, rel=0.05)

    def test_dense_point_cloud(self, traced_print):
        part = reconstruct_from_trace(traced_print.tracer)
        # One point per forward extruder step: thousands for even a coupon.
        assert len(part.deposition_points) > 2_000

    def test_summary_renders(self, traced_print):
        text = reconstruct_from_trace(traced_print.tracer).summary()
        assert "footprint" in text and "layers" in text

    def test_empty_trace_rejected(self):
        from repro.sim.trace import Tracer

        with pytest.raises(DetectionError):
            reconstruct_from_trace(Tracer())


class TestTransactionReconstruction:
    def test_coarse_footprint(self, traced_print):
        part = reconstruct_from_transactions(traced_print.capture.transactions)
        # 0.1 s windows at print speed sample every few mm: expect the right
        # scale, not precision.
        width, depth = part.footprint_mm
        assert 5.0 < width < 11.0
        assert 5.0 < depth < 11.0

    def test_layer_count_still_exact(self, traced_print):
        part = reconstruct_from_transactions(traced_print.capture.transactions)
        assert part.layer_count == 3

    def test_net_filament(self, traced_print):
        part = reconstruct_from_transactions(traced_print.capture.transactions)
        net = traced_print.plant.trace.total_extruded_mm
        assert part.extruded_mm == pytest.approx(net, rel=0.1)

    def test_trace_resolution_far_exceeds_transactions(self, traced_print):
        fine = reconstruct_from_trace(traced_print.tracer)
        coarse = reconstruct_from_transactions(traced_print.capture.transactions)
        # One point per extruder step vs one per 0.1 s window.
        assert len(fine.deposition_points) > 20 * len(coarse.deposition_points)
        # Both recover dimensions on this simple prismatic part.
        assert dimensional_error_mm(fine, 9.55, 9.55) < 0.3
        assert dimensional_error_mm(coarse, 9.55, 9.55) < 1.0

    def test_empty_rejected(self):
        with pytest.raises(DetectionError):
            reconstruct_from_transactions([])
