"""Heater controller tests: PID behaviour and thermal protection."""

import pytest

from repro.sim.time import S
from tests.conftest import build_bench


def _heated_bench(sim):
    harness, plant, ramps, firmware = build_bench(sim)
    firmware.power_on()
    return harness, plant, firmware


class TestPidControl:
    def test_reaches_and_holds_target(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        firmware.hotend.set_target(210.0)
        sim.run(until_ns=120 * S)
        assert plant.hotend_temp_c() == pytest.approx(210.0, abs=2.0)
        sim.run(until_ns=240 * S)
        assert plant.hotend_temp_c() == pytest.approx(210.0, abs=2.0)
        assert not firmware.hotend.killed

    def test_no_severe_overshoot(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        firmware.hotend.set_target(210.0)
        sim.run(until_ns=240 * S)
        assert plant.hotend.peak_temp_c < 225.0

    def test_bed_reaches_target(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        firmware.bed.set_target(60.0)
        sim.run(until_ns=120 * S)
        assert plant.bed_temp_c() == pytest.approx(60.0, abs=2.0)

    def test_target_zero_turns_heater_off(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        firmware.hotend.set_target(210.0)
        sim.run(until_ns=100 * S)
        firmware.hotend.set_target(0.0)
        sim.run(until_ns=101 * S)
        assert firmware.hotend.gate.duty == 0.0
        hot = plant.hotend_temp_c()
        sim.run(until_ns=200 * S)
        assert plant.hotend_temp_c() < hot

    def test_at_target_window(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        assert firmware.hotend.at_target()  # no target set
        firmware.hotend.set_target(210.0)
        assert not firmware.hotend.at_target()
        sim.run(until_ns=120 * S)
        assert firmware.hotend.at_target()

    def test_read_temp_matches_plant_within_adc_quantum(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        firmware.hotend.set_target(210.0)
        sim.run(until_ns=150 * S)
        assert firmware.hotend.read_temp_c() == pytest.approx(
            plant.hotend_temp_c(), abs=1.5
        )


class TestThermalProtection:
    def test_heating_failure_kills(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        # Sever the heater: intercept the gate signal and swallow updates.
        harness.path("D10_HOTEND").install_interceptor("test", lambda *args: None)
        firmware.hotend.set_target(210.0)
        sim.run(until_ns=60 * S)
        assert firmware.status.value == "killed"
        assert "Heating failed" in firmware.kill_reason

    def test_runaway_detected_after_reaching_target(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        firmware.hotend.set_target(210.0)
        sim.run(until_ns=120 * S)
        assert not firmware.hotend.killed
        # Now sever the heater: temp sags; runaway watchdog must fire.
        path = harness.path("D10_HOTEND")
        path.install_interceptor("test", lambda *args: None)
        path.downstream.drive(0.0)
        sim.run(until_ns=300 * S)
        assert firmware.status.value == "killed"
        assert "Thermal Runaway" in firmware.kill_reason

    def test_maxtemp_kills(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        # Force the physical heater full on, regardless of firmware commands.
        path = harness.path("D10_HOTEND")
        path.install_interceptor("test", lambda p, kind, value, t: p.downstream.drive(1.0))
        path.downstream.drive(1.0)
        firmware.hotend.set_target(210.0)
        sim.run(until_ns=300 * S)
        assert firmware.status.value == "killed"
        assert "MAXTEMP" in firmware.kill_reason

    def test_kill_zeroes_heater_gates(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        firmware.hotend.set_target(210.0)
        sim.run(until_ns=30 * S)
        firmware.kill("test kill")
        assert harness.upstream("D10_HOTEND").duty == 0.0
        assert harness.upstream("D8_BED").duty == 0.0

    def test_healthy_print_survives_long_tracking(self, sim):
        harness, plant, firmware = _heated_bench(sim)
        firmware.hotend.set_target(210.0)
        firmware.bed.set_target(60.0)
        sim.run(until_ns=500 * S)
        assert firmware.status.value != "killed"
