"""Scenario-registry and sweep-engine tests.

The scenario layer must compile to *exactly* the session specs the legacy
experiments hand-built (content-key equality is asserted, so cached golden
prints are shared between the old entry points and new sweeps), expand
named grids, score through the Detector protocol, and hit the persistent
golden cache on repeat sweeps.
"""

import pytest

from repro.detection.protocol import make_detector
from repro.errors import DetectionError, ReproError
from repro.experiments.batch import GoldenPrintCache, SessionSpec
from repro.experiments.scenario import (
    ATTACKS,
    CONTROL_SEED,
    GOLDEN_SEED,
    GRIDS,
    TROJAN_IDS,
    ScenarioSpec,
    clean_scenarios,
    compile_scenario,
    flaw3d_scenarios,
    get_attack,
    get_part,
    grid_names,
    grid_scenarios,
    part_names,
    part_program,
    register_program_part,
    run_scenarios,
    run_sweep,
)


class TestRegistries:
    def test_all_slicer_parts_registered(self):
        assert {"tiny", "standard", "table1", "dense"} <= set(part_names())

    def test_all_trojans_registered(self):
        assert TROJAN_IDS == tuple(f"T{i}" for i in range(1, 10))
        for trojan_id in TROJAN_IDS:
            attack = get_attack(trojan_id)
            assert attack.kind == "fpga"
            assert attack.trojan_id == trojan_id

    def test_flaw3d_and_dr0wned_attacks_registered(self):
        assert "flaw3d-reduction-0.98" in ATTACKS
        assert "flaw3d-relocation-100" in ATTACKS
        assert "dr0wned-void" in ATTACKS
        assert get_attack("dr0wned-void").kind == "gcode"

    def test_unknown_names_raise(self):
        with pytest.raises(ReproError):
            get_part("no-such-part")
        with pytest.raises(ReproError):
            get_attack("no-such-attack")
        with pytest.raises(ReproError):
            grid_scenarios("no-such-grid")

    def test_part_program_is_cached(self):
        assert part_program("tiny") is part_program("tiny")

    def test_register_program_part_is_content_keyed(self, tiny_program):
        name1 = register_program_part(tiny_program)
        name2 = register_program_part(tiny_program)
        assert name1 == name2
        assert part_program(name1) is tiny_program
        assert get_part(name1).shape is None

    def test_adhoc_parts_stay_out_of_grid_enumeration(self, tiny_program):
        # A caller-supplied workload (run_table2(program=...)) must never
        # silently inflate the default grids.
        name = register_program_part(tiny_program)
        assert name not in part_names()
        assert all(
            sc.part != name for sc in grid_scenarios("full")
        )

    def test_register_program_part_rejects_conflicting_reuse(
        self, tiny_program, standard_program
    ):
        name = register_program_part(tiny_program, name="conflict-test")
        assert register_program_part(tiny_program, name="conflict-test") == name
        with pytest.raises(ReproError):
            register_program_part(standard_program, name="conflict-test")
        with pytest.raises(ReproError):
            register_program_part(standard_program, name="tiny")  # built-in clash


class TestGrids:
    def test_expected_grids_registered(self):
        assert {"clean", "table1", "trojans", "flaw3d", "dr0wned", "full"} <= set(
            grid_names()
        )
        for name in grid_names():
            assert GRIDS[name].description

    def test_full_grid_crosses_every_trojan_with_every_part(self):
        scenarios = grid_scenarios("full")
        names = {sc.name for sc in scenarios}
        assert len(names) == len(scenarios)  # unique scenario names
        for part in part_names():
            for trojan_id in TROJAN_IDS:
                assert f"{trojan_id}@{part}" in names
        assert sum(1 for sc in scenarios if sc.attack is None) == len(part_names())
        assert any(sc.attack == "dr0wned-void" for sc in scenarios)
        assert sum(1 for sc in scenarios if (sc.attack or "").startswith("flaw3d")) >= 8

    def test_flaw3d_grid_uses_table2_seeds(self):
        scenarios = flaw3d_scenarios()
        assert [sc.seed for sc in scenarios] == [2000 + case for case in range(1, 9)]
        assert all(sc.part == "dense" for sc in scenarios)


class TestCompilation:
    def test_clean_scenario_compiles_to_cacheable_pair(self):
        golden, suspect = compile_scenario(clean_scenarios(parts=("tiny",))[0])
        assert golden.cacheable and suspect.cacheable
        assert golden.noise_seed == GOLDEN_SEED
        assert suspect.noise_seed == CONTROL_SEED
        assert golden.program is suspect.program

    def test_trojan_scenario_matches_legacy_table1_spec(self):
        # Content-key equality == the sweep shares cached sessions with the
        # legacy run_table1 path.
        from repro.experiments.table1 import table1_spec

        program = part_program("table1")
        for trojan_id in TROJAN_IDS:
            scenario = ScenarioSpec(
                name=f"{trojan_id}@table1",
                part="table1",
                attack=trojan_id,
                seed=42,
                noise_sigma=0.0,
            )
            golden, suspect = compile_scenario(scenario)
            assert suspect.content_key() == table1_spec(trojan_id, program).content_key()
            assert golden.content_key() == table1_spec(None, program).content_key()

    def test_flaw3d_scenario_matches_legacy_table2_spec(self):
        program = part_program("dense")
        scenario = flaw3d_scenarios()[0]  # case 1: reduction 0.5
        golden, suspect = compile_scenario(scenario)
        from repro.gcode.transforms.flaw3d import Flaw3dReduction

        legacy_golden = SessionSpec(
            program=program, noise_sigma=0.0005, noise_seed=GOLDEN_SEED,
            uart_period_ms=100, cacheable=True, fast_path=True,
        )
        legacy_suspect = SessionSpec(
            program=Flaw3dReduction(0.5).apply(program),
            noise_sigma=0.0005, noise_seed=2001, uart_period_ms=100, fast_path=True,
        )
        assert golden.content_key() == legacy_golden.content_key()
        assert suspect.content_key() == legacy_suspect.content_key()

    def test_noise_free_scenarios_share_goldens_regardless_of_seeds(self):
        a = ScenarioSpec(name="a", part="tiny", attack="T2", seed=1, noise_sigma=0.0)
        b = ScenarioSpec(
            name="b", part="tiny", attack="T5", seed=2, golden_seed=77, noise_sigma=0.0
        )
        assert compile_scenario(a)[0].content_key() == compile_scenario(b)[0].content_key()

    def test_dr0wned_void_removes_extrusion(self):
        program = part_program("tiny")
        golden, suspect = compile_scenario(
            ScenarioSpec(name="v", part="tiny", attack="dr0wned-void")
        )
        assert suspect.program.total_extrusion_mm() < program.total_extrusion_mm()

    def test_dr0wned_needs_a_shape(self, tiny_program):
        name = register_program_part(tiny_program)
        with pytest.raises(ReproError):
            compile_scenario(ScenarioSpec(name="v", part=name, attack="dr0wned-void"))


class TestDetectorProtocol:
    def test_registry_contents(self):
        from repro.detection.protocol import DETECTOR_CLASSES

        assert {"golden", "realtime", "sidechannel", "quality"} <= set(DETECTOR_CLASSES)
        with pytest.raises(DetectionError):
            make_detector("no-such-detector")

    def test_score_before_fit_raises(self):
        from types import SimpleNamespace

        suspect = SimpleNamespace(transactions=[object()], capture=None)
        with pytest.raises(DetectionError):
            make_detector("golden").score(suspect)

    def test_empty_suspect_capture_is_trojan_evidence(self):
        # A T6-style kill before homing never arms the exporter: zero
        # transactions must read as detection, not a comparison error.
        from types import SimpleNamespace

        from repro.core.capture import Transaction

        golden = SimpleNamespace(
            capture=None, transactions=[Transaction(1, 100, 100, 10, 50)]
        )
        suspect = SimpleNamespace(transactions=[])
        for name in ("golden", "sidechannel", "realtime"):
            verdict = make_detector(name).fit(golden).score(suspect)
            assert verdict.trojan_likely
            assert "no transactions" in verdict.detail
        # The golden verdict still carries a renderable DetectionReport
        # (experiments dereference .report unconditionally).
        report = make_detector("golden").fit(golden).score(suspect).report
        assert report.trojan_likely and report.final_check_failed
        assert "Trojan likely!" in report.render()


@pytest.mark.slow
class TestSweepEngine:
    @pytest.fixture(scope="class")
    def small_grid(self):
        return [
            ScenarioSpec(
                name="clean@tiny",
                part="tiny",
                attack=None,
                detectors=("golden", "realtime"),
                seed=CONTROL_SEED,
            ),
            ScenarioSpec(
                name="reduce0.5@tiny",
                part="tiny",
                attack="flaw3d-reduction-0.5",
                detectors=("golden", "realtime", "sidechannel"),
                seed=2001,
            ),
            ScenarioSpec(
                name="T2@tiny",
                part="tiny",
                attack="T2",
                detectors=("golden", "quality"),
                seed=42,
                noise_sigma=0.0,
            ),
        ]

    @pytest.fixture(scope="class")
    def sweep(self, small_grid):
        return run_sweep(small_grid, cache=GoldenPrintCache())

    def test_attacks_detected_and_no_false_positives(self, sweep):
        assert sweep.ok
        assert sweep.attacks_detected == 2
        assert sweep.false_positives == 0
        by_name = {o.scenario.name: o for o in sweep.outcomes}
        assert not by_name["clean@tiny"].detected
        assert by_name["reduce0.5@tiny"].verdicts["golden"].trojan_likely
        assert by_name["reduce0.5@tiny"].verdicts["realtime"].trojan_likely
        # The gross 50% reduction is exactly what a lossy side-channel can see.
        assert by_name["reduce0.5@tiny"].verdicts["sidechannel"].trojan_likely
        assert by_name["T2@tiny"].verdicts["quality"].trojan_likely

    def test_realtime_alarm_fires_mid_print(self, sweep):
        verdict = {o.scenario.name: o for o in sweep.outcomes}[
            "reduce0.5@tiny"
        ].verdicts["realtime"]
        assert verdict.trojan_likely
        assert 0.0 < verdict.score < 100.0  # alarm before the print finished

    def test_render_mentions_every_scenario_and_summary(self, sweep, small_grid):
        text = sweep.render()
        for scenario in small_grid:
            assert scenario.name in text
        assert "2/2 attacks detected" in text
        assert "0 false positives" in text

    def test_run_scenarios_pairs_summaries(self, small_grid):
        runs = run_scenarios(small_grid[:1], cache=GoldenPrintCache())
        assert len(runs) == 1
        assert runs[0].golden.completed and runs[0].suspect.completed
        assert runs[0].golden.transactions != runs[0].suspect.transactions

    def test_run_scenarios_is_strict_about_failed_sessions(self):
        # Callers of this API score summaries directly; a FAILED stub with
        # an empty capture would masquerade as a TROJAN verdict, so the
        # pre-failure-isolation contract (raise) is preserved here.
        from repro.experiments.scenario import AttackDef, register_attack

        snapshot = dict(ATTACKS)
        try:
            register_attack(
                AttackDef(
                    name="broken-for-strict",
                    kind="fpga",
                    trojan_id="T999",
                )
            )
            with pytest.raises(ReproError, match="T999"):
                run_scenarios(
                    [
                        ScenarioSpec(
                            name="broken@tiny",
                            part="tiny",
                            attack="broken-for-strict",
                            noise_sigma=0.0,
                        )
                    ]
                )
        finally:
            ATTACKS.clear()
            ATTACKS.update(snapshot)

    def test_second_sweep_with_same_cache_dir_resimulates_zero_goldens(
        self, small_grid, tmp_path_factory
    ):
        # The acceptance property: across *fresh* cache instances over the
        # same --cache-dir, every cacheable print (goldens + the clean
        # suspect) is served from disk on the second invocation.
        cache_dir = str(tmp_path_factory.mktemp("golden-cache"))
        first = run_sweep(small_grid, cache=GoldenPrintCache(directory=cache_dir))
        assert first.cache_misses > 0

        second_cache = GoldenPrintCache(directory=cache_dir)
        second = run_sweep(small_grid, cache=second_cache)
        assert second.cache_misses == 0
        assert second.cache_hits == first.cache_misses
        assert second_cache.disk_hits == first.cache_misses
        assert second.ok == first.ok
        # And the cached sessions are value-identical to the simulated ones.
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.golden.transactions == b.golden.transactions
            assert a.golden.final_counts == b.golden.final_counts
