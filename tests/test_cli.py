"""CLI tests: the slice → attack → print → detect workflow end to end."""

import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("cli")


@pytest.fixture(scope="module")
def gcode_path(workdir):
    path = os.path.join(workdir, "part.gcode")
    assert main(["slice", "--shape", "box", "--width", "10", "--depth", "10",
                 "--height", "0.9", "--out", path]) == 0
    return path


@pytest.fixture(scope="module")
def golden_csv(workdir, gcode_path):
    path = os.path.join(workdir, "golden.csv")
    assert main(["print", gcode_path, "--seed", "1", "--capture", path]) == 0
    return path


class TestSlice:
    def test_creates_parseable_gcode(self, gcode_path):
        from repro.gcode.parser import parse_file

        program = parse_file(gcode_path)
        assert program.count("G28") == 1
        assert program.count("G1") > 10

    def test_cylinder_shape(self, workdir):
        path = os.path.join(workdir, "cyl.gcode")
        assert main(["slice", "--shape", "cylinder", "--width", "12",
                     "--height", "0.6", "--out", path]) == 0
        assert os.path.exists(path)


class TestPrintAndDetect:
    def test_print_writes_capture(self, golden_csv):
        from repro.core.capture import load_capture_csv

        capture = load_capture_csv(golden_csv)
        assert len(capture) > 10

    def test_detect_clean_exits_zero(self, workdir, gcode_path, golden_csv):
        control = os.path.join(workdir, "control.csv")
        assert main(["print", gcode_path, "--seed", "2", "--capture", control]) == 0
        assert main(["detect", golden_csv, control]) == 0

    def test_attack_then_detect_exits_one(self, workdir, gcode_path, golden_csv, capsys):
        bad_gcode = os.path.join(workdir, "bad.gcode")
        bad_csv = os.path.join(workdir, "bad.csv")
        assert main(["attack", gcode_path, "--reduction", "0.5", "--out", bad_gcode]) == 0
        assert main(["print", bad_gcode, "--seed", "3", "--capture", bad_csv]) == 0
        assert main(["detect", golden_csv, bad_csv]) == 1
        assert "Trojan likely!" in capsys.readouterr().out

    def test_relocation_attack(self, workdir, gcode_path):
        out = os.path.join(workdir, "rel.gcode")
        assert main(["attack", gcode_path, "--relocation", "10", "--out", out]) == 0
        from repro.gcode.parser import parse_file

        program = parse_file(out)
        assert any(cmd.comment == "relocated filament" for cmd in program)

    def test_void_attack(self, workdir, gcode_path):
        out = os.path.join(workdir, "void.gcode")
        assert main(["attack", gcode_path, "--void", "95", "95", "0", "105",
                     "105", "1", "--out", out]) == 0
        from repro.gcode.parser import parse_file

        original = parse_file(gcode_path)
        voided = parse_file(out)
        assert voided.total_extrusion_mm() < original.total_extrusion_mm()


class TestSweep:
    def test_list_prints_grid_without_running(self, capsys):
        assert main(["sweep", "--grid", "full", "--list"]) == 0
        out = capsys.readouterr().out
        assert "T1@table1" in out
        assert "dr0wned" in out

    def test_list_respects_out_flag(self, workdir, capsys):
        path = os.path.join(workdir, "sweep-list.txt")
        assert main(["sweep", "--grid", "smoke", "--list", "--out", path]) == 0
        with open(path, encoding="utf-8") as handle:
            assert "flaw3d-reduction-0.5@tiny" in handle.read()

    def test_unknown_grid_is_error(self, capsys):
        assert main(["sweep", "--grid", "no-such-grid"]) == 2
        assert "unknown grid" in capsys.readouterr().err

    @pytest.mark.slow
    def test_smoke_sweep_end_to_end_with_persistent_cache(
        self, workdir, capsys
    ):
        cache_dir = os.path.join(workdir, "session-cache")
        csv_path = os.path.join(workdir, "sweep.csv")
        html_path = os.path.join(workdir, "sweep.html")
        assert main(
            ["sweep", "--grid", "smoke", "--cache-dir", cache_dir,
             "--csv", csv_path, "--html", html_path]
        ) == 0
        first = capsys.readouterr().out
        assert "2/2 attacks detected" in first
        assert "0 false positives" in first
        assert os.listdir(cache_dir)  # sessions persisted
        with open(csv_path, encoding="utf-8") as handle:
            assert handle.readline().startswith("scenario,part,attack")
        with open(html_path, encoding="utf-8") as handle:
            assert "<!DOCTYPE html>" in handle.readline()

        # Second invocation: every session is served from disk — the sweep
        # is incremental (suspects included, not just golden prints).
        assert main(["sweep", "--grid", "smoke", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second
        assert "0/5 unique sessions simulated" in second


class TestExperimentOptions:
    def test_shared_option_block_present_on_every_experiment(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, __import__("argparse")._SubParsersAction)
        )
        for name in ("table1", "table2", "figure4", "overhead", "drift",
                     "ablation", "sweep"):
            opts = {
                opt for action in sub.choices[name]._actions
                for opt in action.option_strings
            }
            assert {"--workers", "--no-cache", "--cache-dir", "--out"} <= opts

    def test_sweep_report_options_present(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, __import__("argparse")._SubParsersAction)
        )
        opts = {
            opt for action in sub.choices["sweep"]._actions
            for opt in action.option_strings
        }
        assert {"--csv", "--html", "--grid", "--list", "--hosts", "--work-dir"} <= opts

    def test_worker_command_present_with_distribution_options(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, __import__("argparse")._SubParsersAction)
        )
        assert "worker" in sub.choices
        opts = {
            opt for action in sub.choices["worker"]._actions
            for opt in action.option_strings
        }
        assert {"--cache-dir", "--id", "--poll-s", "--idle-timeout-s"} <= opts

    def test_worker_on_stopped_dir_exits_cleanly(self, workdir, capsys):
        from repro.experiments.distrib import WorkDir

        root = os.path.join(workdir, "stopped-workdir")
        WorkDir(root).stop()
        assert main(["worker", root, "--id", "w1"]) == 0
        assert "0 shard(s) executed" in capsys.readouterr().out


class TestParser:
    def test_missing_command_is_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_is_error(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
