"""Shared fixtures.

Expensive end-to-end artifacts (full simulated prints) are session-scoped so
the many integration tests that inspect them pay for each print exactly once.

The batch/distribution/sweep test modules share one spec/grid/dirs setup
(:func:`spec_factory`, :func:`tiny_grid`, :func:`sweep_env`) instead of each
re-rolling its own ``_spec`` helper and ``tmp_path / "cache"`` boilerplate.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import SessionResult, run_print
from repro.experiments.workloads import sliced_program, standard_part, tiny_part
from repro.firmware.config import MarlinConfig
from repro.gcode.ast import GcodeProgram
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulation kernel."""
    return Simulator()


@pytest.fixture(scope="session")
def tiny_program() -> GcodeProgram:
    """Sliced G-code for the 3-layer test coupon."""
    return sliced_program(tiny_part())


@pytest.fixture(scope="session")
def standard_program() -> GcodeProgram:
    """Sliced G-code for the 16 mm calibration square."""
    return sliced_program(standard_part())


@pytest.fixture(scope="session")
def tiny_golden(tiny_program) -> SessionResult:
    """One clean print of the tiny coupon (no noise, no Trojan)."""
    return run_print(tiny_program)


@pytest.fixture(scope="session")
def tiny_golden_noisy(tiny_program) -> SessionResult:
    """A clean tiny print with the time-noise model enabled."""
    return run_print(tiny_program, noise_sigma=0.0005, noise_seed=11)


@pytest.fixture(scope="session")
def tiny_control_noisy(tiny_program) -> SessionResult:
    """A second clean noisy print (an independent noise realization)."""
    return run_print(tiny_program, noise_sigma=0.0005, noise_seed=12)


@pytest.fixture(scope="session")
def spec_factory(tiny_program):
    """Factory of :class:`SessionSpec` makers over the tiny test coupon.

    ``spec_factory(**defaults)`` binds a module's preferred defaults once
    and returns a ``make(**overrides)`` callable, so each test file says
    what is *different* about its specs instead of repeating the whole
    constructor — e.g. ``spec = spec_factory(noise_sigma=0.0, cacheable=True)``
    then ``spec(label="a")``.
    """
    from repro.experiments.batch import SessionSpec

    def bind(**defaults):
        def make(**overrides):
            fields = dict(program=tiny_program)
            fields.update(defaults)
            fields.update(overrides)
            return SessionSpec(**fields)

        return make

    return bind


@pytest.fixture(scope="session")
def tiny_grid():
    """The seconds-long reference grid: two scenarios, four unique sessions.

    One clean baseline (golden + independent noise realization) and one T2
    attack (noise-free golden + trojaned suspect) on the tiny coupon — the
    smallest grid that still exercises attack & clean dispositions, two
    detector sets, and session dedup/caching. Treat it as read-only
    (concatenate, don't append).
    """
    from repro.experiments.scenario import CONTROL_SEED, ScenarioSpec

    return [
        ScenarioSpec(
            name="clean@tiny",
            part="tiny",
            attack=None,
            detectors=("golden", "realtime"),
            seed=CONTROL_SEED,
        ),
        ScenarioSpec(
            name="T2@tiny",
            part="tiny",
            attack="T2",
            detectors=("golden", "quality"),
            seed=42,
            noise_sigma=0.0,
        ),
    ]


class SweepEnv:
    """Per-test tmp cache/work directories, named on demand.

    De-duplicates the ``SessionCache(directory=str(tmp_path / "cache"))`` /
    ``str(tmp_path / "work")`` boilerplate of every sweep and distribution
    test; distinct names give distinct directories, repeated names share
    one (that's how warm-cache tests re-open "the same" cache dir).
    """

    def __init__(self, root) -> None:
        self.root = root

    def path(self, name: str) -> str:
        return str(self.root / name)

    def cache(self, name: str = "cache"):
        from repro.experiments.batch import SessionCache

        return SessionCache(directory=self.path(name))

    def work_dir(self, name: str = "work") -> str:
        return self.path(name)


@pytest.fixture
def sweep_env(tmp_path) -> SweepEnv:
    """A fresh :class:`SweepEnv` rooted in this test's ``tmp_path``."""
    return SweepEnv(tmp_path)


def build_bench(sim: Simulator, config: MarlinConfig = None):
    """A full machine bench (harness, plant, ramps, firmware) on ``sim``.

    Helper for tests that need to poke the stack below the session level.
    """
    from repro.electronics.harness import SignalHarness
    from repro.electronics.ramps import RampsBoard
    from repro.firmware.marlin import MarlinFirmware
    from repro.physics.printer import PrinterPlant

    harness = SignalHarness(sim)
    plant = PrinterPlant(sim)
    ramps = RampsBoard(sim, harness, plant)
    firmware = MarlinFirmware(sim, config or MarlinConfig(), harness)
    return harness, plant, ramps, firmware


def corrupt_file(path, data: bytes) -> None:
    """Overwrite ``path`` with raw bytes, deliberately non-atomically.

    Corruption-injection tests *simulate the torn write* WIRE001 exists
    to prevent, so the in-place write is the point — this helper is the
    one sanctioned place tests may do it.
    """
    # repro: lint-ignore[WIRE001, CONC001] simulating the torn write under test
    with open(path, "wb") as handle:
        handle.write(data)


def corrupt_pickle(path, payload) -> None:
    """Re-pickle ``payload`` over ``path`` in place (corruption injection).

    Used by tests that load a valid cache/wire envelope, damage one field
    (key, format version, shape), and write it straight back.
    """
    import pickle

    # repro: lint-ignore[WIRE001, CONC001] writing a deliberately damaged payload
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)  # repro: lint-ignore[WIRE001] damaged on purpose
