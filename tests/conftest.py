"""Shared fixtures.

Expensive end-to-end artifacts (full simulated prints) are session-scoped so
the many integration tests that inspect them pay for each print exactly once.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import SessionResult, run_print
from repro.experiments.workloads import sliced_program, standard_part, tiny_part
from repro.firmware.config import MarlinConfig
from repro.gcode.ast import GcodeProgram
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulation kernel."""
    return Simulator()


@pytest.fixture(scope="session")
def tiny_program() -> GcodeProgram:
    """Sliced G-code for the 3-layer test coupon."""
    return sliced_program(tiny_part())


@pytest.fixture(scope="session")
def standard_program() -> GcodeProgram:
    """Sliced G-code for the 16 mm calibration square."""
    return sliced_program(standard_part())


@pytest.fixture(scope="session")
def tiny_golden(tiny_program) -> SessionResult:
    """One clean print of the tiny coupon (no noise, no Trojan)."""
    return run_print(tiny_program)


@pytest.fixture(scope="session")
def tiny_golden_noisy(tiny_program) -> SessionResult:
    """A clean tiny print with the time-noise model enabled."""
    return run_print(tiny_program, noise_sigma=0.0005, noise_seed=11)


@pytest.fixture(scope="session")
def tiny_control_noisy(tiny_program) -> SessionResult:
    """A second clean noisy print (an independent noise realization)."""
    return run_print(tiny_program, noise_sigma=0.0005, noise_seed=12)


def build_bench(sim: Simulator, config: MarlinConfig = None):
    """A full machine bench (harness, plant, ramps, firmware) on ``sim``.

    Helper for tests that need to poke the stack below the session level.
    """
    from repro.electronics.harness import SignalHarness
    from repro.electronics.ramps import RampsBoard
    from repro.firmware.marlin import MarlinFirmware
    from repro.physics.printer import PrinterPlant

    harness = SignalHarness(sim)
    plant = PrinterPlant(sim)
    ramps = RampsBoard(sim, harness, plant)
    firmware = MarlinFirmware(sim, config or MarlinConfig(), harness)
    return harness, plant, ramps, firmware
