"""End-to-end integration: full sliced prints through the whole stack."""

import pytest

from repro.experiments.runner import PrintSession, run_print
from repro.physics.quality import compare_traces


class TestCleanPrint:
    def test_print_completes(self, tiny_golden):
        assert tiny_golden.completed
        assert tiny_golden.kill_reason is None

    def test_no_missed_steps_or_crashes(self, tiny_golden):
        assert tiny_golden.missed_steps == 0
        for axis in ("X", "Y", "Z"):
            assert tiny_golden.plant.axes[axis].crash_steps == 0

    def test_firmware_and_plant_agree_on_position(self, tiny_golden):
        for axis in ("X", "Y", "Z"):
            assert tiny_golden.plant.position_mm(axis) == pytest.approx(
                tiny_golden.firmware.state.position_mm[axis], abs=0.02
            )

    def test_deposited_layers_match_slicer(self, tiny_golden):
        layers = [layer for layer in tiny_golden.plant.trace.layers() if layer.extruded_mm > 0]
        assert len(layers) == 3  # 0.9mm / 0.3mm

    def test_layer_spacing_nominal(self, tiny_golden):
        spacings = tiny_golden.plant.trace.z_spacings()
        assert all(s == pytest.approx(0.3, abs=0.02) for s in spacings)

    def test_capture_produced(self, tiny_golden):
        assert len(tiny_golden.capture) > 20
        final = tiny_golden.capture.final
        assert final.e > 0

    def test_transactions_monotonic_in_e(self, tiny_golden):
        # E only ever advances net (retraction dips smaller than window sums).
        e_values = [t.e for t in tiny_golden.capture]
        assert e_values[-1] > e_values[0]

    def test_transaction_period_100ms(self, tiny_golden):
        times = [t.time_ns for t in tiny_golden.capture]
        deltas = {b - a for a, b in zip(times, times[1:])}
        assert deltas == {100_000_000}

    def test_tracker_counts_match_plant_position(self, tiny_golden):
        # counts are steps from home = absolute position in steps
        counts = tiny_golden.final_counts()
        plant = tiny_golden.plant
        assert counts["X"] == plant.axes["X"].position_steps
        assert counts["Y"] == plant.axes["Y"].position_steps
        assert counts["Z"] == plant.axes["Z"].position_steps

    def test_part_quality_nominal_against_itself(self, tiny_golden):
        report = compare_traces(tiny_golden.plant.trace, tiny_golden.plant.trace)
        assert report.nominal

    def test_fan_ran_during_print(self, tiny_golden):
        assert tiny_golden.plant.mean_fan_duty() > 0.1

    def test_heaters_off_at_end(self, tiny_golden):
        fw = tiny_golden.firmware
        assert fw.hotend.target_c == 0.0
        assert fw.bed.target_c == 0.0


class TestDeterminismAndNoise:
    def test_prints_are_deterministic_without_noise(self, tiny_program, tiny_golden):
        again = run_print(tiny_program)
        assert [t.as_row() for t in again.capture] == [
            t.as_row() for t in tiny_golden.capture
        ]

    def test_noise_changes_transactions_but_not_totals(
        self, tiny_golden_noisy, tiny_control_noisy
    ):
        rows_a = [t.as_row() for t in tiny_golden_noisy.capture]
        rows_b = [t.as_row() for t in tiny_control_noisy.capture]
        assert rows_a != rows_b
        assert tiny_golden_noisy.final_counts() == tiny_control_noisy.final_counts()

    def test_same_seed_reproduces_exactly(self, tiny_program, tiny_golden_noisy):
        again = run_print(tiny_program, noise_sigma=0.0005, noise_seed=11)
        assert [t.as_row() for t in again.capture] == [
            t.as_row() for t in tiny_golden_noisy.capture
        ]


class TestHostProtocolIntegration:
    def test_print_via_serial_host(self, tiny_program, tiny_golden):
        via_host = run_print(tiny_program, use_host_protocol=True)
        assert via_host.completed
        assert via_host.final_counts() == tiny_golden.final_counts()


class TestSessionLifecycle:
    def test_session_runs_once(self, tiny_program):
        from repro.errors import ReproError

        session = PrintSession(tiny_program)
        session.run()
        with pytest.raises(ReproError):
            session.run()

    def test_timeout_returns_partial(self, tiny_program):
        session = PrintSession(tiny_program)
        result = session.run(timeout_s=5.0, grace_s=0.0)
        assert not result.completed  # still heating at 5 simulated seconds
