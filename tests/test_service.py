"""The sweep service: HTTP surface, job store, and the dedup contract.

Everything runs in-process: the WSGI app through
:class:`repro.service.ServiceClient` (no sockets), the store against
per-test SQLite files. The expensive sweep — the tiny reference grid,
cold — happens exactly once, in the background end-to-end test; every
other test either reuses that warm session-cache directory (jobs complete
from cache) or never simulates at all (store/schema/validation tests).

The contract under test, layer by layer:

* **parity** — ``GET /jobs/{id}/report.csv`` is byte-identical to
  :func:`repro.experiments.report.render_csv` over a direct
  :func:`run_sweep` of the same scenarios (one sweep semantics, CLI or
  HTTP, in-memory or through SQLite);
* **dedup** — an identical resubmission is answered from the store with
  0 sessions simulated: same service instance, a second instance over the
  same store file (across runs), and a separate OS process (across users);
* **durability** — a schema-version bump invalidates the store, a corrupt
  store file is quarantined and replaced (degraded, never wrong), and jobs
  left in flight by a crashed process are failed on reopen, not reported
  as forever-running;
* **validation** — malformed submissions are 400s with actionable
  messages, never failed jobs.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.experiments.batch import SessionCache
from repro.experiments.report import render_csv
from repro.experiments.scenario import run_sweep
from tests.conftest import corrupt_file
from repro.service import (
    DONE,
    FAILED,
    SERVICE_SCHEMA_VERSION,
    JobManager,
    JobStore,
    ServiceClient,
    create_app,
    submission_key,
)


def scenario_payload(spec) -> dict:
    """A ScenarioSpec as the JSON object POST /jobs accepts."""
    return {
        "name": spec.name,
        "part": spec.part,
        "attack": spec.attack,
        "detectors": list(spec.detectors),
        "seed": spec.seed,
        "noise_sigma": spec.noise_sigma,
    }


@pytest.fixture(scope="module")
def service_env(tmp_path_factory, tiny_grid):
    """The shared submission + its reference CSV over a warm cache dir.

    The reference comes from a *direct* ``run_sweep`` (the CLI path); the
    warm cache directory lets every service job in this module complete
    without re-simulating.
    """
    cache_dir = str(tmp_path_factory.mktemp("service-session-cache"))
    result = run_sweep(tiny_grid, cache=SessionCache(directory=cache_dir))
    assert result.ok
    return {
        "cache_dir": cache_dir,
        "payload": {"scenarios": [scenario_payload(s) for s in tiny_grid]},
        "reference_csv": render_csv(result),
        "sessions": result.sessions_total,
    }


@pytest.fixture
def warm_client(service_env, tmp_path):
    """A synchronous (background=False) service over a fresh store file."""
    app = create_app(
        db=str(tmp_path / "jobs.sqlite3"),
        cache=service_env["cache_dir"],
        background=False,
    )
    yield ServiceClient(app)
    app.manager.close()


# -- HTTP surface -------------------------------------------------------


def test_healthz_and_grids(warm_client):
    health = warm_client.get("/healthz")
    assert health.status_code == 200
    assert health.json() == {"status": "ok", "jobs": 0}
    grids = warm_client.get("/grids").json()["grids"]
    assert "smoke" in {g["name"] for g in grids}
    assert all(g["scenarios"] > 0 for g in grids)


def test_submit_fetch_parity(warm_client, service_env):
    submitted = warm_client.post("/jobs", service_env["payload"])
    assert submitted.status_code == 201
    job = submitted.json()
    assert job["state"] == DONE and job["ok"] is True
    assert job["sessions_total"] == service_env["sessions"]

    served = warm_client.get(f"/jobs/{job['id']}/report.csv")
    assert served.status_code == 200
    # The tentpole contract: rows through SQLite render byte-identical to
    # the in-memory sweep the CLI writes.
    assert served.text == service_env["reference_csv"]

    verdicts = warm_client.get(f"/jobs/{job['id']}/verdicts").json()
    assert len(verdicts["rows"]) == len(
        service_env["reference_csv"].splitlines()
    ) - 1
    assert verdicts["stats"]["sessions_simulated"] == 0  # warm cache dir

    html = warm_client.get(f"/jobs/{job['id']}/report.html")
    assert html.status_code == 200
    assert "<table" in html.text

    listing = warm_client.get("/jobs?limit=10").json()["jobs"]
    assert [j["id"] for j in listing] == [job["id"]]


def test_http_errors(warm_client, service_env):
    assert warm_client.get("/jobs/999").status_code == 404
    assert warm_client.get("/nope").status_code == 404
    assert warm_client.request("DELETE", "/jobs").status_code == 405
    assert warm_client.post("/jobs").status_code == 400  # empty body

    # Rows of a non-done job are a conflict, not a crash: create a queued
    # job behind the manager's back (after init, so crash recovery does
    # not claim it).
    queued = warm_client.app.manager.store.create_job("some-key")
    assert warm_client.get(f"/jobs/{queued}/report.csv").status_code == 409


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ([1, 2], "JSON object"),
        ({}, "exactly one of"),
        ({"grid": "smoke", "scenarios": []}, "exactly one of"),
        ({"grid": "nope"}, "unknown grid"),
        ({"grid": "smoke", "surprise": 1}, "unknown fields"),
        ({"grid": "smoke", "workers": True}, "'workers'"),
        ({"grid": "smoke", "workers": -1}, "'workers'"),
        ({"grid": "smoke", "precise": "yes"}, "'precise'"),
        ({"scenarios": []}, "non-empty list"),
        ({"scenarios": [{"part": "tiny"}]}, "needs a 'name'"),
        ({"scenarios": [{"name": "a", "oops": 1}]}, "unknown fields"),
        ({"scenarios": [{"name": "a", "seed": "x"}]}, "wrong type"),
        ({"scenarios": [{"name": "a", "part": "nope"}]}, "scenarios[0]"),
        ({"scenarios": [{"name": "a", "detectors": ["nope"]}]}, "unknown detectors"),
        ({"scenarios": [{"name": "a"}, {"name": "a"}]}, "unique"),
    ],
)
def test_submission_validation(warm_client, payload, fragment):
    response = warm_client.post("/jobs", payload)
    assert response.status_code == 400, response.text
    assert fragment in response.json()["error"]


# -- the dedup contract -------------------------------------------------


def test_dedup_same_instance(warm_client, service_env):
    first = warm_client.post("/jobs", service_env["payload"]).json()
    again = warm_client.post("/jobs", service_env["payload"])
    assert again.status_code == 200  # answered, not created
    job = again.json()
    assert job["state"] == DONE
    assert job["deduped_from"] == first["id"]
    assert job["stats"]["sessions_simulated"] == 0
    assert (
        warm_client.get(f"/jobs/{job['id']}/report.csv").text
        == service_env["reference_csv"]
    )


def test_dedup_across_instances_and_processes(service_env, tmp_path):
    """The store file is the dedup boundary: new instance, new process."""
    db = str(tmp_path / "jobs.sqlite3")
    app = create_app(db=db, cache=service_env["cache_dir"], background=False)
    first = ServiceClient(app).post("/jobs", service_env["payload"]).json()
    assert first["state"] == DONE
    app.manager.close()

    # Across runs: a brand-new service instance over the same file.
    app2 = create_app(db=db, cache=service_env["cache_dir"], background=False)
    rerun = ServiceClient(app2).post("/jobs", service_env["payload"])
    assert rerun.status_code == 200
    assert rerun.json()["deduped_from"] == first["id"]
    assert rerun.json()["stats"]["sessions_simulated"] == 0
    app2.manager.close()

    # Across users: a separate OS process over the same file.
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    code = (
        "import json, sys\n"
        "from repro.service import create_app, ServiceClient\n"
        f"app = create_app(db={db!r}, cache=False, background=False)\n"
        f"r = ServiceClient(app).post('/jobs', {service_env['payload']!r})\n"
        "print(json.dumps([r.status_code, r.json()['deduped_from'],"
        " r.json()['stats']['sessions_simulated']]))\n"
        "app.manager.close()\n"
    )
    env = dict(os.environ, PYTHONPATH=src)
    output = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    ).stdout
    import json

    status, deduped_from, simulated = json.loads(output.strip().splitlines()[-1])
    assert (status, deduped_from, simulated) == (200, first["id"], 0)


def test_failed_jobs_never_satisfy_dedup(service_env, tmp_path):
    store = JobStore(str(tmp_path / "jobs.sqlite3"))
    key = "k" * 64
    failed = store.create_job(key)
    store.fail_job(failed, "boom")
    assert store.find_done(key) is None
    store.close()


def test_submission_key_tracks_content(tiny_grid):
    from dataclasses import replace

    base = submission_key(tiny_grid)
    assert base == submission_key(list(tiny_grid))  # stable
    assert submission_key([replace(tiny_grid[0], margin=0.2), tiny_grid[1]]) != base
    assert submission_key([replace(tiny_grid[0], seed=7), tiny_grid[1]]) != base
    assert submission_key(tiny_grid, fast_path=False) != base


# -- store durability ---------------------------------------------------


def test_schema_version_bump_invalidates_store(tmp_path):
    db = str(tmp_path / "jobs.sqlite3")
    store = JobStore(db)
    store.create_job("key")
    assert store.count() == 1
    store.close()

    # Same version: jobs survive a reopen.
    reopened = JobStore(db)
    assert reopened.count() == 1
    reopened.close()

    # Bumped version: the store starts fresh — stale rows are never served
    # under new semantics.
    bumped = JobStore(db, schema_version=SERVICE_SCHEMA_VERSION + 1)
    assert bumped.count() == 0
    assert bumped.find_done("key") is None
    bumped.close()


def test_corrupt_store_quarantined(tmp_path):
    db = str(tmp_path / "jobs.sqlite3")
    corrupt_file(db, b"this is not a sqlite database at all\x00\xff")
    with pytest.warns(RuntimeWarning, match="quarantined"):
        store = JobStore(db)
    # Degraded to a fresh, working store; the bad bytes are preserved.
    assert store.count() == 0
    assert store.create_job("key") == 1
    assert os.path.exists(db + ".corrupt")
    store.close()


def test_crashed_jobs_failed_on_reopen(tmp_path):
    db = str(tmp_path / "jobs.sqlite3")
    store = JobStore(db)
    queued = store.create_job("key")
    running = store.create_job("key2")
    store.mark_running(running, 4)
    store.close()

    # A new manager over the same file is "the service restarted".
    manager = JobManager(JobStore(db), cache=False, background=False)
    assert manager.restart_failures == 2
    for job_id in (queued, running):
        job = manager.job(job_id)
        assert job["state"] == FAILED
        assert "restarted" in job["error"]
    manager.close()


def test_failed_submission_is_a_failed_job(service_env, tmp_path, monkeypatch):
    """A sweep that raises fails its job (error text stored), not the service —
    and a failed job never satisfies a later dedup probe."""
    import repro.service.jobs as jobs_mod

    manager = JobManager(
        JobStore(str(tmp_path / "jobs.sqlite3")),
        cache=service_env["cache_dir"],
        background=False,
    )

    def boom(*args, **kwargs):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(jobs_mod, "run_sweep", boom)
    job, created = manager.submit(service_env["payload"])
    assert created and job["state"] == FAILED
    assert "RuntimeError: engine exploded" in job["error"]
    with pytest.raises(Exception, match="failed"):
        manager.require_done(job["id"])

    # The resubmission recomputes (created=True) instead of serving the
    # failure from the store — and succeeds once the engine works again.
    monkeypatch.undo()
    retry, recreated = manager.submit(service_env["payload"])
    assert recreated and retry["state"] == DONE
    manager.close()


# -- background execution + streaming (the one cold sweep) ---------------


def test_background_job_progress_and_events(service_env, tmp_path, tiny_grid):
    """Cold cache, background thread: poll to done, then stream events."""
    app = create_app(
        db=str(tmp_path / "jobs.sqlite3"),
        cache=str(tmp_path / "cold-cache"),  # fresh: every session simulates
        background=True,
    )
    client = ServiceClient(app)
    submitted = client.post("/jobs", service_env["payload"])
    assert submitted.status_code == 201
    job_id = submitted.json()["id"]
    assert submitted.json()["state"] in ("queued", "running", "done")

    job = app.manager.wait(job_id, timeout_s=600.0)
    assert job["state"] == DONE and job["ok"] is True
    # Cold cache: the progress callback ticked every simulated session.
    assert job["sessions_done"] == job["sessions_total"] == service_env["sessions"]
    assert job["stats"]["sessions_simulated"] == service_env["sessions"]

    # Byte parity holds for the cold background path too.
    assert (
        client.get(f"/jobs/{job_id}/report.csv").text
        == service_env["reference_csv"]
    )

    # SSE on a finished job: exactly one terminal event, then the stream ends.
    chunks = b"".join(client.stream(f"/jobs/{job_id}/events"))
    events = [c for c in chunks.decode().split("\n\n") if c.startswith("data: ")]
    assert len(events) == 1
    import json

    final = json.loads(events[0][len("data: ") :])
    assert final["state"] == DONE
    app.manager.close()


# -- optional FastAPI frontend (gated on the [service] extra) -------------


def test_fastapi_frontend_gated_without_extra():
    """Without the extra installed the FastAPI factory raises actionably."""
    try:
        import fastapi  # noqa: F401

        pytest.skip("fastapi installed; the gate test needs it absent")
    except ImportError:
        pass
    from repro.errors import ReproError
    from repro.service.fastapi_app import create_fastapi_app

    with pytest.raises(ReproError, match=r"\[service\]"):
        create_fastapi_app()


def test_fastapi_frontend_parity(service_env, tmp_path):
    """With the extra installed, the FastAPI app serves the same bytes."""
    fastapi = pytest.importorskip("fastapi")  # noqa: F841
    testclient = pytest.importorskip("fastapi.testclient")
    from repro.service.fastapi_app import create_fastapi_app

    app = create_fastapi_app(
        db=str(tmp_path / "jobs.sqlite3"),
        cache=service_env["cache_dir"],
        background=False,
    )
    client = testclient.TestClient(app)
    submitted = client.post("/jobs", json=service_env["payload"])
    assert submitted.status_code == 201
    job = submitted.json()
    assert job["state"] == DONE
    assert (
        client.get(f"/jobs/{job['id']}/report.csv").text
        == service_env["reference_csv"]
    )
    again = client.post("/jobs", json=service_env["payload"])
    assert again.status_code == 200
    assert again.json()["deduped_from"] == job["id"]
    app.state.manager.close()
