"""Firmware dispatch tests: moves, modes, homing, waits, kill, host protocol."""

import pytest

from repro.firmware.marlin import PrinterStatus
from repro.firmware.serial_host import SerialHost
from repro.gcode.parser import parse_program
from repro.sim.time import S
from tests.conftest import build_bench


def _print(sim, firmware, text, until_s=600):
    program = parse_program(text)
    firmware.start_print(program)
    while not firmware.finished and sim.now < until_s * S:
        sim.run_for(1 * S)
    return firmware


MOTION_PREAMBLE = "M302 P1\nG28\nG90\nM82\n"


class TestMotion:
    def test_absolute_moves(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, MOTION_PREAMBLE + "G1 X30 Y20 F3000\nM84")
        assert plant.position_mm("X") == pytest.approx(30.0)
        assert plant.position_mm("Y") == pytest.approx(20.0)
        assert firmware.status is PrinterStatus.DONE

    def test_relative_moves(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, MOTION_PREAMBLE + "G1 X10 F3000\nG91\nG1 X5\nG1 X5\nM84")
        assert plant.position_mm("X") == pytest.approx(20.0)

    def test_g92_rebases_coordinates(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(
            sim, firmware,
            MOTION_PREAMBLE + "G1 X10 F3000\nG92 X0\nG1 X5\nM84",
        )
        assert plant.position_mm("X") == pytest.approx(15.0)

    def test_relative_extrusion_mode(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(
            sim, firmware,
            MOTION_PREAMBLE + "M83\nG1 X5 E1 F1800\nG1 X10 E1\nM84",
        )
        assert plant.position_mm("E") == pytest.approx(2.0)

    def test_feedrate_percentage(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, MOTION_PREAMBLE + "M220 S50\nG1 X60 F6000\nM84")
        # 100mm/s halved -> 50mm/s; the move takes ~1.25s instead of ~0.65
        assert plant.position_mm("X") == pytest.approx(60.0)

    def test_flow_percentage_scales_e_steps(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, MOTION_PREAMBLE + "M221 S50\nG1 X10 E2 F1800\nM84")
        assert plant.position_mm("E") == pytest.approx(1.0, abs=0.01)

    def test_exact_step_totals(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, MOTION_PREAMBLE + "G1 X12.345 Y6.789 F4800\nM84")
        assert plant.axes["X"].position_steps == round(12.345 * 100)
        assert plant.axes["Y"].position_steps == round(6.789 * 100)

    def test_cold_extrusion_prevented(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "G28\nG1 X10 E5 F1800\nM84")
        assert plant.position_mm("E") == 0.0
        assert any("cold extrusion" in line for line in firmware.log)

    def test_hot_extrusion_allowed(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "M109 S210\nG28\nG1 X10 E5 F1800\nM84")
        assert plant.position_mm("E") == pytest.approx(5.0)


class TestHoming:
    def test_g28_zeroes_axes(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "G28")
        for axis in ("X", "Y", "Z"):
            assert plant.position_mm(axis) == pytest.approx(0.0, abs=0.05)
            assert firmware.state.position_mm[axis] == 0.0
        assert firmware.state.all_homed

    def test_partial_homing(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "G28 X")
        assert "X" in firmware.state.homed_axes
        assert "Z" not in firmware.state.homed_axes

    def test_endstops_actuated_in_order(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        order = []
        for name in ("X_MIN", "Y_MIN", "Z_MIN"):
            harness.upstream(name).on_edge(
                lambda w, v, t, n=name: order.append(n) if v else None
            )
        _print(sim, firmware, "G28")
        first_actuations = [order[0]]
        for name in order[1:]:
            if name not in first_actuations:
                first_actuations.append(name)
        assert first_actuations == ["X_MIN", "Y_MIN", "Z_MIN"]


class TestLifecycle:
    def test_dwell_delays_completion(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "G4 P1500")
        assert firmware.status is PrinterStatus.DONE
        assert sim.now >= 1.5 * S

    def test_m112_kills(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, MOTION_PREAMBLE + "M112\nG1 X50 F3000")
        assert firmware.status is PrinterStatus.KILLED
        assert "M112" in firmware.kill_reason
        assert plant.position_mm("X") == pytest.approx(0.0, abs=0.05)

    def test_unknown_command_logged_not_fatal(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "M999\nG4 P100")
        assert firmware.status is PrinterStatus.DONE
        assert any("Unknown command" in line for line in firmware.log)

    def test_fan_control(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "M106 S128\nG4 P100")
        assert plant.fan_duty == pytest.approx(128 / 255)
        _c = build_bench  # noqa: F841

    def test_fan_off(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "M106 S255\nM107\nG4 P100")
        assert plant.fan_duty == 0.0

    def test_m105_reports_temps(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "M105")
        assert any(line for line in firmware.log if "T:" in line and "B:" in line)

    def test_m114_reports_position(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, MOTION_PREAMBLE + "G1 X7 F3000\nM114\nM84")
        assert any("X:7.00" in line for line in firmware.log)

    def test_m109_waits_for_temperature(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, "M109 S210")
        assert firmware.status is PrinterStatus.DONE
        assert plant.hotend_temp_c() == pytest.approx(210.0, abs=3.0)

    def test_cannot_start_twice(self, sim):
        from repro.errors import FirmwareError

        harness, plant, ramps, firmware = build_bench(sim)
        firmware.start_print(parse_program("G4 P5000"))
        with pytest.raises(FirmwareError):
            firmware.start_print(parse_program("G28"))

    def test_m84_waits_for_motion(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        _print(sim, firmware, MOTION_PREAMBLE + "G1 X40 F3000\nM84")
        assert plant.position_mm("X") == pytest.approx(40.0)
        assert ramps.total_missed_steps() == 0
        assert harness.upstream("X_EN").value == 1  # disabled at end


class TestSerialHostProtocol:
    def test_clean_stream(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        program = parse_program(MOTION_PREAMBLE + "G1 X5 F3000\nM84")
        host = SerialHost(program)
        firmware.attach_source(host)
        while not firmware.finished and sim.now < 300 * S:
            sim.run_for(1 * S)
        assert firmware.status is PrinterStatus.DONE
        assert host.resends == 0
        assert host.lines_sent == len(list(program.executable()))

    def test_corruption_triggers_resend(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        program = parse_program(MOTION_PREAMBLE + "G1 X5 F3000\nM84")

        def corrupt(line_number, text):
            return text.replace("X5", "X9") if line_number == 5 else None

        host = SerialHost(program, corrupt=corrupt)
        firmware.attach_source(host)
        while not firmware.finished and sim.now < 300 * S:
            sim.run_for(1 * S)
        assert firmware.status is PrinterStatus.DONE
        assert host.resends == 1
        # The corrupted value never reached the machine.
        assert plant.position_mm("X") == pytest.approx(5.0)

    def test_checksum_garbage_recovered(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        program = parse_program("G28\nG4 P50")
        host = SerialHost(program, corrupt=lambda n, t: t[:-1] + "9" if n == 1 else None)
        firmware.attach_source(host)
        while not firmware.finished and sim.now < 300 * S:
            sim.run_for(1 * S)
        assert firmware.status is PrinterStatus.DONE
        assert host.resends >= 1
