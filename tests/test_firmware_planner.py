"""Motion planner tests: clamping, junctions, lookahead invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FirmwareError
from repro.firmware.config import MarlinConfig
from repro.firmware.planner import AXES, MotionPlanner


def _planner(**config_kwargs):
    return MotionPlanner(MarlinConfig(**config_kwargs))


def _xy_move(planner, dx_steps, dy_steps, feedrate=50.0):
    return planner.add_move({"X": dx_steps, "Y": dy_steps}, feedrate)


class TestAddMove:
    def test_basic_block(self):
        planner = _planner()
        block = _xy_move(planner, 1000, 0)
        assert block.distance_mm == pytest.approx(10.0)
        assert block.step_event_count == 1000
        assert block.nominal_speed == pytest.approx(50.0)

    def test_feedrate_clamped_per_axis(self):
        planner = _planner()
        block = planner.add_move({"Z": 400}, 100.0)  # Z max is 12 mm/s
        assert block.nominal_speed == pytest.approx(12.0)

    def test_accel_clamped_per_axis(self):
        planner = _planner()
        block = planner.add_move({"Z": 400}, 5.0)
        assert block.acceleration <= 200.0 + 1e-9

    def test_diagonal_distance(self):
        planner = _planner()
        block = _xy_move(planner, 300, 400)
        assert block.distance_mm == pytest.approx(5.0)

    def test_e_only_move_distance(self):
        planner = _planner()
        block = planner.add_move({"E": 280}, 35.0)
        assert block.distance_mm == pytest.approx(1.0)

    def test_empty_move_rejected(self):
        with pytest.raises(FirmwareError):
            _planner().add_move({}, 50.0)

    def test_full_buffer_rejected(self):
        planner = _planner(planner_buffer_size=2)
        _xy_move(planner, 100, 0)
        _xy_move(planner, 100, 0)
        with pytest.raises(FirmwareError):
            _xy_move(planner, 100, 0)
        assert planner.is_full

    def test_min_feedrate_floor(self):
        planner = _planner()
        block = _xy_move(planner, 100, 0, feedrate=0.01)
        assert block.nominal_speed >= planner.config.min_feedrate_mm_s


class TestJunctions:
    def test_first_block_starts_slow(self):
        planner = _planner()
        block = _xy_move(planner, 1000, 0)
        assert block.entry_speed <= planner.config.jerk_mm_s["X"] / 2 + 1e-9

    def test_straight_line_keeps_speed(self):
        planner = _planner()
        first = _xy_move(planner, 2000, 0)
        second = _xy_move(planner, 2000, 0)
        # same direction: junction speed should be near nominal
        assert second.max_entry_speed == pytest.approx(50.0)
        assert first.exit_speed == second.entry_speed

    def test_right_angle_limited_by_jerk(self):
        planner = _planner()
        _xy_move(planner, 2000, 0)
        corner = planner.add_move({"Y": 2000}, 50.0)
        # At a 90-degree corner both axes see a step change of v_junction.
        assert corner.max_entry_speed <= planner.config.jerk_mm_s["X"] + 1e-9

    def test_reversal_limited_hard(self):
        planner = _planner()
        _xy_move(planner, 2000, 0)
        reverse = planner.add_move({"X": -2000}, 50.0)
        assert reverse.max_entry_speed <= planner.config.jerk_mm_s["X"] / 2 + 1e-9


class TestLookahead:
    def test_chain_ends_stopped(self):
        planner = _planner()
        for _ in range(5):
            _xy_move(planner, 1000, 0)
        assert list(planner.queue)[-1].exit_speed == 0.0

    def test_entry_exit_continuity(self):
        planner = _planner()
        for _ in range(6):
            _xy_move(planner, 500, 0)
        blocks = list(planner.queue)
        for a, b in zip(blocks, blocks[1:]):
            assert a.exit_speed == pytest.approx(b.entry_speed)

    def test_entries_reachable_under_accel(self):
        planner = _planner()
        for _ in range(6):
            _xy_move(planner, 300, 0)
        for block in planner.queue:
            max_exit = math.sqrt(
                block.entry_speed**2 + 2 * block.acceleration * block.distance_mm
            )
            assert block.exit_speed <= max_exit + 1e-6

    def test_busy_block_not_replanned(self):
        planner = _planner()
        _xy_move(planner, 1000, 0)
        block = planner.pop_block()
        frozen_exit = block.exit_speed
        _xy_move(planner, 1000, 0)
        assert block.exit_speed == frozen_exit

    def test_pop_and_release(self):
        planner = _planner()
        _xy_move(planner, 100, 0)
        block = planner.pop_block()
        assert block.busy
        planner.release_block(block)
        assert planner.is_empty

    def test_pop_empty_returns_none(self):
        assert _planner().pop_block() is None

    def test_clear(self):
        planner = _planner()
        _xy_move(planner, 100, 0)
        planner.clear()
        assert planner.is_empty


@st.composite
def move_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    moves = []
    for _ in range(n):
        dx = draw(st.integers(min_value=-2000, max_value=2000))
        dy = draw(st.integers(min_value=-2000, max_value=2000))
        if dx == 0 and dy == 0:
            dx = 100
        feedrate = draw(st.floats(min_value=1.0, max_value=300.0))
        moves.append(({"X": dx, "Y": dy}, feedrate))
    return moves


class TestPlannerProperties:
    @given(move_sequences())
    @settings(max_examples=80, deadline=None)
    def test_invariants_over_random_programs(self, moves):
        planner = _planner(planner_buffer_size=16)
        for steps, feedrate in moves[:16]:
            planner.add_move(steps, feedrate)
        blocks = list(planner.queue)
        # 1. chain ends stopped
        assert blocks[-1].exit_speed == 0.0
        for i, block in enumerate(blocks):
            # 2. speeds within nominal
            assert block.entry_speed <= block.nominal_speed + 1e-9
            assert block.exit_speed <= block.nominal_speed + 1e-9
            # 3. junction continuity
            if i + 1 < len(blocks):
                assert block.exit_speed == pytest.approx(blocks[i + 1].entry_speed)
            # 4. per-axis feedrate limits respected
            for axis in AXES:
                component = abs(block.unit[axis]) * block.nominal_speed
                assert component <= planner.config.max_feedrate_mm_s[axis] * (1 + 1e-9)
            # 5. deceleration feasibility
            max_exit = math.sqrt(
                block.entry_speed**2 + 2 * block.acceleration * block.distance_mm
            )
            assert block.exit_speed <= max_exit + 1e-6
