"""Analysis module tests: overhead budget and drift statistics."""

import pytest

from repro.analysis.drift import drift_between
from repro.analysis.overhead import analyze_overhead
from repro.core.capture import Transaction
from repro.errors import DetectionError
from repro.sim.trace import Tracer
from repro.sim.signals import StepWire


class TestOverheadAnalysis:
    def _tracer_with_signal(self, sim, interval_ns=50_000, width_ns=2_000, count=10):
        wire = StepWire(sim, "X_STEP.up")
        tracer = Tracer()
        tracer.watch([wire])
        for i in range(count):
            sim.schedule_at(i * interval_ns, lambda w=width_ns: wire.pulse(w))
        sim.run()
        return tracer

    def test_reports_paper_delay(self, sim):
        tracer = self._tracer_with_signal(sim)
        report = analyze_overhead(tracer)
        assert report.propagation_delay_ns == pytest.approx(12.923)

    def test_frequency_and_width_extracted(self, sim):
        tracer = self._tracer_with_signal(sim, interval_ns=50_000, width_ns=1_000)
        report = analyze_overhead(tracer)
        assert report.max_signal_frequency_hz == pytest.approx(20_000)
        assert report.min_pulse_width_ns == 1_000
        assert report.busiest_signal == "X_STEP.up"

    def test_negligible_at_paper_parameters(self, sim):
        # 20 kHz signals, 1 us pulses: 12.923ns is ~1.3% of the pulse width.
        tracer = self._tracer_with_signal(sim, interval_ns=50_000, width_ns=1_000)
        report = analyze_overhead(tracer)
        assert report.negligible
        assert report.delay_fraction_of_pulse < 0.02

    def test_not_negligible_for_fast_signals(self, sim):
        tracer = self._tracer_with_signal(sim, interval_ns=200, width_ns=100)
        report = analyze_overhead(tracer, propagation_delay_ns=50.0)
        assert not report.negligible

    def test_render_mentions_verdict(self, sim):
        tracer = self._tracer_with_signal(sim)
        assert "negligible" in analyze_overhead(tracer).render()


def _txns(rows):
    return [Transaction(i, *row) for i, row in enumerate(rows, start=1)]


class TestDriftStats:
    def test_zero_drift(self):
        a = _txns([(1000, 1000, 100, 5000), (2000, 2000, 100, 9000)])
        stats = drift_between(a, list(a))
        assert stats.max_percent == 0.0
        assert stats.final_totals_equal
        assert stats.within_margin(5.0)

    def test_small_drift_quantified(self):
        a = _txns([(10_000, 0, 0, 10_000), (20_000, 0, 0, 20_000)])
        b = _txns([(10_200, 0, 0, 10_000), (20_100, 0, 0, 20_000)])
        stats = drift_between(a, b)
        assert stats.max_percent == pytest.approx(2.0)
        assert stats.mean_percent > 0

    def test_final_total_difference_detected(self):
        a = _txns([(1000, 0, 0, 1000)])
        b = _txns([(1000, 0, 0, 999)])
        assert not drift_between(a, b).final_totals_equal

    def test_empty_rejected(self):
        with pytest.raises(DetectionError):
            drift_between([], _txns([(1, 1, 1, 1)]))

    def test_render(self):
        a = _txns([(1000, 1000, 100, 5000)])
        assert "drift over 1 transactions" in drift_between(a, a).render()

    def test_single_transaction_captures(self):
        # One transaction per capture: one comparison, and the "final"
        # totals check runs against that same lone transaction.
        a = _txns([(10_000, 0, 0, 10_000)])
        b = _txns([(10_100, 0, 0, 10_000)])
        stats = drift_between(a, b)
        assert stats.transactions_compared == 1
        assert stats.max_percent == pytest.approx(1.0)
        assert stats.p99_percent <= stats.max_percent
        assert not stats.final_totals_equal  # lone X values differ

    def test_mismatched_lengths_compare_common_prefix(self):
        a = _txns([(1000, 0, 0, 1000), (2000, 0, 0, 2000), (3000, 0, 0, 3000)])
        b = _txns([(1000, 0, 0, 1000)])
        stats = drift_between(a, b)
        assert stats.transactions_compared == 1
        assert stats.max_percent == 0.0
        # Final totals compare the *last* entries of each capture, which
        # differ when one print ran longer.
        assert not stats.final_totals_equal

    def test_mismatched_lengths_with_equal_endpoints(self):
        a = _txns([(1000, 0, 0, 1000), (3000, 0, 0, 3000)])
        b = _txns([(1000, 0, 0, 1000), (2000, 0, 0, 2000), (3000, 0, 0, 3000)])
        assert drift_between(a, b).final_totals_equal

    def test_floor_steps_bounds_small_count_blowup(self):
        # A 10-step absolute difference on a tiny count would be a huge
        # relative error; the floor denominator keeps it proportionate.
        a = _txns([(10, 0, 0, 0)])
        b = _txns([(20, 0, 0, 0)])
        floored = drift_between(a, b, floor_steps=400)
        assert floored.max_percent == pytest.approx(10 / 400 * 100.0)
        unfloored = drift_between(a, b, floor_steps=1)
        assert unfloored.max_percent == pytest.approx(100.0)

    def test_both_empty_rejected(self):
        with pytest.raises(DetectionError):
            drift_between([], [])
        with pytest.raises(DetectionError):
            drift_between(_txns([(1, 1, 1, 1)]), [])
