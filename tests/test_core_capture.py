"""Capture format tests: Figure 4 CSV layout and round-trip."""

import pytest

from repro.core.capture import PulseCapture, Transaction, load_capture_csv, save_capture_csv
from repro.electronics.uart import UartBus, pack_step_counts
from repro.errors import CaptureError


def _capture_with(rows):
    capture = PulseCapture()
    for i, (x, y, z, e) in enumerate(rows, start=1):
        capture.transactions.append(Transaction(i, x, y, z, e))
    return capture


class TestTransaction:
    def test_value_by_column(self):
        txn = Transaction(1, 10, 20, 30, 40)
        assert [txn.value(c) for c in "XYZE"] == [10, 20, 30, 40]

    def test_unknown_column(self):
        with pytest.raises(CaptureError):
            Transaction(1, 0, 0, 0, 0).value("Q")

    def test_row_format_matches_figure4(self):
        txn = Transaction(5113, 6060, 8266, 960, 52843)
        assert txn.as_row() == "5113, 6060, 8266, 960, 52843"


class TestPulseCapture:
    def test_bus_integration_assigns_indices(self):
        bus = UartBus()
        capture = PulseCapture(bus)
        bus.send(100, pack_step_counts(1, 2, 3, 4))
        bus.send(200, pack_step_counts(5, 6, 7, 8))
        assert [t.index for t in capture] == [1, 2]
        assert capture[1].x == 5
        assert capture.final.e == 8

    def test_excerpt_window(self):
        capture = _capture_with([(i, i, i, i) for i in range(10)])
        rows = capture.excerpt(3, 4)
        assert [t.index for t in rows] == [3, 4, 5, 6]

    def test_render_includes_header(self):
        capture = _capture_with([(1, 2, 3, 4)])
        text = capture.render()
        assert text.splitlines()[0] == "Index, X, Y, Z, E"
        assert text.splitlines()[1] == "1, 1, 2, 3, 4"

    def test_empty_capture_final_is_none(self):
        assert PulseCapture().final is None

    def test_append_advances_next_index(self):
        # Regression: appending loaded transactions used to leave
        # _next_index stale, so later bus frames reused indices.
        bus = UartBus()
        capture = PulseCapture(bus)
        capture.append(Transaction(7, 1, 2, 3, 4))
        bus.send(100, pack_step_counts(5, 6, 7, 8))
        assert [t.index for t in capture] == [7, 8]

    def test_append_never_rewinds_next_index(self):
        capture = PulseCapture(start_index=10)
        capture.append(Transaction(3, 0, 0, 0, 0))
        capture._on_frame(50, pack_step_counts(1, 1, 1, 1))
        assert capture.final.index == 10


class TestCsvRoundTrip:
    def test_save_load(self, tmp_path):
        capture = _capture_with([(6060, 8266, 960, 52843), (6304, 8095, 960, 52856)])
        path = tmp_path / "golden.csv"
        save_capture_csv(capture, path)
        loaded = load_capture_csv(path)
        assert len(loaded) == 2
        assert loaded[0].x == 6060
        assert loaded[1].e == 52856

    def test_roundtrip_preserves_time_ns(self, tmp_path):
        # Regression: the round-trip used to zero all timestamps.
        capture = PulseCapture()
        capture.append(Transaction(1, 10, 20, 30, 40, time_ns=123_000_000))
        capture.append(Transaction(2, 11, 21, 31, 41, time_ns=456_000_000))
        path = tmp_path / "timed.csv"
        save_capture_csv(capture, path)
        loaded = load_capture_csv(path)
        assert [t.time_ns for t in loaded] == [123_000_000, 456_000_000]

    def test_bare_figure4_layout_still_loads(self, tmp_path):
        path = tmp_path / "bare.csv"
        path.write_text("Index, X, Y, Z, E\n1, 2, 3, 4, 5\n")
        loaded = load_capture_csv(path)
        assert loaded[0].e == 5
        assert loaded[0].time_ns == 0

    def test_loaded_capture_continues_indexing(self, tmp_path):
        capture = PulseCapture()
        capture.append(Transaction(1, 1, 1, 1, 1))
        capture.append(Transaction(2, 2, 2, 2, 2))
        path = tmp_path / "cont.csv"
        save_capture_csv(capture, path)
        loaded = load_capture_csv(path)
        loaded._on_frame(999, pack_step_counts(3, 3, 3, 3))
        assert loaded.final.index == 3  # not a reused index

    def test_save_without_time_matches_render(self, tmp_path):
        capture = _capture_with([(1, 2, 3, 4)])
        path = tmp_path / "bare_out.csv"
        save_capture_csv(capture, path, include_time=False)
        assert path.read_text() == "Index, X, Y, Z, E\n1, 1, 2, 3, 4\n"

    def test_negative_counts_roundtrip(self, tmp_path):
        capture = _capture_with([(-5, 0, -100, 7)])
        path = tmp_path / "neg.csv"
        save_capture_csv(capture, path)
        assert load_capture_csv(path)[0].x == -5

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(CaptureError):
            load_capture_csv(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a, b, c\n1, 2, 3\n")
        with pytest.raises(CaptureError):
            load_capture_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("Index, X, Y, Z, E\n1, 2, 3\n")
        with pytest.raises(CaptureError):
            load_capture_csv(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("Index, X, Y, Z, E\n1, 2, x, 4, 5\n")
        with pytest.raises(CaptureError):
            load_capture_csv(path)
