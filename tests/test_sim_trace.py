"""Unit tests for the signal tracer (the logic-analyzer view)."""

from repro.sim.signals import AnalogWire, DigitalWire, PwmWire, StepWire
from repro.sim.trace import Tracer


class TestTracer:
    def test_records_digital_edges(self, sim):
        wire = DigitalWire(sim, "d")
        tracer = Tracer()
        tracer.watch([wire])
        wire.drive(1)
        wire.drive(0)
        trace = tracer.trace("d")
        assert [e.kind for e in trace.events] == ["edge", "edge"]
        assert [e.value for e in trace.events] == [1.0, 0.0]

    def test_records_pulses_with_width(self, sim):
        wire = StepWire(sim, "s")
        tracer = Tracer()
        tracer.watch([wire])
        wire.pulse(width_ns=1234)
        assert tracer.trace("s").events[0].value == 1234.0

    def test_records_pwm_and_analog(self, sim):
        pwm = PwmWire(sim, "p")
        analog = AnalogWire(sim, "a")
        tracer = Tracer()
        tracer.watch([pwm, analog])
        pwm.drive(0.4)
        analog.drive(2.2)
        assert tracer.trace("p").events[0].kind == "duty"
        assert tracer.trace("a").events[0].kind == "analog"

    def test_watch_is_idempotent(self, sim):
        wire = DigitalWire(sim, "d")
        tracer = Tracer()
        tracer.watch_one(wire)
        tracer.watch_one(wire)
        wire.drive(1)
        assert len(tracer.trace("d")) == 1

    def test_unwatched_signal_is_empty(self, sim):
        tracer = Tracer()
        assert len(tracer.trace("ghost")) == 0

    def test_total_events_and_names(self, sim):
        a = DigitalWire(sim, "a")
        b = DigitalWire(sim, "b")
        tracer = Tracer()
        tracer.watch([a, b])
        a.drive(1)
        b.drive(1)
        b.drive(0)
        assert tracer.total_events() == 3
        assert tracer.signal_names == ["a", "b"]


class TestTraceStats:
    def test_min_interval(self, sim):
        wire = StepWire(sim, "s")
        tracer = Tracer()
        tracer.watch([wire])
        for at in (0, 500, 600, 2000):
            sim.schedule_at(at, wire.pulse)
        sim.run()
        assert tracer.trace("s").min_interval_ns == 100

    def test_max_frequency(self, sim):
        wire = StepWire(sim, "s")
        tracer = Tracer()
        tracer.watch([wire])
        sim.schedule_at(0, wire.pulse)
        sim.schedule_at(50_000, wire.pulse)  # 20 kHz
        sim.run()
        assert abs(tracer.trace("s").max_frequency_hz - 20_000) < 1e-6

    def test_min_pulse_width(self, sim):
        wire = StepWire(sim, "s")
        tracer = Tracer()
        tracer.watch([wire])
        wire.pulse(width_ns=2000)
        wire.pulse(width_ns=900)
        assert tracer.trace("s").min_pulse_width_ns == 900

    def test_stats_none_when_insufficient_data(self, sim):
        wire = StepWire(sim, "s")
        tracer = Tracer()
        tracer.watch([wire])
        assert tracer.trace("s").min_interval_ns is None
        assert tracer.trace("s").max_frequency_hz is None

    def test_dump_renders_all_signals(self, sim):
        wire = DigitalWire(sim, "sig_x")
        tracer = Tracer()
        tracer.watch([wire])
        wire.drive(1)
        text = tracer.dump()
        assert "sig_x" in text
        assert "edge" in text
