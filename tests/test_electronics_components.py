"""Tests for the RAMPS-side components: driver, MOSFET, thermistor, endstop, UART."""

import pytest

from repro.electronics.drivers import A4988Driver
from repro.electronics.endstop import Endstop
from repro.electronics.mosfet import PowerMosfet
from repro.electronics.thermistor import (
    adc_to_temp,
    divider_voltage,
    temp_to_adc,
    thermistor_resistance,
    voltage_to_adc,
)
from repro.electronics.uart import (
    FRAME_SIZE_BYTES,
    UartBus,
    pack_step_counts,
    unpack_step_counts,
)
from repro.errors import CaptureError, ElectronicsError
from repro.sim.signals import AnalogWire, DigitalWire, PwmWire, StepWire


def _driver(sim, invert=False, microsteps=16):
    step = StepWire(sim, "s")
    direction = DigitalWire(sim, "d")
    enable = DigitalWire(sim, "e", initial=0)  # active low: enabled
    steps = []
    driver = A4988Driver(
        "drv", step, direction, enable,
        on_step=lambda direction_, t: steps.append(direction_),
        microsteps=microsteps, invert_direction=invert,
    )
    return driver, step, direction, enable, steps


class TestA4988:
    def test_steps_forward_by_default_dir_low(self, sim):
        driver, step, direction, _, steps = _driver(sim)
        direction.drive(1)
        step.pulse()
        assert steps == [1]

    def test_direction_decode(self, sim):
        driver, step, direction, _, steps = _driver(sim)
        direction.drive(0)
        step.pulse()
        direction.drive(1)
        step.pulse()
        assert steps == [-1, 1]

    def test_inverted_wiring(self, sim):
        driver, step, direction, _, steps = _driver(sim, invert=True)
        direction.drive(1)
        step.pulse()
        assert steps == [-1]

    def test_disabled_driver_misses_steps(self, sim):
        driver, step, _, enable, steps = _driver(sim)
        enable.drive(1)  # disable
        step.pulse()
        step.pulse()
        assert steps == []
        assert driver.missed_steps == 2

    def test_reenabled_driver_steps_again(self, sim):
        driver, step, _, enable, steps = _driver(sim)
        enable.drive(1)
        step.pulse()
        enable.drive(0)
        step.pulse()
        assert len(steps) == 1
        assert driver.steps_taken == 1

    def test_invalid_microsteps(self, sim):
        with pytest.raises(ElectronicsError):
            _driver(sim, microsteps=3)


class TestMosfet:
    def test_power_follows_duty(self, sim):
        gate = PwmWire(sim, "g")
        powers = []
        mosfet = PowerMosfet("m", gate, 40.0, lambda p, t: powers.append(p))
        gate.drive(0.5)
        assert powers == [20.0]
        assert mosfet.power_w == 20.0

    def test_switch_count(self, sim):
        gate = PwmWire(sim, "g")
        mosfet = PowerMosfet("m", gate, 10.0, lambda p, t: None)
        gate.drive(0.1)
        gate.drive(0.9)
        assert mosfet.switch_count == 2

    def test_invalid_power(self, sim):
        with pytest.raises(ElectronicsError):
            PowerMosfet("m", PwmWire(sim, "g"), 0.0, lambda p, t: None)


class TestThermistor:
    def test_resistance_at_nominal(self):
        assert thermistor_resistance(25.0) == pytest.approx(100_000.0, rel=1e-6)

    def test_resistance_decreases_with_temperature(self):
        assert thermistor_resistance(200.0) < thermistor_resistance(25.0)

    def test_adc_roundtrip_at_print_temps(self):
        for temp in (25.0, 60.0, 110.0, 210.0, 250.0):
            recovered = adc_to_temp(temp_to_adc(temp))
            assert recovered == pytest.approx(temp, abs=2.0)  # ADC quantisation

    def test_adc_rails_map_to_fault_values(self):
        assert adc_to_temp(0) > 400.0  # shorted: reads absurdly hot
        assert adc_to_temp(1023) < 0.0  # open: reads absurdly cold

    def test_voltage_monotonic(self):
        assert divider_voltage(25.0) > divider_voltage(210.0)

    def test_voltage_to_adc_clamped(self):
        assert voltage_to_adc(-1.0) == 0
        assert voltage_to_adc(99.0) == 1023

    def test_channel_refresh_drives_wire(self, sim):
        wire = AnalogWire(sim, "t")
        from repro.electronics.thermistor import ThermistorChannel

        channel = ThermistorChannel("t", wire, lambda: 100.0)
        temp = channel.refresh()
        assert temp == 100.0
        assert wire.value == pytest.approx(divider_voltage(100.0))


class TestEndstop:
    def test_triggers_at_zero(self, sim):
        wire = DigitalWire(sim, "es")
        endstop = Endstop("X_MIN", wire)
        endstop.update(5.0)
        assert not endstop.triggered
        endstop.update(0.0)
        assert endstop.triggered

    def test_actuation_counted_once_per_press(self, sim):
        wire = DigitalWire(sim, "es")
        endstop = Endstop("X_MIN", wire)
        for pos in (1.0, 0.0, -0.1, 2.0, 0.0):
            endstop.update(pos)
        assert endstop.actuation_count == 2

    def test_custom_trigger_position(self, sim):
        wire = DigitalWire(sim, "es")
        endstop = Endstop("X_MIN", wire, trigger_position_mm=1.5)
        endstop.update(1.4)
        assert endstop.triggered


class TestUart:
    def test_frame_is_16_bytes(self):
        assert FRAME_SIZE_BYTES == 16
        assert len(pack_step_counts(1, 2, 3, 4)) == 16

    def test_pack_unpack_roundtrip(self):
        frame = pack_step_counts(6060, -8266, 960, 52843)
        assert unpack_step_counts(frame) == (6060, -8266, 960, 52843)

    def test_out_of_range_rejected(self):
        with pytest.raises(CaptureError):
            pack_step_counts(2**40, 0, 0, 0)

    def test_bad_frame_size_rejected(self):
        with pytest.raises(CaptureError):
            unpack_step_counts(b"short")

    def test_bus_delivers_to_listeners(self):
        bus = UartBus()
        got = []
        bus.on_frame(lambda t, frame: got.append((t, frame)))
        frame = pack_step_counts(1, 2, 3, 4)
        bus.send(12345, frame)
        assert got == [(12345, frame)]
        assert bus.frames_sent == 1
