"""End-to-end Trojan integration: selected Table I Trojans on real prints.

These use the tiny workload and per-Trojan parameters scaled to its ~15 s
print phase; the full Table I parameters live in the benchmark harness.
"""

import pytest

from repro.core.trojans import make_trojan
from repro.experiments.runner import run_print
from repro.physics.quality import compare_traces


@pytest.fixture(scope="module")
def golden(tiny_program):
    return run_print(tiny_program)


class TestT2EndToEnd:
    @pytest.fixture(scope="class")
    def result(self, tiny_program):
        return run_print(tiny_program, trojan=make_trojan("T2", keep_fraction=0.5))

    def test_flow_halved(self, golden, result):
        report = compare_traces(golden.plant.trace, result.plant.trace)
        assert report.flow_ratio == pytest.approx(0.5, abs=0.07)

    def test_motion_unchanged(self, golden, result):
        assert result.final_counts()["X"] == golden.final_counts()["X"]
        assert result.final_counts()["Y"] == golden.final_counts()["Y"]

    def test_print_still_completes(self, result):
        assert result.completed


class TestT5EndToEnd:
    def test_layer_gap_opened(self, golden, tiny_program):
        result = run_print(
            tiny_program, trojan=make_trojan("T5", at_layer=2, extra_z_mm=0.3)
        )
        report = compare_traces(golden.plant.trace, result.plant.trace)
        assert report.delaminated
        assert report.max_z_spacing_mm == pytest.approx(0.6, abs=0.05)


class TestT6EndToEnd:
    @pytest.fixture(scope="class")
    def result(self, tiny_program):
        return run_print(tiny_program, trojan=make_trojan("T6"))

    def test_firmware_kills_with_heating_failure(self, result):
        assert result.killed
        assert "Heating failed" in result.kill_reason

    def test_nothing_printed(self, result):
        assert result.plant.trace.total_extruded_mm == pytest.approx(0.0, abs=0.01)

    def test_no_hardware_damage(self, result):
        assert not result.plant.damaged  # DoS, not destructive


class TestT7EndToEnd:
    @pytest.fixture(scope="class")
    def result(self, tiny_program):
        return run_print(tiny_program, trojan=make_trojan("T7"), grace_s=40.0)

    def test_firmware_panics_on_maxtemp(self, result):
        assert result.killed
        assert "MAXTEMP" in result.kill_reason

    def test_heating_continues_past_firmware_kill(self, result):
        # The destructive point: the kill could not stop the heater.
        assert result.plant.hotend.damaged
        assert result.plant.hotend.peak_temp_c > 275.0

    def test_damage_recorded_after_kill(self, result):
        damage_time = result.plant.hotend.damage_events[0].time_ns
        assert damage_time > 0
        assert result.plant.damage_summary()


class TestT9EndToEnd:
    def test_fan_starved_mid_print(self, golden, tiny_program):
        result = run_print(
            tiny_program, trojan=make_trojan("T9", scale=0.1, arm_delay_s=3.0)
        )
        assert result.completed
        assert result.plant.mean_fan_duty() < golden.plant.mean_fan_duty() * 0.7


class TestTrojansVisibleToDetection:
    """The paper did not self-detect its FPGA Trojans (attack and defense
    co-located); our simulated capture taps the Arduino side, so injected
    pulses are invisible there — verifying the tap placement is faithful."""

    def test_t1_injection_invisible_to_arduino_side_tracker(self, golden, tiny_program):
        trojan = make_trojan("T1", period_s=3.0, min_shift_steps=20, max_shift_steps=20)
        result = run_print(tiny_program, trojan=trojan)
        # Tracker (upstream tap) agrees with the golden; the *plant* diverges
        # on at least one shifted axis.
        assert trojan.steps_injected > 0
        assert result.final_counts()["X"] == golden.final_counts()["X"]
        assert result.final_counts()["Y"] == golden.final_counts()["Y"]
        diverged = any(
            result.plant.axes[axis].position_steps != result.final_counts()[axis]
            for axis in ("X", "Y")
        )
        assert diverged
