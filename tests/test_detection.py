"""Detection pipeline tests: comparator, report, golden store, streaming."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capture import PulseCapture, Transaction
from repro.detection.comparator import CaptureComparator
from repro.detection.golden import GoldenStore
from repro.detection.realtime import StreamingDetector
from repro.electronics.uart import UartBus, pack_step_counts
from repro.errors import DetectionError


def _txns(rows):
    return [Transaction(i, *row) for i, row in enumerate(rows, start=1)]


GOLDEN = _txns([(1000, 1000, 120, 5000), (2000, 2000, 120, 10000), (3000, 3000, 240, 15000)])


class TestComparator:
    def test_identical_is_clean(self):
        report = CaptureComparator().compare(GOLDEN, list(GOLDEN))
        assert not report.trojan_likely
        assert report.mismatch_count == 0
        assert report.transactions_compared == 3

    def test_within_margin_is_clean(self):
        suspect = _txns([(1040, 980, 120, 5100), (2050, 1990, 120, 10200), (3000, 3000, 240, 15000)])
        report = CaptureComparator(margin=0.05).compare(GOLDEN, suspect)
        assert not report.trojan_likely

    def test_out_of_margin_flagged(self):
        suspect = _txns([(1000, 1000, 120, 5000), (2500, 2000, 120, 10000), (3000, 3000, 240, 15000)])
        report = CaptureComparator(margin=0.05).compare(GOLDEN, suspect)
        assert report.trojan_likely
        assert report.mismatches[0].column == "X"
        assert report.mismatches[0].index == 2

    def test_final_check_catches_small_total_drift(self):
        # 2% E reduction: per-transaction within margin, final totals differ.
        suspect = _txns([(1000, 1000, 120, 4900), (2000, 2000, 120, 9800), (3000, 3000, 240, 14700)])
        report = CaptureComparator(margin=0.05).compare(GOLDEN, suspect)
        assert report.mismatch_count == 0
        assert report.final_check_failed
        assert report.trojan_likely

    def test_final_check_disabled(self):
        suspect = _txns([(1000, 1000, 120, 4900), (2000, 2000, 120, 9800), (3000, 3000, 240, 14700)])
        report = CaptureComparator(margin=0.05, final_check=False).compare(GOLDEN, suspect)
        assert not report.trojan_likely

    def test_floor_prevents_early_blowups(self):
        golden = _txns([(10, 10, 10, 10)])
        suspect = _txns([(15, 10, 10, 10)])  # +50% of a tiny count
        report = CaptureComparator(margin=0.05, floor_steps=400).compare(golden, suspect)
        assert report.mismatch_count == 0  # 5/400 = 1.25% under the floor
        assert report.final_check_failed  # but totals still differ exactly

    def test_length_mismatch_compares_common_prefix(self):
        suspect = list(GOLDEN) + [Transaction(4, 4000, 4000, 240, 20000)]
        report = CaptureComparator().compare(GOLDEN, suspect)
        assert report.transactions_compared == 3
        assert report.golden_length == 3
        assert report.suspect_length == 4

    def test_empty_captures_rejected(self):
        with pytest.raises(DetectionError):
            CaptureComparator().compare([], GOLDEN)
        with pytest.raises(DetectionError):
            CaptureComparator().compare(GOLDEN, [])

    def test_invalid_margin(self):
        with pytest.raises(DetectionError):
            CaptureComparator(margin=1.5)

    def test_largest_percent_diff_tracked(self):
        suspect = _txns([(1000, 1000, 120, 5000), (3000, 2000, 120, 10000), (3000, 3000, 240, 15000)])
        report = CaptureComparator().compare(GOLDEN, suspect)
        assert report.largest_percent_diff == pytest.approx(50.0)

    def test_render_matches_paper_format(self):
        suspect = _txns([(1000, 1000, 120, 5000), (3000, 2000, 120, 10000), (3100, 3000, 240, 15000)])
        text = CaptureComparator().compare(GOLDEN, suspect).render()
        assert "Index: 2, Column: X, Values: 2000, 3000" in text
        assert "Largest percent difference found:" in text
        assert "Number of transactions compared: 3" in text
        assert "Trojan likely!" in text

    def test_clean_render_verdict(self):
        text = CaptureComparator().compare(GOLDEN, list(GOLDEN)).render()
        assert "No Trojan suspected." in text

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-50_000, max_value=50_000),
                st.integers(min_value=-50_000, max_value=50_000),
                st.integers(min_value=0, max_value=5_000),
                st.integers(min_value=0, max_value=500_000),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_self_comparison_always_clean(self, rows):
        txns = _txns(rows)
        report = CaptureComparator().compare(txns, list(txns))
        assert not report.trojan_likely
        assert report.largest_percent_diff == 0.0

    @given(st.integers(min_value=1, max_value=100), st.floats(min_value=0.001, max_value=0.2))
    @settings(max_examples=60, deadline=None)
    def test_scaling_beyond_margin_always_flagged(self, n, margin):
        golden = _txns([(10_000 + 100 * i, 0, 0, 10_000 + 100 * i) for i in range(n)])
        factor = 1.0 + margin * 3
        suspect = _txns(
            [(int((10_000 + 100 * i) * factor), 0, 0, 10_000 + 100 * i) for i in range(n)]
        )
        report = CaptureComparator(margin=margin).compare(golden, suspect)
        assert report.trojan_likely


class TestGoldenStore:
    def test_register_and_get(self):
        store = GoldenStore()
        capture = PulseCapture()
        capture.transactions.append(Transaction(1, 1, 2, 3, 4))
        store.register("part_a", capture)
        assert store.get("part_a") is capture
        assert "part_a" in store

    def test_missing_golden_raises(self):
        with pytest.raises(DetectionError):
            GoldenStore().get("ghost")

    def test_empty_capture_rejected(self):
        with pytest.raises(DetectionError):
            GoldenStore().register("empty", PulseCapture())

    def test_persistence_roundtrip(self, tmp_path):
        store = GoldenStore(directory=str(tmp_path))
        capture = PulseCapture()
        capture.transactions.append(Transaction(1, 9, 8, 7, 6))
        store.register("boxy", capture)
        # A new store over the same directory sees the golden.
        reloaded = GoldenStore(directory=str(tmp_path))
        assert reloaded.names() == ["boxy"]
        assert reloaded.get("boxy")[0].x == 9


class TestStreamingDetector:
    def _stream(self, golden, suspect_rows, **kwargs):
        bus = UartBus()
        alarms = []
        detector = StreamingDetector(
            golden, bus, on_alarm=alarms.append, **kwargs
        )
        for t, row in enumerate(suspect_rows):
            bus.send(t * 100, pack_step_counts(*row))
        return detector, alarms

    def test_clean_stream_no_alarm(self):
        detector, alarms = self._stream(GOLDEN, [(1000, 1000, 120, 5000), (2000, 2000, 120, 10000)])
        assert not detector.alarmed
        assert alarms == []

    def test_alarm_on_first_divergence(self):
        detector, alarms = self._stream(
            GOLDEN,
            [(1000, 1000, 120, 5000), (2600, 2000, 120, 10000), (3000, 3000, 240, 15000)],
        )
        assert detector.alarmed
        assert detector.alarmed_at_index == 2
        assert len(alarms) == 1

    def test_alarm_threshold(self):
        detector, alarms = self._stream(
            GOLDEN,
            [(1300, 1000, 120, 5000), (2600, 2000, 120, 10000)],
            alarm_after_mismatches=2,
        )
        assert detector.alarmed
        assert detector.alarmed_at_index == 2

    def test_overrun_is_suspicious(self):
        detector, alarms = self._stream(
            GOLDEN,
            [(1000, 1000, 120, 5000), (2000, 2000, 120, 10000),
             (3000, 3000, 240, 15000), (4000, 4000, 240, 20000)],
        )
        assert detector.alarmed  # ran past the golden's end
