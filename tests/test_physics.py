"""Physics tests: kinematics, thermal model, deposition, quality metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlantError
from repro.physics.deposition import PartTrace, TraceSample
from repro.physics.kinematics import AxisMechanics
from repro.physics.printer import PrinterPlant
from repro.physics.quality import compare_traces
from repro.physics.thermal import ThermalNode
from repro.sim.kernel import Simulator
from repro.sim.time import S


class TestAxisMechanics:
    def test_step_integration(self, sim):
        axis = AxisMechanics("X", steps_per_mm=100.0)
        for _ in range(250):
            axis.step(1, 0)
        assert axis.position_mm == pytest.approx(2.5)

    def test_bidirectional(self, sim):
        axis = AxisMechanics("X", 100.0, start_mm=1.0)
        axis.step(-1, 0)
        assert axis.position_steps == 99

    def test_travel_limits_cause_crash_steps(self, sim):
        axis = AxisMechanics("X", 100.0, min_mm=0.0, max_mm=1.0, start_mm=0.0)
        for _ in range(150):
            axis.step(1, 0)
        assert axis.position_mm == pytest.approx(1.0)
        assert axis.crash_steps == 50

    def test_min_limit(self, sim):
        axis = AxisMechanics("X", 100.0, min_mm=0.0, start_mm=0.0)
        axis.step(-1, 0)
        assert axis.position_mm == 0.0
        assert axis.crash_steps == 1

    def test_move_listeners(self, sim):
        axis = AxisMechanics("X", 100.0)
        seen = []
        axis.on_move(lambda name, pos, t: seen.append((name, pos, t)))
        axis.step(1, 42)
        assert seen == [("X", 0.01, 42)]

    def test_invalid_direction(self, sim):
        axis = AxisMechanics("X", 100.0)
        with pytest.raises(PlantError):
            axis.step(2, 0)

    def test_invalid_config(self):
        with pytest.raises(PlantError):
            AxisMechanics("X", 0.0)
        with pytest.raises(PlantError):
            AxisMechanics("X", 100.0, min_mm=5.0, max_mm=1.0)


class TestThermalNode:
    def _node(self, sim, **kwargs):
        defaults = dict(
            heat_capacity_j_per_k=6.0, loss_w_per_k=0.17, ambient_c=25.0
        )
        defaults.update(kwargs)
        return ThermalNode(sim, "hotend", **defaults)

    def test_starts_at_ambient(self, sim):
        assert self._node(sim).temperature_c() == 25.0

    def test_heats_toward_steady_state(self, sim):
        node = self._node(sim)
        node.set_power(50.0)
        sim.run(until_ns=600 * S)
        assert node.temperature_c() == pytest.approx(node.steady_state_c, abs=1.0)

    def test_exact_exponential(self, sim):
        node = self._node(sim)
        node.set_power(50.0)
        tau = node.tau_s
        sim.run(until_ns=int(tau * S))
        expected = node.steady_state_c + (25.0 - node.steady_state_c) * math.exp(-1.0)
        assert node.temperature_c() == pytest.approx(expected, rel=1e-6)

    def test_cooling_after_power_off(self, sim):
        node = self._node(sim)
        node.set_power(50.0)
        sim.run(until_ns=100 * S)
        hot = node.temperature_c()
        node.set_power(0.0)
        sim.run(until_ns=400 * S)
        assert node.temperature_c() < hot
        assert node.temperature_c() > 25.0

    def test_peak_tracking(self, sim):
        node = self._node(sim)
        node.set_power(50.0)
        sim.run(until_ns=100 * S)
        node.temperature_c()
        node.set_power(0.0)
        sim.run(until_ns=500 * S)
        node.temperature_c()
        assert node.peak_temp_c > node.temperature_c()

    def test_damage_event_scheduled_and_fires(self, sim):
        node = self._node(sim, damage_temp_c=200.0)
        node.set_power(50.0)  # steady state ~319C crosses 200C
        sim.run(until_ns=600 * S)
        assert node.damaged
        event = node.damage_events[0]
        assert event.temperature_c == pytest.approx(200.0, abs=1.0)

    def test_damage_not_fired_when_unreachable(self, sim):
        node = self._node(sim, damage_temp_c=500.0)
        node.set_power(50.0)
        sim.run(until_ns=600 * S)
        assert not node.damaged

    def test_damage_cancelled_by_power_cut(self, sim):
        node = self._node(sim, damage_temp_c=200.0)
        node.set_power(50.0)
        sim.run(until_ns=5 * S)
        node.set_power(0.0)  # cut before crossing
        sim.run(until_ns=600 * S)
        assert not node.damaged

    def test_negative_power_rejected(self, sim):
        with pytest.raises(PlantError):
            self._node(sim).set_power(-1.0)

    @given(
        st.floats(min_value=1.0, max_value=60.0),
        st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_temperature_bounded_by_ambient_and_steady(self, query_s, power):
        sim = Simulator()
        node = ThermalNode(sim, "n", 6.0, 0.17, ambient_c=25.0)
        node.set_power(power)
        sim.run(until_ns=int(query_s * S))
        temp = node.temperature_c()
        assert 25.0 - 1e-9 <= temp <= max(node.steady_state_c, 25.0) + 1e-9

    @given(st.floats(min_value=0.5, max_value=50.0))
    @settings(max_examples=40, deadline=None)
    def test_heating_is_monotonic(self, power):
        sim = Simulator()
        node = ThermalNode(sim, "n", 6.0, 0.17, ambient_c=25.0)
        node.set_power(power)
        previous = node.temperature_c()
        for step in range(1, 10):
            sim.run(until_ns=step * 10 * S)
            current = node.temperature_c()
            assert current >= previous - 1e-9
            previous = current


def _synthetic_trace(layer_zs, xy_scale=1.0, e_per_seg=0.1, shift=(0.0, 0.0)):
    """Build a simple two-segment-per-layer trace for metric tests."""
    trace = PartTrace()
    t, e = 0, 0.0
    for z in layer_zs:
        points = [
            (0.0 + shift[0], 0.0 + shift[1]),
            (10.0 * xy_scale + shift[0], 0.0 + shift[1]),
            (10.0 * xy_scale + shift[0], 10.0 * xy_scale + shift[1]),
        ]
        trace.add_sample(TraceSample(t, points[0][0], points[0][1], z, e))
        for x, y in points[1:]:
            t += 1000
            e += e_per_seg
            trace.add_sample(TraceSample(t, x, y, z, e))
        t += 1000
    return trace


class TestPartTrace:
    def test_layer_grouping(self):
        trace = _synthetic_trace([0.3, 0.6, 0.9])
        assert len(trace.layers()) == 3

    def test_z_spacings(self):
        trace = _synthetic_trace([0.3, 0.6, 1.2])
        assert trace.z_spacings() == [pytest.approx(0.3), pytest.approx(0.6)]

    def test_net_extrusion(self):
        trace = _synthetic_trace([0.3], e_per_seg=0.5)
        assert trace.total_extruded_mm == pytest.approx(1.0)

    def test_gross_vs_net_with_retraction(self):
        trace = PartTrace()
        trace.add_sample(TraceSample(0, 0, 0, 0.3, 0.0))
        trace.add_sample(TraceSample(1000, 5, 0, 0.3, 1.0))
        trace.add_sample(TraceSample(2000, 5, 0, 0.3, 0.2))  # retract
        trace.add_sample(TraceSample(3000, 6, 0, 0.3, 1.0))  # prime
        assert trace.total_extruded_mm == pytest.approx(1.0)
        assert trace.gross_extruded_mm == pytest.approx(1.8)

    def test_centroid_drift_zero_for_identical_layers(self):
        trace = _synthetic_trace([0.3, 0.6])
        drift = trace.layer_centroid_drift()
        assert max(drift) == pytest.approx(0.0, abs=1e-9)

    def test_duration(self):
        trace = _synthetic_trace([0.3])
        assert trace.duration_ns == 2000


class TestQualityMetrics:
    def test_identical_traces_are_nominal(self):
        golden = _synthetic_trace([0.3, 0.6, 0.9])
        report = compare_traces(golden, _synthetic_trace([0.3, 0.6, 0.9]))
        assert report.nominal
        assert report.flow_ratio == pytest.approx(1.0)

    def test_underextrusion_detected(self):
        golden = _synthetic_trace([0.3, 0.6])
        suspect = _synthetic_trace([0.3, 0.6], e_per_seg=0.05)
        report = compare_traces(golden, suspect)
        assert report.underextruded
        assert report.flow_ratio == pytest.approx(0.5)

    def test_layer_shift_detected(self):
        golden = _synthetic_trace([0.3, 0.6])
        suspect = _synthetic_trace([0.3, 0.6], shift=(1.0, 0.0))
        report = compare_traces(golden, suspect)
        assert report.max_centroid_shift_mm == pytest.approx(1.0, abs=0.01)
        assert report.geometry_compromised

    def test_delamination_detected(self):
        golden = _synthetic_trace([0.3, 0.6, 0.9])
        suspect = _synthetic_trace([0.3, 1.0, 1.3])
        report = compare_traces(golden, suspect)
        assert report.delaminated

    def test_bbox_growth_detected(self):
        golden = _synthetic_trace([0.3])
        suspect = _synthetic_trace([0.3], xy_scale=1.2)
        report = compare_traces(golden, suspect)
        assert report.max_bbox_growth_mm == pytest.approx(2.0, abs=0.01)

    def test_anomaly_listing(self):
        golden = _synthetic_trace([0.3, 0.6])
        suspect = _synthetic_trace([0.3, 0.6], e_per_seg=0.05)
        anomalies = compare_traces(golden, suspect).anomalies()
        assert any("under-extrusion" in a for a in anomalies)


class TestPrinterPlant:
    def test_motor_step_moves_axis(self, sim):
        plant = PrinterPlant(sim)
        start = plant.position_mm("X")
        plant.motor_step("X", 1, 0)
        assert plant.position_mm("X") == pytest.approx(start + 0.01)

    def test_unknown_axis_rejected(self, sim):
        plant = PrinterPlant(sim)
        with pytest.raises(PlantError):
            plant.motor_step("Q", 1, 0)

    def test_fan_profile_recorded(self, sim):
        plant = PrinterPlant(sim)
        plant.set_fan_duty(0.5, 100)
        plant.set_fan_duty(1.0, 200)
        assert plant.fan_profile[-1] == (200, 1.0)

    def test_mean_fan_duty_time_weighted(self, sim):
        plant = PrinterPlant(sim)
        plant.set_fan_duty(1.0, 0)
        sim.run(until_ns=10 * S)
        assert plant.mean_fan_duty() == pytest.approx(1.0, abs=0.01)

    def test_sampling_produces_trace(self, sim):
        plant = PrinterPlant(sim)
        plant.start_sampling()
        sim.run(until_ns=1 * S)
        assert len(plant.trace) >= 50
        plant.stop_sampling()

    def test_damage_summary_empty_when_clean(self, sim):
        plant = PrinterPlant(sim)
        assert not plant.damaged
        assert plant.damage_summary() == []
