"""Unit tests for the Trojan suite on a synthetic bench (no full prints)."""

import pytest

from repro.core.board import OfframpsBoard
from repro.core.modules.homing_detect import HomingDetector
from repro.core.modules.trojan_ctrl import TrojanControl
from repro.core.trojans import TROJAN_CLASSES, make_trojan
from repro.core.trojans.base import TrojanCategory, TrojanContext
from repro.electronics.harness import SignalHarness
from repro.errors import OfframpsError
from repro.sim.time import S


def _bench(sim, trojan, enable=True, seed=1):
    harness = SignalHarness(sim)
    board = OfframpsBoard(sim, harness)
    homing = HomingDetector(harness)
    control = TrojanControl(TrojanContext(sim, board, harness, homing, seed=seed))
    control.load(trojan)
    if enable:
        control.enable(trojan.trojan_id)
    return harness, board, homing, control


def _home(sim, harness):
    at = 1000
    for name in ("X_MIN", "Y_MIN", "Z_MIN"):
        sim.schedule_at(at, lambda n=name: harness.upstream(n).drive(1))
        sim.schedule_at(at + 100, lambda n=name: harness.upstream(n).drive(0))
        at += 1000
    sim.run(until_ns=at)


class TestCatalog:
    def test_nine_trojans(self):
        assert sorted(TROJAN_CLASSES) == [f"T{i}" for i in range(1, 10)]

    def test_make_trojan_by_id(self):
        trojan = make_trojan("t2", keep_fraction=0.25)
        assert trojan.trojan_id == "T2"
        assert trojan.keep_fraction == 0.25

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            make_trojan("T99")

    def test_table1_metadata(self):
        assert make_trojan("T1").scenario == "Loose Belt"
        assert make_trojan("T6").category is TrojanCategory.DENIAL_OF_SERVICE
        assert make_trojan("T7").category is TrojanCategory.DESTRUCTIVE
        for tid in TROJAN_CLASSES:
            trojan = make_trojan(tid)
            assert trojan.effect
            assert trojan.describe().startswith(tid)


class TestControlModule:
    def test_enable_routes_signals(self, sim):
        trojan = make_trojan("T2")
        harness, board, homing, control = _bench(sim, trojan)
        assert "E_STEP" in board.intercepted_signals()
        assert control.enabled_ids() == ["T2"]

    def test_disable_detaches(self, sim):
        trojan = make_trojan("T2")
        harness, board, homing, control = _bench(sim, trojan)
        control.disable("T2")
        harness.upstream("E_DIR").drive(1)
        for _ in range(10):
            harness.upstream("E_STEP").pulse()
        sim.run()
        assert harness.downstream("E_STEP").pulse_count == 10  # nothing masked

    def test_double_load_rejected(self, sim):
        trojan = make_trojan("T2")
        harness, board, homing, control = _bench(sim, trojan)
        with pytest.raises(OfframpsError):
            control.load(make_trojan("T2"))

    def test_unknown_enable_rejected(self, sim):
        trojan = make_trojan("T2")
        harness, board, homing, control = _bench(sim, trojan)
        with pytest.raises(OfframpsError):
            control.enable("T5")


class TestT2ExtrusionScale:
    def test_masks_half_of_forward_pulses(self, sim):
        trojan = make_trojan("T2", keep_fraction=0.5)
        harness, board, homing, control = _bench(sim, trojan)
        harness.upstream("E_DIR").drive(1)
        for _ in range(100):
            harness.upstream("E_STEP").pulse()
        sim.run()
        assert harness.downstream("E_STEP").pulse_count == 50
        assert trojan.pulses_masked == 50

    def test_retraction_and_prime_untouched(self, sim):
        trojan = make_trojan("T2", keep_fraction=0.5)
        harness, board, homing, control = _bench(sim, trojan)
        harness.upstream("E_DIR").drive(0)  # retract 20
        for _ in range(20):
            harness.upstream("E_STEP").pulse()
        harness.upstream("E_DIR").drive(1)  # prime 20 (pays debt), then print 10
        for _ in range(30):
            harness.upstream("E_STEP").pulse()
        sim.run()
        # 20 retract + 20 prime + 5 of 10 print pulses
        assert harness.downstream("E_STEP").pulse_count == 45

    def test_exact_fraction(self, sim):
        trojan = make_trojan("T2", keep_fraction=0.3)
        harness, board, homing, control = _bench(sim, trojan)
        harness.upstream("E_DIR").drive(1)
        for _ in range(1000):
            harness.upstream("E_STEP").pulse()
        sim.run()
        assert harness.downstream("E_STEP").pulse_count == pytest.approx(300, abs=1)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_trojan("T2", keep_fraction=0.0)


class TestT6HeaterDos:
    def test_blocks_duty_updates(self, sim):
        trojan = make_trojan("T6")
        harness, board, homing, control = _bench(sim, trojan)
        harness.upstream("D10_HOTEND").drive(0.9)
        sim.run()
        assert harness.downstream("D10_HOTEND").duty == 0.0
        assert trojan.duty_updates_blocked == 1

    def test_bed_target(self, sim):
        trojan = make_trojan("T6", targets=("bed",))
        harness, board, homing, control = _bench(sim, trojan)
        harness.upstream("D8_BED").drive(0.7)
        sim.run()
        assert harness.downstream("D8_BED").duty == 0.0

    def test_unknown_target(self):
        with pytest.raises(ValueError):
            make_trojan("T6", targets=("chamber",))


class TestT7ThermalRunaway:
    def test_forces_full_duty(self, sim):
        trojan = make_trojan("T7")
        harness, board, homing, control = _bench(sim, trojan)
        sim.run()
        assert harness.downstream("D10_HOTEND").duty == 1.0
        harness.upstream("D10_HOTEND").drive(0.0)  # firmware panic tries to stop
        sim.run()
        assert harness.downstream("D10_HOTEND").duty == 1.0

    def test_deactivate_restores_firmware_command(self, sim):
        trojan = make_trojan("T7")
        harness, board, homing, control = _bench(sim, trojan)
        harness.upstream("D10_HOTEND").drive(0.3)
        sim.run()
        control.disable("T7")
        assert harness.downstream("D10_HOTEND").duty == pytest.approx(0.3)


class TestT8StepperDisable:
    def test_outage_cycle(self, sim):
        trojan = make_trojan("T8", axes=("X",), period_s=2.0, outage_s=0.5)
        harness, board, homing, control = _bench(sim, trojan)
        _home(sim, harness)
        sim.run(until_ns=sim.now + int(2.2 * S))
        assert harness.downstream("X_EN").value == 1  # in outage (disabled)
        sim.run(until_ns=sim.now + int(0.5 * S))
        assert harness.downstream("X_EN").value == 0  # restored
        assert trojan.outages >= 1

    def test_en_updates_overridden_during_outage(self, sim):
        trojan = make_trojan("T8", axes=("X",), period_s=2.0, outage_s=0.5)
        harness, board, homing, control = _bench(sim, trojan)
        _home(sim, harness)
        sim.run(until_ns=sim.now + int(2.2 * S))
        harness.upstream("X_EN").drive(0)  # firmware re-enables mid-outage
        sim.run(until_ns=sim.now + 1000)
        assert harness.downstream("X_EN").value == 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            make_trojan("T8", period_s=1.0, outage_s=2.0)


class TestT9Fan:
    def test_scales_after_arm_delay(self, sim):
        trojan = make_trojan("T9", scale=0.25, arm_delay_s=1.0)
        harness, board, homing, control = _bench(sim, trojan)
        harness.upstream("D9_FAN").drive(1.0)
        _home(sim, harness)
        assert harness.downstream("D9_FAN").duty == 1.0  # not armed yet
        sim.run(until_ns=sim.now + int(1.5 * S))
        assert harness.downstream("D9_FAN").duty == pytest.approx(0.25)
        harness.upstream("D9_FAN").drive(0.8)
        sim.run(until_ns=sim.now + 1000)
        assert harness.downstream("D9_FAN").duty == pytest.approx(0.2)
        assert trojan.engagements == 1

    def test_deactivate_restores(self, sim):
        trojan = make_trojan("T9", scale=0.25, arm_delay_s=0.5)
        harness, board, homing, control = _bench(sim, trojan)
        harness.upstream("D9_FAN").drive(1.0)
        _home(sim, harness)
        sim.run(until_ns=sim.now + 1 * S)
        control.disable("T9")
        assert harness.downstream("D9_FAN").duty == pytest.approx(1.0)


class TestT1AxisShift:
    def test_injects_on_period_after_homing(self, sim):
        trojan = make_trojan("T1", period_s=1.0, min_shift_steps=10, max_shift_steps=10)
        harness, board, homing, control = _bench(sim, trojan)
        _home(sim, harness)
        sim.run(until_ns=sim.now + int(3.5 * S))
        injected = (
            harness.downstream("X_STEP").pulse_count
            + harness.downstream("Y_STEP").pulse_count
        )
        assert trojan.shifts_injected == 3
        assert injected == 30

    def test_no_injection_before_homing(self, sim):
        trojan = make_trojan("T1", period_s=1.0)
        harness, board, homing, control = _bench(sim, trojan)
        sim.run(until_ns=5 * S)
        assert trojan.shifts_injected == 0

    def test_deactivation_stops_injection(self, sim):
        trojan = make_trojan("T1", period_s=1.0, min_shift_steps=5, max_shift_steps=5)
        harness, board, homing, control = _bench(sim, trojan)
        _home(sim, harness)
        sim.run(until_ns=sim.now + int(1.5 * S))
        control.disable("T1")
        count = trojan.shifts_injected
        sim.run(until_ns=sim.now + 5 * S)
        assert trojan.shifts_injected == count

    def test_seeded_rng_reproducible(self, sim):
        from repro.sim.kernel import Simulator

        def run_once():
            sim2 = Simulator()
            trojan = make_trojan("T1", period_s=1.0)
            harness, board, homing, control = _bench(sim2, trojan, seed=99)
            _home(sim2, harness)
            sim2.run(until_ns=sim2.now + 5 * S)
            return (
                harness.downstream("X_STEP").pulse_count,
                harness.downstream("Y_STEP").pulse_count,
            )

        assert run_once() == run_once()


class TestBaseLifecycle:
    def test_activate_requires_attach(self):
        trojan = make_trojan("T2")
        with pytest.raises(OfframpsError):
            trojan.activate()

    def test_double_attach_rejected(self, sim):
        trojan = make_trojan("T2")
        _bench(sim, trojan)
        with pytest.raises(OfframpsError):
            trojan.attach(TrojanContext(sim, None, None, None))

    def test_activation_count(self, sim):
        trojan = make_trojan("T2")
        harness, board, homing, control = _bench(sim, trojan)
        control.disable("T2")
        control.enable("T2")
        assert trojan.activations == 2
