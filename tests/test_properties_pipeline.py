"""Pipeline-level properties: detection guarantees over the attack space.

These run full simulated prints per example, so example counts are small;
they pin the *claims* rather than specific parameter points:

* any non-trivial extrusion reduction is detected (the final 0 %-margin
  check sees every missing step);
* detection is symmetric in noise realization (golden/suspect seed swap);
* the public API surface stays importable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.comparator import CaptureComparator
from repro.experiments.runner import run_print
from repro.gcode.transforms.flaw3d import apply_reduction


@pytest.fixture(scope="module")
def comparator():
    return CaptureComparator()


class TestDetectionProperties:
    @given(factor=st.floats(min_value=0.3, max_value=0.95))
    @settings(max_examples=5, deadline=None)
    def test_any_meaningful_reduction_detected(
        self, factor, tiny_program, tiny_golden_noisy, comparator
    ):
        suspect = run_print(
            apply_reduction(tiny_program, factor),
            noise_sigma=0.0005,
            noise_seed=int(factor * 10_000),
        )
        report = comparator.compare_captures(tiny_golden_noisy.capture, suspect.capture)
        assert report.trojan_likely
        assert report.final_check_failed  # totals can never match

    def test_detection_symmetric_in_seed_roles(
        self, tiny_golden_noisy, tiny_control_noisy, comparator
    ):
        forward = comparator.compare_captures(
            tiny_golden_noisy.capture, tiny_control_noisy.capture
        )
        reverse = comparator.compare_captures(
            tiny_control_noisy.capture, tiny_golden_noisy.capture
        )
        assert forward.trojan_likely == reverse.trojan_likely is False

    def test_golden_self_comparison_has_zero_diff(self, tiny_golden_noisy, comparator):
        report = comparator.compare_captures(
            tiny_golden_noisy.capture, tiny_golden_noisy.capture
        )
        assert report.largest_percent_diff == 0.0
        assert not report.trojan_likely


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_headline_workflow_via_top_level_names_only(self):
        # The README quickstart must work using only `repro.` names.
        import repro

        program = repro.sliced_program(repro.tiny_part())
        golden = repro.run_print(program)
        suspect = repro.run_print(repro.apply_reduction(program, 0.5))
        report = repro.CaptureComparator().compare_captures(
            golden.capture, suspect.capture
        )
        assert report.trojan_likely
