"""The transport contract: one behavioural suite, every backend must pass.

``repro sweep --hosts N`` promises the same shard lifecycle regardless of
what carries the bytes — a shared directory of atomic renames, an
in-process registry, or an HTTP shard queue backed by SQLite conditional
UPDATEs. :class:`TransportContractTests` pins that lifecycle as executable
law, and one subclass per registered scheme runs the identical tests
against a real instance of that backend (the HTTP subclass talks to a
live threaded WSGI server, not a mock):

* **claim exclusivity** — N concurrent claimers, exactly one wins;
* **requeue after forfeit** — a claimed shard returns to pending intact,
  and a stale token (the race already lost) re-queues nothing;
* **torn-write degradation** — a corrupt pending payload reads as a
  *dropped* shard (re-enqueued by the coordinator), never an exception
  and never executed;
* **wire-format skew fails loud** — a cleanly readable payload from an
  incompatible protocol version raises :class:`WireFormatError` after
  handing the shard back to compatible workers;
* **STOP propagation** and **reset**;
* **done-payload round-trip** — results survive the wire byte-exactly;
* **heartbeat advancement** — what the coordinator's liveness watch
  actually reads.

A new backend earns its place by registering a scheme *and* adding a
subclass here; the meta-test at the bottom fails the build if a scheme
ships without contract coverage.
"""

import pickle
import socketserver
import threading
import time
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

import pytest

from repro.experiments.distrib import ShardResult, WorkDir, WorkShard
from repro.experiments.transport import (
    WIRE_FORMAT,
    InMemoryTransport,
    WireFormatError,
    encode_wire,
    registered_schemes,
)
from repro.experiments.transport_http import HttpTransport
from repro.service.app import create_app


def _skewed_wire(payload):
    """A cleanly readable envelope from a future protocol version."""
    return pickle.dumps(
        {"format": WIRE_FORMAT + 1, "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _shard(shard_id):
    return WorkShard(shard_id=shard_id)


def _result(shard_id, worker_id="w1"):
    return ShardResult(shard_id, worker_id, [], 0.25)


class TransportContractTests:
    """Behavioural contract every registered transport backend must pass.

    Subclasses provide a ``transport`` fixture yielding a *fresh* (reset)
    backend instance per test; every test below runs once per backend.
    """

    def test_done_roundtrip(self, transport):
        transport.enqueue(_shard(5))
        assert transport.pending_ids() == [5]
        assert transport.done_ids() == []

        claim = transport.claim(5, "w1")
        assert claim is not None
        assert claim.shard.shard_id == 5
        assert transport.pending_ids() == []
        assert [(sid, worker) for sid, worker, _ in transport.claims()] == [
            (5, "w1")
        ]

        transport.complete(claim, _result(5))
        assert transport.done_ids() == [5]
        assert transport.claims() == []
        loaded = transport.load_result(5)
        assert isinstance(loaded, ShardResult)
        assert (loaded.shard_id, loaded.worker_id) == (5, "w1")
        assert transport.result_size(5) > 0

        transport.discard_done(5)
        assert transport.done_ids() == []
        assert transport.load_result(5) is None
        assert transport.result_size(5) == 0

    def test_claim_missing_shard_returns_none(self, transport):
        assert transport.claim(99, "w1") is None

    def test_claim_exclusivity_under_concurrency(self, transport):
        transport.enqueue(_shard(0))
        claimers = 8
        barrier = threading.Barrier(claimers)
        wins, errors = [], []

        def attempt(worker_id):
            barrier.wait()
            try:
                claim = transport.claim(0, worker_id)
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)
                return
            if claim is not None:
                wins.append((worker_id, claim))

        threads = [
            threading.Thread(target=attempt, args=(f"w{i}",))
            for i in range(claimers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(wins) == 1, f"expected exactly one winner, got {wins}"
        winner, claim = wins[0]
        assert claim.shard.shard_id == 0
        assert [(sid, worker) for sid, worker, _ in transport.claims()] == [
            (0, winner)
        ]
        assert transport.pending_ids() == []

    def test_requeue_after_forfeit(self, transport):
        transport.enqueue(_shard(2))
        claim = transport.claim(2, "w1")
        assert claim is not None
        assert transport.requeue(claim.token) is True
        assert transport.pending_ids() == [2]
        assert transport.claims() == []
        # The shard survives the round trip intact and is claimable again.
        reclaim = transport.claim(2, "w2")
        assert reclaim is not None
        assert reclaim.shard.shard_id == 2
        # The original token is now stale: nothing to re-queue.
        assert transport.requeue(claim.token) is False
        assert [(sid, worker) for sid, worker, _ in transport.claims()] == [
            (2, "w2")
        ]

    def test_requeue_stale_token_is_noop(self, transport):
        transport.enqueue(_shard(1))
        claim = transport.claim(1, "w1")
        transport.complete(claim, _result(1))
        # The worker completed after all; the done file wins.
        assert transport.requeue(claim.token) is False
        assert transport.done_ids() == [1]
        assert transport.pending_ids() == []

    def test_torn_pending_payload_degrades_to_dropped_shard(self, transport):
        transport.put_pending(7, b"not a pickle at all")
        assert transport.pending_ids() == [7]
        assert transport.claim(7, "w1") is None
        # The shard is gone from every queue state: the coordinator's
        # liveness pass re-enqueues it from its in-memory copy.
        assert transport.pending_ids() == []
        assert transport.claims() == []
        assert transport.done_ids() == []

    def test_wire_skew_on_claim_fails_loud(self, transport):
        transport.put_pending(3, _skewed_wire(_shard(3)))
        with pytest.raises(WireFormatError):
            transport.claim(3, "w1")
        # The shard went back to pending: a compatible worker can take it.
        assert transport.pending_ids() == [3]
        assert transport.claims() == []

    def test_wire_skew_on_result_fails_loud(self, transport):
        transport.put_result(4, _skewed_wire(_result(4)))
        with pytest.raises(WireFormatError):
            transport.load_result(4)

    def test_corrupt_result_reads_as_absent(self, transport):
        transport.put_result(6, b"\x00torn result bytes")
        assert 6 in transport.done_ids()
        assert transport.load_result(6) is None

    def test_stop_propagation(self, transport):
        assert transport.stop_requested() is False
        transport.stop()
        assert transport.stop_requested() is True
        transport.reset()
        assert transport.stop_requested() is False

    def test_reset_clears_all_state(self, transport):
        transport.enqueue(_shard(0))
        transport.enqueue(_shard(1))
        claim = transport.claim(0, "w1")
        transport.complete(claim, _result(0))
        transport.claim(1, "w2")
        transport.stop()
        transport.beat("w1")
        transport.reset()
        assert transport.pending_ids() == []
        assert transport.claims() == []
        assert transport.done_ids() == []
        assert transport.stop_requested() is False

    def test_heartbeat_advances(self, transport):
        assert transport.heartbeat_mtime("w1") is None
        transport.beat("w1")
        first = transport.heartbeat_mtime("w1")
        assert first is not None
        # The filesystem backend's beats are mtimes; give the clock a tick
        # so "advanced" is observable on coarse-timestamp filesystems too.
        time.sleep(0.02)
        transport.beat("w1")
        second = transport.heartbeat_mtime("w1")
        assert second is not None
        assert second > first
        assert transport.heartbeat_mtime("w2") is None

    def test_worker_target_round_trips_through_factory(self, transport):
        from repro.experiments.transport import create_transport

        peer = create_transport(transport.worker_target())
        assert peer.scheme == transport.scheme
        transport.enqueue(_shard(9))
        assert peer.pending_ids() == [9]


class TestFilesystemTransportContract(TransportContractTests):
    @pytest.fixture
    def transport(self, tmp_path):
        work = WorkDir(str(tmp_path / "work"))
        work.reset()
        return work


class TestInMemoryTransportContract(TransportContractTests):
    @pytest.fixture
    def transport(self, request):
        name = f"contract-{request.node.name}"
        backend = InMemoryTransport.named(name)
        backend.reset()
        return backend


class _ThreadedServer(socketserver.ThreadingMixIn, WSGIServer):
    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 - wsgiref signature
        pass


@pytest.fixture(scope="module")
def shard_server():
    """One live threaded shard server for the whole HTTP contract run."""
    app = create_app(db=":memory:", background=True)
    server = make_server(
        "127.0.0.1", 0, app,
        server_class=_ThreadedServer, handler_class=_QuietHandler,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        thread.join(timeout=5)


class TestHttpTransportContract(TransportContractTests):
    @pytest.fixture
    def transport(self, shard_server, request):
        queue = request.node.name.replace("[", ".").replace("]", "")
        backend = HttpTransport(f"{shard_server}/queues/{queue}")
        backend.reset()
        return backend


def test_every_registered_scheme_has_contract_coverage():
    """A transport scheme without a contract subclass is a build error."""
    covered = {
        WorkDir.scheme,
        InMemoryTransport.scheme,
        HttpTransport.scheme,
    }
    assert covered == set(registered_schemes()), (
        "every registered transport scheme needs a TransportContractTests "
        f"subclass; covered={sorted(covered)} "
        f"registered={sorted(registered_schemes())}"
    )


def test_encode_decode_round_trip_is_byte_stable():
    """Same payload, same bytes — enqueue order can't leak into the wire."""
    shard = _shard(11)
    assert encode_wire(shard) == encode_wire(shard)
