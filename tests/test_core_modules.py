"""Tests for the FPGA monitoring modules."""

import pytest

from repro.core.capture import PulseCapture
from repro.core.modules.axis_tracker import AxisTracker
from repro.core.modules.edge_detect import EdgeDetector
from repro.core.modules.homing_detect import HomingDetector
from repro.core.modules.pulse_gen import PulseGenerator
from repro.core.modules.uart_export import UartExporter
from repro.electronics.harness import SignalHarness
from repro.electronics.uart import UartBus, unpack_step_counts
from repro.errors import OfframpsError
from repro.sim.time import MS, S


class TestEdgeDetector:
    def test_counts_pulses(self, sim):
        harness = SignalHarness(sim)
        detector = EdgeDetector(harness.upstream("X_STEP"))
        for _ in range(5):
            harness.upstream("X_STEP").pulse()
        assert detector.rising_edges == 5

    def test_counts_rising_level_edges_only(self, sim):
        harness = SignalHarness(sim)
        detector = EdgeDetector(harness.upstream("X_MIN"))
        wire = harness.upstream("X_MIN")
        wire.drive(1)
        wire.drive(0)
        wire.drive(1)
        assert detector.rising_edges == 2

    def test_listener_fanout(self, sim):
        harness = SignalHarness(sim)
        detector = EdgeDetector(harness.upstream("X_STEP"))
        seen = []
        detector.on_rising(seen.append)
        sim.schedule_at(77, harness.upstream("X_STEP").pulse)
        sim.run()
        assert seen == [77]
        assert detector.last_event_ns == 77


class TestPulseGenerator:
    def test_burst_count_and_spacing(self, sim):
        times = []
        generator = PulseGenerator(sim, lambda width: times.append(sim.now))
        generator.burst(5, frequency_hz=1000.0)
        sim.run()
        assert len(times) == 5
        assert times[1] - times[0] == 1_000_000  # 1 kHz -> 1 ms

    def test_on_done_callback(self, sim):
        done = []
        generator = PulseGenerator(sim, lambda width: None)
        generator.burst(3, 1000.0, on_done=lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        assert generator.pulses_generated == 3

    def test_stop_mid_burst(self, sim):
        emitted = []
        generator = PulseGenerator(sim, lambda width: emitted.append(1))
        generator.burst(100, 1000.0)
        sim.run(until_ns=5_500_000)
        generator.stop()
        sim.run()
        assert len(emitted) == 5

    def test_busy_rejects_second_burst(self, sim):
        generator = PulseGenerator(sim, lambda width: None)
        generator.burst(10, 1000.0)
        with pytest.raises(OfframpsError):
            generator.burst(10, 1000.0)

    def test_invalid_burst_params(self, sim):
        generator = PulseGenerator(sim, lambda width: None)
        with pytest.raises(OfframpsError):
            generator.burst(0, 1000.0)


def _home_sequence(sim, harness, order=("X_MIN", "Y_MIN", "Z_MIN")):
    at = 100
    for name in order:
        sim.schedule_at(at, lambda n=name: harness.upstream(n).drive(1))
        sim.schedule_at(at + 50, lambda n=name: harness.upstream(n).drive(0))
        at += 100


class TestHomingDetector:
    def test_detects_ordered_sequence(self, sim):
        harness = SignalHarness(sim)
        detector = HomingDetector(harness)
        _home_sequence(sim, harness)
        sim.run()
        assert detector.homed
        assert detector.homed_at_ns == 300

    def test_repeated_actuations_ignored(self, sim):
        harness = SignalHarness(sim)
        detector = HomingDetector(harness)
        # X bounces twice (back-off + re-bump) before Y and Z
        for at, name, value in [
            (10, "X_MIN", 1), (20, "X_MIN", 0), (30, "X_MIN", 1),
            (40, "Y_MIN", 1), (50, "Z_MIN", 1),
        ]:
            sim.schedule_at(at, lambda n=name, v=value: harness.upstream(n).drive(v))
        sim.run()
        assert detector.homed

    def test_out_of_order_not_homed(self, sim):
        harness = SignalHarness(sim)
        detector = HomingDetector(harness)
        _home_sequence(sim, harness, order=("Z_MIN", "Y_MIN", "X_MIN"))
        sim.run()
        assert not detector.homed

    def test_on_homed_callback(self, sim):
        harness = SignalHarness(sim)
        detector = HomingDetector(harness)
        seen = []
        detector.on_homed(seen.append)
        _home_sequence(sim, harness)
        sim.run()
        assert seen == [300]

    def test_late_subscriber_fires_immediately(self, sim):
        harness = SignalHarness(sim)
        detector = HomingDetector(harness)
        _home_sequence(sim, harness)
        sim.run()
        seen = []
        detector.on_homed(seen.append)
        assert seen == [300]

    def test_reset(self, sim):
        harness = SignalHarness(sim)
        detector = HomingDetector(harness)
        _home_sequence(sim, harness)
        sim.run()
        detector.reset()
        assert not detector.homed


class TestAxisTracker:
    def test_counts_signed_steps(self, sim):
        harness = SignalHarness(sim)
        tracker = AxisTracker(harness)
        tracker.arm()
        harness.upstream("X_DIR").drive(1)
        for _ in range(10):
            harness.upstream("X_STEP").pulse()
        harness.upstream("X_DIR").drive(0)
        for _ in range(3):
            harness.upstream("X_STEP").pulse()
        assert tracker.counts["X"] == 7

    def test_ignores_steps_before_arming(self, sim):
        harness = SignalHarness(sim)
        tracker = AxisTracker(harness)
        harness.upstream("X_STEP").pulse()
        tracker.arm()
        assert tracker.counts["X"] == 0

    def test_arm_resets_counts(self, sim):
        harness = SignalHarness(sim)
        tracker = AxisTracker(harness)
        tracker.arm()
        harness.upstream("E_STEP").pulse()
        tracker.arm()
        assert tracker.counts["E"] == 0

    def test_first_step_event(self, sim):
        harness = SignalHarness(sim)
        tracker = AxisTracker(harness)
        seen = []
        tracker.arm()
        tracker.on_first_step(seen.append)
        sim.schedule_at(500, harness.upstream("Y_STEP").pulse)
        sim.schedule_at(600, harness.upstream("Y_STEP").pulse)
        sim.run()
        assert seen == [500]

    def test_snapshot_is_copy(self, sim):
        harness = SignalHarness(sim)
        tracker = AxisTracker(harness)
        tracker.arm()
        snap = tracker.snapshot()
        harness.upstream("X_STEP").pulse()
        assert snap["X"] == 0


class TestUartExporter:
    def _bench(self, sim, period_ms=100):
        harness = SignalHarness(sim)
        detector = HomingDetector(harness)
        tracker = AxisTracker(harness)
        bus = UartBus()
        exporter = UartExporter(sim, tracker, detector, bus=bus, period_ms=period_ms)
        capture = PulseCapture(bus)
        return harness, detector, tracker, exporter, capture

    def test_no_export_before_homing(self, sim):
        harness, detector, tracker, exporter, capture = self._bench(sim)
        sim.run(until_ns=2 * S)
        assert len(capture) == 0

    def test_export_starts_after_first_step(self, sim):
        harness, detector, tracker, exporter, capture = self._bench(sim)
        _home_sequence(sim, harness)
        sim.schedule_at(1 * S, harness.upstream("X_STEP").pulse)
        sim.run(until_ns=int(1.55 * S))
        # first step at 1s; transactions at 1.1s, 1.2s, ... 1.5s
        assert len(capture) == 5
        assert capture[0].time_ns == 1 * S + 100 * MS

    def test_transaction_contents(self, sim):
        harness, detector, tracker, exporter, capture = self._bench(sim)
        _home_sequence(sim, harness)
        harness.upstream("X_DIR").drive(1)
        sim.schedule_at(1 * S, harness.upstream("X_STEP").pulse)
        sim.schedule_at(int(1.05 * S), harness.upstream("X_STEP").pulse)
        sim.run(until_ns=int(1.15 * S))
        assert capture[0].x == 2
        assert capture[0].index == 1

    def test_custom_period(self, sim):
        harness, detector, tracker, exporter, capture = self._bench(sim, period_ms=50)
        _home_sequence(sim, harness)
        sim.schedule_at(1 * S, harness.upstream("X_STEP").pulse)
        sim.run(until_ns=int(1.26 * S))
        assert len(capture) == 5

    def test_stop_ends_stream(self, sim):
        harness, detector, tracker, exporter, capture = self._bench(sim)
        _home_sequence(sim, harness)
        sim.schedule_at(1 * S, harness.upstream("X_STEP").pulse)
        sim.run(until_ns=int(1.35 * S))
        exporter.stop()
        sim.run(until_ns=3 * S)
        assert len(capture) == 3

    def test_invalid_period(self, sim):
        harness = SignalHarness(sim)
        detector = HomingDetector(harness)
        tracker = AxisTracker(harness)
        with pytest.raises(OfframpsError):
            UartExporter(sim, tracker, detector, period_ms=0)

    def test_frames_are_16_bytes(self, sim):
        harness, detector, tracker, exporter, capture = self._bench(sim)
        frames = []
        exporter.bus.on_frame(lambda t, frame: frames.append(frame))
        _home_sequence(sim, harness)
        sim.schedule_at(1 * S, harness.upstream("X_STEP").pulse)
        sim.run(until_ns=int(1.25 * S))
        assert frames and all(len(frame) == 16 for frame in frames)
        assert unpack_step_counts(frames[0])[0] == tracker.counts["X"]
