"""Persistent GoldenPrintCache tests: key stability, persistence, corruption.

The on-disk cache is the layer that lets golden prints survive across
processes and runs; these tests pin down the properties that make that safe:
content keys are identical in every process, disk entries round-trip through
fresh cache instances, and any damaged entry degrades to a miss (i.e. a
re-simulation) rather than a wrong result.
"""

import multiprocessing
import os
import pickle

import pytest

from tests.conftest import corrupt_file, corrupt_pickle

from repro.experiments.batch import (
    _CACHE_FORMAT,
    BatchRunner,
    GoldenPrintCache,
    SessionSpec,
    resolve_cache,
    shared_cache,
)


def _spec(tiny_program, **overrides):
    defaults = dict(
        program=tiny_program, noise_sigma=0.0005, noise_seed=11, cacheable=True
    )
    defaults.update(overrides)
    return SessionSpec(**defaults)


def _key_in_subprocess(spec: SessionSpec) -> str:
    return spec.content_key()


class TestKeyStabilityAcrossProcesses:
    def test_content_key_identical_in_spawned_process(self, tiny_program):
        # ``spawn`` re-imports everything from scratch, so this catches any
        # dependence on per-process state (hash randomization, id(), ...).
        spec = _spec(tiny_program)
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child_key = pool.apply(_key_in_subprocess, (spec,))
        assert child_key == spec.content_key()


class TestDiskPersistence:
    def test_put_then_get_through_fresh_instance(self, tiny_program, tmp_path):
        spec = _spec(tiny_program)
        writer = GoldenPrintCache(directory=str(tmp_path))
        summary = BatchRunner(workers=1, cache=writer).run([spec])[0]
        assert writer.misses == 1  # the initial lookup

        reader = GoldenPrintCache(directory=str(tmp_path))
        assert len(reader) == 0  # nothing in memory yet
        restored = reader.get(spec.content_key())
        assert restored is not None
        assert reader.hits == 1
        assert reader.disk_hits == 1
        assert reader.misses == 0
        assert restored.transactions == summary.transactions
        assert restored.final_counts == summary.final_counts
        assert restored.status is summary.status

    def test_second_batch_rereads_zero_sessions(self, tiny_program, tmp_path):
        spec = _spec(tiny_program)
        BatchRunner(workers=1, cache=str(tmp_path)).run([spec])

        cache = resolve_cache(str(tmp_path))
        second = BatchRunner(workers=1, cache=cache).run([spec])[0]
        assert cache.hits == 1 and cache.misses == 0
        assert second.completed

    def test_memory_miss_counts_without_directory(self, tiny_program):
        cache = GoldenPrintCache()
        assert cache.get("nope") is None
        assert cache.misses == 1 and cache.hits == 0 and cache.disk_hits == 0

    def test_failed_disk_write_warns_but_keeps_memory_entry(
        self, tiny_program, tmp_path
    ):
        # A full/read-only filesystem must not discard a completed batch.
        cache = GoldenPrintCache(directory=str(tmp_path))
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache.directory = str(blocker / "sub")  # mkstemp will fail here
        spec = _spec(tiny_program)
        with pytest.warns(RuntimeWarning, match="not persisted"):
            summary = BatchRunner(workers=1, cache=cache).run([spec])[0]
        assert summary.completed
        assert cache._entries[spec.content_key()] is summary

    def test_clear_keeps_disk_entries(self, tiny_program, tmp_path):
        spec = _spec(tiny_program)
        cache = GoldenPrintCache(directory=str(tmp_path))
        BatchRunner(workers=1, cache=cache).run([spec])
        cache.clear()
        assert len(cache) == 0
        assert cache.get(spec.content_key()) is not None  # reloaded from disk
        assert cache.disk_hits == 1

    def test_probe_sees_memory_and_disk_without_loading_or_counting(
        self, tiny_program, tmp_path
    ):
        spec = _spec(tiny_program)
        cache = GoldenPrintCache(directory=str(tmp_path))
        BatchRunner(workers=1, cache=cache).run([spec])
        cache.hits = cache.misses = cache.disk_hits = 0
        assert cache.probe(spec.content_key())  # in memory
        assert not cache.probe("absent-key")

        reader = GoldenPrintCache(directory=str(tmp_path))
        assert reader.probe(spec.content_key())  # on disk
        assert len(reader) == 0  # ...but nothing was deserialized
        # Probes never touch the hit/miss accounting.
        for instance in (cache, reader):
            assert (instance.hits, instance.misses, instance.disk_hits) == (0, 0, 0)

    def test_probe_true_for_corrupt_entry_then_get_misses(
        self, tiny_program, tmp_path
    ):
        # The documented probe caveat: presence is not validity. A caller
        # acting on a probe must tolerate the subsequent get() miss.
        spec = _spec(tiny_program)
        GoldenPrintCache(directory=str(tmp_path)).put(
            spec.content_key(), BatchRunner(workers=1).run([spec])[0]
        )
        path = os.path.join(str(tmp_path), f"{spec.content_key()}.summary.pkl")
        corrupt_file(path, b"torn write garbage")
        reader = GoldenPrintCache(directory=str(tmp_path))
        assert reader.probe(spec.content_key())
        assert reader.get(spec.content_key()) is None


class TestCorruptedEntries:
    @pytest.fixture
    def populated(self, tiny_program, tmp_path):
        spec = _spec(tiny_program)
        cache = GoldenPrintCache(directory=str(tmp_path))
        BatchRunner(workers=1, cache=cache).run([spec])
        key = spec.content_key()
        path = os.path.join(str(tmp_path), f"{key}.summary.pkl")
        assert os.path.exists(path)
        return spec, key, path

    def test_garbage_entry_is_a_miss_and_resimulates(self, populated, tmp_path):
        spec, key, path = populated
        corrupt_file(path, b"not a pickle at all")
        fresh = GoldenPrintCache(directory=str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.misses == 1
        # The batch falls back to a full re-simulation and repopulates.
        summary = BatchRunner(workers=1, cache=fresh).run([spec])[0]
        assert summary.completed
        assert fresh.get(key) is not None

    def test_truncated_entry_is_a_miss(self, populated, tmp_path):
        _, key, path = populated
        with open(path, "rb") as handle:
            blob = handle.read()
        corrupt_file(path, blob[: len(blob) // 2])
        fresh = GoldenPrintCache(directory=str(tmp_path))
        assert fresh.get(key) is None

    def test_wrong_key_entry_is_a_miss(self, populated, tmp_path):
        _, key, path = populated
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["key"] = "0" * 64
        corrupt_pickle(path, payload)
        fresh = GoldenPrintCache(directory=str(tmp_path))
        assert fresh.get(key) is None

    def test_wrong_format_version_is_a_miss(self, populated, tmp_path):
        _, key, path = populated
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["format"] = _CACHE_FORMAT + 1
        corrupt_pickle(path, payload)
        fresh = GoldenPrintCache(directory=str(tmp_path))
        assert fresh.get(key) is None

    def test_non_dict_payload_is_a_miss(self, populated, tmp_path):
        _, key, path = populated
        corrupt_pickle(path, ["wrong", "shape"])
        fresh = GoldenPrintCache(directory=str(tmp_path))
        assert fresh.get(key) is None


class TestCacheOptionResolution:
    def test_string_resolves_to_persistent_cache(self, tmp_path):
        cache = resolve_cache(str(tmp_path / "golden"))
        assert isinstance(cache, GoldenPrintCache)
        assert cache.directory == str(tmp_path / "golden")
        assert os.path.isdir(cache.directory)

    def test_env_var_makes_shared_cache_persistent(self, tmp_path, monkeypatch):
        import repro.experiments.batch as batch

        monkeypatch.setattr(batch, "_SHARED_CACHE", None)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert shared_cache().directory == str(tmp_path / "env-cache")

    def test_shared_cache_defaults_to_memory_only(self, monkeypatch):
        import repro.experiments.batch as batch

        monkeypatch.setattr(batch, "_SHARED_CACHE", None)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert shared_cache().directory is None
