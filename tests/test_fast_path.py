"""Fast path vs precise path: the byte-identical-verdict contract, unit-level.

Three layers of pinning:

- **Property test** — random trapezoid profiles through the scalar
  :meth:`StepperExecutor._step_times` and the vectorized
  :meth:`StepperExecutor._step_times_array` must produce *exactly* the same
  integers, including the nondecreasing-clamp ties. This is the equality the
  whole fast path rests on.
- **Wire batch protocol** — ``pulse_batch`` must update wire statistics
  exactly as the equivalent sequence of ``pulse`` calls would, and any
  subscriber that is not batch-capable (or whose ``ready`` check declines)
  must veto bulk delivery.
- **Session equivalence** — full simulated prints (clean, Trojaned,
  thermal-kill, replay) must be observably identical fast vs precise:
  status, kill reason, duration, axis totals, missed steps, every captured
  UART transaction, and — when traced — every wire trace event.
"""

import random

import pytest

from repro.core.trojans import make_trojan
from repro.electronics.harness import SignalHarness
from repro.errors import ReproError
from repro.experiments.runner import run_print
from repro.experiments.scenario import TABLE1_TROJAN_PARAMS
from repro.firmware.config import MarlinConfig
from repro.firmware.planner import MotionBlock, MotionPlanner
from repro.firmware.stepper import StepperExecutor
from repro.sim.kernel import Simulator
from repro.sim.signals import StepWire

np = pytest.importorskip("numpy")


# ----------------------------------------------------------------------
# Property test: scalar and vectorized step-time solvers agree exactly
# ----------------------------------------------------------------------
def _random_block(rng: random.Random) -> MotionBlock:
    """A random-but-valid trapezoid: any mix of accel/cruise/decel shapes."""
    distance = rng.uniform(0.05, 40.0)
    nominal = rng.uniform(5.0, 200.0)
    accel = rng.uniform(100.0, 3000.0)
    entry = rng.uniform(0.0, nominal)
    exit_ = rng.uniform(0.0, nominal)
    major = rng.randint(1, 4000)
    steps = {"X": major, "Y": rng.randint(0, major), "Z": 0, "E": rng.randint(0, major)}
    if rng.random() < 0.5:
        steps["Y"] = -steps["Y"]
    unit = {axis: 0.0 for axis in steps}
    unit["X"] = 1.0
    return MotionBlock(
        steps=steps,
        distance_mm=distance,
        nominal_speed=nominal,
        acceleration=accel,
        unit=unit,
        max_entry_speed=nominal,
        entry_speed=entry,
        exit_speed=exit_,
    )


def _executor(noise_sigma: float = 0.0, seed: int = 0) -> StepperExecutor:
    sim = Simulator()
    config = MarlinConfig(time_noise_sigma=noise_sigma, time_noise_seed=seed)
    harness = SignalHarness(sim)
    planner = MotionPlanner(config)
    return StepperExecutor(sim, config, harness, planner, fast_path=True)


class TestStepTimeEquality:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_trapezoids_match_scalar_reference(self, seed):
        rng = random.Random(900 + seed)
        execu = _executor()
        for _ in range(25):
            block = _random_block(rng)
            scalar = execu._step_times(block)
            vector = execu._step_times_array(block)
            assert vector.dtype == np.int64
            assert list(scalar) == vector.tolist()

    @pytest.mark.parametrize("seed", range(4))
    def test_noisy_blocks_match_when_rng_streams_align(self, seed):
        # Each solver draws exactly one noise sample per block; resetting the
        # stream between calls pins both paths to the same draw.
        rng = random.Random(7700 + seed)
        execu = _executor(noise_sigma=0.0005, seed=seed)
        for _ in range(25):
            block = _random_block(rng)
            execu._rng = random.Random(seed)
            scalar = execu._step_times(block)
            execu._rng = random.Random(seed)
            vector = execu._step_times_array(block)
            assert list(scalar) == vector.tolist()

    def test_nondecreasing_clamp_ties_preserved(self):
        # A fast, dense block guarantees sub-ns step intervals and therefore
        # rounding ties; the clamp (scalar loop vs maximum.accumulate) must
        # resolve them identically and nondecreasingly.
        block = MotionBlock(
            steps={"X": 4000, "Y": 0, "Z": 0, "E": 0},
            distance_mm=0.001,
            nominal_speed=300.0,
            acceleration=5000.0,
            unit={"X": 1.0, "Y": 0.0, "Z": 0.0, "E": 0.0},
            max_entry_speed=300.0,
            entry_speed=300.0,
            exit_speed=300.0,
        )
        execu = _executor()
        scalar = execu._step_times(block)
        vector = execu._step_times_array(block)
        assert list(scalar) == vector.tolist()
        assert any(a == b for a, b in zip(scalar, scalar[1:]))  # ties occurred
        assert all(b >= a for a, b in zip(scalar, scalar[1:]))

    def test_closed_form_dda_matches_accumulator(self):
        # The chunk path derives pulses from the closed-form quotient table;
        # the precise path increments a Bresenham accumulator. Same pulses.
        rng = random.Random(31)
        for _ in range(50):
            count = rng.randint(1, 500)
            axis_steps = rng.randint(0, count)
            acc = count // 2
            reference = []
            for i in range(count):
                acc += axis_steps
                if acc >= count:
                    acc -= count
                    reference.append(i)
            cumulative = (
                count // 2 + np.arange(0, count + 1, dtype=np.int64) * axis_steps
            ) // count
            closed_form = np.nonzero(cumulative[1:] > cumulative[:-1])[0]
            assert closed_form.tolist() == reference


# ----------------------------------------------------------------------
# Wire batch protocol
# ----------------------------------------------------------------------
class TestWireBatchProtocol:
    def test_plain_subscriber_vetoes_batches(self, sim):
        wire = StepWire(sim, "X_STEP")
        wire.on_pulse(lambda w, t, width: None)
        assert not wire.batch_ready(5)

    def test_batch_capable_subscriber_accepts(self, sim):
        wire = StepWire(sim, "X_STEP")
        wire.on_pulse(lambda w, t, width: None, batch=lambda w, times, width: None)
        assert wire.batch_ready(5)

    def test_ready_check_can_decline(self, sim):
        wire = StepWire(sim, "X_STEP")
        wire.on_pulse(
            lambda w, t, width: None,
            batch=lambda w, times, width: None,
            ready=lambda count: count <= 3,
        )
        assert wire.batch_ready(3)
        assert not wire.batch_ready(4)

    def test_mixed_subscribers_veto_together(self, sim):
        wire = StepWire(sim, "X_STEP")
        wire.on_pulse(lambda w, t, width: None, batch=lambda w, times, width: None)
        wire.on_pulse(lambda w, t, width: None)  # plain tap (e.g. a test probe)
        assert not wire.batch_ready(1)

    def test_pulse_batch_stats_match_sequential_pulses(self, sim):
        times = [1000, 3000, 3500, 9000]
        width = 2000

        sequential = StepWire(sim, "X_STEP")
        for t in times:
            sim.run(until_ns=t)
            sequential.pulse(width)

        batched = StepWire(Simulator(), "X_STEP")
        batched.on_pulse(lambda w, t, wd: None, batch=lambda w, ts, wd: None)
        batched.pulse_batch(np.asarray(times, dtype=np.int64), width)

        for attr in ("pulse_count", "last_pulse_ns", "min_interval_ns", "min_width_ns"):
            assert getattr(batched, attr) == getattr(sequential, attr), attr

    def test_pulse_batch_delivers_exact_timestamps(self, sim):
        wire = StepWire(sim, "X_STEP")
        seen = []
        wire.on_pulse(
            lambda w, t, width: None,
            batch=lambda w, ts, width: seen.extend(int(t) for t in ts),
        )
        wire.pulse_batch(np.asarray([10, 20, 30], dtype=np.int64), 2000)
        assert seen == [10, 20, 30]
        assert wire.pulse_count == 3


# ----------------------------------------------------------------------
# Session-level equivalence (the contract, end to end)
# ----------------------------------------------------------------------
def _observables(result):
    """Everything the experiments score, as one comparable structure."""
    return {
        "status": result.status,
        "kill_reason": result.kill_reason,
        "duration_s": result.duration_s,
        "counts": result.final_counts(),
        "missed_steps": result.missed_steps,
        "transactions": [
            (t.index, t.x, t.y, t.z, t.e, t.time_ns)
            for t in result.capture.transactions
        ],
        "trace": {
            name: [
                (e.time_ns, e.kind, e.value)
                for e in result.tracer.trace(name).events
            ]
            for name in (result.tracer.signal_names if result.tracer else ())
        },
    }


def _pair(tiny_program, trojan_id=None, **kwargs):
    # Each run needs its own Trojan instance: a Trojan attaches exactly once.
    def trojan():
        if trojan_id is None:
            return None
        return make_trojan(trojan_id, **dict(TABLE1_TROJAN_PARAMS[trojan_id]))

    precise = run_print(tiny_program, fast_path=False, trojan=trojan(), **kwargs)
    fast = run_print(tiny_program, fast_path=True, trojan=trojan(), **kwargs)
    return precise, fast


class TestSessionEquivalence:
    def test_clean_print_with_full_trace(self, tiny_program):
        precise, fast = _pair(tiny_program, trace_signals=True)
        assert _observables(precise) == _observables(fast)
        assert fast.events_dispatched < precise.events_dispatched  # it batched

    def test_noisy_print(self, tiny_program):
        precise, fast = _pair(tiny_program, noise_sigma=0.0005, noise_seed=17)
        assert _observables(precise) == _observables(fast)

    def test_t3_retraction_trojan(self, tiny_program):
        # T3 intercepts E_STEP and reads Y timing from inside the intercept:
        # the strongest cross-wire ordering dependency in the suite.
        precise, fast = _pair(
            tiny_program, trojan_id="T3", trojan_seed=42, grace_s=5.0
        )
        assert _observables(precise) == _observables(fast)

    def test_t6_thermal_kill(self, tiny_program):
        precise, fast = _pair(
            tiny_program, trojan_id="T6", trojan_seed=42, grace_s=5.0
        )
        assert precise.killed and fast.killed
        assert _observables(precise) == _observables(fast)

    def test_t7_damage_after_kill(self, tiny_program):
        precise, fast = _pair(
            tiny_program, trojan_id="T7", trojan_seed=42, grace_s=30.0
        )
        assert _observables(precise) == _observables(fast)
        assert precise.plant.hotend.damaged == fast.plant.hotend.damaged

    def test_t8_missed_steps(self, tiny_program):
        precise, fast = _pair(
            tiny_program, trojan_id="T8", trojan_seed=42, grace_s=5.0
        )
        assert precise.missed_steps > 0
        assert _observables(precise) == _observables(fast)

    def test_homing_and_endstops_identical(self, tiny_program):
        # Homing runs precise by construction; the equality here proves the
        # endstop range vetoes keep ordinary motion off the endstops' backs.
        precise, fast = _pair(tiny_program)
        assert _observables(precise) == _observables(fast)


class TestReplayMode:
    def test_replay_produces_identical_wire_traces(self, tiny_program):
        traced = run_print(tiny_program, trace_signals=True, fast_path=True)
        replay = run_print(tiny_program, wire_traces_only=True, fast_path=True)
        assert replay.tracer is not None

        def dump(tracer):
            return {
                name: [(e.time_ns, e.kind) for e in tracer.trace(name).events]
                for name in tracer.signal_names
            }

        assert dump(replay.tracer) == dump(traced.tracer)

    def test_replay_skips_uart_and_sampling(self, tiny_program):
        replay = run_print(tiny_program, wire_traces_only=True, fast_path=True)
        assert replay.capture.transactions == []
        assert replay.plant.trace.samples == []

    def test_replay_is_cheaper_than_full_emulation(self, tiny_program):
        full = run_print(tiny_program, trace_signals=True, fast_path=True)
        replay = run_print(tiny_program, wire_traces_only=True, fast_path=True)
        assert replay.events_dispatched < full.events_dispatched

    def test_replay_refuses_trojans(self, tiny_program):
        with pytest.raises(ReproError):
            run_print(
                tiny_program,
                wire_traces_only=True,
                trojan=make_trojan("T2", **dict(TABLE1_TROJAN_PARAMS["T2"])),
            )
