"""Randomized fast/precise/distributed parity: invariants that rot silently.

Three byte-identity contracts, one harness:

* **Topology parity** — serial in-process, ``--hosts 2`` (verdict shipping,
  worker-side scoring), ``--hosts 2 --workers 2`` (per-host parallel batches
  on top) must produce **byte-identical** verdict CSV rows for the same
  scenarios.
* **Transport parity** — the same distributed sweep over the filesystem
  work dir, over an HTTP shard queue (real spawned worker subprocesses
  talking to a live server), and with elastic work stealing enabled must
  all reproduce the serial rows byte for byte: how bytes travel and how
  finely work is sharded can never leak into verdicts.
* **Execution-path parity** — the vectorized/batched fast path and the
  per-step precise path must produce **byte-identical** verdict CSV rows,
  serially and across the distributed topologies.

Each run gets its *own* cold cache directory (and fast/precise sessions key
differently anyway), so every parity below is between genuinely independent
executions, not between a run and its cache.

The subsets are seeded-random draws from the union of the ``smoke`` and
``t2-curve`` grids: small enough to keep the harness in tier-1 time, random
enough that sharding boundaries, golden-group splits, and detector mixes
shift from seed to seed instead of pinning one lucky configuration.
"""

import random
import socketserver
import threading
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

import pytest

from repro.experiments.report import render_csv
from repro.experiments.scenario import grid_scenarios, run_sweep


def _scenario_pool():
    """The draw pool: smoke + t2-curve, deduplicated by scenario name."""
    pool = []
    seen = set()
    for grid in ("smoke", "t2-curve"):
        for scenario in grid_scenarios(grid):
            if scenario.name not in seen:
                seen.add(scenario.name)
                pool.append(scenario)
    return pool


def _csv_rows(result):
    """The verdict rows only (no header), the unit of byte-parity."""
    return render_csv(result).splitlines()[1:]


@pytest.mark.slow
@pytest.mark.parametrize("seed", (1105, 2207, 3309))
def test_random_subset_parity_across_topologies(seed, sweep_env):
    pool = _scenario_pool()
    rng = random.Random(seed)
    subset = rng.sample(pool, k=rng.randint(2, 3))

    serial = run_sweep(
        subset,
        cache=sweep_env.cache("serial-cache"),
        grid=f"parity-{seed}",
    )
    hosts_only = run_sweep(
        subset,
        cache=sweep_env.cache("hosts-cache"),
        grid=f"parity-{seed}",
        hosts=2,
        work_dir=sweep_env.work_dir("hosts-work"),
    )
    composed = run_sweep(
        subset,
        cache=sweep_env.cache("composed-cache"),
        grid=f"parity-{seed}",
        hosts=2,
        workers=2,
        work_dir=sweep_env.work_dir("composed-work"),
    )

    reference = _csv_rows(serial)
    assert reference  # the draw produced scoreable scenarios
    assert _csv_rows(hosts_only) == reference
    assert _csv_rows(composed) == reference
    # Same independent executions → same simulation economics.
    for distributed in (hosts_only, composed):
        assert distributed.ok == serial.ok
        assert distributed.sessions_simulated == serial.sessions_simulated
        assert distributed.transport == "verdict rows"


class _ThreadedWSGI(socketserver.ThreadingMixIn, WSGIServer):
    daemon_threads = True


class _QuietWSGI(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 - wsgiref signature
        pass


@pytest.fixture(scope="module")
def shard_server():
    """A live threaded shard server for the HTTP-transport parity runs."""
    from repro.service.app import create_app

    app = create_app(db=":memory:", background=True)
    server = make_server(
        "127.0.0.1", 0, app,
        server_class=_ThreadedWSGI, handler_class=_QuietWSGI,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        thread.join(timeout=5)


@pytest.mark.slow
@pytest.mark.parametrize("seed", (7719, 8821))
def test_random_subset_parity_across_transports(seed, sweep_env, shard_server):
    """Serial vs filesystem vs HTTP vs steal-enabled: identical rows.

    The HTTP runs spawn real ``repro worker`` subprocesses whose only link
    to the coordinator is the queue URL — actual machine-boundary wiring,
    not an in-process shortcut.
    """
    pool = _scenario_pool()
    rng = random.Random(seed)
    subset = rng.sample(pool, k=rng.randint(2, 3))

    serial = run_sweep(
        subset,
        cache=sweep_env.cache("serial-cache"),
        grid=f"tparity-{seed}",
    )
    filesystem = run_sweep(
        subset,
        cache=sweep_env.cache("fs-cache"),
        grid=f"tparity-{seed}",
        hosts=2,
        work_dir=sweep_env.work_dir("fs-work"),
    )
    http = run_sweep(
        subset,
        cache=sweep_env.cache("http-cache"),
        grid=f"tparity-{seed}",
        hosts=2,
        transport=f"{shard_server}/queues/tparity-{seed}",
    )
    steal = run_sweep(
        subset,
        cache=sweep_env.cache("steal-cache"),
        grid=f"tparity-{seed}",
        hosts=2,
        steal=True,
        transport=f"{shard_server}/queues/tparity-steal-{seed}",
    )

    reference = _csv_rows(serial)
    assert reference
    for distributed in (filesystem, http, steal):
        assert _csv_rows(distributed) == reference
        assert distributed.ok == serial.ok
        assert distributed.sessions_simulated == serial.sessions_simulated
        assert distributed.transport == "verdict rows"


@pytest.mark.slow
@pytest.mark.parametrize("seed", (4411, 5513))
def test_fast_vs_precise_parity_serial(seed, sweep_env):
    """The byte-identical-verdict contract, at the sweep level."""
    pool = _scenario_pool()
    rng = random.Random(seed)
    subset = rng.sample(pool, k=rng.randint(2, 3))

    precise = run_sweep(
        subset,
        cache=sweep_env.cache("precise-cache"),
        grid=f"precise-{seed}",
        fast_path=False,
    )
    fast = run_sweep(
        subset,
        cache=sweep_env.cache("fast-cache"),
        grid=f"fast-{seed}",
        fast_path=True,
    )
    reference = _csv_rows(precise)
    assert reference
    assert _csv_rows(fast) == reference
    assert fast.ok == precise.ok
    assert fast.sessions_simulated == precise.sessions_simulated


@pytest.mark.slow
def test_fast_vs_precise_parity_composed_topology(sweep_env):
    """Fast path under ``--hosts 2 --workers 2`` == precise path serial."""
    pool = _scenario_pool()
    subset = random.Random(6617).sample(pool, k=2)

    precise_serial = run_sweep(
        subset,
        cache=sweep_env.cache("precise-cache"),
        grid="xpath",
        fast_path=False,
    )
    fast_composed = run_sweep(
        subset,
        cache=sweep_env.cache("fast-composed-cache"),
        grid="xpath",
        hosts=2,
        workers=2,
        work_dir=sweep_env.work_dir("fast-composed-work"),
        fast_path=True,
    )
    reference = _csv_rows(precise_serial)
    assert reference
    assert _csv_rows(fast_composed) == reference


@pytest.mark.slow
def test_fast_and_precise_sessions_never_share_cache(sweep_env):
    """The fast_path flag is part of the session content key: a precise
    sweep against a cache warmed by a fast sweep must recompute, not alias."""
    pool = _scenario_pool()
    subset = [pool[0]]
    shared = sweep_env.cache("shared-cache")

    fast = run_sweep(subset, cache=shared, grid="alias", fast_path=True)
    precise = run_sweep(subset, cache=shared, grid="alias", fast_path=False)
    assert _csv_rows(precise) == _csv_rows(fast)
    # A cache hit would have left sessions_simulated at 0.
    assert precise.sessions_simulated == fast.sessions_simulated > 0
