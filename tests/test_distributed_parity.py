"""Randomized distributed-vs-serial parity: the invariant that rots silently.

Every execution topology — serial in-process, ``--hosts 2`` (verdict
shipping, worker-side scoring), ``--hosts 2 --workers 2`` (per-host
parallel batches on top) — must produce **byte-identical** verdict CSV
rows for the same scenarios. Each topology runs against its *own* cold
cache directory, so the parity is between genuinely independent
executions, not between a run and its cache.

The subsets are seeded-random draws from the union of the ``smoke`` and
``t2-curve`` grids: small enough to keep the harness in tier-1 time, random
enough that sharding boundaries, golden-group splits, and detector mixes
shift from seed to seed instead of pinning one lucky configuration.
"""

import random

import pytest

from repro.experiments.report import render_csv
from repro.experiments.scenario import grid_scenarios, run_sweep


def _scenario_pool():
    """The draw pool: smoke + t2-curve, deduplicated by scenario name."""
    pool = []
    seen = set()
    for grid in ("smoke", "t2-curve"):
        for scenario in grid_scenarios(grid):
            if scenario.name not in seen:
                seen.add(scenario.name)
                pool.append(scenario)
    return pool


def _csv_rows(result):
    """The verdict rows only (no header), the unit of byte-parity."""
    return render_csv(result).splitlines()[1:]


@pytest.mark.slow
@pytest.mark.parametrize("seed", (1105, 2207, 3309))
def test_random_subset_parity_across_topologies(seed, sweep_env):
    pool = _scenario_pool()
    rng = random.Random(seed)
    subset = rng.sample(pool, k=rng.randint(2, 3))

    serial = run_sweep(
        subset,
        cache=sweep_env.cache("serial-cache"),
        grid=f"parity-{seed}",
    )
    hosts_only = run_sweep(
        subset,
        cache=sweep_env.cache("hosts-cache"),
        grid=f"parity-{seed}",
        hosts=2,
        work_dir=sweep_env.work_dir("hosts-work"),
    )
    composed = run_sweep(
        subset,
        cache=sweep_env.cache("composed-cache"),
        grid=f"parity-{seed}",
        hosts=2,
        workers=2,
        work_dir=sweep_env.work_dir("composed-work"),
    )

    reference = _csv_rows(serial)
    assert reference  # the draw produced scoreable scenarios
    assert _csv_rows(hosts_only) == reference
    assert _csv_rows(composed) == reference
    # Same independent executions → same simulation economics.
    for distributed in (hosts_only, composed):
        assert distributed.ok == serial.ok
        assert distributed.sessions_simulated == serial.sessions_simulated
        assert distributed.transport == "verdict rows"
