"""Randomized fast/precise/distributed parity: invariants that rot silently.

Two byte-identity contracts, one harness:

* **Topology parity** — serial in-process, ``--hosts 2`` (verdict shipping,
  worker-side scoring), ``--hosts 2 --workers 2`` (per-host parallel batches
  on top) must produce **byte-identical** verdict CSV rows for the same
  scenarios.
* **Execution-path parity** — the vectorized/batched fast path and the
  per-step precise path must produce **byte-identical** verdict CSV rows,
  serially and across the distributed topologies.

Each run gets its *own* cold cache directory (and fast/precise sessions key
differently anyway), so every parity below is between genuinely independent
executions, not between a run and its cache.

The subsets are seeded-random draws from the union of the ``smoke`` and
``t2-curve`` grids: small enough to keep the harness in tier-1 time, random
enough that sharding boundaries, golden-group splits, and detector mixes
shift from seed to seed instead of pinning one lucky configuration.
"""

import random

import pytest

from repro.experiments.report import render_csv
from repro.experiments.scenario import grid_scenarios, run_sweep


def _scenario_pool():
    """The draw pool: smoke + t2-curve, deduplicated by scenario name."""
    pool = []
    seen = set()
    for grid in ("smoke", "t2-curve"):
        for scenario in grid_scenarios(grid):
            if scenario.name not in seen:
                seen.add(scenario.name)
                pool.append(scenario)
    return pool


def _csv_rows(result):
    """The verdict rows only (no header), the unit of byte-parity."""
    return render_csv(result).splitlines()[1:]


@pytest.mark.slow
@pytest.mark.parametrize("seed", (1105, 2207, 3309))
def test_random_subset_parity_across_topologies(seed, sweep_env):
    pool = _scenario_pool()
    rng = random.Random(seed)
    subset = rng.sample(pool, k=rng.randint(2, 3))

    serial = run_sweep(
        subset,
        cache=sweep_env.cache("serial-cache"),
        grid=f"parity-{seed}",
    )
    hosts_only = run_sweep(
        subset,
        cache=sweep_env.cache("hosts-cache"),
        grid=f"parity-{seed}",
        hosts=2,
        work_dir=sweep_env.work_dir("hosts-work"),
    )
    composed = run_sweep(
        subset,
        cache=sweep_env.cache("composed-cache"),
        grid=f"parity-{seed}",
        hosts=2,
        workers=2,
        work_dir=sweep_env.work_dir("composed-work"),
    )

    reference = _csv_rows(serial)
    assert reference  # the draw produced scoreable scenarios
    assert _csv_rows(hosts_only) == reference
    assert _csv_rows(composed) == reference
    # Same independent executions → same simulation economics.
    for distributed in (hosts_only, composed):
        assert distributed.ok == serial.ok
        assert distributed.sessions_simulated == serial.sessions_simulated
        assert distributed.transport == "verdict rows"


@pytest.mark.slow
@pytest.mark.parametrize("seed", (4411, 5513))
def test_fast_vs_precise_parity_serial(seed, sweep_env):
    """The byte-identical-verdict contract, at the sweep level."""
    pool = _scenario_pool()
    rng = random.Random(seed)
    subset = rng.sample(pool, k=rng.randint(2, 3))

    precise = run_sweep(
        subset,
        cache=sweep_env.cache("precise-cache"),
        grid=f"precise-{seed}",
        fast_path=False,
    )
    fast = run_sweep(
        subset,
        cache=sweep_env.cache("fast-cache"),
        grid=f"fast-{seed}",
        fast_path=True,
    )
    reference = _csv_rows(precise)
    assert reference
    assert _csv_rows(fast) == reference
    assert fast.ok == precise.ok
    assert fast.sessions_simulated == precise.sessions_simulated


@pytest.mark.slow
def test_fast_vs_precise_parity_composed_topology(sweep_env):
    """Fast path under ``--hosts 2 --workers 2`` == precise path serial."""
    pool = _scenario_pool()
    subset = random.Random(6617).sample(pool, k=2)

    precise_serial = run_sweep(
        subset,
        cache=sweep_env.cache("precise-cache"),
        grid="xpath",
        fast_path=False,
    )
    fast_composed = run_sweep(
        subset,
        cache=sweep_env.cache("fast-composed-cache"),
        grid="xpath",
        hosts=2,
        workers=2,
        work_dir=sweep_env.work_dir("fast-composed-work"),
        fast_path=True,
    )
    reference = _csv_rows(precise_serial)
    assert reference
    assert _csv_rows(fast_composed) == reference


@pytest.mark.slow
def test_fast_and_precise_sessions_never_share_cache(sweep_env):
    """The fast_path flag is part of the session content key: a precise
    sweep against a cache warmed by a fast sweep must recompute, not alias."""
    pool = _scenario_pool()
    subset = [pool[0]]
    shared = sweep_env.cache("shared-cache")

    fast = run_sweep(subset, cache=shared, grid="alias", fast_path=True)
    precise = run_sweep(subset, cache=shared, grid="alias", fast_path=False)
    assert _csv_rows(precise) == _csv_rows(fast)
    # A cache hit would have left sessions_simulated at 0.
    assert precise.sessions_simulated == fast.sessions_simulated > 0
