"""Distribution tests: sharding, the work-dir protocol, requeue, merge parity.

The properties that make ``repro sweep --hosts N [--workers M]`` trustworthy:

* cost-balanced, deterministic sharding — spec-level LPT for summary
  shipping, golden-grouped scenario LPT (with host-filling splits) for
  verdict shipping;
* the pending/claimed/done protocol is race-free and torn-write-safe
  (every transition is an atomic rename), and a *version-skewed* payload
  fails loud instead of being executed, merged, or silently re-queued;
* a worker executes claimed shards as one parallel failure-isolated batch,
  beating its heartbeat per completed session, so worker-internal
  parallelism never reads as a wedge — while a genuinely hung worker still
  forfeits its claims;
* worker-side scoring ships verdict rows + digests whose verdicts match
  coordinator-side scoring exactly, at a fraction of the payload bytes;
* the coordinator re-queues a dead worker's shard and the merged batch
  still matches the single-host run bit for bit;
* a warm shared cache makes a repeat distributed run a zero-worker no-op.
"""

import os
import pickle
import socketserver
import sys
import textwrap
import threading
import time
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

import pytest

from repro.detection.protocol import ScoreSpec
from tests.conftest import corrupt_file, corrupt_pickle
from repro.errors import ReproError
from repro.experiments.batch import run_sessions
from repro.experiments.distrib import (
    WIRE_FORMAT,
    Coordinator,
    ScenarioJob,
    SessionDigest,
    ShardResult,
    WireFormatError,
    WorkDir,
    WorkShard,
    Worker,
    balanced_shards,
    run_distributed,
    run_distributed_scored,
    sanitize_worker_id,
    scenario_shards,
)
from repro.experiments.transport import InMemoryTransport
from repro.experiments.transport_http import HttpTransport


@pytest.fixture
def spec(spec_factory):
    """This module's defaults: noise-free, cacheable tiny-coupon specs."""
    return spec_factory(noise_sigma=0.0, cacheable=True)


def _job(index, spec, *, name=None, golden=None, detectors=("golden",), **suspect):
    """A scenario job over ``spec``-made sessions with a golden comparison."""
    name = name or f"sc{index}"
    golden = golden if golden is not None else spec(label=f"{name}/golden")
    suspect.setdefault("noise_sigma", 0.0005)
    suspect.setdefault("noise_seed", 100 + index)
    return ScenarioJob(
        index=index,
        name=name,
        golden=golden,
        suspect=spec(label=f"{name}/suspect", **suspect),
        score=ScoreSpec.for_detectors(detectors),
    )


class TestBalancedShards:
    def test_covers_every_spec_exactly_once(self, spec):
        specs = [
            spec(noise_sigma=0.0005, noise_seed=i, label=f"s{i}") for i in range(5)
        ]
        groups = balanced_shards(specs, 2)
        flat = [s for group in groups for s in group]
        assert sorted(s.label for s in flat) == sorted(s.label for s in specs)
        assert len(groups) == 2

    def test_never_more_bins_than_specs(self, spec):
        assert len(balanced_shards([spec(label="only")], 8)) == 1

    def test_lpt_balances_uneven_costs(self, spec):
        # grace_s dominates estimated_cost at +40/s, giving controlled costs.
        specs = [
            spec(grace_s=grace, label=label)
            for grace, label in ((80.0, "huge"), (50.0, "big"),
                                 (30.0, "mid1"), (30.0, "mid2"), (10.0, "small"))
        ]
        groups = balanced_shards(specs, 2)
        loads = [sum(s.estimated_cost() for s in group) for group in groups]
        # LPT guarantee: the spread never exceeds the largest single cost.
        assert abs(loads[0] - loads[1]) <= max(s.estimated_cost() for s in specs)
        # The most expensive spec is placed first, alone in its bin so far.
        assert groups[0][0].label == "huge"

    def test_deterministic(self, spec):
        specs = [
            spec(noise_sigma=0.0005, noise_seed=i, label=f"s{i}") for i in range(6)
        ]
        first = [[s.label for s in g] for g in balanced_shards(specs, 3)]
        second = [[s.label for s in g] for g in balanced_shards(specs, 3)]
        assert first == second


class TestScenarioSharding:
    def test_jobs_sharing_a_golden_stay_together(self, spec):
        goldens = [spec(label=f"g{i}", grace_s=float(i + 1)) for i in range(4)]
        jobs = [
            _job(index=3 * i + j, spec=spec, golden=golden, name=f"sc{i}-{j}")
            for i, golden in enumerate(goldens)
            for j in range(3)
        ]
        shards = scenario_shards(jobs, 2)
        assert len(shards) == 2
        assert sorted(job.index for shard in shards for job in shard) == list(
            range(12)
        )
        # No golden key appears in more than one shard.
        placements = {}
        for shard_index, shard in enumerate(shards):
            for job in shard:
                placements.setdefault(job.golden.content_key(), set()).add(
                    shard_index
                )
        assert all(len(where) == 1 for where in placements.values())

    def test_single_golden_group_splits_to_fill_hosts(self, spec):
        golden = spec(label="g")
        jobs = [_job(index=i, spec=spec, golden=golden) for i in range(6)]
        shards = scenario_shards(jobs, 2)
        # One golden group would idle a host; it is split instead —
        # duplicating the golden once is the deliberate trade.
        assert len(shards) == 2
        assert all(shard for shard in shards)
        assert sorted(job.index for shard in shards for job in shard) == list(
            range(6)
        )

    def test_never_more_shards_than_jobs(self, spec):
        golden = spec(label="g")
        jobs = [_job(index=i, spec=spec, golden=golden) for i in range(2)]
        assert len(scenario_shards(jobs, 8)) == 2
        assert scenario_shards([], 4) == []

    def test_deterministic(self, spec):
        jobs = [_job(index=i, spec=spec) for i in range(5)]
        first = [[j.index for j in shard] for shard in scenario_shards(jobs, 3)]
        second = [[j.index for j in shard] for shard in scenario_shards(jobs, 3)]
        assert first == second


class TestWorkerIds:
    def test_sanitized_for_filenames(self):
        assert sanitize_worker_id("host@!/evil id") == "host---evil-id"
        assert sanitize_worker_id("node.local-42") == "node.local-42"
        assert sanitize_worker_id("") == "worker"


class TestWorkDirProtocol:
    def test_enqueue_claim_complete_roundtrip(self, spec, tmp_path):
        work = WorkDir(str(tmp_path))
        shard = WorkShard(3, (spec(label="x"),))
        work.enqueue(shard)
        assert work.pending_files() == ["shard-0003.pkl"]

        claim = work.claim("shard-0003.pkl", "w1")
        assert claim is not None
        assert claim.shard.shard_id == 3
        assert claim.shard.specs[0].label == "x"
        assert work.pending_files() == []
        assert work.claims() == [(3, "w1", claim.path)]

        result = ShardResult(3, "w1", [], 0.5)
        work.complete(claim, result)
        assert work.done_ids() == [3]
        assert work.claims() == []  # claim file removed on completion
        loaded = work.load_result(3)
        assert loaded.worker_id == "w1" and loaded.shard_id == 3
        assert work.result_size(3) > 0
        assert work.result_size(99) == 0

    def test_claim_is_exclusive(self, spec, tmp_path):
        work = WorkDir(str(tmp_path))
        work.enqueue(WorkShard(0, (spec(),)))
        assert work.claim("shard-0000.pkl", "w1") is not None
        assert work.claim("shard-0000.pkl", "w2") is None

    def test_requeue_restores_pending(self, spec, tmp_path):
        work = WorkDir(str(tmp_path))
        work.enqueue(WorkShard(0, (spec(label="re"),)))
        claim = work.claim("shard-0000.pkl", "dead-worker")
        assert work.pending_files() == []
        assert work.requeue(claim.path)
        assert work.pending_files() == ["shard-0000.pkl"]
        # Another worker can now claim the restored shard intact.
        reclaimed = work.claim("shard-0000.pkl", "w2")
        assert reclaimed.shard.specs[0].label == "re"

    def test_corrupt_shard_is_dropped_not_executed(self, tmp_path):
        work = WorkDir(str(tmp_path))
        path = os.path.join(str(tmp_path), "pending", "shard-0001.pkl")
        corrupt_file(path, b"torn write garbage")
        assert work.claim("shard-0001.pkl", "w1") is None
        assert work.claims() == []  # the poisoned claim was not kept

    def test_corrupt_done_file_reads_as_absent(self, tmp_path):
        work = WorkDir(str(tmp_path))
        corrupt_file(
            os.path.join(str(tmp_path), "done", "shard-0002.pkl"), b"\x80garbage"
        )
        assert work.done_ids() == [2]
        assert work.load_result(2) is None

    def test_stop_flag(self, tmp_path):
        work = WorkDir(str(tmp_path))
        assert not work.stop_requested()
        work.stop()
        assert work.stop_requested()

    def test_heartbeat_age(self, tmp_path):
        work = WorkDir(str(tmp_path))
        assert work.heartbeat_age_s("nobody") is None
        work.beat("w1")
        age = work.heartbeat_age_s("w1")
        assert age is not None and age < 5.0

    def test_reset_clears_previous_sweep_state(self, spec, tmp_path):
        work = WorkDir(str(tmp_path))
        work.enqueue(WorkShard(0, (spec(),)))
        claim = work.claim("shard-0000.pkl", "w1")
        work.complete(claim, ShardResult(0, "w1", [], 0.1))
        work.enqueue(WorkShard(1, (spec(),)))
        work.claim("shard-0001.pkl", "w1")
        work.beat("w1")
        work.stop()
        work.reset()
        assert not work.stop_requested()
        assert work.pending_files() == []
        assert work.claims() == []
        assert work.done_ids() == []
        assert work.heartbeat_age_s("w1") is None


class TestWireFormatSkew:
    """A payload from a different protocol version must fail loud.

    Corruption (torn writes) degrades to a re-queue/re-simulation; a
    *cleanly readable* envelope carrying another version means some host
    runs different code — deserializing its payload would score garbage,
    and silently re-queueing would loop forever.
    """

    @staticmethod
    def _write_envelope(path, fmt, payload=None):
        corrupt_pickle(path, {"format": fmt, "payload": payload})

    def test_done_version_mismatch_raises(self, tmp_path):
        work = WorkDir(str(tmp_path))
        self._write_envelope(
            os.path.join(str(tmp_path), "done", "shard-0000.pkl"), WIRE_FORMAT + 1
        )
        with pytest.raises(WireFormatError, match="wire format"):
            work.load_result(0)

    def test_collect_done_fails_loud_never_requeues(self, spec, tmp_path):
        work = WorkDir(str(tmp_path))
        shards = {0: WorkShard(0, (spec(),))}
        self._write_envelope(
            os.path.join(str(tmp_path), "done", "shard-0000.pkl"), WIRE_FORMAT + 1
        )
        coordinator = Coordinator(hosts=1, spawn_local=False)
        with pytest.raises(ReproError, match="incompatible"):
            coordinator._collect_done(work, shards, {}, {})
        # Crucially it did NOT silently re-enqueue the shard: that would
        # collect the same skewed result forever.
        assert work.pending_files() == []

    def test_corrupt_done_degrades_to_requeue(self, spec, tmp_path):
        work = WorkDir(str(tmp_path))
        shards = {0: WorkShard(0, (spec(),))}
        corrupt_file(
            os.path.join(str(tmp_path), "done", "shard-0000.pkl"),
            b"torn write garbage",
        )
        done = {}
        Coordinator(hosts=1, spawn_local=False)._collect_done(
            work, shards, done, {}
        )
        assert done == {}
        assert work.pending_files() == ["shard-0000.pkl"]  # re-enqueued

    def test_claim_restores_pending_on_version_mismatch(self, tmp_path):
        work = WorkDir(str(tmp_path))
        self._write_envelope(
            os.path.join(str(tmp_path), "pending", "shard-0000.pkl"),
            WIRE_FORMAT + 1,
        )
        with pytest.raises(WireFormatError):
            work.claim("shard-0000.pkl", "w1")
        # The shard went back to pending for a compatible worker; no claim
        # was kept, and nothing was executed.
        assert work.pending_files() == ["shard-0000.pkl"]
        assert work.claims() == []

    def test_worker_skips_incompatible_shard_without_executing(self, tmp_path):
        work = WorkDir(str(tmp_path))
        self._write_envelope(
            os.path.join(str(tmp_path), "pending", "shard-0000.pkl"),
            WIRE_FORMAT + 1,
        )
        worker = Worker(work, worker_id="w1", idle_timeout_s=0.0)
        assert worker.run() == 0
        assert work.pending_files() == ["shard-0000.pkl"]
        assert work.done_ids() == []

    def test_same_version_payload_roundtrips(self, spec, tmp_path):
        work = WorkDir(str(tmp_path))
        work.enqueue(WorkShard(0, (spec(label="ok"),)))
        claim = work.claim("shard-0000.pkl", "w1")
        assert claim is not None and claim.shard.specs[0].label == "ok"


@pytest.mark.slow
class TestWorker:
    def test_executes_claimed_shard_and_publishes(self, spec, tmp_path):
        work = WorkDir(str(tmp_path / "work"))
        one = spec(label="one")
        work.enqueue(WorkShard(0, (one,)))
        worker = Worker(work, worker_id="w1", idle_timeout_s=0.0)
        assert worker.run() == 1
        result = work.load_result(0)
        assert result.worker_id == "w1"
        assert [s.label for s in result.summaries] == ["one"]
        assert result.summaries[0].completed
        assert result.failures == 0
        assert result.sessions == 1
        assert work.heartbeat_age_s("w1") is not None
        # Parity with an in-process run of the same spec.
        assert result.summaries[0].transactions == run_sessions([one])[0].transactions

    def test_scenario_shard_ships_verdict_rows_not_summaries(self, spec, tmp_path):
        work = WorkDir(str(tmp_path / "work"))
        job = _job(index=7, spec=spec)
        work.enqueue(WorkShard(0, jobs=(job,)))
        assert Worker(work, worker_id="w1", idle_timeout_s=0.0).run() == 1
        result = work.load_result(0)
        assert result.summaries == []  # nothing heavy travelled
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.index == 7
        assert row.golden.completed and row.suspect.completed
        assert set(row.verdicts) == {"golden"}
        assert row.verdicts["golden"].report is None
        assert result.sessions == 2
        # The row's verdicts match scoring the same sessions locally.
        golden, suspect = run_sessions([job.golden, job.suspect])
        local = job.score.score_pair(golden, suspect)
        assert {k: v.as_dict() for k, v in row.verdicts.items()} == {
            k: v.as_dict() for k, v in local.items()
        }

    def test_shared_golden_digests_keep_each_jobs_label(self, spec, tmp_path):
        """Two jobs whose goldens share a content key (labels differ) are
        deduplicated by the batch runner — but each row's digest must still
        carry that job's own label, exactly as coordinator-side scoring
        would report it."""
        work = WorkDir(str(tmp_path / "work"))
        jobs = tuple(
            ScenarioJob(
                index=i,
                name=name,
                golden=spec(label=f"{name}/golden"),
                suspect=spec(
                    label=f"{name}/suspect",
                    noise_sigma=0.0005,
                    noise_seed=200 + i,
                ),
                score=ScoreSpec.for_detectors(("golden",)),
            )
            for i, name in enumerate(("a", "b"))
        )
        work.enqueue(WorkShard(0, jobs=jobs))
        assert Worker(work, worker_id="w1", idle_timeout_s=0.0).run() == 1
        result = work.load_result(0)
        assert [row.golden.label for row in result.rows] == [
            "a/golden",
            "b/golden",
        ]
        assert [row.suspect.label for row in result.rows] == [
            "a/suspect",
            "b/suspect",
        ]
        assert result.sessions == 3  # shared golden executed once

    def test_shared_failed_golden_counts_as_one_failure(self, spec, tmp_path):
        work = WorkDir(str(tmp_path / "work"))
        jobs = tuple(
            ScenarioJob(
                index=i,
                name=name,
                golden=spec(label=f"{name}/golden", trojan_id="T999"),
                suspect=spec(
                    label=f"{name}/suspect",
                    noise_sigma=0.0005,
                    noise_seed=210 + i,
                ),
                score=ScoreSpec.for_detectors(("golden",)),
            )
            for i, name in enumerate(("a", "b"))
        )
        work.enqueue(WorkShard(0, jobs=jobs))
        assert Worker(work, worker_id="w1", idle_timeout_s=0.0).run() == 1
        result = work.load_result(0)
        assert all(row.golden.failed for row in result.rows)
        assert result.failures == 1  # one failed session, not one per row

    def test_crashing_spec_becomes_failed_summary_not_dead_worker(
        self, spec, tmp_path
    ):
        work = WorkDir(str(tmp_path / "work"))
        work.enqueue(WorkShard(0, (spec(trojan_id="T999", label="boom"),)))
        assert Worker(work, worker_id="w1", idle_timeout_s=0.0).run() == 1
        result = work.load_result(0)
        assert result.failures == 1
        assert result.summaries[0].failed
        assert "T999" in result.summaries[0].error

    def test_crashing_scenario_session_becomes_failed_digest(self, spec, tmp_path):
        work = WorkDir(str(tmp_path / "work"))
        job = _job(index=0, spec=spec, trojan_id="T999", noise_sigma=0.0)
        work.enqueue(WorkShard(0, jobs=(job,)))
        assert Worker(work, worker_id="w1", idle_timeout_s=0.0).run() == 1
        result = work.load_result(0)
        assert result.failures == 1
        row = result.rows[0]
        assert row.suspect.failed and "T999" in row.suspect.error
        assert not row.golden.failed
        for verdict in row.verdicts.values():
            assert not verdict.trojan_likely
            assert "session failed" in verdict.detail

    def test_worker_honors_stop(self, tmp_path):
        work = WorkDir(str(tmp_path / "work"))
        work.stop()
        assert Worker(work, worker_id="w1").run() == 0

    def test_stop_beats_leftover_pending_work(self, spec, tmp_path):
        # Shards orphaned by an aborted coordinator are abandoned work:
        # a worker must exit on STOP without executing them.
        work = WorkDir(str(tmp_path / "work"))
        work.enqueue(WorkShard(0, (spec(label="orphan"),)))
        work.stop()
        assert Worker(work, worker_id="w1").run() == 0
        assert work.done_ids() == []
        assert work.pending_files() == ["shard-0000.pkl"]


@pytest.mark.slow
class TestHeartbeatUnderParallelism:
    def test_worker_beats_per_completed_session_mid_shard(self, spec, tmp_path):
        """A parallel shard is one BatchRunner call, yet the heartbeat must
        keep ticking mid-shard: the per-session progress callback is what
        keeps a live worker from reading as wedged."""
        work = WorkDir(str(tmp_path / "work"))
        specs = tuple(
            spec(noise_sigma=0.0005, noise_seed=50 + i, label=f"s{i}")
            for i in range(3)
        )
        work.enqueue(WorkShard(0, specs=specs))
        worker = Worker(work, worker_id="w1", idle_timeout_s=0.0, workers=2)
        claim = work.claim("shard-0000.pkl", "w1")
        beats = []
        original = work.beat
        work.beat = lambda worker_id: (beats.append(worker_id), original(worker_id))
        worker.execute(claim)
        # One beat at shard start + one per completed session.
        assert len(beats) == 1 + len(specs)
        assert set(beats) == {"w1"}

    def test_advancing_heartbeat_survives_any_shard_length(
        self, tmp_path, monkeypatch
    ):
        """The staleness check, driven deterministically: as long as the
        heartbeat mtime keeps advancing (which per-completion beats
        guarantee mid-shard), a worker is never condemned no matter how
        long its shard runs — while a frozen heartbeat is condemned once
        heartbeat_timeout_s of coordinator time passes."""
        import repro.experiments.distrib as distrib

        work = WorkDir(str(tmp_path))
        heart = os.path.join(str(tmp_path), "hearts", "w1")
        coordinator = Coordinator(
            hosts=1, spawn_local=False, heartbeat_timeout_s=5.0
        )
        clock = [0.0]
        monkeypatch.setattr(distrib.time, "monotonic", lambda: clock[0])
        work.beat("w1")
        hb_seen = {}
        # Hours of coordinator time, but the mtime advances between checks
        # (a completion beat landed): never dead.
        for step in range(1, 10):
            os.utime(heart, (step, step))
            assert not coordinator._worker_dead(work, "w1", {}, set(), hb_seen)
            clock[0] += 3600.0
        # One final beat anchors the staleness timer at the current clock;
        # then the heartbeat freezes (hung worker) and the worker is
        # condemned only after heartbeat_timeout_s of coordinator time.
        os.utime(heart, (100, 100))
        assert not coordinator._worker_dead(work, "w1", {}, set(), hb_seen)
        clock[0] += 4.9
        assert not coordinator._worker_dead(work, "w1", {}, set(), hb_seen)
        clock[0] += 0.2
        assert coordinator._worker_dead(work, "w1", {}, set(), hb_seen)

    def test_hung_worker_still_forfeits_claims(self, spec, sweep_env, tmp_path):
        """Per-completion beats must not shield a *genuinely* wedged worker:
        a process that claims a shard, then stops beating — while staying
        alive — goes heartbeat-stale and forfeits the claim."""
        wedge = tmp_path / "wedge.py"
        wedge.write_text(
            textwrap.dedent(
                """
                import sys, time
                from repro.experiments.distrib import WorkDir

                work = WorkDir(sys.argv[1])
                work.beat("wedge")
                while True:
                    for name in work.pending_files():
                        if work.claim(name, "wedge"):
                            time.sleep(600)  # hang: alive, never beating again
                    time.sleep(0.01)
                """
            )
        )

        class Sabotaged(Coordinator):
            spawned_wedge = False

            def _worker_command(self, work, worker_id):
                if not Sabotaged.spawned_wedge:
                    Sabotaged.spawned_wedge = True
                    return [sys.executable, str(wedge), work.root]
                # Delay every real worker so the wedge deterministically
                # wins a claim before hanging.
                return [
                    sys.executable,
                    "-c",
                    "import subprocess, sys, time; time.sleep(4.0); "
                    "sys.exit(subprocess.call(sys.argv[1:]))",
                    *super()._worker_command(work, worker_id),
                ]

        specs = [spec(label="a"), spec(noise_sigma=0.0005, noise_seed=7, label="b")]
        serial = run_sessions(specs)
        started = time.monotonic()
        coordinator = Sabotaged(
            hosts=2,
            cache=sweep_env.cache(),
            work_dir=sweep_env.work_dir(),
            heartbeat_timeout_s=2.0,
            timeout_s=240,
        )
        result = coordinator.run(specs)
        assert time.monotonic() - started < 200  # finished well before timeout
        assert result.requeues >= 1
        for expected, got in zip(serial, result.summaries):
            assert got.transactions == expected.transactions
            assert got.status is expected.status


class _ThreadedWSGI(socketserver.ThreadingMixIn, WSGIServer):
    daemon_threads = True


class _QuietWSGI(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 - wsgiref signature
        pass


@pytest.fixture(scope="module")
def shard_server():
    """A live threaded shard server (SQLite-backed) for HTTP fault tests."""
    from repro.service.app import create_app

    app = create_app(db=":memory:", background=True)
    server = make_server(
        "127.0.0.1", 0, app,
        server_class=_ThreadedWSGI, handler_class=_QuietWSGI,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        thread.join(timeout=5)


class TestTransportFaultInjection:
    """Queue faults beyond one filesystem: kills, races, forfeits, steals.

    The liveness machinery (`_worker_dead`, `_requeue_dead_claims`) takes
    any :class:`~repro.experiments.transport.Transport`; these tests pin
    that a dead claimer's shard re-queues identically on every backend,
    that the HTTP backend's conditional-UPDATE claims stay exclusive under
    a real multi-connection race, and that heartbeat forfeiture works when
    "heartbeat mtime" is a server-side beat counter rather than a file.
    """

    @pytest.fixture(params=["fs", "memory", "http"])
    def any_transport(self, request, tmp_path, shard_server):
        if request.param == "fs":
            backend = WorkDir(str(tmp_path / "work"))
        elif request.param == "memory":
            backend = InMemoryTransport.named(f"faults-{request.node.name}")
        else:
            queue = request.node.name.replace("[", ".").replace("]", "")
            backend = HttpTransport(f"{shard_server}/queues/{queue}")
        backend.reset()
        return backend

    def test_killed_claimer_requeues_identically(self, spec, any_transport):
        """A claim whose worker's process exit was observed is forfeit."""
        work = any_transport
        work.enqueue(WorkShard(0, (spec(),)))
        work.beat("ghost")
        claim = work.claim(0, "ghost")
        assert claim is not None
        coordinator = Coordinator(hosts=1, spawn_local=False)
        requeued = coordinator._requeue_dead_claims(work, {}, {}, {"ghost"}, {})
        assert requeued == 1
        assert work.pending_ids() == [0]
        assert work.claims() == []
        # The shard round-trips intact: the next claimer gets the same work.
        again = work.claim(0, "w2")
        assert again is not None
        assert again.shard.shard_id == 0
        assert len(again.shard.specs) == 1

    def test_claimer_that_never_beat_is_forfeited(self, spec, any_transport):
        """External workers beat before their first claim, so a claim with
        no heartbeat at all has outlived its owner — on every backend."""
        work = any_transport
        work.enqueue(WorkShard(1, (spec(),)))
        assert work.claim(1, "vanished") is not None
        coordinator = Coordinator(hosts=1, spawn_local=False)
        requeued = coordinator._requeue_dead_claims(work, {}, {}, set(), {})
        assert requeued == 1
        assert work.pending_ids() == [1]

    def test_duplicate_claim_race_over_http(self, spec, shard_server):
        """Distinct client connections racing one shard: the SQLite
        conditional UPDATE lets exactly one win, same as a rename."""
        claimers = [
            HttpTransport(f"{shard_server}/queues/dup-race") for _ in range(8)
        ]
        claimers[0].reset()
        claimers[0].enqueue(WorkShard(0, (spec(),)))
        barrier = threading.Barrier(len(claimers))
        wins, errors = [], []

        def race(index):
            barrier.wait()
            try:
                claim = claimers[index].claim(0, f"host{index}")
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)
                return
            if claim is not None:
                wins.append(index)

        threads = [
            threading.Thread(target=race, args=(index,))
            for index in range(len(claimers))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(wins) == 1
        assert [
            (sid, worker) for sid, worker, _ in claimers[0].claims()
        ] == [(0, f"host{wins[0]}")]

    def test_heartbeat_forfeiture_over_http(
        self, spec, shard_server, monkeypatch
    ):
        """Beat counters advance like mtimes: a beating worker is never
        condemned however long it runs, a frozen one forfeits its claim
        after heartbeat_timeout_s of *coordinator* clock."""
        import repro.experiments.distrib as distrib

        work = HttpTransport(f"{shard_server}/queues/hb-forfeit")
        work.reset()
        work.enqueue(WorkShard(0, (spec(),)))
        clock = [0.0]
        monkeypatch.setattr(distrib.time, "monotonic", lambda: clock[0])
        coordinator = Coordinator(
            hosts=1, spawn_local=False, heartbeat_timeout_s=5.0
        )
        hb_seen = {}
        work.beat("w1")
        assert work.claim(0, "w1") is not None
        assert not coordinator._worker_dead(work, "w1", {}, set(), hb_seen)
        # Hours of coordinator time, but the counter advances: never dead.
        for _ in range(3):
            clock[0] += 3600.0
            work.beat("w1")
            assert not coordinator._worker_dead(work, "w1", {}, set(), hb_seen)
        # Frozen counter: condemned only once the timeout elapses.
        clock[0] += 4.9
        assert not coordinator._worker_dead(work, "w1", {}, set(), hb_seen)
        clock[0] += 0.2
        assert coordinator._worker_dead(work, "w1", {}, set(), hb_seen)
        assert (
            coordinator._requeue_dead_claims(work, {}, {}, set(), hb_seen) == 1
        )
        assert work.pending_ids() == [0]

    @pytest.mark.slow
    def test_late_joiner_steals_from_straggling_sweep(self, spec, sweep_env):
        """Elastic rebalance, end to end: a straggler works a many-shard
        queue slowly; a worker that joins mid-sweep claims from the same
        queue and demonstrably takes shards off the straggler's plate —
        and the merged result still matches the serial run."""
        specs = [
            spec(noise_sigma=0.0005, noise_seed=100 + i, label=f"s{i}")
            for i in range(8)
        ]
        serial = run_sessions(specs)
        queue = InMemoryTransport.named("steal-late-joiner")
        queue.reset()
        cache = sweep_env.cache()

        class Straggler(Worker):
            def _claim_next(self):
                time.sleep(0.4)  # every claim costs: a slow host
                return super()._claim_next()

        executed = {}

        def run_worker(cls, worker_id, delay_s=0.0):
            time.sleep(delay_s)
            worker = cls(queue, worker_id, cache=cache, poll_s=0.05)
            executed[worker_id] = worker.run()

        coordinator = Coordinator(
            hosts=2,
            steal=True,
            spawn_local=False,
            transport=queue,
            cache=cache,
            timeout_s=240,
        )
        threads = [
            threading.Thread(target=run_worker, args=(Straggler, "straggler")),
            threading.Thread(target=run_worker, args=(Worker, "late", 1.2)),
        ]
        for thread in threads:
            thread.start()
        result = coordinator.run(specs)
        for thread in threads:
            thread.join(timeout=120)
        # Steal sharding actually split the work finer than one-per-host.
        assert result.shards > 2
        assert executed["straggler"] >= 1
        assert executed["late"] >= 1, "the late joiner never stole a shard"
        workers_seen = {h["worker"] for h in result.host_stats}
        assert {"straggler", "late"} <= workers_seen
        for expected, got in zip(serial, result.summaries):
            assert got.transactions == expected.transactions
            assert got.status is expected.status


@pytest.mark.slow
class TestCoordinator:
    def _specs(self, spec):
        return [
            spec(label="a"),
            spec(noise_sigma=0.0005, noise_seed=7, label="b"),
            spec(noise_sigma=0.0005, noise_seed=8, label="c"),
            spec(
                trojan_id="T2",
                trojan_params={"keep_fraction": 0.5},
                label="d",
            ),
        ]

    def test_distributed_matches_serial(self, spec, sweep_env):
        specs = self._specs(spec)
        serial = run_sessions(specs)
        result = run_distributed(
            specs,
            hosts=2,
            cache=sweep_env.cache(),
            work_dir=sweep_env.work_dir(),
            timeout_s=240,
        )
        assert [s.label for s in result.summaries] == ["a", "b", "c", "d"]
        for expected, got in zip(serial, result.summaries):
            assert got.transactions == expected.transactions
            assert got.status is expected.status
            assert got.final_counts == expected.final_counts
        assert result.shards == 2
        assert result.sessions_dispatched == 4
        assert result.payload_bytes > 0
        assert sum(h["sessions"] for h in result.host_stats) == 4
        assert all(h["failures"] == 0 for h in result.host_stats)

        # Warm repeat over the same cache dir: nothing dispatched, nothing
        # spawned, summaries identical.
        warm_cache = sweep_env.cache()
        again = run_distributed(
            specs,
            hosts=2,
            cache=warm_cache,
            work_dir=sweep_env.work_dir("work2"),
            timeout_s=60,
        )
        assert again.sessions_dispatched == 0
        assert again.shards == 0
        assert warm_cache.misses == 0
        for expected, got in zip(serial, again.summaries):
            assert got.transactions == expected.transactions

    def test_reused_work_dir_is_safe_across_sweeps(self, spec, sweep_env):
        """README documents a fixed shared --work-dir; stale state (done
        files, STOP, claims) from sweep N must not corrupt sweep N+1."""
        work_dir = sweep_env.work_dir()
        specs = self._specs(spec)[:2]
        first = run_distributed(
            specs,
            hosts=2,
            cache=sweep_env.cache("cache-a"),
            work_dir=work_dir,
            timeout_s=240,
        )
        # A fresh cache dir forces full re-execution through the same
        # (now stale: STOP + done files) work dir.
        second = run_distributed(
            specs,
            hosts=2,
            cache=sweep_env.cache("cache-b"),
            work_dir=work_dir,
            timeout_s=240,
        )
        assert second.sessions_dispatched == 2
        for a, b in zip(first.summaries, second.summaries):
            assert a.transactions == b.transactions
            assert a.status is b.status

    def test_merged_summaries_not_rewritten_to_disk(self, spec, sweep_env):
        cache = sweep_env.cache()
        writes = []
        original_store = cache._store_to_disk

        def counting_store(key, summary):
            writes.append(key)
            original_store(key, summary)

        cache._store_to_disk = counting_store
        one = spec(label="once")
        result = run_distributed(
            [one],
            hosts=1,
            cache=cache,
            work_dir=sweep_env.work_dir(),
            timeout_s=240,
        )
        key = one.content_key()
        # The worker subprocess persisted the entry; the coordinator merged
        # it into memory without rewriting the file itself.
        assert result.summaries[0].completed
        assert cache.has_on_disk(key)
        assert writes == []
        assert cache.get(key) is not None  # served from memory

    def test_duplicate_specs_executed_once_and_relabeled(self, spec, sweep_env):
        base = spec(label="first")
        twin = spec(label="second")
        result = run_distributed(
            [base, twin],
            hosts=2,
            cache=sweep_env.cache(),
            work_dir=sweep_env.work_dir(),
            timeout_s=240,
        )
        assert result.sessions_dispatched == 1
        assert [s.label for s in result.summaries] == ["first", "second"]
        assert (
            result.summaries[0].transactions == result.summaries[1].transactions
        )

    def test_killed_worker_shard_is_requeued(self, spec, sweep_env, tmp_path):
        """A worker that dies holding a claim must not sink the batch."""
        wedge = tmp_path / "wedge.py"
        wedge.write_text(
            textwrap.dedent(
                """
                import os, sys, time
                from repro.experiments.distrib import WorkDir

                work = WorkDir(sys.argv[1])
                work.beat("wedge")
                while True:
                    for name in work.pending_files():
                        if work.claim(name, "wedge"):
                            os._exit(1)  # die holding the claim
                    time.sleep(0.01)
                """
            )
        )

        class Sabotaged(Coordinator):
            spawned_wedge = False

            def _worker_command(self, work, worker_id):
                if not Sabotaged.spawned_wedge:
                    Sabotaged.spawned_wedge = True
                    return [sys.executable, str(wedge), work.root]
                # Delay every real worker so the wedge deterministically
                # wins a claim before dying.
                return [
                    sys.executable,
                    "-c",
                    "import subprocess, sys, time; time.sleep(4.0); "
                    "sys.exit(subprocess.call(sys.argv[1:]))",
                    *super()._worker_command(work, worker_id),
                ]

        specs = self._specs(spec)[:2]
        serial = run_sessions(specs)
        coordinator = Sabotaged(
            hosts=2,
            cache=sweep_env.cache(),
            work_dir=sweep_env.work_dir(),
            heartbeat_timeout_s=2.0,
            timeout_s=240,
        )
        result = coordinator.run(specs)
        assert result.requeues >= 1
        for expected, got in zip(serial, result.summaries):
            assert got.transactions == expected.transactions
            assert got.status is expected.status

    def test_lost_pool_drains_inline(self, spec, sweep_env):
        """With no spawnable workers at all, the coordinator finishes alone."""
        coordinator = Coordinator(
            hosts=2,
            cache=sweep_env.cache(),
            work_dir=sweep_env.work_dir(),
            spawn_local=True,
            max_respawns=0,
            timeout_s=240,
        )
        # Sabotage every spawn into an instant exit.
        def instant_exit(work, worker_id):
            return [sys.executable, "-c", "raise SystemExit(1)"]

        coordinator._worker_command = instant_exit
        specs = self._specs(spec)[:2]
        result = coordinator.run(specs)
        assert [s.label for s in result.summaries] == ["a", "b"]
        assert all(s.completed for s in result.summaries)
        assert any(
            h["worker"] == "coordinator-inline" for h in result.host_stats
        )


@pytest.mark.slow
class TestScoredDistribution:
    """Verdict shipping: worker-side scoring, digests, payload economics."""

    def _jobs(self, spec, detectors=("golden",)):
        golden = spec(label="shared/golden")
        return [
            _job(index=i, spec=spec, golden=golden, detectors=detectors)
            for i in range(3)
        ]

    def _local_rows(self, jobs):
        out = []
        for job in jobs:
            golden, suspect = run_sessions([job.golden, job.suspect])
            out.append(job.score.score_pair(golden, suspect))
        return out

    def test_scored_verdicts_match_local_scoring(self, spec, sweep_env):
        jobs = self._jobs(spec)
        expected = self._local_rows(jobs)
        result = run_distributed_scored(
            jobs,
            hosts=2,
            cache=sweep_env.cache(),
            work_dir=sweep_env.work_dir(),
            timeout_s=240,
        )
        assert [row.index for row in result.rows] == [0, 1, 2]
        assert result.payload_bytes > 0
        assert result.sessions_dispatched == 4  # shared golden counted once
        for row, local in zip(result.rows, expected):
            assert {k: v.as_dict() for k, v in row.verdicts.items()} == {
                k: v.as_dict() for k, v in local.items()
            }
            assert isinstance(row.golden, SessionDigest)
            assert row.golden.completed and row.suspect.completed

    def test_warm_cache_scores_on_the_coordinator(self, spec, sweep_env):
        jobs = self._jobs(spec)
        first = run_distributed_scored(
            jobs,
            hosts=2,
            cache=sweep_env.cache(),
            work_dir=sweep_env.work_dir(),
            timeout_s=240,
        )
        warm_cache = sweep_env.cache()
        again = run_distributed_scored(
            jobs,
            hosts=2,
            cache=warm_cache,
            work_dir=sweep_env.work_dir("work2"),
            timeout_s=60,
        )
        # Nothing dispatched, nothing spawned, zero payload — and the
        # coordinator-side scoring of cached pairs yields the same verdicts.
        assert again.sessions_dispatched == 0
        assert again.shards == 0
        assert again.payload_bytes == 0
        assert warm_cache.misses == 0
        for a, b in zip(first.rows, again.rows):
            assert {k: v.as_dict() for k, v in a.verdicts.items()} == {
                k: v.as_dict() for k, v in b.verdicts.items()
            }

    def test_corrupt_cached_entry_dispatches_instead_of_scoring_garbage(
        self, spec, sweep_env
    ):
        """run_scored probes presence without validating contents; a probe
        that lied (torn cache entry) must turn into a dispatch + worker
        re-simulation, never a wrong or missing row."""
        jobs = self._jobs(spec)
        first = run_distributed_scored(
            jobs,
            hosts=2,
            cache=sweep_env.cache(),
            work_dir=sweep_env.work_dir(),
            timeout_s=240,
        )
        suspect_key = jobs[1].suspect.content_key()
        path = os.path.join(sweep_env.path("cache"), f"{suspect_key}.summary.pkl")
        assert os.path.exists(path)
        corrupt_file(path, b"torn write garbage")
        again = run_distributed_scored(
            jobs,
            hosts=2,
            cache=sweep_env.cache(),
            work_dir=sweep_env.work_dir("work2"),
            timeout_s=240,
        )
        assert again.sessions_dispatched == 1  # exactly the corrupted session
        for a, b in zip(first.rows, again.rows):
            assert {k: v.as_dict() for k, v in a.verdicts.items()} == {
                k: v.as_dict() for k, v in b.verdicts.items()
            }

    def test_verdict_payload_is_many_times_smaller_than_summaries(
        self, spec, sweep_env
    ):
        jobs = self._jobs(spec)
        scored = run_distributed_scored(
            jobs,
            hosts=2,
            cache=sweep_env.cache("cache-scored"),
            work_dir=sweep_env.work_dir("work-scored"),
            timeout_s=240,
        )
        specs = [s for job in jobs for s in (job.golden, job.suspect)]
        shipped = run_distributed(
            specs,
            hosts=2,
            cache=sweep_env.cache("cache-shipped"),
            work_dir=sweep_env.work_dir("work-shipped"),
            timeout_s=240,
        )
        assert scored.payload_bytes > 0 and shipped.payload_bytes > 0
        # The acceptance bar is >= 5x on the full grid; even this 4-session
        # micro-batch clears it by a wide margin.
        assert shipped.payload_bytes >= 5 * scored.payload_bytes


@pytest.mark.slow
class TestDistributedSweep:
    def test_run_sweep_hosts_matches_single_host_verdicts(self, sweep_env):
        from repro.experiments.scenario import grid_scenarios, run_sweep

        scenarios = grid_scenarios("smoke")
        serial = run_sweep(
            scenarios,
            cache=sweep_env.cache("serial-cache"),
            grid="smoke",
        )
        distributed = run_sweep(
            scenarios,
            cache=sweep_env.cache("distrib-cache"),
            grid="smoke",
            hosts=2,
            workers=2,
            work_dir=sweep_env.work_dir(),
        )
        assert distributed.ok == serial.ok
        assert distributed.sessions_simulated == serial.sessions_simulated
        assert distributed.transport == "verdict rows"
        assert distributed.payload_bytes > 0
        assert len(distributed.host_stats) >= 1
        for a, b in zip(serial.outcomes, distributed.outcomes):
            assert {k: v.as_dict() for k, v in a.verdicts.items()} == {
                k: v.as_dict() for k, v in b.verdicts.items()
            }

        # The acceptance criterion: a repeat over the same cache dir
        # simulates zero sessions and keeps the verdicts.
        repeat = run_sweep(
            scenarios,
            cache=sweep_env.cache("distrib-cache"),
            grid="smoke",
            hosts=2,
            workers=2,
            work_dir=sweep_env.work_dir("work2"),
        )
        assert repeat.sessions_simulated == 0
        assert repeat.cache_misses == 0
        assert repeat.ok == serial.ok

    def test_ship_summaries_mode_keeps_verdicts_and_costs_more_bytes(
        self, sweep_env
    ):
        from repro.experiments.report import render_csv
        from repro.experiments.scenario import grid_scenarios, run_sweep

        scenarios = grid_scenarios("smoke")
        scored = run_sweep(
            scenarios,
            cache=sweep_env.cache("scored-cache"),
            grid="smoke",
            hosts=2,
            work_dir=sweep_env.work_dir("work-scored"),
        )
        shipped = run_sweep(
            scenarios,
            cache=sweep_env.cache("shipped-cache"),
            grid="smoke",
            hosts=2,
            ship_summaries=True,
            work_dir=sweep_env.work_dir("work-shipped"),
        )
        assert shipped.transport == "summaries"
        assert render_csv(shipped) == render_csv(scored)
        assert shipped.payload_bytes >= 5 * scored.payload_bytes
