"""Distribution tests: sharding, the work-dir protocol, requeue, merge parity.

The properties that make ``repro sweep --hosts N`` trustworthy:

* cost-balanced, deterministic sharding (longest-expected-first LPT);
* the pending/claimed/done protocol is race-free and torn-write-safe
  (every transition is an atomic rename);
* a worker executes claimed shards failure-isolated and publishes results;
* the coordinator re-queues a dead worker's shard and the merged batch
  still matches the single-host run bit for bit;
* a warm shared cache makes a repeat distributed run a zero-worker no-op.
"""

import os
import sys
import textwrap

import pytest

from repro.experiments.batch import (
    SessionCache,
    SessionSpec,
    run_sessions,
)
from repro.experiments.distrib import (
    Coordinator,
    ShardResult,
    WorkDir,
    WorkShard,
    Worker,
    balanced_shards,
    run_distributed,
    sanitize_worker_id,
)


def _spec(tiny_program, **overrides):
    defaults = dict(program=tiny_program, noise_sigma=0.0, cacheable=True)
    defaults.update(overrides)
    return SessionSpec(**defaults)


def _costed(tiny_program, grace_s, label):
    """A spec whose estimated_cost is controlled via the grace window."""
    return _spec(tiny_program, grace_s=grace_s, label=label)


class TestBalancedShards:
    def test_covers_every_spec_exactly_once(self, tiny_program):
        specs = [
            _spec(tiny_program, noise_sigma=0.0005, noise_seed=i, label=f"s{i}")
            for i in range(5)
        ]
        groups = balanced_shards(specs, 2)
        flat = [spec for group in groups for spec in group]
        assert sorted(s.label for s in flat) == sorted(s.label for s in specs)
        assert len(groups) == 2

    def test_never_more_bins_than_specs(self, tiny_program):
        specs = [_spec(tiny_program, label="only")]
        assert len(balanced_shards(specs, 8)) == 1

    def test_lpt_balances_uneven_costs(self, tiny_program):
        # grace_s dominates estimated_cost at +40/s, giving controlled costs.
        specs = [
            _costed(tiny_program, grace, label)
            for grace, label in ((80.0, "huge"), (50.0, "big"),
                                 (30.0, "mid1"), (30.0, "mid2"), (10.0, "small"))
        ]
        groups = balanced_shards(specs, 2)
        loads = [sum(s.estimated_cost() for s in group) for group in groups]
        # LPT guarantee: the spread never exceeds the largest single cost.
        assert abs(loads[0] - loads[1]) <= max(s.estimated_cost() for s in specs)
        # The most expensive spec is placed first, alone in its bin so far.
        assert groups[0][0].label == "huge"

    def test_deterministic(self, tiny_program):
        specs = [
            _spec(tiny_program, noise_sigma=0.0005, noise_seed=i, label=f"s{i}")
            for i in range(6)
        ]
        first = [[s.label for s in g] for g in balanced_shards(specs, 3)]
        second = [[s.label for s in g] for g in balanced_shards(specs, 3)]
        assert first == second


class TestWorkerIds:
    def test_sanitized_for_filenames(self):
        assert sanitize_worker_id("host@!/evil id") == "host---evil-id"
        assert sanitize_worker_id("node.local-42") == "node.local-42"
        assert sanitize_worker_id("") == "worker"


class TestWorkDirProtocol:
    def test_enqueue_claim_complete_roundtrip(self, tiny_program, tmp_path):
        work = WorkDir(str(tmp_path))
        shard = WorkShard(3, (_spec(tiny_program, label="x"),))
        work.enqueue(shard)
        assert work.pending_files() == ["shard-0003.pkl"]

        claim = work.claim("shard-0003.pkl", "w1")
        assert claim is not None
        assert claim.shard.shard_id == 3
        assert claim.shard.specs[0].label == "x"
        assert work.pending_files() == []
        assert work.claims() == [(3, "w1", claim.path)]

        result = ShardResult(3, "w1", [], 0.5)
        work.complete(claim, result)
        assert work.done_ids() == [3]
        assert work.claims() == []  # claim file removed on completion
        loaded = work.load_result(3)
        assert loaded.worker_id == "w1" and loaded.shard_id == 3

    def test_claim_is_exclusive(self, tiny_program, tmp_path):
        work = WorkDir(str(tmp_path))
        work.enqueue(WorkShard(0, (_spec(tiny_program),)))
        assert work.claim("shard-0000.pkl", "w1") is not None
        assert work.claim("shard-0000.pkl", "w2") is None

    def test_requeue_restores_pending(self, tiny_program, tmp_path):
        work = WorkDir(str(tmp_path))
        work.enqueue(WorkShard(0, (_spec(tiny_program, label="re"),)))
        claim = work.claim("shard-0000.pkl", "dead-worker")
        assert work.pending_files() == []
        assert work.requeue(claim.path)
        assert work.pending_files() == ["shard-0000.pkl"]
        # Another worker can now claim the restored shard intact.
        reclaimed = work.claim("shard-0000.pkl", "w2")
        assert reclaimed.shard.specs[0].label == "re"

    def test_corrupt_shard_is_dropped_not_executed(self, tmp_path):
        work = WorkDir(str(tmp_path))
        path = os.path.join(str(tmp_path), "pending", "shard-0001.pkl")
        with open(path, "wb") as handle:
            handle.write(b"torn write garbage")
        assert work.claim("shard-0001.pkl", "w1") is None
        assert work.claims() == []  # the poisoned claim was not kept

    def test_corrupt_done_file_reads_as_absent(self, tmp_path):
        work = WorkDir(str(tmp_path))
        with open(os.path.join(str(tmp_path), "done", "shard-0002.pkl"), "wb") as handle:
            handle.write(b"\x80garbage")
        assert work.done_ids() == [2]
        assert work.load_result(2) is None

    def test_stop_flag(self, tmp_path):
        work = WorkDir(str(tmp_path))
        assert not work.stop_requested()
        work.stop()
        assert work.stop_requested()

    def test_heartbeat_age(self, tmp_path):
        work = WorkDir(str(tmp_path))
        assert work.heartbeat_age_s("nobody") is None
        work.beat("w1")
        age = work.heartbeat_age_s("w1")
        assert age is not None and age < 5.0

    def test_reset_clears_previous_sweep_state(self, tiny_program, tmp_path):
        work = WorkDir(str(tmp_path))
        work.enqueue(WorkShard(0, (_spec(tiny_program),)))
        claim = work.claim("shard-0000.pkl", "w1")
        work.complete(claim, ShardResult(0, "w1", [], 0.1))
        work.enqueue(WorkShard(1, (_spec(tiny_program),)))
        work.claim("shard-0001.pkl", "w1")
        work.beat("w1")
        work.stop()
        work.reset()
        assert not work.stop_requested()
        assert work.pending_files() == []
        assert work.claims() == []
        assert work.done_ids() == []
        assert work.heartbeat_age_s("w1") is None


@pytest.mark.slow
class TestWorker:
    def test_executes_claimed_shard_and_publishes(self, tiny_program, tmp_path):
        work = WorkDir(str(tmp_path / "work"))
        spec = _spec(tiny_program, label="one")
        work.enqueue(WorkShard(0, (spec,)))
        worker = Worker(work, worker_id="w1", idle_timeout_s=0.0)
        assert worker.run() == 1
        result = work.load_result(0)
        assert result.worker_id == "w1"
        assert [s.label for s in result.summaries] == ["one"]
        assert result.summaries[0].completed
        assert result.failures == 0
        assert work.heartbeat_age_s("w1") is not None
        # Parity with an in-process run of the same spec.
        assert result.summaries[0].transactions == run_sessions([spec])[0].transactions

    def test_crashing_spec_becomes_failed_summary_not_dead_worker(
        self, tiny_program, tmp_path
    ):
        work = WorkDir(str(tmp_path / "work"))
        work.enqueue(
            WorkShard(0, (_spec(tiny_program, trojan_id="T999", label="boom"),))
        )
        assert Worker(work, worker_id="w1", idle_timeout_s=0.0).run() == 1
        result = work.load_result(0)
        assert result.failures == 1
        assert result.summaries[0].failed
        assert "T999" in result.summaries[0].error

    def test_worker_honors_stop(self, tmp_path):
        work = WorkDir(str(tmp_path / "work"))
        work.stop()
        assert Worker(work, worker_id="w1").run() == 0

    def test_stop_beats_leftover_pending_work(self, tiny_program, tmp_path):
        # Shards orphaned by an aborted coordinator are abandoned work:
        # a worker must exit on STOP without executing them.
        work = WorkDir(str(tmp_path / "work"))
        work.enqueue(WorkShard(0, (_spec(tiny_program, label="orphan"),)))
        work.stop()
        assert Worker(work, worker_id="w1").run() == 0
        assert work.done_ids() == []
        assert work.pending_files() == ["shard-0000.pkl"]


@pytest.mark.slow
class TestCoordinator:
    def _specs(self, tiny_program):
        return [
            _spec(tiny_program, label="a"),
            _spec(tiny_program, noise_sigma=0.0005, noise_seed=7, label="b"),
            _spec(tiny_program, noise_sigma=0.0005, noise_seed=8, label="c"),
            _spec(
                tiny_program,
                trojan_id="T2",
                trojan_params={"keep_fraction": 0.5},
                label="d",
            ),
        ]

    def test_distributed_matches_serial(self, tiny_program, tmp_path):
        specs = self._specs(tiny_program)
        serial = run_sessions(specs)
        cache = SessionCache(directory=str(tmp_path / "cache"))
        result = run_distributed(
            specs,
            hosts=2,
            cache=cache,
            work_dir=str(tmp_path / "work"),
            timeout_s=240,
        )
        assert [s.label for s in result.summaries] == ["a", "b", "c", "d"]
        for expected, got in zip(serial, result.summaries):
            assert got.transactions == expected.transactions
            assert got.status is expected.status
            assert got.final_counts == expected.final_counts
        assert result.shards == 2
        assert result.sessions_dispatched == 4
        assert sum(h["sessions"] for h in result.host_stats) == 4
        assert all(h["failures"] == 0 for h in result.host_stats)

        # Warm repeat over the same cache dir: nothing dispatched, nothing
        # spawned, summaries identical.
        warm_cache = SessionCache(directory=str(tmp_path / "cache"))
        again = run_distributed(
            specs,
            hosts=2,
            cache=warm_cache,
            work_dir=str(tmp_path / "work2"),
            timeout_s=60,
        )
        assert again.sessions_dispatched == 0
        assert again.shards == 0
        assert warm_cache.misses == 0
        for expected, got in zip(serial, again.summaries):
            assert got.transactions == expected.transactions

    def test_reused_work_dir_is_safe_across_sweeps(self, tiny_program, tmp_path):
        """README documents a fixed shared --work-dir; stale state (done
        files, STOP, claims) from sweep N must not corrupt sweep N+1."""
        work_dir = str(tmp_path / "work")
        specs = self._specs(tiny_program)[:2]
        first = run_distributed(
            specs,
            hosts=2,
            cache=SessionCache(directory=str(tmp_path / "cache-a")),
            work_dir=work_dir,
            timeout_s=240,
        )
        # A fresh cache dir forces full re-execution through the same
        # (now stale: STOP + done files) work dir.
        second = run_distributed(
            specs,
            hosts=2,
            cache=SessionCache(directory=str(tmp_path / "cache-b")),
            work_dir=work_dir,
            timeout_s=240,
        )
        assert second.sessions_dispatched == 2
        for a, b in zip(first.summaries, second.summaries):
            assert a.transactions == b.transactions
            assert a.status is b.status

    def test_merged_summaries_not_rewritten_to_disk(self, tiny_program, tmp_path):
        cache = SessionCache(directory=str(tmp_path / "cache"))
        writes = []
        original_store = cache._store_to_disk

        def counting_store(key, summary):
            writes.append(key)
            original_store(key, summary)

        cache._store_to_disk = counting_store
        spec = _spec(tiny_program, label="once")
        result = run_distributed(
            [spec],
            hosts=1,
            cache=cache,
            work_dir=str(tmp_path / "work"),
            timeout_s=240,
        )
        key = spec.content_key()
        # The worker subprocess persisted the entry; the coordinator merged
        # it into memory without rewriting the file itself.
        assert result.summaries[0].completed
        assert cache.has_on_disk(key)
        assert writes == []
        assert cache.get(key) is not None  # served from memory

    def test_duplicate_specs_executed_once_and_relabeled(
        self, tiny_program, tmp_path
    ):
        base = _spec(tiny_program, label="first")
        twin = _spec(tiny_program, label="second")
        result = run_distributed(
            [base, twin],
            hosts=2,
            cache=SessionCache(directory=str(tmp_path / "cache")),
            work_dir=str(tmp_path / "work"),
            timeout_s=240,
        )
        assert result.sessions_dispatched == 1
        assert [s.label for s in result.summaries] == ["first", "second"]
        assert (
            result.summaries[0].transactions == result.summaries[1].transactions
        )

    def test_killed_worker_shard_is_requeued(self, tiny_program, tmp_path):
        """A worker that dies holding a claim must not sink the batch."""
        wedge = tmp_path / "wedge.py"
        wedge.write_text(
            textwrap.dedent(
                """
                import os, sys, time
                from repro.experiments.distrib import WorkDir

                work = WorkDir(sys.argv[1])
                work.beat("wedge")
                while True:
                    for name in work.pending_files():
                        if work.claim(name, "wedge"):
                            os._exit(1)  # die holding the claim
                    time.sleep(0.01)
                """
            )
        )

        class Sabotaged(Coordinator):
            spawned_wedge = False

            def _worker_command(self, work, worker_id):
                if not Sabotaged.spawned_wedge:
                    Sabotaged.spawned_wedge = True
                    return [sys.executable, str(wedge), work.root]
                # Delay every real worker so the wedge deterministically
                # wins a claim before dying.
                return [
                    sys.executable,
                    "-c",
                    "import subprocess, sys, time; time.sleep(4.0); "
                    "sys.exit(subprocess.call(sys.argv[1:]))",
                    *super()._worker_command(work, worker_id),
                ]

        specs = self._specs(tiny_program)[:2]
        serial = run_sessions(specs)
        coordinator = Sabotaged(
            hosts=2,
            cache=SessionCache(directory=str(tmp_path / "cache")),
            work_dir=str(tmp_path / "work"),
            heartbeat_timeout_s=2.0,
            timeout_s=240,
        )
        result = coordinator.run(specs)
        assert result.requeues >= 1
        for expected, got in zip(serial, result.summaries):
            assert got.transactions == expected.transactions
            assert got.status is expected.status

    def test_lost_pool_drains_inline(self, tiny_program, tmp_path):
        """With no spawnable workers at all, the coordinator finishes alone."""
        coordinator = Coordinator(
            hosts=2,
            cache=SessionCache(directory=str(tmp_path / "cache")),
            work_dir=str(tmp_path / "work"),
            spawn_local=True,
            max_respawns=0,
            timeout_s=240,
        )
        # Sabotage every spawn into an instant exit.
        def instant_exit(work, worker_id):
            return [sys.executable, "-c", "raise SystemExit(1)"]

        coordinator._worker_command = instant_exit
        specs = self._specs(tiny_program)[:2]
        result = coordinator.run(specs)
        assert [s.label for s in result.summaries] == ["a", "b"]
        assert all(s.completed for s in result.summaries)
        assert any(
            h["worker"] == "coordinator-inline" for h in result.host_stats
        )


@pytest.mark.slow
class TestDistributedSweep:
    def test_run_sweep_hosts_matches_single_host_verdicts(self, tmp_path):
        from repro.experiments.scenario import grid_scenarios, run_sweep

        scenarios = grid_scenarios("smoke")
        serial = run_sweep(
            scenarios,
            cache=SessionCache(directory=str(tmp_path / "serial-cache")),
            grid="smoke",
        )
        distributed = run_sweep(
            scenarios,
            cache=SessionCache(directory=str(tmp_path / "distrib-cache")),
            grid="smoke",
            hosts=2,
            work_dir=str(tmp_path / "work"),
        )
        assert distributed.ok == serial.ok
        assert distributed.sessions_simulated == serial.sessions_simulated
        assert len(distributed.host_stats) >= 1
        for a, b in zip(serial.outcomes, distributed.outcomes):
            assert {k: v.as_dict() for k, v in a.verdicts.items()} == {
                k: v.as_dict() for k, v in b.verdicts.items()
            }

        # The acceptance criterion: a repeat over the same cache dir
        # simulates zero sessions and keeps the verdicts.
        repeat = run_sweep(
            scenarios,
            cache=SessionCache(directory=str(tmp_path / "distrib-cache")),
            grid="smoke",
            hosts=2,
            work_dir=str(tmp_path / "work2"),
        )
        assert repeat.sessions_simulated == 0
        assert repeat.cache_misses == 0
        assert repeat.ok == serial.ok
