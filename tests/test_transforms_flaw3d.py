"""Flaw3D transform tests: reduction and relocation semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GcodeError
from repro.gcode.parser import parse_program
from repro.gcode.transforms.flaw3d import (
    Flaw3dReduction,
    Flaw3dRelocation,
    apply_reduction,
    apply_relocation,
    table2_test_cases,
)

SIMPLE = """G92 E0
G1 X10 Y0 E1 F1800
G1 X10 Y10 E2
G1 E1.2 F2100
G0 X0 Y0
G1 E2 F2100
G1 X0 Y5 E3
"""


def _program():
    return parse_program(SIMPLE)


class TestReduction:
    def test_halves_printing_extrusion(self):
        out = apply_reduction(_program(), 0.5)
        # printing deltas 1+1+1 = 3 scaled to 1.5; retract/prime unchanged
        assert out.total_extrusion_mm() == pytest.approx(0.5 + 0.5 + 0.8 + 0.5)

    def test_factor_one_is_identity(self):
        original = _program()
        out = apply_reduction(original, 1.0)
        assert [cmd.get("E") for cmd in out.moves()] == pytest.approx(
            [cmd.get("E") for cmd in original.moves()]
        )

    def test_retraction_preserved(self):
        out = apply_reduction(_program(), 0.5)
        moves = list(out.moves())
        # retract (index 2) and prime (index 4) are E-only; delta magnitudes 0.8
        retract_delta = moves[2].get("E") - moves[1].get("E")
        prime_delta = moves[4].get("E") - moves[2].get("E")
        assert retract_delta == pytest.approx(-0.8)
        assert prime_delta == pytest.approx(0.8)

    def test_invalid_factor_rejected(self):
        with pytest.raises(GcodeError):
            Flaw3dReduction(0.0)
        with pytest.raises(GcodeError):
            Flaw3dReduction(1.5)

    def test_handles_g92_resets(self):
        program = parse_program("G92 E0\nG1 X1 E1\nG92 E0\nG1 X2 E1")
        out = apply_reduction(program, 0.5)
        assert out.total_extrusion_mm() == pytest.approx(1.0)

    def test_motion_unchanged(self):
        original = _program()
        out = apply_reduction(original, 0.5)
        for a, b in zip(original.moves(), out.moves()):
            assert a.get("X") == b.get("X")
            assert a.get("Y") == b.get("Y")

    @given(st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_total_scales_linearly(self, factor):
        program = parse_program("G92 E0\nG1 X1 E1\nG1 X2 E2\nG1 Y3 E4")
        out = apply_reduction(program, factor)
        # The E chain is quantised to 1e-5 per move, so allow that slack.
        assert out.total_extrusion_mm() == pytest.approx(4.0 * factor, abs=1e-3)


class TestRelocation:
    def test_total_extrusion_preserved(self):
        original = _program()
        out = apply_relocation(original, 2)
        assert out.total_extrusion_mm() == pytest.approx(original.total_extrusion_mm())

    def test_every_nth_move_starved(self):
        out = apply_relocation(_program(), 2)
        # The 2nd printing move loses its E word; a deposit command follows.
        moves = [cmd for cmd in out.executable() if cmd.is_move]
        starved = [cmd for cmd in moves if (cmd.has("X") or cmd.has("Y")) and not cmd.has("E")]
        # Original program has exactly one travel (G0); relocation adds one more.
        assert len(starved) == 2

    def test_deposit_command_emitted(self):
        out = apply_relocation(_program(), 2)
        deposits = [cmd for cmd in out.executable() if cmd.comment == "relocated filament"]
        assert len(deposits) == 1
        assert deposits[0].has("E") and deposits[0].has("F")

    def test_period_one_relocates_everything(self):
        out = apply_relocation(_program(), 1)
        deposits = [cmd for cmd in out.executable() if cmd.comment == "relocated filament"]
        assert len(deposits) == 3  # all three printing moves

    def test_large_period_is_identity(self):
        original = _program()
        out = apply_relocation(original, 1000)
        assert len(list(out.executable())) == len(list(original.executable()))

    def test_invalid_period(self):
        with pytest.raises(GcodeError):
            Flaw3dRelocation(0)

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_conservation_property(self, period):
        program = parse_program(
            "G92 E0\n" + "\n".join(f"G1 X{i} Y{i} E{i + 1}" for i in range(20))
        )
        out = apply_relocation(program, period)
        assert out.total_extrusion_mm() == pytest.approx(program.total_extrusion_mm())


class TestTable2Catalog:
    def test_eight_cases(self):
        cases = table2_test_cases()
        assert len(cases) == 8
        assert [case for case, _ in cases] == list(range(1, 9))

    def test_case_parameters_match_paper(self):
        cases = dict(table2_test_cases())
        assert cases[1].factor == 0.5
        assert cases[4].factor == 0.98
        assert cases[5].period == 5
        assert cases[8].period == 100

    def test_labels(self):
        cases = dict(table2_test_cases())
        assert cases[1].label == "flaw3d-reduction-0.5"
        assert cases[8].label == "flaw3d-relocation-100"
