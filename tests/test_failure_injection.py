"""Failure injection: broken sensors, stuck switches, hostile conditions.

Exercises the firmware's protective behaviour under faults the paper's
threat model brushes against (counterfeit boards with "inferior counterfeit
components", Section III-A) — the machine must fail safe, not print garbage.
"""

import pytest

from repro.firmware.marlin import PrinterStatus
from repro.gcode.parser import parse_program
from repro.sim.time import S
from tests.conftest import build_bench


def _run(sim, firmware, text, until_s=400):
    firmware.start_print(parse_program(text))
    while not firmware.finished and sim.now < until_s * S:
        sim.run_for(1 * S)


class TestSensorFaults:
    def test_shorted_thermistor_reads_hot_and_kills(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        firmware.power_on()
        # Short the divider: 0 V reads as an absurd overtemperature.
        harness.path("T0_HOTEND").install_interceptor(
            "fault", lambda p, kind, value, t: p.downstream.drive(0.0)
        )
        harness.path("T0_HOTEND").downstream.drive(0.0)
        _run(sim, firmware, "M104 S210\nG4 P2000")
        assert firmware.status is PrinterStatus.KILLED
        assert "MAXTEMP" in firmware.kill_reason

    def test_open_thermistor_reads_cold_and_kills(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        firmware.power_on()
        # Open circuit: full rail voltage reads as absurdly cold (MINTEMP).
        harness.path("T0_HOTEND").install_interceptor(
            "fault", lambda p, kind, value, t: p.downstream.drive(5.0)
        )
        harness.path("T0_HOTEND").downstream.drive(5.0)
        _run(sim, firmware, "M104 S210\nG4 P2000")
        assert firmware.status is PrinterStatus.KILLED
        assert "MINTEMP" in firmware.kill_reason

    def test_heater_gate_stuck_off_fails_safe(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        harness.path("D10_HOTEND").install_interceptor("fault", lambda *args: None)
        _run(sim, firmware, "M109 S210\nG28\nM84")
        assert firmware.status is PrinterStatus.KILLED
        assert "Heating failed" in firmware.kill_reason
        # Fail-safe: no motion ever happened.
        assert plant.axes["X"].total_steps == 0


class TestEndstopFaults:
    def test_broken_endstop_aborts_homing(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        # X endstop never closes: force the Arduino-side level to 0 forever.
        harness.path("X_MIN").install_interceptor(
            "fault", lambda p, kind, value, t: p.downstream.drive(0)
        )
        _run(sim, firmware, "G28")
        assert firmware.status is PrinterStatus.KILLED
        assert "Homing failed" in firmware.kill_reason

    def test_homing_failure_does_not_damage_hardware(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        harness.path("X_MIN").install_interceptor(
            "fault", lambda p, kind, value, t: p.downstream.drive(0)
        )
        _run(sim, firmware, "G28")
        # The carriage ground against the frame (crash steps), but the
        # firmware stopped commanding motion after max travel.
        assert plant.axes["X"].crash_steps > 0
        assert not plant.damaged

    def test_stuck_closed_endstop_homes_immediately(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        harness.path("X_MIN").install_interceptor(
            "fault", lambda p, kind, value, t: p.downstream.drive(1)
        )
        harness.path("X_MIN").downstream.drive(1)
        _run(sim, firmware, "G28 X")
        # Marlin zeroes where the (stuck) switch claims home: no crash, done.
        assert firmware.status is PrinterStatus.DONE
        assert "X" in firmware.state.homed_axes


class TestHostileConditions:
    def test_print_after_kill_is_rejected(self, sim):
        from repro.errors import FirmwareError

        harness, plant, ramps, firmware = build_bench(sim)
        _run(sim, firmware, "M112")
        assert firmware.status is PrinterStatus.KILLED
        with pytest.raises(FirmwareError):
            firmware.start_print(parse_program("G28"))

    def test_kill_mid_heating_releases_heaters(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        firmware.start_print(parse_program("M109 S210\nG28"))
        sim.run_for(10 * S)
        firmware.kill("operator abort")
        sim.run_for(100 * S)
        # Physical heater off: the plant cools back toward ambient.
        assert plant.hotend_temp_c() < 80.0

    def test_double_kill_keeps_first_reason(self, sim):
        harness, plant, ramps, firmware = build_bench(sim)
        firmware.power_on()
        firmware.kill("first")
        firmware.kill("second")
        assert firmware.kill_reason == "first"


class TestDistributedQueueFaults:
    """Faults injected into the sweep's shard queue rather than the machine.

    The distributed sweep shares the simulator's fail-safe posture: bytes
    torn in flight must degrade to re-work, never to garbage verdicts. The
    backend-agnostic versions of these properties live in
    ``tests/test_transport_contract.py``; here they are injected *mid
    sweep* against the live coordinator/worker loop.
    """

    def test_torn_pending_shard_mid_sweep_recovers(self, spec_factory, tmp_path):
        """Corrupt a shard after the coordinator enqueues it: the claiming
        worker drops it, the coordinator re-enqueues from its in-memory
        copy, and the merged batch still matches the serial run."""
        import threading
        import time as _time

        from repro.experiments.batch import run_sessions
        from repro.experiments.distrib import Coordinator, WorkDir, Worker

        spec = spec_factory(noise_sigma=0.0, cacheable=False)
        specs = [spec(label="a"), spec(noise_sigma=0.0005, noise_seed=7, label="b")]
        serial = run_sessions(specs)
        work = WorkDir(str(tmp_path / "work"))
        coordinator = Coordinator(
            hosts=2, spawn_local=False, work_dir=work.root, timeout_s=240
        )
        outcome = {}

        def drive():
            outcome["result"] = coordinator.run(specs)

        driver = threading.Thread(target=drive)
        driver.start()
        deadline = _time.monotonic() + 30
        while len(work.pending_ids()) < 2 and _time.monotonic() < deadline:
            _time.sleep(0.01)
        torn = work.pending_ids()[0]
        work.put_pending(torn, b"\x00torn mid-flight")
        Worker(work, "w1", poll_s=0.05).run()
        driver.join(timeout=120)
        result = outcome["result"]
        assert [s.label for s in result.summaries] == ["a", "b"]
        for expected, got in zip(serial, result.summaries):
            assert got.transactions == expected.transactions
            assert got.status is expected.status
