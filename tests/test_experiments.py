"""Experiment-layer tests: workloads, runner plumbing, fast experiment paths.

The full table/figure regenerations live in ``benchmarks/``; here we verify
the orchestration logic itself on the cheapest workloads.
"""

import pytest

from repro.experiments.ablation import run_ablation
from repro.experiments.drift import run_drift
from repro.experiments.figure4 import run_figure4
from repro.experiments.overhead import run_overhead
from repro.experiments.table1 import Table1Row, _trojan_params, run_trojan_session
from repro.experiments.table2 import run_table2
from repro.experiments.workloads import (
    dense_part,
    dense_profile,
    detection_profile,
    slice_part,
    sliced_program,
    standard_part,
    table1_part,
    tiny_part,
)


class TestWorkloads:
    def test_parts_have_distinct_names(self):
        names = {shape.name for shape in (tiny_part(), standard_part(), table1_part(), dense_part())}
        assert len(names) == 4

    def test_profiles_valid(self):
        assert detection_profile().layer_height_mm == 0.3
        assert dense_profile().infill_spacing_mm < detection_profile().infill_spacing_mm

    def test_slice_part_returns_stats(self):
        result = slice_part(tiny_part())
        assert result.layer_count == 3
        assert result.filament_mm > 0

    def test_dense_part_has_many_printing_moves(self):
        program = sliced_program(dense_part(), dense_profile())
        printing_moves = sum(
            1
            for cmd in program.moves()
            if cmd.has("E") and (cmd.has("X") or cmd.has("Y"))
        )
        # Table II's period-100 relocation must fire several times.
        assert printing_moves > 400


class TestTable1Plumbing:
    def test_params_defined_for_all_trojans(self):
        for trojan_id in (f"T{i}" for i in range(1, 10)):
            assert _trojan_params(trojan_id)

    def test_golden_session_on_small_part(self, tiny_program):
        result = run_trojan_session(None, program=tiny_program)
        assert result.completed
        assert result.trojan is None

    def test_trojan_session_loads_trojan(self, tiny_program):
        result = run_trojan_session("T2", program=tiny_program)
        assert result.trojan is not None
        assert result.trojan.trojan_id == "T2"

    def test_row_render(self):
        row = Table1Row("T2", "PM", "Incorrect Slicing", "effect", "obs", True)
        assert "T2" in row.render()
        assert "EFFECT CONFIRMED" in row.render()


class TestSessionTimeout:
    def test_timeout_surfaces_distinct_status(self, tiny_program):
        from repro.experiments.runner import PrintSession
        from repro.firmware.marlin import PrinterStatus

        result = PrintSession(tiny_program).run(timeout_s=1.0)
        assert result.status is PrinterStatus.TIMED_OUT
        assert result.timed_out
        assert not result.completed
        assert not result.killed
        assert "timed out" in (result.kill_reason or "")

    def test_generous_timeout_still_completes(self, tiny_golden):
        assert tiny_golden.completed
        assert not tiny_golden.timed_out


class TestFastExperimentPaths:
    def test_overhead_on_tiny_part(self, tiny_program):
        experiment = run_overhead(tiny_program)
        assert experiment.no_quality_effect
        assert experiment.report.negligible

    def test_drift_two_repeats(self, tiny_program):
        experiment = run_drift(tiny_program, repeats=2)
        assert len(experiment.stats) == 1
        assert experiment.all_final_totals_equal

    def test_figure4_on_tiny_part(self, tiny_program):
        output = run_figure4(tiny_program, relocation_period=10)
        assert output.report.trojan_likely
        assert "Trojan likely!" in output.detector_output

    def test_ablation_minimal_sweep(self, tiny_program):
        result = run_ablation(
            tiny_program, periods_ms=(100,), margins=(0.05,)
        )
        assert len(result.cells) == 1
        assert not result.cells[0].false_positive
        assert result.usable_margins(100) == [0.05]

    @pytest.mark.slow
    def test_table2_on_tiny_part_detects_gross_cases(self, tiny_program):
        result = run_table2(tiny_program)
        by_case = {row.case: row for row in result.rows}
        # Reductions always detected (final check); dense-move relocations too.
        for case in (1, 2, 3, 4, 5, 6):
            assert by_case[case].detected
        assert not result.false_positive
