"""Tests for shapes, profiles, and the miniature slicer."""

import pytest

from repro.errors import SlicerError
from repro.gcode.slicer import (
    Box,
    Cylinder,
    LBracket,
    PrintProfile,
    Slicer,
    TaperedBox,
    slice_shape,
)
from repro.gcode.writer import write_program
from repro.gcode.parser import parse_program


class TestShapes:
    def test_box_outline(self):
        box = Box(width_mm=20, depth_mm=10, height=5, center=(50, 40))
        outline = box.outline_at(1.0)
        xs = [p[0] for p in outline]
        ys = [p[1] for p in outline]
        assert min(xs) == 40 and max(xs) == 60
        assert min(ys) == 35 and max(ys) == 45

    def test_box_invalid_dimensions(self):
        with pytest.raises(SlicerError):
            Box(width_mm=0, depth_mm=10, height=5)

    def test_tapered_box_shrinks(self):
        shape = TaperedBox(base_width_mm=20, base_depth_mm=20, top_scale=0.5, height=10)
        base = shape.outline_at(0.0)
        top = shape.outline_at(10.0)
        base_width = max(p[0] for p in base) - min(p[0] for p in base)
        top_width = max(p[0] for p in top) - min(p[0] for p in top)
        assert top_width == pytest.approx(base_width * 0.5)

    def test_cylinder_segment_count(self):
        cylinder = Cylinder(radius_mm=5, height=4, segments=24)
        assert len(cylinder.outline_at(1.0)) == 24

    def test_cylinder_needs_enough_segments(self):
        with pytest.raises(SlicerError):
            Cylinder(radius_mm=5, height=4, segments=4)

    def test_lbracket_concave(self):
        from repro.gcode.slicer.geometry import is_convex

        bracket = LBracket()
        assert not is_convex(bracket.outline_at(1.0))

    def test_lbracket_thickness_check(self):
        with pytest.raises(SlicerError):
            LBracket(leg_mm=10, thickness_mm=12)


class TestProfile:
    def test_defaults_valid(self):
        profile = PrintProfile()
        assert profile.layer_height_mm > 0

    def test_layer_height_vs_nozzle(self):
        with pytest.raises(SlicerError):
            PrintProfile(layer_height_mm=0.5, nozzle_diameter_mm=0.4)

    def test_extrusion_per_mm_physical(self):
        profile = PrintProfile()
        e_per_mm = profile.extrusion_per_mm(0.3)
        # bead 0.45x0.3 vs 1.75mm filament => ~0.056 mm filament per mm path
        assert 0.04 < e_per_mm < 0.08

    def test_fan_duty_range(self):
        with pytest.raises(SlicerError):
            PrintProfile(fan_duty=1.4)

    def test_extrusion_width_floor(self):
        with pytest.raises(SlicerError):
            PrintProfile(extrusion_width_mm=0.2, nozzle_diameter_mm=0.4)


class TestSlicer:
    @pytest.fixture(scope="class")
    def result(self):
        return slice_shape(Box(width_mm=16, depth_mm=16, height=1.5))

    def test_layer_count(self, result):
        assert result.layer_count == 5  # 1.5mm / 0.3mm

    def test_starts_with_heatup(self, result):
        names = [cmd.name for cmd in result.program.executable()][:6]
        assert names[:4] == ["M140", "M104", "M190", "M109"]

    def test_homes_before_printing(self, result):
        names = [cmd.name for cmd in result.program.executable()]
        g28 = names.index("G28")
        first_move = next(i for i, name in enumerate(names) if name in ("G0",))
        assert g28 < first_move

    def test_ends_with_shutdown(self, result):
        names = [cmd.name for cmd in result.program.executable()]
        assert names[-4:] == ["M104", "M140", "M107", "M84"]

    def test_fan_turned_on_second_layer(self, result):
        assert result.program.count("M106") == 1

    def test_extrusion_positive(self, result):
        assert result.filament_mm > 0
        assert result.program.total_extrusion_mm() > result.filament_mm * 0.95

    def test_deterministic(self):
        box = Box(width_mm=12, depth_mm=12, height=0.9)
        first = write_program(slice_shape(box).program)
        second = write_program(slice_shape(box).program)
        assert first == second

    def test_coordinates_within_shape_bounds(self, result):
        for cmd in result.program.moves():
            if cmd.has("X"):
                assert 80 <= cmd.get("X") <= 120 or cmd.get("X") == 5.0  # park
            if cmd.has("Z"):
                assert 0 < cmd.get("Z") <= 10

    def test_retractions_present(self, result):
        text = write_program(result.program)
        assert ";retract" in text and ";unretract" in text

    def test_program_reparses(self, result):
        text = write_program(result.program)
        assert len(parse_program(text)) == len(result.program)

    def test_concave_shape_slices(self):
        result = slice_shape(LBracket(leg_mm=20, thickness_mm=6, height=0.6))
        assert result.layer_count >= 1
        assert result.filament_mm > 0

    def test_infill_alternates_orientation(self):
        # Even layers scan along X (varying X within a line at fixed Y).
        result = slice_shape(Box(width_mm=12, depth_mm=12, height=0.9))
        assert result.layer_count == 3

    def test_zero_height_rejected(self):
        with pytest.raises(SlicerError):
            Box(width_mm=5, depth_mm=5, height=0)

    def test_cylinder_slices(self):
        result = slice_shape(Cylinder(radius_mm=6, height=0.9))
        assert result.layer_count == 3
        assert result.extruded_path_mm > 0
