"""The determinism & wire-safety analyzer (``repro lint``).

Fixture-driven: every rule gets at least one violating + one clean
snippet pair, suppressions are honored with both placements, the JSON
output schema is pinned, and — the reason the analyzer exists — a
regression demo proves DET001 flags the exact PR 2 ``hash()``-seeding
bug if it is ever re-introduced. The final test is the merge gate
itself: the analyzer must run clean over the whole repo.
"""

import json
import os
import pickle

import pytest

from repro.analysis.lint import (
    JSON_SCHEMA_VERSION,
    REGISTRY,
    RULES_BY_CODE,
    LintConfig,
    load_config,
    render_json,
    render_text,
    rule_catalog,
    run_lint,
)
from repro.cli import main
from repro.util import atomic_pickle, atomic_write

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint_snippet(tmp_path, source, config=None, name="snippet.py"):
    """Lint one snippet in an isolated root; returns the LintResult."""
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return run_lint(
        paths=[str(path)], root=str(tmp_path), config=config or LintConfig()
    )


def codes(result):
    return [f.rule for f in result.findings]


# ----------------------------------------------------------------------
# Fixture pairs: (rule, violating snippet, clean snippet)
# ----------------------------------------------------------------------
FIXTURES = [
    (
        "DET001",
        "key = hash(name) % 1024\n",
        "import zlib\nkey = zlib.crc32(name.encode()) % 1024\n",
    ),
    (
        "DET001",
        "import random\n"
        "def rng(seed, tag):\n"
        "    return random.Random(seed ^ hash(tag))\n",
        "import random\nimport zlib\n"
        "def rng(seed, tag):\n"
        "    return random.Random(seed ^ zlib.crc32(tag.encode()))\n",
    ),
    (
        "DET002",
        "import random\njitter = random.gauss(0.0, 1.0)\n",
        "import random\njitter = random.Random(42).gauss(0.0, 1.0)\n",
    ),
    (
        "DET002",
        "from random import shuffle\nshuffle(items)\n",
        "import random\nrandom.Random(7).shuffle(items)\n",
    ),
    (
        "DET002",
        "import numpy as np\nnoise = np.random.rand(8)\n",
        "import numpy as np\nnoise = np.random.default_rng(3).random(8)\n",
    ),
    (
        "DET003",
        "import time\nstamp = time.time()\n",
        "import time\nelapsed = time.monotonic()\n",
    ),
    (
        "DET003",
        "from datetime import datetime\nwhen = datetime.now()\n",
        "when_ns = sim.now\n",
    ),
    (
        "DET004",
        "keys = {s.key for s in specs}\nrows = list(keys)\n",
        "keys = {s.key for s in specs}\nrows = sorted(keys)\n",
    ),
    (
        "DET004",
        'header = ",".join({"a", "b", "c"})\n',
        'header = ",".join(sorted({"a", "b", "c"}))\n',
    ),
    (
        "DET004",
        "seen = set()\nfor item in seen:\n    emit(item)\n",
        "seen = set()\nfor item in sorted(seen):\n    emit(item)\n"
        "count = len(seen)\nhit = item in seen\n",
    ),
    (
        "WIRE001",
        'import pickle\n'
        'def save(path, payload):\n'
        '    with open(path, "wb") as handle:\n'
        '        pickle.dump(payload, handle)\n',
        "from repro.util import atomic_pickle\n"
        "def save(path, payload):\n"
        "    atomic_pickle(path, payload)\n",
    ),
    (
        "WIRE001",
        'handle = open(path, "r+b")\n',
        'with open(path, "rb") as handle:\n    data = handle.read()\n'
        'with open(log, "ab") as handle:\n    handle.write(b"line")\n',
    ),
    (
        "WIRE002",
        "class ScenarioJob:\n    index: int\n",
        "class ScenarioJob:\n"
        "    index: int\n"
        "    def __getstate__(self):\n"
        "        return dict(self.__dict__)\n",
    ),
]


@pytest.mark.parametrize(
    "rule,bad,clean",
    FIXTURES,
    ids=[f"{rule}-{i}" for i, (rule, _, _) in enumerate(FIXTURES)],
)
def test_fixture_pairs(tmp_path, rule, bad, clean):
    bad_result = lint_snippet(tmp_path, bad, name="bad.py")
    assert rule in codes(bad_result), f"{rule} missed its violating fixture"
    clean_result = lint_snippet(tmp_path, clean, name="clean.py")
    assert rule not in codes(clean_result), (
        f"{rule} false-positived on its clean fixture: {clean_result.findings}"
    )


def test_violating_fixtures_exit_nonzero_via_cli(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text("key = hash(name)\n", encoding="utf-8")
    assert main(["lint", str(path), "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "bad.py" in out


# ----------------------------------------------------------------------
# The PR 2 regression demo: the exact hash()-seeding bug, re-introduced
# ----------------------------------------------------------------------
PR2_BUG = '''\
import random

class TrojanContext:
    seed: int = 0

    def rng_for(self, trojan_id: str) -> random.Random:
        """A deterministic per-Trojan RNG (reproducible experiments)."""
        return random.Random((self.seed << 8) ^ hash(trojan_id))
'''

PR2_FIX = '''\
import random
import zlib

class TrojanContext:
    seed: int = 0

    def rng_for(self, trojan_id: str) -> random.Random:
        return random.Random((self.seed << 8) ^ zlib.crc32(trojan_id.encode()))
'''


def test_regression_pr2_hash_seeding_is_flagged(tmp_path):
    """Re-introducing PR 2's hash()-based rng_for seeding must fail lint."""
    result = lint_snippet(tmp_path, PR2_BUG, name="base.py")
    assert codes(result) == ["DET001"]
    (finding,) = result.findings
    assert finding.line == 8  # the rng_for return statement
    assert "PYTHONHASHSEED" in finding.message


def test_regression_pr2_shipped_fix_is_clean(tmp_path):
    result = lint_snippet(tmp_path, PR2_FIX, name="base.py")
    assert result.ok


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppression_same_line(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import time\n"
        "t = time.time()  # repro: lint-ignore[DET003] wall-clock benchmark\n",
    )
    assert result.ok
    assert [f.rule for f in result.suppressed] == ["DET003"]


def test_suppression_comment_line_above(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import time\n"
        "# repro: lint-ignore[DET003] wall-clock benchmark\n"
        "t = time.time()\n",
    )
    assert result.ok
    assert [f.rule for f in result.suppressed] == ["DET003"]


def test_suppression_is_rule_specific(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import time\n"
        "t = time.time()  # repro: lint-ignore[DET001] wrong rule named\n",
    )
    assert codes(result) == ["DET003"]
    assert not result.suppressed


def test_suppression_star_and_multiple_codes(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import time\n"
        "a = time.time()  # repro: lint-ignore[*] measured on purpose\n"
        "b = list({1, 2}) and hash(b)  # repro: lint-ignore[DET001, DET004] demo\n",
    )
    assert result.ok
    assert sorted(f.rule for f in result.suppressed) == [
        "DET001",
        "DET003",
        "DET004",
    ]


# ----------------------------------------------------------------------
# Config: path scoping and pyproject loading
# ----------------------------------------------------------------------
def test_rule_path_scoping(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "bench").mkdir()
    for sub in ("src", "bench"):
        (tmp_path / sub / "mod.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
    config = LintConfig(rule_options={"DET003": {"include": ["src"]}})
    result = run_lint(paths=["src", "bench"], root=str(tmp_path), config=config)
    assert [(f.rule, f.path) for f in result.findings] == [("DET003", "src/mod.py")]


def test_rule_exempt_paths(tmp_path):
    (tmp_path / "io.py").write_text(
        'import pickle\n'
        'def save(path, payload):\n'
        '    with open(path, "wb") as handle:\n'
        '        pickle.dump(payload, handle)\n',
        encoding="utf-8",
    )
    config = LintConfig(rule_options={"WIRE001": {"exempt": ["io.py"]}})
    result = run_lint(paths=["io.py"], root=str(tmp_path), config=config)
    assert result.ok


def test_load_config_from_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.lint]\n"
        'paths = ["src"]\n'
        "[tool.repro.lint.DET003]\n"
        'include = ["src/sim"]\n',
        encoding="utf-8",
    )
    config = load_config(str(tmp_path))
    assert config.paths == ("src",)
    assert config.rule_options["DET003"]["include"] == ["src/sim"]


def test_wire002_allowlisted_class_with_unsafe_field(tmp_path):
    config = LintConfig(
        rule_options={"WIRE002": {"wire-allowlist": ["ScenarioJob"]}}
    )
    bad = (
        "class ScenarioJob:\n"
        "    index: int\n"
        "    detector: GoldenComparisonDetector\n"
    )
    result = lint_snippet(tmp_path, bad, config=config)
    assert codes(result) == ["WIRE002"]
    assert "GoldenComparisonDetector" in result.findings[0].message
    clean = "class ScenarioJob:\n    index: int\n    name: str\n"
    assert lint_snippet(tmp_path, clean, config=config).ok


def test_wire002_safe_types_config_extends_the_vocabulary(tmp_path):
    config = LintConfig(
        rule_options={
            "WIRE002": {
                "wire-allowlist": ["ScenarioJob"],
                "safe-types": ["GcodeProgram"],
            }
        }
    )
    result = lint_snippet(
        tmp_path, "class ScenarioJob:\n    program: GcodeProgram\n", config=config
    )
    assert result.ok


# ----------------------------------------------------------------------
# Output shapes
# ----------------------------------------------------------------------
def test_json_output_schema_is_stable(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import time\n"
        "a = hash(b)\n"
        "c = time.time()  # repro: lint-ignore[DET003] demo\n",
    )
    payload = json.loads(render_json(result))
    assert sorted(payload) == [
        "baselined",
        "files",
        "findings",
        "ok",
        "schema",
        "stale_baseline",
        "suppressed",
    ]
    assert payload["schema"] == JSON_SCHEMA_VERSION
    assert payload["files"] == 1
    assert payload["ok"] is False
    (finding,) = payload["findings"]
    assert sorted(finding) == ["col", "line", "message", "path", "rule"]
    assert finding["rule"] == "DET001"
    (suppressed,) = payload["suppressed"]
    assert suppressed["rule"] == "DET003"


def test_text_output_names_file_line_and_rule(tmp_path):
    result = lint_snippet(tmp_path, "key = hash(name)\n", name="mod.py")
    text = render_text(result)
    assert "mod.py:1:" in text
    assert "DET001" in text
    assert "1 finding(s)" in text


def test_syntax_error_is_reported_not_raised(tmp_path):
    result = lint_snippet(tmp_path, "def broken(:\n")
    assert codes(result) == ["SYNTAX"]


def test_rule_catalog_documents_every_rule():
    catalog = rule_catalog()
    for cls in REGISTRY:
        assert cls.code in catalog
        assert cls.summary in catalog
    assert main(["lint", "--rules"]) == 0


def test_registry_codes_are_unique_and_documented():
    assert len(RULES_BY_CODE) == len(REGISTRY)
    for cls in REGISTRY:
        assert cls.rationale and cls.fix and cls.summary and cls.name


# ----------------------------------------------------------------------
# The merge gate: the analyzer runs clean over the whole repository
# ----------------------------------------------------------------------
def test_repo_is_lint_clean():
    """`repro lint src scripts benchmarks` must exit 0 on the merged tree."""
    result = run_lint(root=REPO_ROOT)
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings
    )
    # The justified wall-clock sites (heartbeat staleness, wall-clock
    # economics in distrib/scenario) are suppressed, not silently missed.
    assert len(result.suppressed) >= 5
    assert all(f.rule == "DET003" for f in result.suppressed)
    # The committed baselines carry no outstanding debt and no stale
    # entries: contract rules hold on the tree itself, not via waivers.
    assert result.baselined == []
    assert result.stale_baseline == []


def test_repo_tests_profile_is_lint_clean():
    """`repro lint --profile tests` must exit 0 on the merged tree."""
    result = run_lint(root=REPO_ROOT, profile="tests")
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings
    )
    # The corruption-injection helpers in conftest.py carry the only
    # sanctioned raw-write suppressions.
    assert all(f.path == "tests/conftest.py" for f in result.suppressed)


# ----------------------------------------------------------------------
# The WIRE001-enforced helper itself
# ----------------------------------------------------------------------
def test_atomic_write_writes_and_replaces(tmp_path):
    target = tmp_path / "payload.bin"
    atomic_write(str(target), lambda handle: handle.write(b"first"))
    atomic_write(str(target), lambda handle: handle.write(b"second"))
    assert target.read_bytes() == b"second"
    assert [p.name for p in tmp_path.iterdir()] == ["payload.bin"]


def test_atomic_write_failure_leaves_no_trace(tmp_path):
    target = tmp_path / "payload.bin"

    def explode(handle):
        handle.write(b"partial")
        raise RuntimeError("writer died mid-payload")

    with pytest.raises(RuntimeError):
        atomic_write(str(target), explode)
    assert list(tmp_path.iterdir()) == []


def test_atomic_pickle_round_trip(tmp_path):
    target = tmp_path / "obj.pkl"
    atomic_pickle(str(target), {"rows": [1, 2, 3]})
    with open(target, "rb") as handle:
        assert pickle.load(handle) == {"rows": [1, 2, 3]}
