"""Unit tests for the G-code lexer and parser."""

import pytest

from repro.errors import GcodeChecksumError, GcodeError
from repro.gcode.lexer import lex_line, strip_comments
from repro.gcode.parser import parse_line, parse_program


class TestStripComments:
    def test_semicolon_comment(self):
        code, comment = strip_comments("G1 X10 ; move right")
        assert code.strip() == "G1 X10"
        assert comment == "move right"

    def test_paren_comment(self):
        code, comment = strip_comments("G1 (inline note) X10")
        assert "X10" in code
        assert comment == "inline note"

    def test_unterminated_paren_raises(self):
        with pytest.raises(GcodeError):
            strip_comments("G1 (oops X10")

    def test_no_comment(self):
        code, comment = strip_comments("G1 X10")
        assert comment is None


class TestLexer:
    def test_simple_words(self):
        lexed = lex_line("G1 X10.5 Y-3 F1800")
        assert lexed.words == [("G", 1.0), ("X", 10.5), ("Y", -3.0), ("F", 1800.0)]

    def test_line_number_extracted(self):
        lexed = lex_line("N42 G28")
        assert lexed.line_number == 42
        assert lexed.words == [("G", 28.0)]

    def test_checksum_extracted(self):
        lexed = lex_line("N3 G28*28")
        assert lexed.checksum == 28

    def test_lowercase_normalised(self):
        lexed = lex_line("g1 x5")
        assert lexed.words == [("G", 1.0), ("X", 5.0)]

    def test_garbage_rejected(self):
        with pytest.raises(GcodeError):
            lex_line("G1 X10 ?!")

    def test_scientific_notation(self):
        lexed = lex_line("G1 E1.5e-2")
        assert lexed.words[1] == ("E", 0.015)

    def test_no_space_between_words(self):
        lexed = lex_line("G1X5Y10")
        assert lexed.words == [("G", 1.0), ("X", 5.0), ("Y", 10.0)]


class TestParser:
    def test_parse_move(self):
        cmd = parse_line("G1 X10 Y20 E0.5 F1800")
        assert cmd.name == "G1"
        assert cmd.get("X") == 10
        assert cmd.get("Y") == 20
        assert cmd.get("E") == 0.5
        assert cmd.is_move

    def test_parse_mcode(self):
        cmd = parse_line("M109 S210")
        assert cmd.name == "M109"
        assert cmd.get("S") == 210

    def test_comment_only_line(self):
        cmd = parse_line("; just a comment")
        assert cmd.is_blank
        assert cmd.comment == "just a comment"

    def test_blank_line(self):
        cmd = parse_line("")
        assert cmd.is_blank
        assert cmd.comment is None

    def test_param_default(self):
        cmd = parse_line("G1 X5")
        assert cmd.get("Z") is None
        assert cmd.get("Z", 7.0) == 7.0

    def test_has_param(self):
        cmd = parse_line("G1 X5")
        assert cmd.has("X") and not cmd.has("Y")

    def test_non_command_head_rejected(self):
        with pytest.raises(GcodeError):
            parse_line("X10 Y20")

    def test_checksum_validation_pass(self):
        cmd = parse_line("N3 G28*16", validate_checksum=True)
        assert cmd.name == "G28"
        assert cmd.line_number == 3

    def test_checksum_validation_failure(self):
        with pytest.raises(GcodeChecksumError):
            parse_line("N3 G28*99", validate_checksum=True)

    def test_is_command_case_insensitive(self):
        cmd = parse_line("M109 S210")
        assert cmd.is_command("m109")

    def test_param_dict(self):
        cmd = parse_line("G1 X1 Y2")
        assert cmd.param_dict() == {"X": 1.0, "Y": 2.0}


class TestProgramParsing:
    def test_parse_program_counts(self):
        text = "G28\nG1 X5 ; hi\n; note\nM84\n"
        program = parse_program(text)
        assert len(program) == 4
        assert sum(1 for _ in program.executable()) == 3
        assert program.count("G1") == 1

    def test_moves_iterator(self):
        program = parse_program("G28\nG0 X1\nG1 X2\nM84")
        assert [cmd.name for cmd in program.moves()] == ["G0", "G1"]

    def test_total_extrusion_absolute_e(self):
        program = parse_program("G92 E0\nG1 X1 E1\nG1 X2 E3\nG92 E0\nG1 X3 E2")
        assert program.total_extrusion_mm() == pytest.approx(5.0)

    def test_total_extrusion_ignores_retraction(self):
        program = parse_program("G92 E0\nG1 X1 E2\nG1 E1\nG1 X2 E2")
        # +2 (print), -1 (retract, ignored), +1 (prime)
        assert program.total_extrusion_mm() == pytest.approx(3.0)


class TestCommandEditing:
    def test_with_param_replaces_in_place(self):
        cmd = parse_line("G1 X10 E5 F1800")
        edited = cmd.with_param("E", 2.5)
        assert edited.get("E") == 2.5
        assert [w.letter for w in edited.params] == [w.letter for w in cmd.params]

    def test_with_param_appends_when_missing(self):
        cmd = parse_line("G1 X10")
        edited = cmd.with_param("E", 1.0)
        assert edited.get("E") == 1.0
        assert edited.params[-1].letter == "E"

    def test_without_param(self):
        cmd = parse_line("G1 X10 E5")
        edited = cmd.without_param("E")
        assert not edited.has("E")
        assert edited.has("X")

    def test_editing_does_not_mutate_original(self):
        cmd = parse_line("G1 X10 E5")
        cmd.with_param("E", 99)
        assert cmd.get("E") == 5
