"""Geometry primitives: unit tests plus invariant properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SlicerError
from repro.gcode.slicer.geometry import (
    clip_scanline,
    ensure_ccw,
    inset_convex,
    is_convex,
    point_in_polygon,
    polygon_area,
    polygon_bbox,
    polygon_perimeter,
    rotate_polygon,
)

SQUARE = [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]
TRIANGLE = [(0.0, 0.0), (8.0, 0.0), (4.0, 6.0)]
L_SHAPE = [(0, 0), (10, 0), (10, 3), (3, 3), (3, 10), (0, 10)]


class TestBasics:
    def test_square_area(self):
        assert polygon_area(SQUARE) == pytest.approx(100.0)

    def test_cw_polygon_negative_area(self):
        assert polygon_area(list(reversed(SQUARE))) == pytest.approx(-100.0)

    def test_ensure_ccw_flips_cw(self):
        fixed = ensure_ccw(list(reversed(SQUARE)))
        assert polygon_area(fixed) > 0

    def test_perimeter(self):
        assert polygon_perimeter(SQUARE) == pytest.approx(40.0)

    def test_bbox(self):
        assert polygon_bbox(TRIANGLE) == (0.0, 0.0, 8.0, 6.0)

    def test_bbox_empty_raises(self):
        with pytest.raises(SlicerError):
            polygon_bbox([])

    def test_convexity(self):
        assert is_convex(SQUARE)
        assert is_convex(TRIANGLE)
        assert not is_convex(L_SHAPE)


class TestContainment:
    def test_inside(self):
        assert point_in_polygon((5, 5), SQUARE)

    def test_outside(self):
        assert not point_in_polygon((15, 5), SQUARE)

    def test_on_boundary(self):
        assert point_in_polygon((0, 5), SQUARE)

    def test_concave_notch_excluded(self):
        assert not point_in_polygon((8, 8), L_SHAPE)
        assert point_in_polygon((1.5, 8), L_SHAPE)


class TestInset:
    def test_square_inset_dimensions(self):
        inner = inset_convex(SQUARE, 1.0)
        xmin, ymin, xmax, ymax = polygon_bbox(inner)
        assert (xmin, ymin, xmax, ymax) == pytest.approx((1, 1, 9, 9))

    def test_inset_zero_is_identity(self):
        assert inset_convex(SQUARE, 0.0) == ensure_ccw(SQUARE)

    def test_inset_shrinks_area(self):
        inner = inset_convex(TRIANGLE, 0.5)
        assert 0 < polygon_area(inner) < polygon_area(TRIANGLE)

    def test_collapse_raises(self):
        with pytest.raises(SlicerError):
            inset_convex(SQUARE, 6.0)

    def test_concave_rejected(self):
        with pytest.raises(SlicerError):
            inset_convex(L_SHAPE, 0.5)

    def test_negative_distance_rejected(self):
        with pytest.raises(SlicerError):
            inset_convex(SQUARE, -1.0)


class TestScanline:
    def test_single_span(self):
        assert clip_scanline(SQUARE, 5.0) == [(0.0, 10.0)]

    def test_outside_is_empty(self):
        assert clip_scanline(SQUARE, 20.0) == []

    def test_concave_two_spans(self):
        spans = clip_scanline(L_SHAPE, 2.0)
        assert len(spans) == 1 and spans[0] == pytest.approx((0.0, 10.0))
        spans_high = clip_scanline(L_SHAPE, 5.0)
        assert len(spans_high) == 1 and spans_high[0] == pytest.approx((0.0, 3.0))

    def test_triangle_narrows_with_height(self):
        low = clip_scanline(TRIANGLE, 1.0)[0]
        high = clip_scanline(TRIANGLE, 5.0)[0]
        assert (low[1] - low[0]) > (high[1] - high[0])


class TestRotate:
    def test_rotate_90_about_origin(self):
        rotated = rotate_polygon([(1.0, 0.0)], math.pi / 2)
        assert rotated[0][0] == pytest.approx(0.0, abs=1e-12)
        assert rotated[0][1] == pytest.approx(1.0)

    def test_rotation_preserves_area(self):
        rotated = rotate_polygon(SQUARE, 0.7, center=(5, 5))
        assert polygon_area(rotated) == pytest.approx(100.0)


# --------------------------------------------------------------------------
# Property-based invariants on convex polygons (regular n-gons)
# --------------------------------------------------------------------------
@st.composite
def regular_polygon(draw):
    n = draw(st.integers(min_value=3, max_value=24))
    radius = draw(st.floats(min_value=2.0, max_value=50.0))
    cx = draw(st.floats(min_value=-100, max_value=100))
    cy = draw(st.floats(min_value=-100, max_value=100))
    return [
        (cx + radius * math.cos(2 * math.pi * i / n), cy + radius * math.sin(2 * math.pi * i / n))
        for i in range(n)
    ], radius


class TestGeometryProperties:
    @given(regular_polygon(), st.floats(min_value=0.01, max_value=0.4))
    @settings(max_examples=100, deadline=None)
    def test_inset_always_shrinks(self, poly_radius, fraction):
        poly, radius = poly_radius
        inner = inset_convex(poly, radius * fraction)
        assert polygon_area(inner) < polygon_area(poly)
        assert is_convex(inner)

    @given(regular_polygon(), st.floats(min_value=0.01, max_value=0.4))
    @settings(max_examples=100, deadline=None)
    def test_inset_stays_inside(self, poly_radius, fraction):
        poly, radius = poly_radius
        inner = inset_convex(poly, radius * fraction)
        for point in inner:
            assert point_in_polygon(point, poly)

    @given(regular_polygon())
    @settings(max_examples=100, deadline=None)
    def test_scanline_spans_within_bbox(self, poly_radius):
        poly, _ = poly_radius
        xmin, ymin, xmax, ymax = polygon_bbox(poly)
        y = (ymin + ymax) / 2
        for x0, x1 in clip_scanline(poly, y):
            assert xmin - 1e-6 <= x0 <= x1 <= xmax + 1e-6

    @given(regular_polygon())
    @settings(max_examples=50, deadline=None)
    def test_scanline_midpoints_inside(self, poly_radius):
        poly, _ = poly_radius
        xmin, ymin, xmax, ymax = polygon_bbox(poly)
        y = ymin + (ymax - ymin) * 0.37
        for x0, x1 in clip_scanline(poly, y):
            assert point_in_polygon(((x0 + x1) / 2, y), poly)
