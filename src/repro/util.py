"""Dependency-free helpers shared across the package.

Currently just the atomic-write discipline: every byte that lands under a
final name in the session cache or the distribution work dir must be
written to a temp file first and renamed into place, so a crashed writer
can never leave a torn file where a reader expects a complete one. The
``repro lint`` WIRE001 rule (:mod:`repro.analysis.lint`) enforces that
this module is the *only* place the raw ``mkstemp`` + ``os.replace``
idiom lives.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, BinaryIO, Callable

__all__ = ["atomic_write", "atomic_pickle"]


def atomic_write(
    path: str,
    write: Callable[[BinaryIO], None],
    prefix: str = ".atomic.",
    suffix: str = ".tmp",
) -> None:
    """Write a binary file via ``mkstemp`` + ``os.replace``.

    ``write`` receives the open temp-file handle; once it returns, the temp
    file is atomically renamed over ``path``. On any failure the temp file
    is removed, so no reader — concurrent worker, coordinator, or a later
    run — ever observes a half-written file under the final name. The temp
    file is created in ``path``'s directory, keeping the final rename on
    one filesystem (cross-device renames are not atomic).
    """
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=prefix, suffix=suffix)
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_pickle(
    path: str,
    payload: Any,
    prefix: str = ".atomic.",
    suffix: str = ".tmp",
) -> None:
    """Pickle ``payload`` to ``path`` atomically (highest protocol).

    The one sanctioned way to put a pickle under a final name: both the
    session cache and the work-dir wire protocol route through here.
    """
    atomic_write(
        path,
        lambda handle: pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL),
        prefix=prefix,
        suffix=suffix,
    )
