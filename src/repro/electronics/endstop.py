"""Mechanical endstop switches.

The paper's test printer was modified to add mechanical endstops (replacing
Prusa's sensorless homing) precisely because endstop actuation is what the
FPGA's homing-detection state machine watches. An endstop asserts its wire
while the carriage is at or below the trigger position.
"""

from __future__ import annotations

from repro.sim.signals import DigitalWire


class Endstop:
    """A minimum-position switch bound to a digital harness wire."""

    def __init__(self, name: str, wire: DigitalWire, trigger_position_mm: float = 0.0) -> None:
        self.name = name
        self.wire = wire
        self.trigger_position_mm = trigger_position_mm
        self.actuation_count = 0

    @property
    def triggered(self) -> bool:
        return bool(self.wire.value)

    def update(self, position_mm: float) -> None:
        """Reflect the carriage position onto the switch state."""
        pressed = position_mm <= self.trigger_position_mm
        if pressed and not self.triggered:
            self.actuation_count += 1
        self.wire.drive(1 if pressed else 0)
