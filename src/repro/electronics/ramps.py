"""RAMPS 1.4 board assembly: harness downstream wires → plant physics.

Binds the downstream (RAMPS-side) end of every harness signal to the board's
components: A4988 drivers per axis, the three power MOSFETs, the endstop
switches, and the thermistor channels that report plant temperatures back up
the harness. This is the last digital hop before physics — everything the
OFFRAMPS Trojans change lands here.
"""

from __future__ import annotations

from typing import Dict

from repro.electronics.drivers import A4988Driver
from repro.electronics.endstop import Endstop
from repro.electronics.harness import SignalHarness
from repro.electronics.mosfet import PowerMosfet
from repro.electronics.pins import AXES, ENDSTOP_SIGNALS
from repro.electronics.thermistor import ThermistorChannel
from repro.physics.printer import PrinterPlant
from repro.sim.kernel import Simulator
from repro.sim.time import MS

_THERMISTOR_REFRESH_MS = 50


class RampsBoard:
    """The printer-side control board, fully wired to a plant."""

    def __init__(
        self,
        sim: Simulator,
        harness: SignalHarness,
        plant: PrinterPlant,
        microsteps: int = 16,
    ) -> None:
        self.sim = sim
        self.harness = harness
        self.plant = plant

        # Stepper drivers: downstream STEP/DIR/EN → plant microsteps.
        self.drivers: Dict[str, A4988Driver] = {}
        for axis in AXES:
            self.drivers[axis] = A4988Driver(
                name=f"A4988_{axis}",
                step=harness.downstream(f"{axis}_STEP"),
                direction=harness.downstream(f"{axis}_DIR"),
                enable=harness.downstream(f"{axis}_EN"),
                on_step=lambda direction, t, _axis=axis: plant.motor_step(_axis, direction, t),
                microsteps=microsteps,
                on_step_batch=lambda direction, count, t, _axis=axis: plant.motor_step_batch(
                    _axis, direction, count, t
                ),
                on_step_ready=lambda direction, count, _axis=axis: plant.can_batch_steps(
                    _axis, direction, count
                ),
            )

        # Heater / fan MOSFETs: downstream PWM duty → plant power.
        self.hotend_mosfet = PowerMosfet(
            "hotend",
            harness.downstream("D10_HOTEND"),
            plant.profile.hotend_power_w,
            plant.set_hotend_power,
        )
        self.bed_mosfet = PowerMosfet(
            "bed",
            harness.downstream("D8_BED"),
            plant.profile.bed_power_w,
            plant.set_bed_power,
        )
        self.fan_mosfet = PowerMosfet(
            "fan",
            harness.downstream("D9_FAN"),
            1.0,  # the fan "load" is its duty itself
            plant.set_fan_duty,
        )

        # Endstops: physical switches on the frame, wired to upstream
        # (RAMPS-side) endstop signals flowing back to the Arduino.
        self.endstops: Dict[str, Endstop] = {}
        for name in ENDSTOP_SIGNALS:
            axis = name.split("_")[0]
            endstop = Endstop(name, harness.upstream(name), trigger_position_mm=0.0)
            self.endstops[axis] = endstop
            plant.axes[axis].on_move(
                self._make_endstop_updater(endstop),
                range_ok=self._make_endstop_range_ok(endstop),
            )
            endstop.update(plant.axes[axis].position_mm)

        # Thermistors: plant temperature → divider voltage on the upstream
        # analog wires, refreshed periodically like a real sampled channel.
        self.thermistors = {
            "hotend": ThermistorChannel(
                "T0_HOTEND", harness.upstream("T0_HOTEND"), plant.hotend_temp_c
            ),
            "bed": ThermistorChannel("T1_BED", harness.upstream("T1_BED"), plant.bed_temp_c),
        }
        self._refresh_thermistors()
        self._thermistor_task = sim.every(
            _THERMISTOR_REFRESH_MS * MS, self._refresh_thermistors
        )

    @staticmethod
    def _make_endstop_updater(endstop: Endstop):
        def update(_axis: str, position_mm: float, _time_ns: int) -> None:
            endstop.update(position_mm)

        return update

    @staticmethod
    def _make_endstop_range_ok(endstop: Endstop):
        # The switch state is pure position (pressed ⟺ pos ≤ trigger): a run
        # whose span sits strictly on one side of the trigger can never
        # transition, so the final-position update is per-step-equivalent.
        def range_ok(lo_mm: float, hi_mm: float) -> bool:
            trigger = endstop.trigger_position_mm
            return lo_mm > trigger or hi_mm <= trigger

        return range_ok

    def _refresh_thermistors(self) -> None:
        for channel in self.thermistors.values():
            channel.refresh()

    # ------------------------------------------------------------------
    def total_missed_steps(self) -> int:
        """Pulses that arrived while drivers were disabled (T8's footprint)."""
        return sum(driver.missed_steps for driver in self.drivers.values())

    def shutdown(self) -> None:
        """Stop periodic activity (end of simulation housekeeping)."""
        self._thermistor_task.cancel()
