"""The Arduino↔RAMPS signal harness with a per-signal interposition seam.

Each logical signal owns two wires: an *upstream* wire driven by the signal's
source (the Arduino for control outputs, the RAMPS for sensor feedback) and a
*downstream* wire seen by its sink. In the stock configuration the harness
mirrors upstream onto downstream — the unmodified signal chain of the paper's
Figure 3a. Installing an interceptor on a :class:`SignalPath` re-routes the
signal through arbitrary logic — the FPGA of Figures 3b/3c. Passive taps can
be attached on either side without claiming the path (the pulse-capture
configuration), and injection directly onto the downstream wire models the
FPGA generating pulses the Arduino never sent.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.errors import OfframpsError
from repro.sim.kernel import Simulator
from repro.sim.signals import AnalogWire, DigitalWire, PwmWire, StepWire
from repro.electronics.pins import SIGNALS, SignalKind, SignalSpec


class SignalPath:
    """One interposable signal: upstream wire, downstream wire, optional MITM.

    Without an interceptor, events forward unchanged (zero added latency —
    a solder-bridged jumper). With one, the interceptor receives every
    upstream event and is responsible for driving (or withholding from) the
    downstream wire.
    """

    def __init__(self, sim: Simulator, spec: SignalSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.upstream = self._make_wire(sim, spec, side="up")
        self.downstream = self._make_wire(sim, spec, side="down")
        self._interceptor: Optional[Callable] = None
        self._interceptor_owner: Optional[str] = None
        self._attach_forwarder()

    @staticmethod
    def _make_wire(sim: Simulator, spec: SignalSpec, side: str):
        name = f"{spec.name}.{side}"
        if spec.kind is SignalKind.STEP:
            return StepWire(sim, name)
        if spec.kind is SignalKind.DIGITAL:
            return DigitalWire(sim, name)
        if spec.kind is SignalKind.PWM:
            return PwmWire(sim, name)
        return AnalogWire(sim, name)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _attach_forwarder(self) -> None:
        kind = self.spec.kind
        if kind is SignalKind.STEP:
            self.upstream.on_pulse(
                self._on_step,
                batch=self._on_step_batch,
                ready=self._step_batch_ready,
            )
        elif kind is SignalKind.DIGITAL:
            self.upstream.on_edge(self._on_level)
        elif kind is SignalKind.PWM:
            self.upstream.on_change(self._on_value)
        else:
            self.upstream.on_change(self._on_value)

    def _on_step(self, _wire: StepWire, time_ns: int, width_ns: int) -> None:
        if self._interceptor is not None:
            self._interceptor(self, "pulse", width_ns, time_ns)
        else:
            self.downstream.pulse(width_ns)

    def _step_batch_ready(self, count: int) -> bool:
        # An interceptor (FPGA Trojan mux) sees every pulse individually and
        # may schedule kernel events per pulse — never batch through it.
        return self._interceptor is None and self.downstream.batch_ready(count)

    def _on_step_batch(self, _wire: StepWire, times_ns, width_ns: int) -> None:
        self.downstream.pulse_batch(times_ns, width_ns)

    def _on_level(self, _wire: DigitalWire, value: int, time_ns: int) -> None:
        if self._interceptor is not None:
            self._interceptor(self, "level", value, time_ns)
        else:
            self.downstream.drive(value)

    def _on_value(self, _wire, value: float, time_ns: int) -> None:
        if self._interceptor is not None:
            self._interceptor(self, "value", value, time_ns)
        else:
            self.downstream.drive(value)

    # ------------------------------------------------------------------
    # Interceptor management (the MITM jumper position)
    # ------------------------------------------------------------------
    @property
    def intercepted(self) -> bool:
        return self._interceptor is not None

    def install_interceptor(self, owner: str, handler: Callable) -> None:
        """Route this signal through ``handler(path, kind, value, time_ns)``.

        ``kind`` is ``"pulse"``, ``"level"``, or ``"value"``; the handler must
        drive ``path.downstream`` itself if the event should propagate.
        """
        if self._interceptor is not None and self._interceptor_owner != owner:
            raise OfframpsError(
                f"signal {self.spec.name} already intercepted by {self._interceptor_owner!r}"
            )
        self._interceptor = handler
        self._interceptor_owner = owner

    def remove_interceptor(self, owner: str) -> None:
        """Return the signal to the direct-bypass configuration."""
        if self._interceptor is None:
            return
        if self._interceptor_owner != owner:
            raise OfframpsError(
                f"signal {self.spec.name} intercepted by {self._interceptor_owner!r}, "
                f"not {owner!r}"
            )
        self._interceptor = None
        self._interceptor_owner = None
        self._resync()

    def _resync(self) -> None:
        """After removing an interceptor, re-align downstream level signals."""
        kind = self.spec.kind
        if kind is SignalKind.DIGITAL:
            self.downstream.drive(self.upstream.value)
        elif kind in (SignalKind.PWM, SignalKind.ANALOG):
            self.downstream.drive(self.upstream.duty if kind is SignalKind.PWM else self.upstream.value)


class SignalHarness:
    """The full bundle of interposable signals between the two boards."""

    def __init__(self, sim: Simulator, names: Optional[Iterable[str]] = None) -> None:
        self.sim = sim
        self.paths: Dict[str, SignalPath] = {}
        for name in names if names is not None else SIGNALS:
            spec = SIGNALS.get(name)
            if spec is None:
                raise OfframpsError(f"unknown signal {name!r}")
            self.paths[name] = SignalPath(sim, spec)

    def path(self, name: str) -> SignalPath:
        """The :class:`SignalPath` for signal ``name``."""
        try:
            return self.paths[name]
        except KeyError:
            raise OfframpsError(f"harness does not carry signal {name!r}") from None

    def upstream(self, name: str):
        """The source-side wire of signal ``name`` (what the Arduino drives)."""
        return self.path(name).upstream

    def downstream(self, name: str):
        """The sink-side wire of signal ``name`` (what the RAMPS sees)."""
        return self.path(name).downstream

    def __contains__(self, name: str) -> bool:
        return name in self.paths

    def __iter__(self):
        return iter(self.paths.values())
