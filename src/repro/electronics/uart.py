"""UART framing for the FPGA's telemetry export.

The paper's monitoring design sends "a 16-byte transaction containing step
counts for all of the motors each 0.1 seconds". We pack the four signed step
counters as big-endian int32s — exactly 16 bytes — with the transaction index
implicit in arrival order, matching the capture format of Figure 4 where the
index is the row number.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Tuple

from repro.errors import CaptureError

_FRAME_STRUCT = struct.Struct(">iiii")
FRAME_SIZE_BYTES = _FRAME_STRUCT.size  # 16
assert FRAME_SIZE_BYTES == 16


def pack_step_counts(x: int, y: int, z: int, e: int) -> bytes:
    """Encode four signed step counters into one 16-byte frame."""
    try:
        return _FRAME_STRUCT.pack(x, y, z, e)
    except struct.error as exc:
        raise CaptureError(f"step count out of int32 range: {(x, y, z, e)}") from exc


def unpack_step_counts(frame: bytes) -> Tuple[int, int, int, int]:
    """Decode a 16-byte frame back into (x, y, z, e)."""
    if len(frame) != FRAME_SIZE_BYTES:
        raise CaptureError(f"UART frame must be {FRAME_SIZE_BYTES} bytes, got {len(frame)}")
    return _FRAME_STRUCT.unpack(frame)


class UartBus:
    """A byte-frame channel with timestamped delivery to listeners.

    Models the FPGA→host serial link. Bandwidth is not enforced here; the
    paper's identified limitation (no high-speed interface) is studied in the
    UART-period ablation instead.
    """

    def __init__(self, name: str = "uart") -> None:
        self.name = name
        self._listeners: List[Callable[[int, bytes], None]] = []
        self.frames_sent = 0

    def on_frame(self, callback: Callable[[int, bytes], None]) -> None:
        """Subscribe ``callback(time_ns, frame_bytes)`` to transmissions."""
        self._listeners.append(callback)

    def send(self, time_ns: int, frame: bytes) -> None:
        """Transmit one frame to all listeners."""
        self.frames_sent += 1
        for listener in list(self._listeners):
            listener(time_ns, frame)
