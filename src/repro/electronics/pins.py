"""RAMPS 1.4 signal inventory.

Names, kinds, directions, and the Arduino Mega pin numbers from the RepRap
RAMPS 1.4 pin map. The OFFRAMPS board interposes on exactly this set — the
paper notes that "all FFF printers will ultimately require the same set of
signals", which is why this inventory is the platform's interface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

AXES: Tuple[str, ...] = ("X", "Y", "Z", "E")
"""Motion axes: three Cartesian plus the extruder."""


class SignalKind(enum.Enum):
    """Electrical flavour of a harness signal."""

    STEP = "step"  # pulse train to a stepper driver
    DIGITAL = "digital"  # level signal (DIR, EN, endstop)
    PWM = "pwm"  # MOSFET gate drive, carried as duty cycle
    ANALOG = "analog"  # thermistor divider voltage


class SignalDirection(enum.Enum):
    """Who drives the signal in normal operation."""

    ARDUINO_TO_RAMPS = "a2r"  # control outputs
    RAMPS_TO_ARDUINO = "r2a"  # sensor feedback


@dataclass(frozen=True)
class SignalSpec:
    """One harness signal: identity plus physical metadata."""

    name: str
    kind: SignalKind
    direction: SignalDirection
    mega_pin: int  # Arduino Mega pin per the RAMPS 1.4 pin map
    description: str


def signal_name(axis: str, function: str) -> str:
    """Canonical name for a per-axis signal, e.g. ``signal_name("X", "STEP")``."""
    axis = axis.upper()
    if axis not in AXES:
        raise KeyError(f"unknown axis {axis!r}")
    return f"{axis}_{function.upper()}"


def _build_signals() -> Dict[str, SignalSpec]:
    a2r, r2a = SignalDirection.ARDUINO_TO_RAMPS, SignalDirection.RAMPS_TO_ARDUINO
    # (STEP, DIR, EN) Mega pins per axis from the RAMPS 1.4 schematic.
    motor_pins = {"X": (54, 55, 38), "Y": (60, 61, 56), "Z": (46, 48, 62), "E": (26, 28, 24)}
    specs: List[SignalSpec] = []
    for axis in AXES:
        step_pin, dir_pin, en_pin = motor_pins[axis]
        specs.append(
            SignalSpec(f"{axis}_STEP", SignalKind.STEP, a2r, step_pin, f"{axis} stepper step pulses")
        )
        specs.append(
            SignalSpec(f"{axis}_DIR", SignalKind.DIGITAL, a2r, dir_pin, f"{axis} stepper direction")
        )
        specs.append(
            SignalSpec(
                f"{axis}_EN", SignalKind.DIGITAL, a2r, en_pin, f"{axis} stepper enable (active low)"
            )
        )
    specs.extend(
        [
            SignalSpec("D10_HOTEND", SignalKind.PWM, a2r, 10, "hotend heater MOSFET gate"),
            SignalSpec("D8_BED", SignalKind.PWM, a2r, 8, "heated bed MOSFET gate"),
            SignalSpec("D9_FAN", SignalKind.PWM, a2r, 9, "part-cooling fan MOSFET gate"),
            SignalSpec("X_MIN", SignalKind.DIGITAL, r2a, 3, "X axis minimum endstop"),
            SignalSpec("Y_MIN", SignalKind.DIGITAL, r2a, 14, "Y axis minimum endstop"),
            SignalSpec("Z_MIN", SignalKind.DIGITAL, r2a, 18, "Z axis minimum endstop"),
            SignalSpec("T0_HOTEND", SignalKind.ANALOG, r2a, 67, "hotend thermistor divider (A13)"),
            SignalSpec("T1_BED", SignalKind.ANALOG, r2a, 68, "bed thermistor divider (A14)"),
        ]
    )
    return {spec.name: spec for spec in specs}


SIGNALS: Dict[str, SignalSpec] = _build_signals()
"""Every signal the harness carries, keyed by name."""

STEP_SIGNALS: Tuple[str, ...] = tuple(f"{axis}_STEP" for axis in AXES)
DIR_SIGNALS: Tuple[str, ...] = tuple(f"{axis}_DIR" for axis in AXES)
ENABLE_SIGNALS: Tuple[str, ...] = tuple(f"{axis}_EN" for axis in AXES)
HEATER_SIGNALS: Tuple[str, ...] = ("D10_HOTEND", "D8_BED")
FAN_SIGNAL: str = "D9_FAN"
ENDSTOP_SIGNALS: Tuple[str, ...] = ("X_MIN", "Y_MIN", "Z_MIN")
THERMISTOR_SIGNALS: Tuple[str, ...] = ("T0_HOTEND", "T1_BED")
