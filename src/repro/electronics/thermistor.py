"""NTC thermistor channel: temperature → divider voltage → ADC counts.

RAMPS thermistor inputs are a 100 kΩ NTC against a 4.7 kΩ pull-up to 5 V,
read by the Mega's 10-bit ADC. Both directions of the conversion live here:
the plant drives the analog wire with the divider voltage for the current
temperature, and the firmware converts sampled counts back to °C. Using the
same β-model on both sides makes the loop exact up to ADC quantisation —
matching how Marlin's thermistor tables work in practice.
"""

from __future__ import annotations

import math

from repro.errors import ElectronicsError
from repro.sim.signals import AnalogWire

_R_NOMINAL_OHM = 100_000.0  # thermistor resistance at 25 C
_T_NOMINAL_K = 298.15
_BETA = 4092.0  # EPCOS 100k (Marlin thermistor table 1)
_R_PULLUP_OHM = 4_700.0
_V_REF = 5.0
_ADC_MAX = 1023  # 10-bit


def thermistor_resistance(temp_c: float) -> float:
    """NTC resistance at ``temp_c`` via the β parameter equation."""
    t_kelvin = temp_c + 273.15
    if t_kelvin <= 0:
        raise ElectronicsError(f"temperature {temp_c}C below absolute zero")
    return _R_NOMINAL_OHM * math.exp(_BETA * (1.0 / t_kelvin - 1.0 / _T_NOMINAL_K))


def divider_voltage(temp_c: float) -> float:
    """Voltage at the thermistor/pull-up junction for ``temp_c``."""
    r_therm = thermistor_resistance(temp_c)
    return _V_REF * r_therm / (r_therm + _R_PULLUP_OHM)


def temp_to_adc(temp_c: float) -> int:
    """ADC counts the firmware would read at ``temp_c`` (quantised)."""
    counts = round(divider_voltage(temp_c) / _V_REF * _ADC_MAX)
    return max(0, min(_ADC_MAX, counts))


def adc_to_temp(counts: int) -> float:
    """Invert the divider + β model: ADC counts → °C.

    Counts at the rails (0 or full-scale) indicate a shorted or open sensor;
    Marlin treats those as MINTEMP/MAXTEMP faults, so we return extreme
    values the protection logic will reject.
    """
    if counts <= 0:
        return 500.0  # open pull-up side: reads as absurdly hot
    if counts >= _ADC_MAX:
        return -50.0  # open thermistor: reads as absurdly cold
    voltage = counts / _ADC_MAX * _V_REF
    r_therm = _R_PULLUP_OHM * voltage / (_V_REF - voltage)
    inv_t = 1.0 / _T_NOMINAL_K + math.log(r_therm / _R_NOMINAL_OHM) / _BETA
    return 1.0 / inv_t - 273.15


def voltage_to_adc(voltage: float) -> int:
    """Quantise a wire voltage to ADC counts (what the Mega's ADC does)."""
    counts = round(voltage / _V_REF * _ADC_MAX)
    return max(0, min(_ADC_MAX, counts))


class ThermistorChannel:
    """Binds a temperature source to an analog harness wire.

    :meth:`refresh` samples the source and drives the wire; the firmware side
    reads the wire and quantises with :func:`voltage_to_adc`.
    """

    def __init__(self, name: str, wire: AnalogWire, read_temp_c) -> None:
        self.name = name
        self.wire = wire
        self._read_temp_c = read_temp_c

    def refresh(self) -> float:
        """Sample the temperature source and update the wire voltage."""
        temp_c = self._read_temp_c()
        self.wire.drive(divider_voltage(temp_c))
        return temp_c
