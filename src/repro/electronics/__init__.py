"""Board-level electronics: the Arduino↔RAMPS signal world.

This package models the electrical layer the OFFRAMPS board physically sits
in: the RAMPS 1.4 pin map, the signal harness between the Arduino Mega and
the RAMPS (with an interposition seam per signal — the "jumpers" of the
paper's Figure 2c), A4988 stepper drivers, heater/fan MOSFETs, thermistor
dividers with a 10-bit ADC, mechanical endstops, and the UART framing used
by the FPGA's telemetry export.
"""

from repro.electronics.drivers import A4988Driver
from repro.electronics.endstop import Endstop
from repro.electronics.harness import SignalHarness, SignalPath
from repro.electronics.mosfet import PowerMosfet
from repro.electronics.pins import (
    AXES,
    SIGNALS,
    SignalKind,
    SignalSpec,
    signal_name,
)
from repro.electronics.ramps import RampsBoard
from repro.electronics.thermistor import ThermistorChannel, adc_to_temp, temp_to_adc
from repro.electronics.uart import UartBus, pack_step_counts, unpack_step_counts

__all__ = [
    "A4988Driver",
    "AXES",
    "Endstop",
    "PowerMosfet",
    "RampsBoard",
    "SIGNALS",
    "SignalHarness",
    "SignalKind",
    "SignalPath",
    "SignalSpec",
    "ThermistorChannel",
    "UartBus",
    "adc_to_temp",
    "pack_step_counts",
    "signal_name",
    "temp_to_adc",
    "unpack_step_counts",
]
