"""A4988 stepper driver model.

The RAMPS ships with socketed A4988 drivers (the paper used the defaults).
The behaviour that matters at the harness level: a STEP pulse advances the
motor one microstep in the direction selected by DIR, but **only while the
active-low EN input is asserted** — Trojan T8 exploits exactly that gate.
Microstep resolution is set by the RAMPS configuration jumpers (1/16 default).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ElectronicsError
from repro.sim.signals import DigitalWire, StepWire

VALID_MICROSTEPS = (1, 2, 4, 8, 16)


class A4988Driver:
    """One stepper driver channel: STEP/DIR/EN in, motor microsteps out.

    ``on_step(direction, time_ns)`` is invoked per accepted pulse with
    ``direction`` ∈ {+1, -1}. Pulses arriving while disabled are counted in
    ``missed_steps`` — the physical motor did not move, which is how the
    plant observes T8's sabotage.
    """

    def __init__(
        self,
        name: str,
        step: StepWire,
        direction: DigitalWire,
        enable: DigitalWire,
        on_step: Callable[[int, int], None],
        microsteps: int = 16,
        invert_direction: bool = False,
    ) -> None:
        if microsteps not in VALID_MICROSTEPS:
            raise ElectronicsError(f"A4988 microstep setting must be one of {VALID_MICROSTEPS}")
        self.name = name
        self.microsteps = microsteps
        self.invert_direction = invert_direction
        self._direction_wire = direction
        self._enable_wire = enable
        self._on_step = on_step
        self.steps_taken = 0
        self.missed_steps = 0
        step.on_pulse(self._handle_pulse)

    @property
    def enabled(self) -> bool:
        """EN is active low: 0 on the wire means the driver is engaged."""
        return self._enable_wire.value == 0

    @property
    def direction(self) -> int:
        """+1 or -1 according to the DIR level (and wiring inversion)."""
        positive = bool(self._direction_wire.value) != self.invert_direction
        return 1 if positive else -1

    def _handle_pulse(self, _wire: StepWire, time_ns: int, _width_ns: int) -> None:
        if not self.enabled:
            self.missed_steps += 1
            return
        self.steps_taken += 1
        self._on_step(self.direction, time_ns)
