"""A4988 stepper driver model.

The RAMPS ships with socketed A4988 drivers (the paper used the defaults).
The behaviour that matters at the harness level: a STEP pulse advances the
motor one microstep in the direction selected by DIR, but **only while the
active-low EN input is asserted** — Trojan T8 exploits exactly that gate.
Microstep resolution is set by the RAMPS configuration jumpers (1/16 default).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ElectronicsError
from repro.sim.signals import DigitalWire, StepWire

VALID_MICROSTEPS = (1, 2, 4, 8, 16)


class A4988Driver:
    """One stepper driver channel: STEP/DIR/EN in, motor microsteps out.

    ``on_step(direction, time_ns)`` is invoked per accepted pulse with
    ``direction`` ∈ {+1, -1}. Pulses arriving while disabled are counted in
    ``missed_steps`` — the physical motor did not move, which is how the
    plant observes T8's sabotage.
    """

    def __init__(
        self,
        name: str,
        step: StepWire,
        direction: DigitalWire,
        enable: DigitalWire,
        on_step: Callable[[int, int], None],
        microsteps: int = 16,
        invert_direction: bool = False,
        on_step_batch: Optional[Callable[[int, int, int], None]] = None,
        on_step_ready: Optional[Callable[[int, int], bool]] = None,
    ) -> None:
        if microsteps not in VALID_MICROSTEPS:
            raise ElectronicsError(f"A4988 microstep setting must be one of {VALID_MICROSTEPS}")
        self.name = name
        self.microsteps = microsteps
        self.invert_direction = invert_direction
        self._direction_wire = direction
        self._enable_wire = enable
        self._on_step = on_step
        self._on_step_batch = on_step_batch
        self._on_step_ready = on_step_ready
        self.steps_taken = 0
        self.missed_steps = 0
        step.on_pulse(
            self._handle_pulse,
            batch=self._handle_pulse_batch,
            ready=self._pulse_batch_ready,
        )

    @property
    def enabled(self) -> bool:
        """EN is active low: 0 on the wire means the driver is engaged."""
        return self._enable_wire.value == 0

    @property
    def direction(self) -> int:
        """+1 or -1 according to the DIR level (and wiring inversion)."""
        positive = bool(self._direction_wire.value) != self.invert_direction
        return 1 if positive else -1

    def _handle_pulse(self, _wire: StepWire, time_ns: int, _width_ns: int) -> None:
        if not self.enabled:
            self.missed_steps += 1
            return
        self.steps_taken += 1
        self._on_step(self.direction, time_ns)

    def _pulse_batch_ready(self, count: int) -> bool:
        # EN and DIR are level signals driven by kernel events; a batch spans
        # an event-free window, so both are constant across its pulses.
        if not self.enabled:
            return True  # the whole run is missed steps — trivially bulkable
        if self._on_step_batch is None or self._on_step_ready is None:
            return False
        return self._on_step_ready(self.direction, count)

    def _handle_pulse_batch(self, _wire: StepWire, times_ns, _width_ns: int) -> None:
        count = len(times_ns)
        if not self.enabled:
            self.missed_steps += count
            return
        self.steps_taken += count
        self._on_step_batch(self.direction, count, int(times_ns[-1]))
