"""Power MOSFET model for the RAMPS heater and fan outputs (D8/D9/D10).

The gate is software-PWMed by the firmware; the load sees average power
``duty x max_power``. The MOSFET relays duty changes to a power sink (a
thermal node or the fan) with the timestamp of the change, so downstream
physics can integrate exactly between switching events.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ElectronicsError
from repro.sim.signals import PwmWire


class PowerMosfet:
    """A gate-driven power switch feeding a load of ``max_power_w`` watts."""

    def __init__(
        self,
        name: str,
        gate: PwmWire,
        max_power_w: float,
        on_power: Callable[[float, int], None],
    ) -> None:
        if max_power_w <= 0:
            raise ElectronicsError(f"MOSFET load power must be positive, got {max_power_w}")
        self.name = name
        self.max_power_w = max_power_w
        self._on_power = on_power
        self._gate = gate
        self.switch_count = 0
        gate.on_change(self._handle_duty)

    @property
    def duty(self) -> float:
        return self._gate.duty

    @property
    def power_w(self) -> float:
        """Average power currently delivered to the load."""
        return self._gate.duty * self.max_power_w

    def _handle_duty(self, _wire: PwmWire, duty: float, time_ns: int) -> None:
        self.switch_count += 1
        self._on_power(duty * self.max_power_w, time_ns)
