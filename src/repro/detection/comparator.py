"""The transaction comparator: 5 % margin + final 0 % check.

"A Python script compares a newly captured print against a 'golden' model.
Should a mismatch outside of the 5% margin of error occur the transaction
number and mismatching values are printed. At the termination of the capture
file the script then gives a report stating the total number of mismatches,
the greatest error found, and the total number of captured transactions."

The per-transaction relative difference uses the golden value as reference
with a small absolute floor, so early transactions (tiny counts) do not
produce spurious percentage blow-ups. The end-of-print check compares final
totals exactly — the 0 % margin that catches arbitrarily small reductions
(Table II case 4's 2 % starvation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.capture import COLUMNS, PulseCapture, Transaction
from repro.detection.report import DetectionReport
from repro.errors import DetectionError

DEFAULT_MARGIN = 0.05
"""The paper's 5 % margin of error."""

DEFAULT_FLOOR_STEPS = 400
"""Absolute denominator floor (steps) for the relative comparison."""


@dataclass(frozen=True)
class Mismatch:
    """One out-of-margin transaction entry."""

    index: int
    column: str
    golden_value: int
    suspect_value: int
    percent_diff: float

    def render(self) -> str:
        return (
            f"Index: {self.index}, Column: {self.column}, "
            f"Values: {self.golden_value}, {self.suspect_value}"
        )


class CaptureComparator:
    """Compares a suspect capture against a golden capture."""

    def __init__(
        self,
        margin: float = DEFAULT_MARGIN,
        floor_steps: int = DEFAULT_FLOOR_STEPS,
        final_check: bool = True,
    ) -> None:
        if not 0.0 <= margin < 1.0:
            raise DetectionError(f"margin must be in [0, 1), got {margin}")
        if floor_steps < 1:
            raise DetectionError("floor_steps must be >= 1")
        self.margin = margin
        self.floor_steps = floor_steps
        self.final_check = final_check

    # ------------------------------------------------------------------
    def percent_diff(self, golden_value: int, suspect_value: int) -> float:
        """Relative difference against the golden reference (floored)."""
        denom = max(abs(golden_value), self.floor_steps)
        return abs(suspect_value - golden_value) / denom

    def compare_transaction(
        self, golden: Transaction, suspect: Transaction
    ) -> List[Mismatch]:
        """Out-of-margin columns for one aligned transaction pair."""
        mismatches: List[Mismatch] = []
        for column in COLUMNS:
            g, s = golden.value(column), suspect.value(column)
            diff = self.percent_diff(g, s)
            if diff > self.margin:
                mismatches.append(Mismatch(golden.index, column, g, s, diff * 100.0))
        return mismatches

    # ------------------------------------------------------------------
    def compare(
        self,
        golden: Sequence[Transaction],
        suspect: Sequence[Transaction],
    ) -> DetectionReport:
        """Full comparison: per-transaction margin pass + final exact check."""
        golden_list = list(golden)
        suspect_list = list(suspect)
        if not golden_list:
            raise DetectionError("golden capture is empty")
        if not suspect_list:
            raise DetectionError("suspect capture is empty")

        compared = min(len(golden_list), len(suspect_list))
        mismatches: List[Mismatch] = []
        largest = 0.0
        for g, s in zip(golden_list[:compared], suspect_list[:compared]):
            for column in COLUMNS:
                diff = self.percent_diff(g.value(column), s.value(column))
                largest = max(largest, diff * 100.0)
                if diff > self.margin:
                    mismatches.append(
                        Mismatch(g.index, column, g.value(column), s.value(column), diff * 100.0)
                    )

        final_mismatches: List[Mismatch] = []
        if self.final_check:
            g_final, s_final = golden_list[-1], suspect_list[-1]
            for column in COLUMNS:
                if g_final.value(column) != s_final.value(column):
                    final_mismatches.append(
                        Mismatch(
                            g_final.index,
                            column,
                            g_final.value(column),
                            s_final.value(column),
                            self.percent_diff(
                                g_final.value(column), s_final.value(column)
                            )
                            * 100.0,
                        )
                    )

        return DetectionReport(
            margin_percent=self.margin * 100.0,
            transactions_compared=compared,
            mismatches=mismatches,
            final_mismatches=final_mismatches,
            largest_percent_diff=largest,
            golden_length=len(golden_list),
            suspect_length=len(suspect_list),
        )

    def compare_captures(
        self, golden: PulseCapture, suspect: PulseCapture
    ) -> DetectionReport:
        return self.compare(golden.transactions, suspect.transactions)
