"""Baseline detector: an emulated lossy side-channel.

The paper positions OFFRAMPS against prior detection work built on lossy
side-channels (acoustic, power, electromagnetic): "The OFFRAMPS, by
connecting directly to control signals, is uniquely able to modify or analyze
prints with no loss of data." This module makes that comparison quantitative
by emulating what a power-style side-channel sees (per-motor current shunts,
as in the actuator-power-signature work the paper cites) and running the same
golden-comparison strategy over it.

The emulation degrades the lossless transaction stream the way the physical
channel does:

* **magnitude only** — power scales with motor *activity*; direction is
  lost, so the per-window observable per motor is its unsigned step count;
* **additive noise** — sensor and ambient noise proportional to the signal
  plus a floor. The cited power-side-channel study needed *forty repetitions
  of each print* to average this out; :class:`SideChannelModel.repetitions`
  models that averaging (and its cost);
* **quantisation** — bounded effective resolution.

The resulting detector catches gross attacks (50 % flow reduction shows up
as a halved E-channel signature) but cannot reach the margins the lossless
counts support — the stealthy 2 % reduction hides below its calibrated
threshold, while OFFRAMPS' exact counts catch it with the 0 %-margin final
check. The benchmark asserts exactly that separation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.capture import COLUMNS, Transaction
from repro.errors import DetectionError


@dataclass(frozen=True)
class SideChannelModel:
    """Fidelity parameters of the emulated side-channel."""

    noise_fraction: float = 0.05  # sigma as a fraction of window activity
    noise_floor: float = 5.0  # sigma floor, in step-equivalents
    quantization_steps: float = 10.0  # effective resolution
    repetitions: int = 8  # prints averaged per observation (noise / sqrt(n))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.noise_fraction < 0 or self.noise_floor < 0:
            raise DetectionError("side-channel noise parameters must be >= 0")
        if self.quantization_steps <= 0:
            raise DetectionError("quantization must be positive")
        if self.repetitions < 1:
            raise DetectionError("repetitions must be >= 1")


def activity_profiles(
    transactions: Sequence[Transaction],
) -> Dict[str, List[float]]:
    """Per-motor unsigned step activity per window.

    This is the *ideal* observable a per-shunt power channel could hope to
    recover: |delta counts| for each motor in each transaction window.
    """
    txns = list(transactions)
    if not txns:
        raise DetectionError("cannot profile an empty capture")
    profiles: Dict[str, List[float]] = {column: [] for column in COLUMNS}
    prev = Transaction(0, 0, 0, 0, 0)
    for txn in txns:
        for column in COLUMNS:
            profiles[column].append(float(abs(txn.value(column) - prev.value(column))))
        prev = txn
    return profiles


def observe(
    transactions: Sequence[Transaction], model: SideChannelModel
) -> Dict[str, List[float]]:
    """Degrade the ideal activity profiles through the side-channel model.

    Each window value is the average of ``model.repetitions`` independent
    noisy measurements, then quantised — the repetition-averaging workflow of
    the power-signature detection the paper discusses.
    """
    rng = random.Random(model.seed)
    observed: Dict[str, List[float]] = {}
    for column, profile in activity_profiles(transactions).items():
        channel: List[float] = []
        for activity in profile:
            sigma = max(model.noise_floor, activity * model.noise_fraction)
            total = 0.0
            for _ in range(model.repetitions):
                total += activity + rng.gauss(0.0, sigma)
            mean = total / model.repetitions
            quantised = (
                round(mean / model.quantization_steps) * model.quantization_steps
            )
            channel.append(max(0.0, quantised))
        observed[column] = channel
    return observed


@dataclass
class SideChannelReport:
    """Outcome of a side-channel golden comparison."""

    windows_compared: int
    anomalous_windows: int
    largest_relative_diff: float
    threshold: float
    worst_channel: str = ""

    @property
    def trojan_likely(self) -> bool:
        return self.anomalous_windows > 0

    def summary(self) -> str:
        verdict = "TROJAN" if self.trojan_likely else "clean"
        return (
            f"{verdict}: {self.anomalous_windows}/{self.windows_compared} anomalous "
            f"windows, max diff {self.largest_relative_diff * 100:.1f}% "
            f"on {self.worst_channel or '-'} (threshold {self.threshold * 100:.0f}%)"
        )


class SideChannelDetector:
    """Golden-comparison detection over the emulated side-channel.

    Only windows where the golden channel shows meaningful activity are
    compared (idle windows are pure noise). The threshold must sit above the
    channel's own noise — calibrate with :meth:`calibrate_threshold` on two
    clean observations — which is exactly why this baseline cannot reach the
    margins the lossless counts allow.
    """

    def __init__(
        self,
        model: SideChannelModel = SideChannelModel(),
        threshold: float = 0.3,
        min_activity: float = 50.0,
    ) -> None:
        self.model = model
        self.threshold = threshold
        self.min_activity = min_activity

    def _with_seed(self, seed: int) -> SideChannelModel:
        return SideChannelModel(
            self.model.noise_fraction,
            self.model.noise_floor,
            self.model.quantization_steps,
            self.model.repetitions,
            seed,
        )

    def calibrate_threshold(
        self,
        golden: Sequence[Transaction],
        control: Sequence[Transaction],
        headroom: float = 1.5,
    ) -> float:
        """Set the threshold from the clean-vs-clean observation noise."""
        worst, _ = self._worst_diff(
            observe(golden, self.model),
            observe(control, self._with_seed(self.model.seed + 1)),
        )
        self.threshold = worst * headroom
        return self.threshold

    def compare(
        self,
        golden: Sequence[Transaction],
        suspect: Sequence[Transaction],
        suspect_seed_offset: int = 7,
    ) -> SideChannelReport:
        golden_obs = observe(golden, self.model)
        suspect_obs = observe(suspect, self._with_seed(self.model.seed + suspect_seed_offset))
        compared = min(len(golden_obs["X"]), len(suspect_obs["X"]))
        anomalous = 0
        largest = 0.0
        worst_channel = ""
        for column in COLUMNS:
            for g, s in zip(
                golden_obs[column][:compared], suspect_obs[column][:compared]
            ):
                if g < self.min_activity:
                    continue
                diff = abs(s - g) / g
                if diff > largest:
                    largest, worst_channel = diff, column
                if diff > self.threshold:
                    anomalous += 1
        return SideChannelReport(
            windows_compared=compared,
            anomalous_windows=anomalous,
            largest_relative_diff=largest,
            threshold=self.threshold,
            worst_channel=worst_channel,
        )

    def _worst_diff(self, golden_obs, suspect_obs) -> tuple:
        worst = 0.0
        channel = ""
        for column in COLUMNS:
            for g, s in zip(golden_obs[column], suspect_obs[column]):
                if g < self.min_activity:
                    continue
                diff = abs(s - g) / g
                if diff > worst:
                    worst, channel = diff, column
        return worst, channel
