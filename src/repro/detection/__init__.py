"""Trojan detection: golden-model comparison of pulse captures.

Implements the paper's Section V-C strategy: compare each transaction of a
captured print against a known-good ("golden") capture with a 5 % margin of
error (absorbing the "time noise" of asynchronous execution), then apply a
final end-of-print check with a 0 % margin — the correct total number of
steps must have been counted on each axis. A streaming variant raises the
alarm mid-print so a job can be halted early.

Also provided: goldens derived from simulation (:mod:`simgolden`) and an
emulated lossy side-channel baseline (:mod:`baselines`) for comparing the
platform against the prior detection literature.
"""

from repro.detection.baselines import (
    SideChannelDetector,
    SideChannelModel,
    SideChannelReport,
)
from repro.detection.comparator import CaptureComparator, Mismatch
from repro.detection.golden import GoldenStore
from repro.detection.protocol import (
    DETECTOR_CLASSES,
    Detector,
    GoldenComparisonDetector,
    QualityDetector,
    RealtimeDetector,
    SideChannelBaselineDetector,
    Verdict,
    make_detector,
)
from repro.detection.realtime import StreamingDetector
from repro.detection.report import DetectionReport
from repro.detection.simgolden import golden_from_simulation

__all__ = [
    "CaptureComparator",
    "DETECTOR_CLASSES",
    "DetectionReport",
    "Detector",
    "GoldenComparisonDetector",
    "GoldenStore",
    "Mismatch",
    "QualityDetector",
    "RealtimeDetector",
    "SideChannelBaselineDetector",
    "SideChannelDetector",
    "SideChannelModel",
    "SideChannelReport",
    "StreamingDetector",
    "Verdict",
    "golden_from_simulation",
    "make_detector",
]
