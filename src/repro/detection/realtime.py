"""Streaming detection: flag Trojans while the print is still running.

"This analysis can also be done in real-time while printing, enabling a user
to halt a print as soon as a Trojan is suspected." The streaming detector
subscribes to the live UART bus, compares each arriving transaction against
the aligned golden transaction, and invokes an alarm callback (typically
wired to an abort) on the first out-of-margin entry — saving "machine time
and material cost" on large malicious divergences.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.capture import Transaction
from repro.detection.comparator import CaptureComparator, Mismatch
from repro.electronics.uart import UartBus, unpack_step_counts


class StreamingDetector:
    """Live golden comparison over the UART transaction stream.

    The alignment/alarm logic lives in :meth:`observe`, so the same code
    path serves both the live bus subscription and offline replay of an
    already-captured stream (the ``realtime`` entry of the Detector
    protocol).
    """

    def __init__(
        self,
        golden: Sequence[Transaction],
        bus: Optional[UartBus] = None,
        comparator: Optional[CaptureComparator] = None,
        alarm_after_mismatches: int = 1,
        on_alarm: Optional[Callable[[Mismatch], None]] = None,
    ) -> None:
        self.golden = list(golden)
        self.comparator = comparator or CaptureComparator()
        self.alarm_after_mismatches = max(1, alarm_after_mismatches)
        self.on_alarm = on_alarm
        self.mismatches: List[Mismatch] = []
        self.transactions_seen = 0
        self.alarmed = False
        self.alarmed_at_index: Optional[int] = None
        if bus is not None:
            bus.on_frame(self._on_frame)

    def observe(self, suspect: Transaction) -> None:
        """Compare the next arriving transaction against the aligned golden."""
        index = self.transactions_seen + 1
        self.transactions_seen = index
        if index > len(self.golden):
            # The suspect print is running longer than the golden: everything
            # past the golden's end is itself suspicious.
            self._record(Mismatch(index, "X", 0, 0, 100.0))
            return
        for mismatch in self.comparator.compare_transaction(
            self.golden[index - 1], suspect
        ):
            self._record(mismatch)

    def _on_frame(self, time_ns: int, frame: bytes) -> None:
        x, y, z, e = unpack_step_counts(frame)
        self.observe(
            Transaction(self.transactions_seen + 1, x, y, z, e, time_ns=time_ns)
        )

    def _record(self, mismatch: Mismatch) -> None:
        self.mismatches.append(mismatch)
        if not self.alarmed and len(self.mismatches) >= self.alarm_after_mismatches:
            self.alarmed = True
            self.alarmed_at_index = mismatch.index
            if self.on_alarm is not None:
                self.on_alarm(mismatch)
