"""Golden-model store: validated reference captures.

"(1) a 'golden' model is captured by verifying a set of g-code ... (2) Once
assured, the pulse profile can be used as a point of comparison for future
prints." The store keys golden captures by part name and persists them in
the Figure 4 CSV layout so goldens survive across sessions (or can come from
a separately validated simulation run, as the paper notes).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.core.capture import PulseCapture, load_capture_csv, save_capture_csv
from repro.errors import DetectionError


class GoldenStore:
    """In-memory (and optionally on-disk) registry of golden captures."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self._captures: Dict[str, PulseCapture] = {}
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._load_existing(directory)

    def _load_existing(self, directory: str) -> None:
        for name in sorted(os.listdir(directory)):
            if name.endswith(".golden.csv"):
                key = name[: -len(".golden.csv")]
                self._captures[key] = load_capture_csv(os.path.join(directory, name))

    # ------------------------------------------------------------------
    def register(self, name: str, capture: PulseCapture) -> None:
        """Store a validated capture as the golden model for ``name``."""
        if not len(capture):
            raise DetectionError(f"refusing to register empty golden capture {name!r}")
        self._captures[name] = capture
        if self.directory is not None:
            save_capture_csv(capture, self._path(name))

    def get(self, name: str) -> PulseCapture:
        try:
            return self._captures[name]
        except KeyError:
            raise DetectionError(f"no golden capture registered for {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._captures

    def names(self) -> List[str]:
        return sorted(self._captures)

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, f"{name}.golden.csv")
