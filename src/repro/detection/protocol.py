"""The unified Detector protocol: ``fit(golden) / score(suspect) -> Verdict``.

Every detection strategy in this repository — the paper's lossless
golden-model comparison, the streaming/realtime variant, the emulated lossy
side-channel baseline, and the physical part-quality check — answers the
same question ("given a trusted golden print, is this print trojaned?") but
historically each exposed its own API. This module gives them one shape so a
scenario can name its detectors declaratively and the sweep engine can treat
them as interchangeable entries:

* :class:`Verdict` — the normalized outcome (boolean verdict, a headline
  score, a one-line detail, and the detector's native rich report);
* :class:`Detector` — the structural protocol: ``fit`` on the golden
  session summary, then ``score`` any number of suspect summaries;
* four adapters covering the existing detection strategies;
* :data:`DETECTOR_CLASSES` / :func:`make_detector` — the registry the
  scenario layer resolves detector names through.

Detectors consume :class:`~repro.experiments.batch.SessionSummary` duck-typed
(anything with ``capture``/``transactions``/``trace``/plant fields works), so
this module stays import-light and free of experiment-layer dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    runtime_checkable,
)

from repro.detection.baselines import SideChannelDetector, SideChannelModel
from repro.detection.comparator import DEFAULT_MARGIN, CaptureComparator
from repro.detection.realtime import StreamingDetector
from repro.errors import DetectionError


@dataclass(frozen=True)
class Verdict:
    """One detector's normalized answer about one suspect print."""

    detector: str
    trojan_likely: bool
    score: float
    detail: str
    report: Optional[Any] = None

    def summary(self) -> str:
        verdict = "TROJAN" if self.trojan_likely else "clean"
        return f"[{self.detector}] {verdict}: {self.detail}"

    def as_dict(self) -> Dict[str, Any]:
        """The verdict as plain JSON/CSV-safe values.

        The ``report`` (a detector-native rich object, possibly holding live
        comparator state) is deliberately dropped: this is the shape that
        serializes into sweep reports and cached artifacts.
        """
        return {
            "detector": self.detector,
            "trojan_likely": bool(self.trojan_likely),
            "score": float(self.score),
            "detail": self.detail,
        }

    def without_report(self) -> "Verdict":
        """A copy safe to pickle/ship regardless of the report's contents."""
        if self.report is None:
            return self
        return Verdict(
            detector=self.detector,
            trojan_likely=self.trojan_likely,
            score=self.score,
            detail=self.detail,
        )

    def __getstate__(self):
        """Pickle via :meth:`without_report`.

        The ``report`` is the detector's native rich object and may hold
        live state — :class:`RealtimeDetector` attaches the replayed
        :class:`~repro.detection.realtime.StreamingDetector` itself, whose
        alarm callback can be bound to a live bus. Dropping it here makes
        every serialization boundary (process pools, the distribution
        work-dir protocol, user pickles of scored sweeps) safe by
        construction; the scored outcome itself always survives.
        """
        return dict(self.without_report().__dict__)


@runtime_checkable
class Detector(Protocol):
    """What every detection strategy exposes to the scenario layer."""

    name: str

    def fit(self, golden) -> "Detector":
        """Learn the trusted reference; returns ``self`` for chaining."""
        ...

    def score(self, suspect) -> Verdict:
        """Judge one suspect print against the fitted golden."""
        ...


class _FittedMixin:
    """Shared golden-handling for the concrete detectors."""

    name = "detector"

    def __init__(self) -> None:
        self._golden = None

    def fit(self, golden):
        if golden is None:
            raise DetectionError(f"{self.name}: cannot fit on a missing golden")
        self._golden = golden
        return self

    @property
    def golden(self):
        if self._golden is None:
            raise DetectionError(f"{self.name}: score() before fit()")
        return self._golden


class GoldenComparisonDetector(_FittedMixin):
    """The paper's Section V-C strategy: 5 % margin + final 0 % check.

    Thin protocol adapter over :class:`CaptureComparator`; the verdict's
    ``report`` is the full :class:`~repro.detection.report.DetectionReport`.
    """

    name = "golden"

    def __init__(
        self,
        margin: float = DEFAULT_MARGIN,
        floor_steps: Optional[int] = None,
        final_check: bool = True,
    ) -> None:
        super().__init__()
        kwargs = {"margin": margin, "final_check": final_check}
        if floor_steps is not None:
            kwargs["floor_steps"] = floor_steps
        self.comparator = CaptureComparator(**kwargs)

    def score(self, suspect) -> Verdict:
        if not suspect.transactions:
            # The export stream arms on homing; a print killed before it
            # ever produced a transaction (T6-style heater DoS) is maximal
            # evidence, not a comparison error. The synthesized report keeps
            # Verdict.report a real DetectionReport for downstream renderers:
            # an absent stream trivially fails the 0% end-of-print check.
            return Verdict(
                detector=self.name,
                trojan_likely=True,
                score=100.0,
                detail="suspect produced no transactions (print never started)",
                report=self._empty_suspect_report(),
            )
        report = self.comparator.compare_captures(self.golden.capture, suspect.capture)
        return Verdict(
            detector=self.name,
            trojan_likely=report.trojan_likely,
            score=report.largest_percent_diff,
            detail=report.summary(),
            report=report,
        )

    def _empty_suspect_report(self):
        from repro.core.capture import COLUMNS
        from repro.detection.comparator import Mismatch
        from repro.detection.report import DetectionReport

        golden_txns = list(self.golden.transactions)
        final = golden_txns[-1]
        final_mismatches = [
            Mismatch(
                final.index,
                column,
                final.value(column),
                0,
                self.comparator.percent_diff(final.value(column), 0) * 100.0,
            )
            for column in COLUMNS
            if final.value(column) != 0
        ]
        return DetectionReport(
            margin_percent=self.comparator.margin * 100.0,
            transactions_compared=0,
            mismatches=[],
            final_mismatches=final_mismatches,
            largest_percent_diff=0.0,
            golden_length=len(golden_txns),
            suspect_length=0,
        )


class RealtimeDetector(_FittedMixin):
    """The streaming comparison, replayed over a completed capture.

    Reuses :class:`StreamingDetector`'s alignment/alarm logic (the exact code
    the live UART path runs) by feeding it the suspect's transaction stream.
    The score is the percentage of the print that had elapsed when the alarm
    fired — the "halt a print as soon as a Trojan is suspected" economy.

    A wholly empty suspect stream is treated as maximal evidence (matching
    the other detectors). A *truncated* stream with a matching prefix is
    the method's honest blind spot: live streaming only sees transactions
    that arrive, so a print that simply stops scores clean here — pair with
    ``golden`` (whose final-totals check catches it) when that matters.
    """

    name = "realtime"

    def __init__(
        self,
        margin: float = DEFAULT_MARGIN,
        alarm_after_mismatches: int = 1,
    ) -> None:
        super().__init__()
        self.margin = margin
        self.alarm_after_mismatches = alarm_after_mismatches

    def score(self, suspect) -> Verdict:
        golden_txns = self.golden.transactions
        if not suspect.transactions:
            return Verdict(
                detector=self.name,
                trojan_likely=True,
                score=0.0,
                detail="suspect produced no transactions (print never started)",
            )
        streamer = StreamingDetector(
            golden_txns,
            comparator=CaptureComparator(margin=self.margin),
            alarm_after_mismatches=self.alarm_after_mismatches,
        )
        suspect_txns = list(suspect.transactions)
        for txn in suspect_txns:
            streamer.observe(txn)
        if streamer.alarmed and suspect_txns:
            elapsed = 100.0 * streamer.alarmed_at_index / len(suspect_txns)
            detail = (
                f"alarm at transaction {streamer.alarmed_at_index}/"
                f"{len(suspect_txns)} ({elapsed:.0f}% of print)"
            )
        else:
            elapsed = 100.0
            detail = f"no alarm over {len(suspect_txns)} transactions"
        return Verdict(
            detector=self.name,
            trojan_likely=streamer.alarmed,
            score=elapsed,
            detail=detail,
            report=streamer,
        )


class SideChannelBaselineDetector(_FittedMixin):
    """The emulated lossy side-channel (prior-work baseline) as a Detector."""

    name = "sidechannel"

    def __init__(
        self,
        model: Optional[SideChannelModel] = None,
        threshold: float = 0.3,
        min_activity: float = 50.0,
    ) -> None:
        super().__init__()
        self.detector = SideChannelDetector(
            model=model or SideChannelModel(),
            threshold=threshold,
            min_activity=min_activity,
        )

    def score(self, suspect) -> Verdict:
        if not suspect.transactions:
            return Verdict(
                detector=self.name,
                trojan_likely=True,
                score=100.0,
                detail="suspect produced no transactions (print never started)",
            )
        report = self.detector.compare(self.golden.transactions, suspect.transactions)
        return Verdict(
            detector=self.name,
            trojan_likely=report.trojan_likely,
            score=report.largest_relative_diff * 100.0,
            detail=report.summary(),
            report=report,
        )


class QualityDetector(_FittedMixin):
    """Physical-effect detection: judge the *part*, not the signals.

    The simulated counterpart of inspecting the photographed Table I parts:
    compare deposition traces against the golden print and flag geometry
    compromise, delamination, flow anomalies, lost steps, fan sabotage, or a
    print that never finished. Catches attack classes (T9's fan collapse,
    T6/T7's kills) that leave the X/Y/Z/E transaction stream clean.

    The fan check is duration-aware: beyond the whole-print mean-duty ratio,
    it integrates the *fraction of the print* the suspect fan spent below
    ``fan_collapse_ratio`` times the golden duty at the same normalized time
    (:func:`~repro.physics.quality.fan_deficit_fraction`). A sabotage window
    that is a sliver of the wall clock (T9 on the tiny coupon: a 10 s arm
    delay against a ~60 s print whose fan only runs for the final 8 s)
    therefore still registers — the sabotaged share of the print is
    normalized by print length, not washed out by it.
    """

    name = "quality"

    def __init__(
        self,
        flow_band: float = 0.1,
        fan_collapse_ratio: float = 0.6,
        fan_deficit_threshold: float = 0.01,
    ) -> None:
        super().__init__()
        self.flow_band = flow_band
        self.fan_collapse_ratio = fan_collapse_ratio
        self.fan_deficit_threshold = fan_deficit_threshold

    def _fan_deficit(self, suspect) -> float:
        """Normalized-time fan deficit, 0.0 when either side lacks a profile.

        Summaries are consumed duck-typed; anything without the fan profile
        fields (older cache formats, hand-built test doubles) simply skips
        the duration-aware check rather than failing it.
        """
        from repro.physics.quality import fan_deficit_fraction

        golden_profile = getattr(self.golden, "fan_profile", None)
        suspect_profile = getattr(suspect, "fan_profile", None)
        if not golden_profile or suspect_profile is None:
            return 0.0
        return fan_deficit_fraction(
            golden_profile,
            getattr(self.golden, "end_time_ns", 0),
            suspect_profile,
            getattr(suspect, "end_time_ns", 0),
            collapse_ratio=self.fan_collapse_ratio,
        )

    def score(self, suspect) -> Verdict:
        from repro.physics.quality import compare_traces

        quality = compare_traces(self.golden.trace, suspect.trace)
        anomalies = []
        if not suspect.completed:
            anomalies.append(f"print not completed ({suspect.status.value})")
        if quality.geometry_compromised:
            anomalies.append(
                f"geometry compromised (centroid dev {quality.max_centroid_shift_mm:.2f}mm)"
            )
        if quality.delaminated:
            anomalies.append(f"delamination (gap {quality.max_z_spacing_mm:.2f}mm)")
        if abs(quality.flow_ratio - 1.0) > self.flow_band:
            anomalies.append(f"flow ratio {quality.flow_ratio:.2f}")
        if suspect.missed_steps > 0:
            anomalies.append(f"{suspect.missed_steps} missed steps")
        if suspect.hotend_damaged or suspect.bed_damaged:
            anomalies.append("heater damage")
        golden_fan = self.golden.mean_fan_duty
        if golden_fan > 0 and suspect.mean_fan_duty / golden_fan < self.fan_collapse_ratio:
            anomalies.append(
                f"fan duty collapsed ({suspect.mean_fan_duty:.2f} vs {golden_fan:.2f})"
            )
        else:
            deficit = self._fan_deficit(suspect)
            if deficit > self.fan_deficit_threshold:
                anomalies.append(
                    f"fan duty deficit over {deficit * 100.0:.1f}% of the print"
                )
        detail = "; ".join(anomalies) if anomalies else "part within tolerances"
        return Verdict(
            detector=self.name,
            trojan_likely=bool(anomalies),
            score=float(len(anomalies)),
            detail=detail,
            report=quality,
        )


DETECTOR_CLASSES: Dict[str, Type] = {
    GoldenComparisonDetector.name: GoldenComparisonDetector,
    RealtimeDetector.name: RealtimeDetector,
    SideChannelBaselineDetector.name: SideChannelBaselineDetector,
    QualityDetector.name: QualityDetector,
}


def make_detector(name: str, **params) -> Detector:
    """Instantiate a registered detector by name (unfitted)."""
    try:
        cls = DETECTOR_CLASSES[name]
    except KeyError:
        raise DetectionError(
            f"unknown detector {name!r}; expected one of {sorted(DETECTOR_CLASSES)}"
        ) from None
    return cls(**params)


@dataclass(frozen=True)
class ScoreSpec:
    """A picklable recipe for scoring one suspect against one golden.

    Carries detector *names and constructor parameters* — never live
    detector objects — so the recipe can cross any process/host boundary
    (notably the distribution work-dir protocol, where workers score their
    own sessions and ship only :class:`Verdict` rows back). Wherever it
    runs, :meth:`score_pair` instantiates through the same
    :func:`make_detector` registry the serial sweep uses, so worker-side
    verdicts are identical to coordinator-side ones by construction.
    """

    entries: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]

    @classmethod
    def for_detectors(
        cls, names: Sequence[str], margin: float = DEFAULT_MARGIN
    ) -> "ScoreSpec":
        """The standard scenario recipe: thread ``margin`` where it applies.

        Only the margin-based comparison detectors (``golden``,
        ``realtime``) take the scenario margin; the others are built with
        their defaults — the same policy the serial sweep has always used.
        """
        entries = []
        for name in names:
            params: Tuple[Tuple[str, Any], ...] = ()
            if name in ("golden", "realtime"):
                params = (("margin", margin),)
            entries.append((name, params))
        return cls(entries=tuple(entries))

    def score_pair(self, golden, suspect) -> Dict[str, Verdict]:
        """Fit every detector on ``golden`` and score ``suspect``.

        A FAILED session (its *execution* raised; duck-typed via
        ``.failed``/``.error``) cannot be fitted or scored: each detector
        instead reports a non-detection verdict carrying the failure text,
        so a crashed session surfaces as a reportable row wherever the
        scoring happens to run.
        """
        verdicts: Dict[str, Verdict] = {}
        failed = [
            (side, summary)
            for side, summary in (("golden", golden), ("suspect", suspect))
            if getattr(summary, "failed", False)
        ]
        for name, params in self.entries:
            if failed:
                side, summary = failed[0]
                error = getattr(summary, "error", None)
                verdicts[name] = Verdict(
                    detector=name,
                    trojan_likely=False,
                    score=0.0,
                    detail=f"not scored: {side} session failed ({error})",
                )
            else:
                detector = make_detector(name, **dict(params))
                verdicts[name] = detector.fit(golden).score(suspect)
        return verdicts
