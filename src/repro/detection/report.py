"""Detection report: the tool output of Figure 4c.

Carries the mismatch list and summary statistics, and renders them in the
same shape as the paper's tool::

    ...
    Index: 5115, Column: X, Values: 7218, 6489
    Index: 5116, Column: X, Values: 8166, 7437
    ...
    Largest percent difference found: 93.19%
    Number of transactions compared: 12416
    Number of mismatches: 952
    Trojan likely!
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.detection.comparator import Mismatch


@dataclass
class DetectionReport:
    """Outcome of one golden-vs-suspect comparison."""

    margin_percent: float
    transactions_compared: int
    mismatches: List["Mismatch"] = field(default_factory=list)
    final_mismatches: List["Mismatch"] = field(default_factory=list)
    largest_percent_diff: float = 0.0
    golden_length: int = 0
    suspect_length: int = 0

    @property
    def mismatch_count(self) -> int:
        return len(self.mismatches)

    @property
    def final_check_failed(self) -> bool:
        """End-of-print totals differed (the 0 % margin check)."""
        return bool(self.final_mismatches)

    @property
    def trojan_likely(self) -> bool:
        """The tool's verdict: any margin violation or final-total mismatch."""
        return self.mismatch_count > 0 or self.final_check_failed

    # ------------------------------------------------------------------
    def render(self, max_mismatch_lines: int = 10) -> str:
        """Figure-4c-style text output."""
        lines: List[str] = []
        shown = self.mismatches[:max_mismatch_lines]
        if len(self.mismatches) > len(shown):
            lines.append("...")
        for mismatch in shown:
            lines.append(mismatch.render())
        if len(self.mismatches) > len(shown):
            lines.append("...")
        lines.append(
            f"Largest percent difference found: {self.largest_percent_diff:.2f}%"
        )
        lines.append(f"Number of transactions compared: {self.transactions_compared}")
        lines.append(f"Number of mismatches: {self.mismatch_count}")
        if self.final_check_failed:
            for mismatch in self.final_mismatches:
                lines.append(
                    f"Final-total mismatch on {mismatch.column}: "
                    f"{mismatch.golden_value} != {mismatch.suspect_value}"
                )
        lines.append("Trojan likely!" if self.trojan_likely else "No Trojan suspected.")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line summary for tables."""
        verdict = "TROJAN" if self.trojan_likely else "clean"
        return (
            f"{verdict}: {self.mismatch_count} mismatches / "
            f"{self.transactions_compared} transactions, "
            f"max diff {self.largest_percent_diff:.2f}%, "
            f"final check {'FAILED' if self.final_check_failed else 'ok'}"
        )
