"""Golden captures from simulation.

The paper notes the reference profile "can come from simulation of the
firmware" instead of a physically validated print — attractive because no
material or machine time is spent producing the golden. In this repository
the firmware *is* a simulator, so the workflow is direct: execute the
program on a pristine, noise-free bench and record the transaction stream.

The one subtlety carried over from the paper: a simulated golden has zero
time noise while real prints drift, so the margin must absorb the full
real-print drift rather than the difference of two noisy prints.
"""

from __future__ import annotations

from typing import Optional

from repro.core.capture import PulseCapture
from repro.experiments.runner import run_print
from repro.firmware.config import MarlinConfig
from repro.gcode.ast import GcodeProgram


def golden_from_simulation(
    program: GcodeProgram,
    uart_period_ms: int = 100,
    config: Optional[MarlinConfig] = None,
) -> PulseCapture:
    """Produce a golden capture by simulating the firmware noise-free."""
    result = run_print(
        program,
        noise_sigma=0.0,
        uart_period_ms=uart_period_ms,
        config=config,
    )
    return result.capture
