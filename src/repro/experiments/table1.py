"""Table I: the Trojan suite evaluated on a real print.

Runs the golden print (T0, FPGA in bypass) and each of T1–T9, then scores
every Trojan's *physical effect* with plant/quality metrics — the simulated
counterpart of the paper's photographed parts. A Trojan "manifests" when its
designed effect is measurably present:

==== ==================================================================
T1   per-layer geometry displaced (centroid shift / bbox growth)
T2   flow ratio ≈ the configured reduction (0.5)
T3   over-extrusion from weakened retraction (flow ratio > 1.1)
T4   some layers shifted (max centroid deviation above threshold)
T5   layer gap opened (max z-spacing >= 1.5x nominal)
T6   firmware killed with a heating failure; no part produced
T7   hotend driven past its damage threshold despite the firmware kill
T8   driver-disabled pulses lost; geometry wrecked
T9   mean fan duty collapses vs the golden print
==== ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.trojans import make_trojan
from repro.experiments.batch import CacheOption, SessionSpec, SessionSummary
from repro.experiments.runner import SessionResult, run_print
from repro.experiments.scenario import (
    TABLE1_TROJAN_PARAMS,
    TROJAN_IDS,
    get_attack,
    run_scenarios,
    trojan_scenarios,
)
from repro.experiments.workloads import sliced_program, table1_part
from repro.gcode.ast import GcodeProgram
from repro.physics.quality import PartQualityReport, compare_traces


@dataclass
class Table1Row:
    """One evaluated Trojan."""

    trojan_id: str
    category: str
    scenario: str
    effect: str
    observed: str
    manifested: bool

    def render(self) -> str:
        status = "EFFECT CONFIRMED" if self.manifested else "no effect"
        return (
            f"{self.trojan_id:<3} {self.category:<4} {self.scenario:<17} "
            f"{status:<17} {self.observed}"
        )


def _trojan_params(trojan_id: str) -> Dict:
    """Per-Trojan Table I parameters (canonical copy: the attack registry)."""
    return dict(TABLE1_TROJAN_PARAMS[trojan_id])


def _grace_s(trojan_id: str) -> float:
    """Post-finish grace for one Trojan (from its registered attack)."""
    return get_attack(trojan_id).grace_s


def table1_spec(
    trojan_id: Optional[str],
    program: GcodeProgram,
    seed: int = 42,
) -> SessionSpec:
    """The Table I session for one Trojan (None = golden T0) as a spec."""
    if trojan_id is None:
        return SessionSpec(program=program, label="T0", cacheable=True, fast_path=True)
    attack = get_attack(trojan_id)
    return SessionSpec(
        program=program,
        trojan_id=attack.trojan_id,
        trojan_params=attack.trojan_params,
        trojan_seed=seed,
        grace_s=attack.grace_s,
        label=trojan_id,
        fast_path=True,
    )


def run_trojan_session(
    trojan_id: Optional[str],
    program=None,
    seed: int = 42,
) -> SessionResult:
    """Run the Table I workload with one Trojan enabled (None = golden T0).

    Returns the live :class:`SessionResult`; the batched Table I pipeline
    itself goes through :func:`table1_spec` + :func:`run_sessions`.
    """
    if program is None:
        program = sliced_program(table1_part())
    trojan = None
    grace = 1.0
    if trojan_id is not None:
        trojan = make_trojan(trojan_id, **_trojan_params(trojan_id))
        grace = _grace_s(trojan_id)
    return run_print(program, trojan=trojan, trojan_seed=seed, grace_s=grace)


def _score(
    trojan_id: str,
    golden: SessionSummary,
    result: SessionSummary,
    quality: PartQualityReport,
) -> Table1Row:
    stat = result.trojan_stats.get
    observed = ""
    manifested = False

    if trojan_id == "T1":
        manifested = quality.geometry_compromised and stat("shifts_injected", 0) > 0
        observed = (
            f"{stat('shifts_injected', 0)} shifts ({stat('steps_injected', 0)} extra steps); "
            f"max centroid dev {quality.max_centroid_shift_mm:.2f}mm, "
            f"bbox growth {quality.max_bbox_growth_mm:.2f}mm"
        )
    elif trojan_id == "T2":
        manifested = 0.4 <= quality.flow_ratio <= 0.6
        observed = (
            f"flow ratio {quality.flow_ratio:.2f} "
            f"({stat('pulses_masked', 0)} extruder pulses masked)"
        )
    elif trojan_id == "T3":
        manifested = quality.flow_ratio > 1.1 and stat("retraction_pulses_affected", 0) > 0
        observed = (
            f"flow ratio {quality.flow_ratio:.2f} (over-extrusion), "
            f"{stat('retraction_pulses_affected', 0)} retraction pulses dropped"
        )
    elif trojan_id == "T4":
        manifested = quality.max_centroid_shift_mm > 0.2 and stat("shifts_injected", 0) > 0
        observed = (
            f"{stat('shifts_injected', 0)}/{stat('layer_events_seen', 0)} layers shifted; "
            f"max centroid dev {quality.max_centroid_shift_mm:.2f}mm"
        )
    elif trojan_id == "T5":
        manifested = quality.delaminated
        observed = (
            f"max layer gap {quality.max_z_spacing_mm:.2f}mm "
            f"(nominal {quality.golden_z_spacing_mm:.2f}mm)"
        )
    elif trojan_id == "T6":
        heating_failed = result.killed and "Heating failed" in (result.kill_reason or "")
        manifested = heating_failed and quality.layer_count_suspect == 0
        observed = (
            f"firmware: {result.kill_reason or 'no kill'}; "
            f"{quality.layer_count_suspect} layers printed"
        )
    elif trojan_id == "T7":
        manifested = (
            result.killed
            and result.hotend_damaged
            and result.hotend_peak_c > 260.0
        )
        observed = (
            f"firmware: {result.kill_reason or 'no kill'}; hotend peaked "
            f"{result.hotend_peak_c:.0f}C "
            f"({'damage recorded' if result.hotend_damaged else 'no damage'})"
        )
    elif trojan_id == "T8":
        manifested = result.missed_steps > 0 and quality.geometry_compromised
        observed = (
            f"{result.missed_steps} pulses lost over {stat('outages', 0)} outages; "
            f"max centroid dev {quality.max_centroid_shift_mm:.2f}mm"
        )
    elif trojan_id == "T9":
        golden_fan = golden.mean_fan_duty
        suspect_fan = result.mean_fan_duty
        ratio = suspect_fan / golden_fan if golden_fan > 0 else 1.0
        manifested = stat("engagements", 0) > 0 and ratio < 0.6
        observed = (
            f"mean fan duty {suspect_fan:.2f} vs golden {golden_fan:.2f} "
            f"(ratio {ratio:.2f})"
        )

    return Table1Row(
        trojan_id=trojan_id,
        category=result.trojan_category or "?",
        scenario=result.trojan_scenario or "",
        effect=result.trojan_effect or "",
        observed=observed,
        manifested=manifested,
    )


def run_table1(
    seed: int = 42,
    workers: Optional[int] = 1,
    cache: CacheOption = None,
) -> List[Table1Row]:
    """Run the full Table I evaluation; returns one row per Trojan.

    Thin grid over the scenario layer: the nine ``table1``-grid scenarios
    compile to the same ten sessions as ever (the shared golden print
    deduplicates within the batch) and ``workers>1`` fans them across
    processes.
    """
    runs = run_scenarios(
        trojan_scenarios(parts=("table1",), seed=seed), workers=workers, cache=cache
    )
    golden = runs[0].golden
    golden_quality = compare_traces(golden.trace, golden.trace)

    rows: List[Table1Row] = [
        Table1Row(
            trojan_id="T0",
            category="None",
            scenario="None",
            effect="Golden print",
            observed=(
                f"completed in {golden.duration_s:.0f}s; "
                f"{golden_quality.layer_count_golden} layers, "
                f"flow ratio {golden_quality.flow_ratio:.2f}, no anomalies"
            ),
            manifested=golden.completed and golden_quality.nominal,
        )
    ]
    for scenario_run in runs:
        quality = compare_traces(golden.trace, scenario_run.suspect.trace)
        rows.append(
            _score(scenario_run.scenario.attack, golden, scenario_run.suspect, quality)
        )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    header = f"{'ID':<3} {'Type':<4} {'Scenario':<17} {'Outcome':<17} Observed"
    return "\n".join([header, "-" * len(header)] + [row.render() for row in rows])
