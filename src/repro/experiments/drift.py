"""Section V-C: time-noise drift stays under the 5 % margin.

Repeats the golden print across several independent time-noise realizations
and measures the pairwise per-transaction drift — the quantity the paper
bounds at 5 % ("this drift was, however, always less than a 5% difference in
our testing") to justify its margin, plus the end-total equality that makes
the final 0 % check sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.drift import DriftStats, drift_between
from repro.experiments.batch import CacheOption, SessionSpec, run_sessions
from repro.experiments.workloads import sliced_program, standard_part
from repro.gcode.ast import GcodeProgram


@dataclass
class DriftExperiment:
    """Pairwise drift across repeated known-good prints."""

    stats: List[DriftStats]
    seeds: List[int]
    noise_sigma: float

    @property
    def max_percent(self) -> float:
        return max(s.max_percent for s in self.stats)

    @property
    def all_final_totals_equal(self) -> bool:
        return all(s.final_totals_equal for s in self.stats)

    def within_margin(self, margin_percent: float = 5.0) -> bool:
        return self.max_percent <= margin_percent

    def render(self) -> str:
        lines = [
            f"time-noise sigma {self.noise_sigma:g}, "
            f"{len(self.seeds)} independent prints:"
        ]
        lines.extend(f"  {stat.render()}" for stat in self.stats)
        lines.append(
            f"worst-case drift {self.max_percent:.3f}% "
            f"({'within' if self.within_margin() else 'EXCEEDS'} the 5% margin); "
            f"final totals {'always equal' if self.all_final_totals_equal else 'DIFFER'}"
        )
        return "\n".join(lines)


def run_drift(
    program: Optional[GcodeProgram] = None,
    noise_sigma: float = 0.0005,
    repeats: int = 4,
    base_seed: int = 7000,
    workers: Optional[int] = 1,
    cache: CacheOption = None,
) -> DriftExperiment:
    """Print the same good part ``repeats`` times; measure pairwise drift.

    The repeats are independent noise realizations of the same print, so
    they batch perfectly: ``workers>1`` runs them concurrently.
    """
    if program is None:
        program = sliced_program(standard_part())
    seeds = [base_seed + i for i in range(repeats)]
    summaries = run_sessions(
        [
            SessionSpec(
                program=program,
                noise_sigma=noise_sigma,
                noise_seed=seed,
                label=f"seed{seed}",
                cacheable=True,
                fast_path=True,
            )
            for seed in seeds
        ],
        workers=workers,
        cache=cache,
        # Drift stats computed over an empty transaction list would read as
        # zero drift; a crashed session must abort this artifact instead.
        strict=True,
    )
    stats = [
        drift_between(summaries[i].transactions, summaries[j].transactions)
        for i in range(len(summaries))
        for j in range(i + 1, len(summaries))
    ]
    return DriftExperiment(stats=stats, seeds=seeds, noise_sigma=noise_sigma)
