"""Section V-B: monitoring overhead is negligible.

Two claims are reproduced:

1. the propagation-delay budget — the MITM's worst-case delay against the
   fastest signal and narrowest pulse actually observed during a print;
2. "we found no effect on print quality while running our detection
   hardware" — a print with every control signal routed *through* the FPGA
   (forwarding, no Trojans) completes with step totals identical to a
   bypass-mode print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.overhead import OverheadReport, analyze_overhead
from repro.experiments.batch import CacheOption, SessionSpec, run_sessions
from repro.experiments.workloads import sliced_program, tiny_part
from repro.gcode.ast import GcodeProgram


@dataclass
class OverheadExperiment:
    """Both halves of the Section V-B argument."""

    report: OverheadReport
    bypass_counts: Dict[str, int]
    mitm_counts: Dict[str, int]
    bypass_completed: bool
    mitm_completed: bool

    @property
    def counts_identical(self) -> bool:
        return self.bypass_counts == self.mitm_counts

    @property
    def no_quality_effect(self) -> bool:
        return self.counts_identical and self.bypass_completed and self.mitm_completed

    def render(self) -> str:
        lines = [self.report.render(), ""]
        lines.append(
            "MITM-vs-bypass step totals: "
            + ("identical" if self.counts_identical else "DIFFER")
        )
        lines.append(f"  bypass: {self.bypass_counts}")
        lines.append(f"  MITM:   {self.mitm_counts}")
        lines.append(
            "Print-quality effect: "
            + ("none observed" if self.no_quality_effect else "DEGRADED")
        )
        return "\n".join(lines)


def run_overhead(
    program: Optional[GcodeProgram] = None,
    workers: Optional[int] = 1,
    cache: CacheOption = None,
) -> OverheadExperiment:
    """Run the overhead experiment on the tiny workload.

    Both halves — the traced bypass print (delay budget) and the print with
    every control signal routed through the fabric — are declared as specs
    and submitted as one batch.
    """
    if program is None:
        program = sliced_program(tiny_part())

    traced, mitm = run_sessions(
        [
            SessionSpec(
                program=program, trace_signals=True, label="bypass", fast_path=True
            ),
            SessionSpec(
                program=program,
                route_all_through_fpga=True,
                label="mitm",
                fast_path=True,
            ),
        ],
        workers=workers,
        cache=cache,
        # analyze_overhead needs the live tracer; a FAILED stand-in (tracer
        # None) must abort this artifact loudly, not deep in analysis.
        strict=True,
    )
    report = analyze_overhead(traced.tracer)

    return OverheadExperiment(
        report=report,
        bypass_counts=traced.final_counts,
        mitm_counts=mitm.final_counts,
        bypass_completed=traced.completed,
        mitm_completed=mitm.completed,
    )
