"""Section V-B: monitoring overhead is negligible.

Two claims are reproduced:

1. the propagation-delay budget — the MITM's worst-case delay against the
   fastest signal and narrowest pulse actually observed during a print;
2. "we found no effect on print quality while running our detection
   hardware" — a print with every control signal routed *through* the FPGA
   (forwarding, no Trojans) completes with step totals identical to a
   bypass-mode print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.overhead import OverheadReport, analyze_overhead
from repro.core.board import JumperMode
from repro.experiments.runner import PrintSession, run_print
from repro.experiments.workloads import sliced_program, tiny_part
from repro.gcode.ast import GcodeProgram


@dataclass
class OverheadExperiment:
    """Both halves of the Section V-B argument."""

    report: OverheadReport
    bypass_counts: Dict[str, int]
    mitm_counts: Dict[str, int]
    bypass_completed: bool
    mitm_completed: bool

    @property
    def counts_identical(self) -> bool:
        return self.bypass_counts == self.mitm_counts

    @property
    def no_quality_effect(self) -> bool:
        return self.counts_identical and self.bypass_completed and self.mitm_completed

    def render(self) -> str:
        lines = [self.report.render(), ""]
        lines.append(
            "MITM-vs-bypass step totals: "
            + ("identical" if self.counts_identical else "DIFFER")
        )
        lines.append(f"  bypass: {self.bypass_counts}")
        lines.append(f"  MITM:   {self.mitm_counts}")
        lines.append(
            "Print-quality effect: "
            + ("none observed" if self.no_quality_effect else "DEGRADED")
        )
        return "\n".join(lines)


def run_overhead(program: Optional[GcodeProgram] = None) -> OverheadExperiment:
    """Run the overhead experiment on the tiny workload."""
    if program is None:
        program = sliced_program(tiny_part())

    # Half 1: traced bypass print for the delay budget.
    traced = run_print(program, trace_signals=True)
    report = analyze_overhead(traced.tracer)

    # Half 2: identical print with every control signal through the fabric.
    mitm_session = PrintSession(program)
    mitm_session.board.route_through_fpga(
        name
        for name in mitm_session.harness.paths
        if mitm_session.harness.path(name).spec.direction.value == "a2r"
    )
    mitm = mitm_session.run()

    return OverheadExperiment(
        report=report,
        bypass_counts=traced.final_counts(),
        mitm_counts=mitm.final_counts(),
        bypass_completed=traced.completed,
        mitm_completed=mitm.completed,
    )
