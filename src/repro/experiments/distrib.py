"""Cross-host sweep distribution: shard, execute anywhere, merge.

The spec/summary boundary is picklable and the :class:`SessionCache` is
content-keyed on disk, so a sweep no longer has to run on one host: this
module shards a batch's *pending* :class:`SessionSpec`s (the ones the cache
cannot serve) across worker hosts by :meth:`SessionSpec.estimated_cost`
(longest-expected-first, balanced bins), executes each shard through the
existing :class:`~repro.experiments.batch.BatchRunner`, and merges the
returned :class:`SessionSummary`s back into one result.

The first transport is a **file-based work-dir protocol** — any filesystem
the coordinator and workers can both reach (one machine, NFS, or an
rsync'd directory) is a cluster:

.. code-block:: text

    work-dir/
      pending/shard-0007.pkl        queued WorkShard (coordinator writes)
      claimed/shard-0007@W.pkl      claimed by worker W (atomic rename)
      done/shard-0007.pkl           ShardResult (atomic write; claim removed)
      hearts/W                      worker W's heartbeat (mtime refreshed
                                    between sessions = forward progress)
      logs/W.log                    spawned local workers' stdio
      STOP                          coordinator's shutdown signal

Every file lands via atomic rename — the same torn-write discipline as the
session cache — so a crashed writer never leaves a half-written shard under
a final name, and claiming is race-free: exactly one worker wins the rename
of a pending shard.

Fault tolerance: the coordinator watches each claimed shard's worker. A
worker whose process has exited (local transport) or whose heartbeat has
gone stale (any transport) forfeits its claim — the shard is re-queued by
renaming it back to ``pending/`` and another worker picks it up. If the
local worker pool dies entirely, the coordinator drains the remaining
shards inline, so a sweep completes as long as the coordinator itself
survives.

Entry points:

* :func:`run_distributed` / :class:`Coordinator` — what
  ``repro sweep --hosts N`` drives;
* :class:`Worker` — the claim/execute/report loop behind the standalone
  ``repro worker <work-dir>`` command, which is how real remote hosts join
  a sweep (point them at a shared work dir and cache dir).
"""

from __future__ import annotations

import os
import pickle
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.experiments.batch import (
    BatchRunner,
    CacheOption,
    SessionSpec,
    SessionSummary,
    resolve_cache,
)

WIRE_FORMAT = 1
"""Work-dir payload format version; a mismatched shard/result is re-queued."""

_PENDING, _CLAIMED, _DONE, _HEARTS, _LOGS = (
    "pending",
    "claimed",
    "done",
    "hearts",
    "logs",
)
_STOP = "STOP"
_SHARD_RE = re.compile(r"^shard-(\d+)(?:@(.+))?\.pkl$")


@dataclass(frozen=True)
class WorkShard:
    """One worker-sized slice of a batch: an id plus its specs."""

    shard_id: int
    specs: Tuple[SessionSpec, ...]

    def estimated_cost(self) -> float:
        return sum(spec.estimated_cost() for spec in self.specs)


@dataclass
class ShardResult:
    """What a worker ships back for one executed shard."""

    shard_id: int
    worker_id: str
    summaries: List[SessionSummary]
    wall_clock_s: float

    @property
    def failures(self) -> int:
        return sum(1 for summary in self.summaries if summary.failed)


@dataclass(frozen=True)
class Claim:
    """A successfully claimed shard and the claim file that records it."""

    shard: WorkShard
    path: str


def balanced_shards(
    specs: Sequence[SessionSpec], bins: int
) -> List[List[SessionSpec]]:
    """Split specs into ≤ ``bins`` cost-balanced groups, longest-first.

    Greedy LPT: walk the specs in descending :meth:`~SessionSpec.
    estimated_cost` order, always assigning to the currently-lightest bin.
    Deterministic (stable sort, lowest-index tie-break), so the same batch
    shards the same way on every run.
    """
    bins = max(1, min(bins, len(specs)))
    loads = [0.0] * bins
    out: List[List[SessionSpec]] = [[] for _ in range(bins)]
    ordered = sorted(specs, key=lambda spec: spec.estimated_cost(), reverse=True)
    for spec in ordered:
        lightest = min(range(bins), key=lambda b: (loads[b], b))
        out[lightest].append(spec)
        loads[lightest] += spec.estimated_cost()
    return [group for group in out if group]


def sanitize_worker_id(worker_id: str) -> str:
    """Worker ids become file-name components; keep them unambiguous."""
    return re.sub(r"[^A-Za-z0-9_.-]", "-", worker_id) or "worker"


def default_worker_id() -> str:
    return sanitize_worker_id(f"{socket.gethostname()}-{os.getpid()}")


def _atomic_pickle(path: str, payload: Any) -> None:
    """Write ``payload`` under ``path`` via tmp-file + atomic rename."""
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".wire.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(
                {"format": WIRE_FORMAT, "payload": payload},
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _load_pickle(path: str) -> Optional[Any]:
    """Read a wire payload; any corruption or version skew reads as absent."""
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except Exception:
        return None
    if not isinstance(envelope, dict) or envelope.get("format") != WIRE_FORMAT:
        return None
    return envelope.get("payload")


class WorkDir:
    """The shared directory both sides of the protocol operate on.

    Every transition is an atomic rename (claim: ``pending/ → claimed/``;
    re-queue: ``claimed/ → pending/``) or an atomic write (enqueue, done),
    so concurrent workers — processes or hosts — never observe a torn file
    and never double-execute a shard they both tried to claim.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        for sub in (_PENDING, _CLAIMED, _DONE, _HEARTS, _LOGS):
            os.makedirs(os.path.join(root, sub), exist_ok=True)

    def _sub(self, sub: str, name: str = "") -> str:
        return os.path.join(self.root, sub, name) if name else os.path.join(self.root, sub)

    @staticmethod
    def shard_file(shard_id: int) -> str:
        return f"shard-{shard_id:04d}.pkl"

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear a previous sweep's protocol state from a reused work dir.

        Stale ``done/`` files would satisfy this run's shard ids with old
        summaries, a stale ``STOP`` would make joining workers exit
        immediately, and stale claims would be pointlessly re-queued — so
        the coordinator wipes all of them before enqueueing (one sweep per
        work dir at a time; logs are kept, they only ever append).
        """
        try:
            os.unlink(os.path.join(self.root, _STOP))
        except OSError:
            pass
        for sub in (_PENDING, _CLAIMED, _DONE, _HEARTS):
            for name in os.listdir(self._sub(sub)):
                try:
                    os.unlink(self._sub(sub, name))
                except OSError:
                    pass

    def enqueue(self, shard: WorkShard) -> None:
        _atomic_pickle(self._sub(_PENDING, self.shard_file(shard.shard_id)), shard)

    def done_ids(self) -> List[int]:
        ids = []
        for name in os.listdir(self._sub(_DONE)):
            match = _SHARD_RE.match(name)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def load_result(self, shard_id: int) -> Optional[ShardResult]:
        payload = _load_pickle(self._sub(_DONE, self.shard_file(shard_id)))
        return payload if isinstance(payload, ShardResult) else None

    def discard_done(self, shard_id: int) -> None:
        try:
            os.unlink(self._sub(_DONE, self.shard_file(shard_id)))
        except OSError:
            pass

    def claims(self) -> List[Tuple[int, str, str]]:
        """Live claims as ``(shard_id, worker_id, path)`` triples."""
        out = []
        for name in sorted(os.listdir(self._sub(_CLAIMED))):
            match = _SHARD_RE.match(name)
            if match and match.group(2):
                out.append(
                    (int(match.group(1)), match.group(2), self._sub(_CLAIMED, name))
                )
        return out

    def requeue(self, claim_path: str) -> bool:
        """Return a dead worker's claimed shard to the pending queue.

        The claim file still holds the original shard payload, so one
        atomic rename restores it; a vanished claim (the worker completed
        after all) is not an error — the done file wins.
        """
        match = _SHARD_RE.match(os.path.basename(claim_path))
        if not match:
            return False
        pending_path = self._sub(_PENDING, self.shard_file(int(match.group(1))))
        try:
            os.rename(claim_path, pending_path)
        except OSError:
            return False
        return True

    def stop(self) -> None:
        with open(os.path.join(self.root, _STOP), "w", encoding="utf-8") as handle:
            handle.write("stop\n")

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def stop_requested(self) -> bool:
        return os.path.exists(os.path.join(self.root, _STOP))

    def pending_files(self) -> List[str]:
        return sorted(
            name
            for name in os.listdir(self._sub(_PENDING))
            if _SHARD_RE.match(name)
        )

    def claim(self, pending_name: str, worker_id: str) -> Optional[Claim]:
        """Try to claim one pending shard; ``None`` if another worker won."""
        match = _SHARD_RE.match(pending_name)
        if not match or match.group(2):
            return None
        claim_path = self._sub(
            _CLAIMED, f"shard-{int(match.group(1)):04d}@{worker_id}.pkl"
        )
        try:
            os.rename(self._sub(_PENDING, pending_name), claim_path)
        except OSError:
            return None
        payload = _load_pickle(claim_path)
        if not isinstance(payload, WorkShard):
            # Corrupt shard file: drop the claim; the coordinator re-enqueues
            # from its in-memory copy once it notices the shard went missing.
            try:
                os.unlink(claim_path)
            except OSError:
                pass
            return None
        return Claim(shard=payload, path=claim_path)

    def complete(self, claim: Claim, result: ShardResult) -> None:
        _atomic_pickle(self._sub(_DONE, self.shard_file(claim.shard.shard_id)), result)
        try:
            os.unlink(claim.path)
        except OSError:
            pass

    def beat(self, worker_id: str) -> None:
        path = self._sub(_HEARTS, worker_id)
        with open(path, "a", encoding="utf-8"):
            pass
        os.utime(path, None)

    def heartbeat_age_s(self, worker_id: str) -> Optional[float]:
        """Local-clock age of the heartbeat; ``None`` when it doesn't exist.

        Only meaningful when beater and reader share a clock (same host).
        The coordinator instead watches :meth:`heartbeat_mtime` for
        *advancement* against its own clock, which survives cross-host
        clock skew on shared filesystems.
        """
        try:
            return max(0.0, time.time() - os.path.getmtime(self._sub(_HEARTS, worker_id)))
        except OSError:
            return None

    def heartbeat_mtime(self, worker_id: str) -> Optional[float]:
        """The heartbeat file's raw mtime; ``None`` when it doesn't exist."""
        try:
            return os.path.getmtime(self._sub(_HEARTS, worker_id))
        except OSError:
            return None

    def log_path(self, worker_id: str) -> str:
        return self._sub(_LOGS, f"{worker_id}.log")


class Worker:
    """The claim → execute → report loop one host runs.

    Executes each claimed shard spec-by-spec through a serial
    :class:`BatchRunner` (failure-isolated: a raising session becomes a
    FAILED summary, never a dead worker), touching its heartbeat between
    sessions so the coordinator can tell *slow* from *dead*. Exits when the
    coordinator writes ``STOP``, or — with ``idle_timeout_s`` — after the
    queue has stayed empty that long.
    """

    def __init__(
        self,
        work_dir: Union[str, WorkDir],
        worker_id: Optional[str] = None,
        cache: CacheOption = None,
        poll_s: float = 0.2,
        idle_timeout_s: Optional[float] = None,
    ) -> None:
        self.work = work_dir if isinstance(work_dir, WorkDir) else WorkDir(work_dir)
        self.worker_id = sanitize_worker_id(worker_id or default_worker_id())
        self.poll_s = poll_s
        self.idle_timeout_s = idle_timeout_s
        self.runner = BatchRunner(workers=1, cache=cache)

    def run(self) -> int:
        """Serve the queue until STOP (or idle timeout); returns shards done."""
        executed = 0
        idle_since = time.monotonic()
        while True:
            self.work.beat(self.worker_id)
            if self.work.stop_requested():
                # STOP beats a non-empty queue: shards left pending after a
                # coordinator abort are abandoned work — nobody will ever
                # collect their results.
                break
            claim = self._claim_next()
            if claim is None:
                if (
                    self.idle_timeout_s is not None
                    and time.monotonic() - idle_since >= self.idle_timeout_s
                ):
                    break
                time.sleep(self.poll_s)
                continue
            self.execute(claim)
            executed += 1
            idle_since = time.monotonic()
        return executed

    def _claim_next(self) -> Optional[Claim]:
        for name in self.work.pending_files():
            claim = self.work.claim(name, self.worker_id)
            if claim is not None:
                return claim
        return None

    def execute(self, claim: Claim) -> ShardResult:
        """Run one claimed shard and publish its result."""
        started = time.perf_counter()
        summaries: List[SessionSummary] = []
        for spec in claim.shard.specs:
            # One spec per runner call: the heartbeat between sessions is
            # the forward-progress signal staleness detection keys on.
            self.work.beat(self.worker_id)
            summaries.extend(self.runner.run([spec]))
        result = ShardResult(
            shard_id=claim.shard.shard_id,
            worker_id=self.worker_id,
            summaries=summaries,
            wall_clock_s=time.perf_counter() - started,
        )
        self.work.complete(claim, result)
        return result


@dataclass
class DistributedResult:
    """Merged outcome of one distributed batch."""

    summaries: List[SessionSummary]
    host_stats: List[Dict[str, Any]] = field(default_factory=list)
    requeues: int = 0
    shards: int = 0
    sessions_dispatched: int = 0


class Coordinator:
    """Shard a batch across worker hosts and merge the summaries back.

    With ``spawn_local=True`` (the default) the coordinator spawns
    ``hosts`` local worker subprocesses (``repro worker <work-dir>``) — the
    zero-config transport. External workers started by hand against the
    same work dir join the same queue; ``spawn_local=False`` relies on them
    entirely.

    Failure handling, in escalating order:

    * a worker whose *process* exited (local transport) or whose
      *heartbeat* went stale forfeits its claims — each is re-queued by
      atomic rename and another worker picks it up;
    * a dead local worker is replaced while the respawn budget
      (``max_respawns``, default ``hosts``) lasts;
    * if every local worker is gone and the budget is spent, the
      coordinator drains the remaining queue inline — a sweep fails only
      if the coordinator itself dies.

    ``heartbeat_timeout_s`` must exceed the wall clock of the longest
    *single* session (workers beat between sessions, not during them):
    a live worker mid-session beats nothing, and declaring it dead leads
    to harmless but wasteful double execution of its shard. The 300 s
    default clears every session in the registered grids by a wide margin.
    """

    def __init__(
        self,
        hosts: int = 2,
        cache: CacheOption = None,
        work_dir: Optional[str] = None,
        heartbeat_timeout_s: float = 300.0,
        poll_s: float = 0.1,
        spawn_local: bool = True,
        max_respawns: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        self.hosts = max(1, hosts)
        self.cache = resolve_cache(cache)
        self.work_dir = work_dir
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.poll_s = poll_s
        self.spawn_local = spawn_local
        self.max_respawns = self.hosts if max_respawns is None else max_respawns
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[SessionSpec]) -> DistributedResult:
        """Execute all specs; summaries come back in the order specs were given.

        Mirrors :meth:`BatchRunner.run`'s contract: duplicates are executed
        once, cache-eligible keys are served from / stored to the cache
        (failures excepted), and dedup/cache hits are relabeled per spec.
        Only the *pending* specs — the ones the cache cannot serve — are
        sharded out, which is what makes a repeat distributed sweep over a
        warm cache dir a zero-worker no-op.
        """
        keys = [spec.content_key() for spec in specs]
        cacheable_keys = {key for key, spec in zip(keys, specs) if spec.cacheable}
        results: Dict[str, SessionSummary] = {}

        pending: List[Tuple[str, SessionSpec]] = []
        seen = set()
        for key, spec in zip(keys, specs):
            if key in seen:
                continue
            seen.add(key)
            if self.cache is not None and key in cacheable_keys:
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    continue
            pending.append((key, spec))

        host_stats: List[Dict[str, Any]] = []
        requeues = 0
        shard_count = 0
        if pending:
            executed, host_stats, requeues, shard_count = self._distribute(
                [spec for _, spec in pending]
            )
            for key, spec in pending:
                summary = executed[key]
                results[key] = summary
                if (
                    self.cache is not None
                    and key in cacheable_keys
                    and not summary.failed
                ):
                    # Workers sharing the cache directory already persisted
                    # their summaries; rewrite only what's missing (e.g. an
                    # external worker run without --cache-dir).
                    self.cache.put(
                        key, summary, persist=not self.cache.has_on_disk(key)
                    )

        out: List[SessionSummary] = []
        for key, spec in zip(keys, specs):
            summary = results[key]
            if summary.label != spec.label:
                summary = summary.relabeled(spec.label)
            out.append(summary)
        return DistributedResult(
            summaries=out,
            host_stats=host_stats,
            requeues=requeues,
            shards=shard_count,
            sessions_dispatched=len(pending),
        )

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _worker_command(self, work: WorkDir, worker_id: str) -> List[str]:
        """The subprocess command line for one spawned local worker."""
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            work.root,
            "--id",
            worker_id,
            "--poll-s",
            str(self.poll_s),
            # Belt and braces: exit if the coordinator vanishes without
            # managing to write STOP.
            "--idle-timeout-s",
            "300",
        ]
        if self.cache is not None and self.cache.directory:
            command += ["--cache-dir", self.cache.directory]
        return command

    def _spawn(self, work: WorkDir, worker_id: str) -> subprocess.Popen:
        env = dict(os.environ)
        # The spawned interpreter must resolve this very repro package no
        # matter what the caller's cwd-relative PYTHONPATH said.
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        with open(work.log_path(worker_id), "ab") as log:
            return subprocess.Popen(
                self._worker_command(work, worker_id),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )

    # ------------------------------------------------------------------
    # The distribution loop
    # ------------------------------------------------------------------
    def _distribute(
        self, specs: Sequence[SessionSpec]
    ) -> Tuple[Dict[str, SessionSummary], List[Dict[str, Any]], int, int]:
        root = self.work_dir
        created_tmp = root is None
        if created_tmp:
            root = tempfile.mkdtemp(prefix="repro-distrib-")
        work = WorkDir(root)
        work.reset()
        shards = {
            index: WorkShard(shard_id=index, specs=tuple(group))
            for index, group in enumerate(balanced_shards(specs, self.hosts))
        }
        for shard in shards.values():
            work.enqueue(shard)

        procs: Dict[str, subprocess.Popen] = {}
        if self.spawn_local:
            for index in range(min(self.hosts, len(shards))):
                worker_id = f"local-{index}"
                procs[worker_id] = self._spawn(work, worker_id)

        done: Dict[int, ShardResult] = {}
        requeues = 0
        respawns = 0
        # Local workers whose process has exited; their claims are always
        # forfeit, even if _tend_pool already discarded the Popen handle.
        dead_workers: set = set()
        # worker_id -> (last observed heartbeat mtime, local monotonic time
        # it was first seen at that value). Staleness is "the mtime hasn't
        # advanced for heartbeat_timeout_s of *coordinator* time", which is
        # immune to cross-host clock skew on shared filesystems.
        hb_seen: Dict[str, Tuple[float, float]] = {}
        deadline = (
            time.monotonic() + self.timeout_s if self.timeout_s is not None else None
        )
        try:
            while len(done) < len(shards):
                self._collect_done(work, shards, done)
                if len(done) >= len(shards):
                    break
                requeues += self._requeue_dead_claims(
                    work, done, procs, dead_workers, hb_seen
                )
                self._reenqueue_lost(work, shards, done)
                if self.spawn_local:
                    respawns = self._tend_pool(
                        work, shards, done, procs, dead_workers, respawns
                    )
                if deadline is not None and time.monotonic() > deadline:
                    raise ReproError(
                        f"distributed batch timed out after {self.timeout_s:.0f}s: "
                        f"{len(done)}/{len(shards)} shards done, "
                        f"{len(work.pending_files())} pending, "
                        f"{len(work.claims())} claimed"
                    )
                time.sleep(self.poll_s)
        finally:
            work.stop()
            self._shutdown(procs)
            if created_tmp:
                # The throwaway work dir (pickled specs include whole G-code
                # programs) must not outlive the run, success or failure;
                # every summary that matters is already merged in memory.
                shutil.rmtree(root, ignore_errors=True)

        executed: Dict[str, SessionSummary] = {}
        per_host: Dict[str, Dict[str, Any]] = {}
        for result in done.values():
            for summary in result.summaries:
                executed[summary.spec_key] = summary
            stats = per_host.setdefault(
                result.worker_id,
                {"worker": result.worker_id, "shards": 0, "sessions": 0,
                 "failures": 0, "wall_clock_s": 0.0},
            )
            stats["shards"] += 1
            stats["sessions"] += len(result.summaries)
            stats["failures"] += result.failures
            stats["wall_clock_s"] = round(
                stats["wall_clock_s"] + result.wall_clock_s, 3
            )

        missing = [spec for spec in specs if spec.content_key() not in executed]
        if missing:
            # Shouldn't happen (every shard is accounted for above), but a
            # protocol bug must degrade to local execution, not a KeyError.
            for summary in BatchRunner(workers=1, cache=self.cache).run(missing):
                executed[summary.spec_key] = summary
        host_stats = sorted(per_host.values(), key=lambda s: s["worker"])
        return executed, host_stats, requeues, len(shards)

    def _collect_done(
        self,
        work: WorkDir,
        shards: Dict[int, WorkShard],
        done: Dict[int, ShardResult],
    ) -> None:
        for shard_id in work.done_ids():
            if shard_id in done or shard_id not in shards:
                continue
            result = work.load_result(shard_id)
            if result is None:
                # Torn/stale done file: burn it and re-enqueue from memory.
                work.discard_done(shard_id)
                work.enqueue(shards[shard_id])
                continue
            done[shard_id] = result

    def _worker_dead(
        self,
        work: WorkDir,
        worker_id: str,
        procs: Dict[str, subprocess.Popen],
        dead_workers: set,
        hb_seen: Dict[str, Tuple[float, float]],
    ) -> bool:
        if worker_id in dead_workers:
            return True  # its process already exited; claims stay forfeit
        proc = procs.get(worker_id)
        if proc is not None and proc.poll() is not None:
            return True  # local transport: process exit is definitive
        mtime = work.heartbeat_mtime(worker_id)
        if mtime is None:
            # No heartbeat at all: for an unknown (external) worker the
            # claim has outlived its owner — workers beat before their
            # first claim. A still-running local proc just hasn't started.
            return proc is None
        now = time.monotonic()
        last = hb_seen.get(worker_id)
        if last is None or mtime != last[0]:
            hb_seen[worker_id] = (mtime, now)
            return False
        # The mtime has not advanced since we first saw it: measure the
        # wait on *our* clock, so worker-host clock skew cannot condemn a
        # live worker. A live-but-wedged process stops beating too, so
        # staleness covers the wedge case the process check cannot.
        return now - last[1] > self.heartbeat_timeout_s

    def _requeue_dead_claims(
        self,
        work: WorkDir,
        done: Dict[int, ShardResult],
        procs: Dict[str, subprocess.Popen],
        dead_workers: set,
        hb_seen: Dict[str, Tuple[float, float]],
    ) -> int:
        requeued = 0
        for shard_id, worker_id, claim_path in work.claims():
            if shard_id in done:
                continue
            if self._worker_dead(
                work, worker_id, procs, dead_workers, hb_seen
            ) and work.requeue(claim_path):
                requeued += 1
        return requeued

    def _reenqueue_lost(
        self,
        work: WorkDir,
        shards: Dict[int, WorkShard],
        done: Dict[int, ShardResult],
    ) -> None:
        """Restore shards that fell out of the protocol entirely.

        A shard is *lost* when it is neither pending, claimed, nor done —
        e.g. its claim file was dropped as corrupt. The coordinator's
        in-memory copy is authoritative, so it simply enqueues again.
        """
        visible = set()
        for name in work.pending_files():
            match = _SHARD_RE.match(name)
            if match:
                visible.add(int(match.group(1)))
        visible.update(shard_id for shard_id, _, _ in work.claims())
        # The on-disk done listing, not just the collected dict: a shard
        # completed since the last _collect_done is *not* lost.
        visible.update(work.done_ids())
        visible.update(done)
        for shard_id, shard in shards.items():
            if shard_id not in visible:
                work.enqueue(shard)

    def _tend_pool(
        self,
        work: WorkDir,
        shards: Dict[int, WorkShard],
        done: Dict[int, ShardResult],
        procs: Dict[str, subprocess.Popen],
        dead_workers: set,
        respawns: int,
    ) -> int:
        """Keep the local pool at strength; drain inline as a last resort."""
        outstanding = len(shards) - len(done)
        for worker_id, proc in list(procs.items()):
            if proc.poll() is None:
                continue
            procs.pop(worker_id)
            # Remember the death: a claim from this worker that comes into
            # view *after* this pass must still be requeued promptly, not
            # after a full heartbeat staleness wait.
            dead_workers.add(worker_id)
            if outstanding > 0 and respawns < self.max_respawns:
                respawns += 1
                replacement = f"local-r{respawns}"
                procs[replacement] = self._spawn(work, replacement)
        if not procs and outstanding > 0 and work.pending_files():
            # The whole pool is gone and the budget is spent: finish the
            # queue ourselves rather than failing the sweep. A *separate*
            # cache instance over the same directory keeps the coordinator's
            # own hit/miss accounting (one lookup per unique key) honest.
            inline_cache = None
            if self.cache is not None and self.cache.directory:
                from repro.experiments.batch import SessionCache

                inline_cache = SessionCache(directory=self.cache.directory)
            inline = Worker(
                work,
                worker_id="coordinator-inline",
                cache=inline_cache,
                poll_s=self.poll_s,
                idle_timeout_s=0.0,
            )
            inline.run()
        return respawns

    def _shutdown(self, procs: Dict[str, subprocess.Popen]) -> None:
        deadline = time.monotonic() + 5.0
        for proc in procs.values():
            while proc.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            if proc.poll() is None:
                proc.terminate()
        for proc in procs.values():
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def run_distributed(
    specs: Sequence[SessionSpec],
    hosts: int = 2,
    cache: CacheOption = None,
    work_dir: Optional[str] = None,
    **coordinator_kwargs: Any,
) -> DistributedResult:
    """Convenience wrapper: one batch through a fresh :class:`Coordinator`."""
    coordinator = Coordinator(
        hosts=hosts, cache=cache, work_dir=work_dir, **coordinator_kwargs
    )
    return coordinator.run(specs)
