"""Cross-host sweep distribution: shard, execute anywhere, merge.

The spec/summary boundary is picklable and the :class:`SessionCache` is
content-keyed on disk, so a sweep no longer has to run on one host: this
module shards a batch's *pending* :class:`SessionSpec`s (the ones the cache
cannot serve) across worker hosts by :meth:`SessionSpec.estimated_cost`
(longest-expected-first, balanced bins), executes each shard through the
existing :class:`~repro.experiments.batch.BatchRunner`, and merges the
returned :class:`SessionSummary`s back into one result.

The protocol surface itself —
claim/requeue/done/heartbeat/STOP — is the pluggable
:class:`~repro.experiments.transport.Transport` interface; this module
owns the protocol's *participants* (coordinator and worker loops, both
backend-agnostic) and its original backend, the **file-based work-dir
protocol** — any filesystem the coordinator and workers can both reach
(one machine, NFS, or an rsync'd directory) is a cluster. The HTTP
backend (:mod:`~repro.experiments.transport_http`) extends that to hosts
sharing nothing but a network; the same loops run unchanged over either.
The filesystem layout:

.. code-block:: text

    work-dir/
      pending/shard-0007.pkl        queued WorkShard (coordinator writes)
      claimed/shard-0007@W.pkl      claimed by worker W (atomic rename)
      done/shard-0007.pkl           ShardResult (atomic write; claim removed)
      hearts/W                      worker W's heartbeat (mtime refreshed
                                    between sessions = forward progress)
      logs/W.log                    spawned local workers' stdio
      STOP                          coordinator's shutdown signal

Every file lands via atomic rename — the same torn-write discipline as the
session cache — so a crashed writer never leaves a half-written shard under
a final name, and claiming is race-free: exactly one worker wins the rename
of a pending shard.

Fault tolerance: the coordinator watches each claimed shard's worker. A
worker whose process has exited (local transport) or whose heartbeat has
gone stale (any transport) forfeits its claim — the shard is re-queued by
renaming it back to ``pending/`` and another worker picks it up. If the
local worker pool dies entirely, the coordinator drains the remaining
shards inline, so a sweep completes as long as the coordinator itself
survives.

Two payload modes ride on the same protocol:

* **summary shipping** (:meth:`Coordinator.run`) — shards are flat
  :class:`SessionSpec` lists and workers ship back full
  :class:`SessionSummary` pickles. This is what direct-scoring callers
  (and ``repro sweep --ship-summaries``) use: the coordinator ends up
  holding every capture and fan profile.
* **verdict shipping** (:meth:`Coordinator.run_scored`) — shards are
  scenario-level :class:`ScenarioJob`\\ s carrying a picklable
  :class:`~repro.detection.protocol.ScoreSpec`; the worker executes *and
  scores* each scenario, and the ``done/`` payload is verdict rows plus
  per-session :class:`SessionDigest` metadata — orders of magnitude
  smaller than summaries for big grids, since transaction streams and fan
  profiles never travel (full summaries still land in the shared
  ``--cache-dir``, written by the workers themselves).

Each worker runs its whole shard through one *parallel*
:class:`~repro.experiments.batch.BatchRunner` batch (``--hosts N`` and
``--workers M`` compose multiplicatively), ticking its heartbeat from the
batch's per-session completion callback so the coordinator still sees
forward progress mid-shard.

Entry points:

* :func:`run_distributed` / :func:`run_distributed_scored` /
  :class:`Coordinator` — what ``repro sweep --hosts N`` drives;
* :class:`Worker` — the claim/execute/report loop behind the standalone
  ``repro worker <target>`` command, which is how real remote hosts join
  a sweep (point them at a shared work dir — or the coordinator's
  ``http://host:port/queues/...`` shard queue — plus a cache dir).

Sharding has two modes. The default carves one LPT-balanced shard per
host — minimal protocol traffic, but a straggler host strands its whole
shard. With ``steal=True`` (``repro sweep --steal``) the coordinator
instead enqueues **many small shards** (:data:`STEAL_SHARD_FACTOR` per
host, goldens still grouped so shared golden sessions are simulated once)
and lets elastic **work stealing** fall out of the greedy claim loop:
whichever worker is idle — including a host that joined mid-sweep —
claims the next shard, so stragglers shed load instead of stranding it.
Merged results are keyed by job index either way, so verdict CSVs are
byte-identical across every sharding × backend combination.
"""

from __future__ import annotations

import os
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.detection.protocol import ScoreSpec, Verdict
from repro.errors import ReproError
from repro.experiments.batch import (
    BatchRunner,
    CacheOption,
    SessionSpec,
    SessionSummary,
    resolve_cache,
)
from repro.experiments.transport import (
    WIRE_FORMAT,
    Claim,
    Transport,
    WireFormatError,
    create_transport,
    decode_wire,
)
from repro.firmware.marlin import PrinterStatus
from repro.util import atomic_pickle, atomic_write

__all__ = [  # re-exports: the wire layer moved to transport.py in PR 10
    "WIRE_FORMAT",
    "Claim",
    "Transport",
    "WireFormatError",
    "WorkDir",
    "Worker",
    "Coordinator",
    "run_distributed",
    "run_distributed_scored",
]

PAYLOAD_SHRINK_FLOOR = 5.0
"""Verdict shipping must undercut summary shipping by at least this factor.

The policy number the CI parity script and the distribution benchmark both
enforce; it lives here so retuning it (e.g. after a summary-schema change)
cannot desynchronize the two checks.
"""

STEAL_SHARD_FACTOR = 4
"""Shards per host when work stealing is on (``Coordinator(steal=True)``).

Small enough that per-shard protocol overhead (claims, done payloads)
stays negligible, large enough that a straggling host strands at most
~1/4 of its fair share before an idle worker steals the rest.
"""

_PENDING, _CLAIMED, _DONE, _HEARTS, _LOGS = (
    "pending",
    "claimed",
    "done",
    "hearts",
    "logs",
)
_STOP = "STOP"
_SHARD_RE = re.compile(r"^shard-(\d+)(?:@(.+))?\.pkl$")


@dataclass(frozen=True)
class SessionDigest:
    """The wire-sized reduction of a :class:`SessionSummary`.

    Everything the sweep/report layer reads off a scored scenario's
    sessions — status, duration, failure text — without the transaction
    stream, deposition trace, or fan profile that make full summaries
    heavy. This is the per-session metadata that travels in verdict-
    shipping mode.
    """

    label: str
    spec_key: str
    status: PrinterStatus
    kill_reason: Optional[str]
    timed_out: bool
    duration_s: float
    error: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.status is PrinterStatus.DONE

    @property
    def failed(self) -> bool:
        return self.status is PrinterStatus.FAILED

    @classmethod
    def from_summary(
        cls, summary: SessionSummary, label: Optional[str] = None
    ) -> "SessionDigest":
        return cls(
            label=summary.label if label is None else label,
            spec_key=summary.spec_key,
            status=summary.status,
            kill_reason=summary.kill_reason,
            timed_out=summary.timed_out,
            duration_s=summary.duration_s,
            error=summary.error,
        )


@dataclass(frozen=True)
class ScenarioJob:
    """One scenario as worker-executable work: sessions + scoring recipe.

    Ships the *compiled* golden/suspect :class:`SessionSpec`\\ s rather
    than the scenario name, so the worker never needs the coordinator's
    part/attack registries (ad-hoc parts and runtime-registered variant
    attacks included); the :class:`ScoreSpec` likewise carries detector
    names + parameters, never live detectors.
    """

    index: int
    name: str
    golden: SessionSpec
    suspect: SessionSpec
    score: ScoreSpec

    def estimated_cost(self) -> float:
        return self.golden.estimated_cost() + self.suspect.estimated_cost()


@dataclass
class ScenarioVerdicts:
    """One scored scenario as it travels back from a worker."""

    index: int
    verdicts: Dict[str, Verdict]
    golden: SessionDigest
    suspect: SessionDigest


def _score_job(
    job: ScenarioJob, golden: SessionSummary, suspect: SessionSummary
) -> ScenarioVerdicts:
    """Score one job's sessions into the wire row shape.

    The same call runs worker-side (fresh summaries) and coordinator-side
    (cache-served summaries), so where a scenario happens to be scored can
    never change its verdicts. Reports are stripped eagerly: rows must
    carry exactly what the wire carries.
    """
    verdicts = {
        name: verdict.without_report()
        for name, verdict in job.score.score_pair(golden, suspect).items()
    }
    return ScenarioVerdicts(
        index=job.index,
        verdicts=verdicts,
        golden=SessionDigest.from_summary(golden, label=job.golden.label),
        suspect=SessionDigest.from_summary(suspect, label=job.suspect.label),
    )


@dataclass(frozen=True)
class WorkShard:
    """One worker-sized slice of a batch.

    Exactly one of ``specs`` (summary-shipping mode) or ``jobs``
    (verdict-shipping mode) is non-empty; the worker picks its execution
    path off which one it finds.
    """

    shard_id: int
    specs: Tuple[SessionSpec, ...] = ()
    jobs: Tuple[ScenarioJob, ...] = ()

    def estimated_cost(self) -> float:
        return sum(spec.estimated_cost() for spec in self.specs) + sum(
            job.estimated_cost() for job in self.jobs
        )


@dataclass
class ShardResult:
    """What a worker ships back for one executed shard.

    ``summaries`` is populated in summary-shipping mode, ``rows`` in
    verdict-shipping mode. ``session_count`` is the number of unique
    sessions the worker handled for this shard (for per-host economics);
    when ``None`` (older callers/tests) it falls back to
    ``len(summaries)``.
    """

    shard_id: int
    worker_id: str
    summaries: List[SessionSummary]
    wall_clock_s: float
    rows: List[ScenarioVerdicts] = field(default_factory=list)
    session_count: Optional[int] = None

    @property
    def sessions(self) -> int:
        if self.session_count is not None:
            return self.session_count
        return len(self.summaries)

    @property
    def failures(self) -> int:
        """Unique failed sessions in this shard.

        Keyed by spec key so a failed golden shared by several scenario
        rows counts once, matching how summary mode counts it.
        """
        failed = {s.spec_key for s in self.summaries if s.failed}
        failed.update(
            digest.spec_key
            for row in self.rows
            for digest in (row.golden, row.suspect)
            if digest.failed
        )
        return len(failed)


def _lpt_bins(items: Sequence[Any], bins: int, cost) -> List[List[Any]]:
    """Greedy LPT: descending-cost items onto the currently-lightest bin.

    Deterministic (stable sort, lowest-index tie-break), so the same batch
    shards the same way on every run.
    """
    bins = max(1, min(bins, len(items)))
    loads = [0.0] * bins
    out: List[List[Any]] = [[] for _ in range(bins)]
    ordered = sorted(range(len(items)), key=lambda i: cost(items[i]), reverse=True)
    for index in ordered:
        lightest = min(range(bins), key=lambda b: (loads[b], b))
        out[lightest].append(items[index])
        loads[lightest] += cost(items[index])
    return [group for group in out if group]


def balanced_shards(
    specs: Sequence[SessionSpec], bins: int
) -> List[List[SessionSpec]]:
    """Split specs into ≤ ``bins`` cost-balanced groups, longest-first."""
    return _lpt_bins(specs, bins, lambda spec: spec.estimated_cost())


def _group_cost(jobs: Sequence[ScenarioJob]) -> float:
    """A job group's cost with shared goldens counted once, not per job."""
    total = 0.0
    seen: Set[str] = set()
    for job in jobs:
        total += job.suspect.estimated_cost()
        key = job.golden.content_key()
        if key not in seen:
            seen.add(key)
            total += job.golden.estimated_cost()
    return total


def scenario_shards(
    jobs: Sequence[ScenarioJob], bins: int
) -> List[List[ScenarioJob]]:
    """Split scenario jobs into ≤ ``bins`` cost-balanced groups.

    Jobs sharing a golden print are kept together when possible (their
    shard's :class:`BatchRunner` then simulates the golden once), but not
    at the price of idle hosts: when there are fewer golden-groups than
    bins, the heaviest group is split — duplicating at most one golden per
    split, a deliberate trade of one redundant simulation for a whole
    host's parallelism (a shared ``--cache-dir`` usually absorbs even
    that: whichever worker finishes the golden first persists it).
    """
    if not jobs:
        return []
    groups: Dict[str, List[ScenarioJob]] = {}
    for job in jobs:
        groups.setdefault(job.golden.content_key(), []).append(job)
    target = min(bins, len(jobs))
    binned = _lpt_bins(list(groups.values()), target, _group_cost)
    shards = [[job for group in shard for job in group] for shard in binned]
    while len(shards) < target:
        splittable = [i for i, shard in enumerate(shards) if len(shard) > 1]
        if not splittable:
            break
        heaviest = max(splittable, key=lambda i: (_group_cost(shards[i]), -i))
        halves = _lpt_bins(shards[heaviest], 2, lambda j: j.estimated_cost())
        shards[heaviest : heaviest + 1] = halves
    return shards


def sanitize_worker_id(worker_id: str) -> str:
    """Worker ids become file-name components; keep them unambiguous."""
    return re.sub(r"[^A-Za-z0-9_.-]", "-", worker_id) or "worker"


def default_worker_id() -> str:
    return sanitize_worker_id(f"{socket.gethostname()}-{os.getpid()}")


def _atomic_pickle(path: str, payload: Any) -> None:
    """Write an enveloped wire payload under ``path`` via tmp-file + rename.

    The torn-write discipline itself lives in
    :func:`repro.util.atomic_pickle` (the WIRE001-enforced helper); this
    wrapper only adds the :data:`WIRE_FORMAT` envelope every work-dir
    payload must carry.
    """
    atomic_pickle(
        path, {"format": WIRE_FORMAT, "payload": payload}, prefix=".wire."
    )


def _load_pickle(path: str) -> Optional[Any]:
    """Read a wire payload file — :func:`decode_wire`'s semantics.

    Corruption reads as ``None`` (worst outcome: a re-queue), a cleanly
    readable envelope with a different format version raises
    :class:`WireFormatError` — see
    :func:`repro.experiments.transport.decode_wire` for the rationale.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    return decode_wire(data, path)


class WorkDir(Transport):
    """The filesystem transport: a shared directory both sides operate on.

    Every transition is an atomic rename (claim: ``pending/ → claimed/``;
    re-queue: ``claimed/ → pending/``) or an atomic write (enqueue, done),
    so concurrent workers — processes or hosts — never observe a torn file
    and never double-execute a shard they both tried to claim. Claim
    tokens are the claim-file paths, and the name-based helpers
    (:meth:`pending_files`, string-named :meth:`claim`) remain alongside
    the id-based :class:`~repro.experiments.transport.Transport` surface.
    """

    scheme = "fs"

    def __init__(self, root: str) -> None:
        self.root = root
        for sub in (_PENDING, _CLAIMED, _DONE, _HEARTS, _LOGS):
            os.makedirs(os.path.join(root, sub), exist_ok=True)

    def _sub(self, sub: str, name: str = "") -> str:
        return os.path.join(self.root, sub, name) if name else os.path.join(self.root, sub)

    @staticmethod
    def shard_file(shard_id: int) -> str:
        return f"shard-{shard_id:04d}.pkl"

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear a previous sweep's protocol state from a reused work dir.

        Stale ``done/`` files would satisfy this run's shard ids with old
        summaries, a stale ``STOP`` would make joining workers exit
        immediately, and stale claims would be pointlessly re-queued — so
        the coordinator wipes all of them before enqueueing (one sweep per
        work dir at a time; logs are kept, they only ever append).
        """
        try:
            os.unlink(os.path.join(self.root, _STOP))
        except OSError:
            pass
        for sub in (_PENDING, _CLAIMED, _DONE, _HEARTS):
            for name in os.listdir(self._sub(sub)):
                try:
                    os.unlink(self._sub(sub, name))
                except OSError:
                    pass

    def enqueue(self, shard: WorkShard) -> None:
        _atomic_pickle(self._sub(_PENDING, self.shard_file(shard.shard_id)), shard)

    def put_pending(self, shard_id: int, data: bytes) -> None:
        atomic_write(
            self._sub(_PENDING, self.shard_file(shard_id)),
            lambda handle: handle.write(data),
            prefix=".wire.",
        )

    def put_result(self, shard_id: int, data: bytes) -> None:
        atomic_write(
            self._sub(_DONE, self.shard_file(shard_id)),
            lambda handle: handle.write(data),
            prefix=".wire.",
        )

    def done_ids(self) -> List[int]:
        ids = []
        for name in os.listdir(self._sub(_DONE)):
            match = _SHARD_RE.match(name)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def load_result(self, shard_id: int) -> Optional[ShardResult]:
        """The shard's result; ``None`` when absent/corrupt.

        Raises :class:`WireFormatError` when the done file was written by
        an incompatible protocol version — the coordinator must fail loud
        on that, never merge or silently re-queue it.
        """
        payload = _load_pickle(self._sub(_DONE, self.shard_file(shard_id)))
        return payload if isinstance(payload, ShardResult) else None

    def result_size(self, shard_id: int) -> int:
        """The done file's size in bytes (0 when absent) — payload economics."""
        try:
            return os.path.getsize(self._sub(_DONE, self.shard_file(shard_id)))
        except OSError:
            return 0

    def discard_done(self, shard_id: int) -> None:
        try:
            os.unlink(self._sub(_DONE, self.shard_file(shard_id)))
        except OSError:
            pass

    def claims(self) -> List[Tuple[int, str, str]]:
        """Live claims as ``(shard_id, worker_id, path)`` triples."""
        out = []
        for name in sorted(os.listdir(self._sub(_CLAIMED))):
            match = _SHARD_RE.match(name)
            if match and match.group(2):
                out.append(
                    (int(match.group(1)), match.group(2), self._sub(_CLAIMED, name))
                )
        return out

    def requeue(self, claim_path: str) -> bool:
        """Return a dead worker's claimed shard to the pending queue.

        The claim file still holds the original shard payload, so one
        atomic rename restores it; a vanished claim (the worker completed
        after all) is not an error — the done file wins.
        """
        match = _SHARD_RE.match(os.path.basename(claim_path))
        if not match:
            return False
        pending_path = self._sub(_PENDING, self.shard_file(int(match.group(1))))
        try:
            os.rename(claim_path, pending_path)
        except OSError:
            return False
        return True

    def stop(self) -> None:
        with open(os.path.join(self.root, _STOP), "w", encoding="utf-8") as handle:
            handle.write("stop\n")

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def stop_requested(self) -> bool:
        return os.path.exists(os.path.join(self.root, _STOP))

    def pending_files(self) -> List[str]:
        return sorted(
            name
            for name in os.listdir(self._sub(_PENDING))
            if _SHARD_RE.match(name)
        )

    def pending_ids(self) -> List[int]:
        ids = []
        for name in self.pending_files():
            match = _SHARD_RE.match(name)
            if match and not match.group(2):
                ids.append(int(match.group(1)))
        return sorted(ids)

    def claim(
        self, pending_name: Union[int, str], worker_id: str
    ) -> Optional[Claim]:
        """Try to claim one pending shard; ``None`` if another worker won.

        Accepts a shard id (the transport-interface spelling) or a pending
        file name (the original work-dir spelling). Raises
        :class:`WireFormatError` — after renaming the shard *back* to
        pending, so a compatible worker can still take it — when the shard
        was enqueued by an incompatible coordinator; executing a payload
        whose schema this worker does not speak is never an option.
        """
        if isinstance(pending_name, int):
            pending_name = self.shard_file(pending_name)
        match = _SHARD_RE.match(pending_name)
        if not match or match.group(2):
            return None
        claim_path = self._sub(
            _CLAIMED, f"shard-{int(match.group(1)):04d}@{worker_id}.pkl"
        )
        try:
            os.rename(self._sub(_PENDING, pending_name), claim_path)
        except OSError:
            return None
        try:
            payload = _load_pickle(claim_path)
        except WireFormatError:
            try:
                os.rename(claim_path, self._sub(_PENDING, pending_name))
            except OSError:
                pass
            raise
        if not isinstance(payload, WorkShard):
            # Corrupt shard file: drop the claim; the coordinator re-enqueues
            # from its in-memory copy once it notices the shard went missing.
            try:
                os.unlink(claim_path)
            except OSError:
                pass
            return None
        return Claim(shard=payload, token=claim_path)

    def complete(self, claim: Claim, result: ShardResult) -> None:
        _atomic_pickle(self._sub(_DONE, self.shard_file(claim.shard.shard_id)), result)
        try:
            os.unlink(claim.path)
        except OSError:
            pass

    def beat(self, worker_id: str) -> None:
        path = self._sub(_HEARTS, worker_id)
        with open(path, "a", encoding="utf-8"):
            pass
        os.utime(path, None)

    def heartbeat_age_s(self, worker_id: str) -> Optional[float]:
        """Local-clock age of the heartbeat; ``None`` when it doesn't exist.

        Only meaningful when beater and reader share a clock (same host).
        The coordinator instead watches :meth:`heartbeat_mtime` for
        *advancement* against its own clock, which survives cross-host
        clock skew on shared filesystems.
        """
        try:
            # repro: lint-ignore[DET003] heartbeat staleness is wall-clock by definition (file mtime vs this host's clock)
            return max(0.0, time.time() - os.path.getmtime(self._sub(_HEARTS, worker_id)))
        except OSError:
            return None

    def heartbeat_mtime(self, worker_id: str) -> Optional[float]:
        """The heartbeat file's raw mtime; ``None`` when it doesn't exist."""
        try:
            return os.path.getmtime(self._sub(_HEARTS, worker_id))
        except OSError:
            return None

    def log_path(self, worker_id: str) -> str:
        return self._sub(_LOGS, f"{worker_id}.log")

    def worker_target(self) -> str:
        return self.root

    def describe(self) -> str:
        return f"fs transport ({self.root})"


class Worker:
    """The claim → execute → report loop one host runs.

    Executes each claimed shard as **one** :class:`BatchRunner` batch —
    parallel across ``workers`` processes when asked, deduplicated and
    cost-scheduled within the shard, failure-isolated (a raising session
    becomes a FAILED summary, never a dead worker) — ticking its heartbeat
    from the batch's per-session completion callback, so the coordinator
    sees forward progress even while the whole shard is in flight. A
    scenario shard (verdict-shipping mode) is additionally *scored* here:
    detectors are built from the shipped
    :class:`~repro.detection.protocol.ScoreSpec` and only verdict rows +
    session digests travel back. Exits when the coordinator writes
    ``STOP``, or — with ``idle_timeout_s`` — after the queue has stayed
    empty that long.
    """

    def __init__(
        self,
        work_dir: Union[str, Transport],
        worker_id: Optional[str] = None,
        cache: CacheOption = None,
        poll_s: float = 0.2,
        idle_timeout_s: Optional[float] = None,
        workers: Optional[int] = 1,
    ) -> None:
        # A Transport instance joins as-is; a string resolves by scheme —
        # a filesystem path, http://host/queues/..., or memory://name —
        # which is also how `repro worker <target>` accepts any backend.
        self.work = (
            work_dir
            if isinstance(work_dir, Transport)
            else create_transport(work_dir)
        )
        self.worker_id = sanitize_worker_id(worker_id or default_worker_id())
        self.poll_s = poll_s
        self.idle_timeout_s = idle_timeout_s
        self.runner = BatchRunner(workers=workers, cache=cache)
        # Pending shards whose wire format this worker cannot speak: left in
        # the queue for a compatible worker, never re-claimed, never executed.
        self._incompatible: Set[int] = set()

    def run(self) -> int:
        """Serve the queue until STOP (or idle timeout); returns shards done."""
        executed = 0
        idle_since = time.monotonic()
        while True:
            self.work.beat(self.worker_id)
            if self.work.stop_requested():
                # STOP beats a non-empty queue: shards left pending after a
                # coordinator abort are abandoned work — nobody will ever
                # collect their results.
                break
            claim = self._claim_next()
            if claim is None:
                if (
                    self.idle_timeout_s is not None
                    and time.monotonic() - idle_since >= self.idle_timeout_s
                ):
                    break
                time.sleep(self.poll_s)
                continue
            self.execute(claim)
            executed += 1
            idle_since = time.monotonic()
        return executed

    def _claim_next(self) -> Optional[Claim]:
        for shard_id in self.work.pending_ids():
            if shard_id in self._incompatible:
                continue
            try:
                claim = self.work.claim(shard_id, self.worker_id)
            except WireFormatError as exc:
                # The shard went back to pending; remember it so this loop
                # doesn't spin on it, and say so in the worker log.
                self._incompatible.add(shard_id)
                print(
                    f"worker {self.worker_id}: skipping shard {shard_id}: {exc}",
                    flush=True,
                )
                continue
            if claim is not None:
                return claim
        return None

    def _beat(self, _summary: SessionSummary) -> None:
        """Per-completed-session progress hook → coordinator-visible beat."""
        self.work.beat(self.worker_id)

    def execute(self, claim: Claim) -> ShardResult:
        """Run (and, for scenario shards, score) one claimed shard."""
        # repro: lint-ignore[DET003] shard wall-clock economics (host_stats reporting), never verdict content
        started = time.perf_counter()
        self.work.beat(self.worker_id)
        shard = claim.shard
        summaries: List[SessionSummary] = []
        rows: List[ScenarioVerdicts] = []
        if shard.jobs:
            specs = [
                spec for job in shard.jobs for spec in (job.golden, job.suspect)
            ]
            executed = self.runner.run(specs, progress=self._beat)
            for job, golden, suspect in zip(
                shard.jobs, executed[0::2], executed[1::2]
            ):
                # Scoring a big shard takes real wall clock after the last
                # session completes; keep beating so the coordinator's
                # staleness window stays bounded by one scenario, not one
                # shard.
                self.work.beat(self.worker_id)
                rows.append(_score_job(job, golden, suspect))
        else:
            specs = list(shard.specs)
            summaries = self.runner.run(specs, progress=self._beat)
        result = ShardResult(
            shard_id=shard.shard_id,
            worker_id=self.worker_id,
            summaries=summaries,
            wall_clock_s=time.perf_counter() - started,  # repro: lint-ignore[DET003] economics
            rows=rows,
            session_count=len({spec.content_key() for spec in specs}),
        )
        self.work.complete(claim, result)
        return result


@dataclass
class DistributedResult:
    """Merged outcome of one distributed batch (summary-shipping mode)."""

    summaries: List[SessionSummary]
    host_stats: List[Dict[str, Any]] = field(default_factory=list)
    requeues: int = 0
    shards: int = 0
    sessions_dispatched: int = 0
    payload_bytes: int = 0


@dataclass
class ScoredResult:
    """Merged outcome of one distributed *scored* sweep (verdict shipping).

    ``rows`` is ordered by job index — one entry per input scenario job,
    whether it was scored worker-side or (cache-served pairs) by the
    coordinator itself. ``payload_bytes`` is the total size of the
    ``done/`` files collected, i.e. what actually travelled back.
    """

    rows: List[ScenarioVerdicts]
    host_stats: List[Dict[str, Any]] = field(default_factory=list)
    requeues: int = 0
    shards: int = 0
    sessions_dispatched: int = 0
    payload_bytes: int = 0


class Coordinator:
    """Shard a batch across worker hosts and merge the summaries back.

    With ``spawn_local=True`` (the default) the coordinator spawns
    ``hosts`` local worker subprocesses (``repro worker <work-dir>``) — the
    zero-config transport. External workers started by hand against the
    same work dir join the same queue; ``spawn_local=False`` relies on them
    entirely.

    Failure handling, in escalating order:

    * a worker whose *process* exited (local transport) or whose
      *heartbeat* went stale forfeits its claims — each is re-queued by
      atomic rename and another worker picks it up;
    * a dead local worker is replaced while the respawn budget
      (``max_respawns``, default ``hosts``) lasts;
    * if every local worker is gone and the budget is spent, the
      coordinator drains the remaining queue inline — a sweep fails only
      if the coordinator itself dies.

    ``heartbeat_timeout_s`` must exceed the wall clock of the longest
    *single* session (workers beat per completed session, not during one):
    a live worker mid-session beats nothing, and declaring it dead leads
    to harmless but wasteful double execution of its shard. The 300 s
    default clears every session in the registered grids by a wide margin.

    ``workers`` is the per-host :class:`BatchRunner` process count — the
    ``--hosts N --workers M`` composition: total parallelism is N×M, and a
    worker mid-parallel-shard still beats on every session completion, so
    internal parallelism cannot get a live worker condemned as wedged.
    """

    def __init__(
        self,
        hosts: int = 2,
        cache: CacheOption = None,
        work_dir: Optional[str] = None,
        heartbeat_timeout_s: float = 300.0,
        poll_s: float = 0.1,
        spawn_local: bool = True,
        max_respawns: Optional[int] = None,
        timeout_s: Optional[float] = None,
        workers: Optional[int] = 1,
        transport: Optional[Union[str, Transport]] = None,
        steal: bool = False,
    ) -> None:
        self.hosts = max(1, hosts)
        self.cache = resolve_cache(cache)
        self.work_dir = work_dir
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.poll_s = poll_s
        self.spawn_local = spawn_local
        self.max_respawns = self.hosts if max_respawns is None else max_respawns
        self.timeout_s = timeout_s
        self.workers = workers
        # Backend precedence: an explicit transport (instance or target
        # string) wins; else work_dir names a filesystem transport; else a
        # throwaway temp work dir is created per batch.
        self.transport = transport
        self.steal = steal

    def _bins(self) -> int:
        """How many shards to carve: 1/host, or many small ones to steal."""
        return self.hosts * (STEAL_SHARD_FACTOR if self.steal else 1)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[SessionSpec]) -> DistributedResult:
        """Execute all specs; summaries come back in the order specs were given.

        Mirrors :meth:`BatchRunner.run`'s contract: duplicates are executed
        once, cache-eligible keys are served from / stored to the cache
        (failures excepted), and dedup/cache hits are relabeled per spec.
        Only the *pending* specs — the ones the cache cannot serve — are
        sharded out, which is what makes a repeat distributed sweep over a
        warm cache dir a zero-worker no-op.
        """
        keys = [spec.content_key() for spec in specs]
        cacheable_keys = {key for key, spec in zip(keys, specs) if spec.cacheable}
        results: Dict[str, SessionSummary] = {}

        pending: List[Tuple[str, SessionSpec]] = []
        seen = set()
        for key, spec in zip(keys, specs):
            if key in seen:
                continue
            seen.add(key)
            if self.cache is not None and key in cacheable_keys:
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    continue
            pending.append((key, spec))

        host_stats: List[Dict[str, Any]] = []
        requeues = 0
        shard_count = 0
        payload_bytes = 0
        if pending:
            executed, host_stats, requeues, shard_count, payload_bytes = (
                self._distribute([spec for _, spec in pending])
            )
            for key, spec in pending:
                summary = executed[key]
                results[key] = summary
                if (
                    self.cache is not None
                    and key in cacheable_keys
                    and not summary.failed
                ):
                    # Workers sharing the cache directory already persisted
                    # their summaries; rewrite only what's missing (e.g. an
                    # external worker run without --cache-dir).
                    self.cache.put(
                        key, summary, persist=not self.cache.has_on_disk(key)
                    )

        out: List[SessionSummary] = []
        for key, spec in zip(keys, specs):
            summary = results[key]
            if summary.label != spec.label:
                summary = summary.relabeled(spec.label)
            out.append(summary)
        return DistributedResult(
            summaries=out,
            host_stats=host_stats,
            requeues=requeues,
            shards=shard_count,
            sessions_dispatched=len(pending),
            payload_bytes=payload_bytes,
        )

    def run_scored(self, jobs: Sequence[ScenarioJob]) -> ScoredResult:
        """Execute and *score* scenario jobs; only verdict rows travel back.

        The cache is *probed* (presence only, nothing deserialized) once
        per unique session key; full summaries are loaded only for jobs
        whose golden **and** suspect are both present — those are scored
        right here, so a warm repeat dispatches nothing and spawns nobody.
        Every other job ships to a worker untouched: when the cache has a
        shared directory, a partial hit's cached half is served to the
        worker from disk, never loaded into (and pinned in) coordinator
        memory (with a memory-only cache the worker simply re-simulates
        it, and the dispatch count says so). Dispatched
        workers execute their sessions through a parallel
        :class:`BatchRunner`, score them via the job's
        :class:`~repro.detection.protocol.ScoreSpec`, and publish
        :class:`ScenarioVerdicts` rows (digests + report-free verdicts) —
        never full summaries. Full summaries persist only where they
        belong: in the workers' shared ``--cache-dir``, when one is set.
        ``sessions_dispatched`` on the result is the number of unique
        sessions the cache could not serve — what a sweep reports as
        "sessions simulated".
        """
        probed: Dict[str, bool] = {}
        loaded: Dict[str, Optional[SessionSummary]] = {}

        def available(spec: SessionSpec) -> bool:
            if self.cache is None or not spec.cacheable:
                return False
            key = spec.content_key()
            if key not in probed:
                probed[key] = self.cache.probe(key)
            return probed[key]

        def load(spec: SessionSpec) -> Optional[SessionSummary]:
            key = spec.content_key()
            if key not in loaded:
                loaded[key] = self.cache.get(key)
                if loaded[key] is None:
                    # The probe saw a file get() rejected (torn/corrupt/
                    # stale): treat the key as absent so its jobs dispatch
                    # and the workers re-simulate it.
                    probed[key] = False
            return loaded[key]

        rows: Dict[int, ScenarioVerdicts] = {}
        remote: List[ScenarioJob] = []
        for job in jobs:
            if available(job.golden) and available(job.suspect):
                golden, suspect = load(job.golden), load(job.suspect)
                if golden is not None and suspect is not None:
                    rows[job.index] = _score_job(job, golden, suspect)
                    continue
            remote.append(job)
        # The scored summaries have served their purpose; release this
        # frame's references (the cache keeps its own memo per its policy).
        loaded.clear()

        host_stats: List[Dict[str, Any]] = []
        requeues = 0
        shard_count = 0
        payload_bytes = 0
        dispatched_sessions = 0
        if remote:
            # The dispatch count is what the sweep reports as "sessions
            # simulated", so count every key the workers cannot actually
            # be served: absent keys, keys whose probe a load() exposed as
            # corrupt (probed flipped to False), and keys present only in
            # *this process's memory* — an in-memory entry serves nobody
            # else, only the shared disk does.
            def served(key: str) -> bool:
                return (
                    self.cache is not None
                    and probed.get(key, False)
                    and self.cache.has_on_disk(key)
                )

            dispatched_sessions = len(
                {
                    spec.content_key()
                    for job in remote
                    for spec in (job.golden, job.suspect)
                    if not served(spec.content_key())
                }
            )
            shards = {
                index: WorkShard(shard_id=index, jobs=tuple(group))
                for index, group in enumerate(
                    scenario_shards(remote, self._bins())
                )
            }
            shard_count = len(shards)
            done, host_stats, requeues, payload_bytes = self._drive(shards)
            for result in done.values():
                for row in result.rows:
                    rows[row.index] = row
            missing = [job for job in remote if job.index not in rows]
            if missing:
                # Shouldn't happen (every shard is accounted for), but a
                # protocol bug must degrade to local scoring, not a KeyError.
                runner = BatchRunner(workers=self.workers, cache=self.cache)
                for job in missing:
                    golden, suspect = runner.run([job.golden, job.suspect])
                    rows[job.index] = _score_job(job, golden, suspect)
        return ScoredResult(
            rows=[rows[job.index] for job in jobs],
            host_stats=host_stats,
            requeues=requeues,
            shards=shard_count,
            sessions_dispatched=dispatched_sessions,
            payload_bytes=payload_bytes,
        )

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _worker_command(self, work: Transport, worker_id: str) -> List[str]:
        """The subprocess command line for one spawned local worker."""
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            work.worker_target(),
            "--id",
            worker_id,
            "--poll-s",
            str(self.poll_s),
            # Belt and braces: exit if the coordinator vanishes without
            # managing to write STOP.
            "--idle-timeout-s",
            "300",
        ]
        if self.workers is None or self.workers != 1:
            command += ["--workers", str(self.workers if self.workers else 0)]
        if self.cache is not None and self.cache.directory:
            command += ["--cache-dir", self.cache.directory]
        return command

    def _spawn(self, work: Transport, worker_id: str) -> subprocess.Popen:
        env = dict(os.environ)
        # The spawned interpreter must resolve this very repro package no
        # matter what the caller's cwd-relative PYTHONPATH said.
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        with open(work.log_path(worker_id), "ab") as log:
            return subprocess.Popen(
                self._worker_command(work, worker_id),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )

    # ------------------------------------------------------------------
    # The distribution loop
    # ------------------------------------------------------------------
    def _distribute(
        self, specs: Sequence[SessionSpec]
    ) -> Tuple[Dict[str, SessionSummary], List[Dict[str, Any]], int, int, int]:
        """Summary-shipping mode: shard flat specs, merge full summaries."""
        shards = {
            index: WorkShard(shard_id=index, specs=tuple(group))
            for index, group in enumerate(balanced_shards(specs, self._bins()))
        }
        done, host_stats, requeues, payload_bytes = self._drive(shards)
        executed: Dict[str, SessionSummary] = {}
        for result in done.values():
            for summary in result.summaries:
                executed[summary.spec_key] = summary
        missing = [spec for spec in specs if spec.content_key() not in executed]
        if missing:
            # Shouldn't happen (every shard is accounted for above), but a
            # protocol bug must degrade to local execution, not a KeyError.
            runner = BatchRunner(workers=self.workers, cache=self.cache)
            for summary in runner.run(missing):
                executed[summary.spec_key] = summary
        return executed, host_stats, requeues, len(shards), payload_bytes

    def _drive(
        self, shards: Dict[int, WorkShard]
    ) -> Tuple[Dict[int, ShardResult], List[Dict[str, Any]], int, int]:
        """The transport-agnostic loop: enqueue, tend workers, collect done.

        Returns the collected shard results plus per-host economics, the
        dead-worker re-queue count, and the total ``done/`` payload bytes
        that travelled back (the number verdict shipping exists to shrink).
        """
        created_tmp = False
        tmp_root: Optional[str] = None
        if isinstance(self.transport, Transport):
            work: Transport = self.transport
        elif self.transport is not None:
            work = create_transport(self.transport)
        elif self.work_dir is not None:
            work = WorkDir(self.work_dir)
        else:
            tmp_root = tempfile.mkdtemp(prefix="repro-distrib-")
            created_tmp = True
            work = WorkDir(tmp_root)
        if self.spawn_local and work.scheme == "memory":
            # A spawned `repro worker memory://...` would resolve a fresh,
            # empty registry in its own process and idle forever while the
            # coordinator waits — fail loud instead of deadlocking.
            raise ReproError(
                "the memory:// transport is in-process only; drive it with "
                "spawn_local=False and in-process workers, or use a "
                "filesystem/HTTP transport for subprocess workers"
            )
        work.reset()
        for shard in shards.values():
            work.enqueue(shard)

        procs: Dict[str, subprocess.Popen] = {}
        if self.spawn_local:
            for index in range(min(self.hosts, len(shards))):
                worker_id = f"local-{index}"
                procs[worker_id] = self._spawn(work, worker_id)

        done: Dict[int, ShardResult] = {}
        payload_sizes: Dict[int, int] = {}
        requeues = 0
        respawns = 0
        # Local workers whose process has exited; their claims are always
        # forfeit, even if _tend_pool already discarded the Popen handle.
        dead_workers: set = set()
        # worker_id -> (last observed heartbeat mtime, local monotonic time
        # it was first seen at that value). Staleness is "the mtime hasn't
        # advanced for heartbeat_timeout_s of *coordinator* time", which is
        # immune to cross-host clock skew on shared filesystems.
        hb_seen: Dict[str, Tuple[float, float]] = {}
        deadline = (
            time.monotonic() + self.timeout_s if self.timeout_s is not None else None
        )
        try:
            while len(done) < len(shards):
                self._collect_done(work, shards, done, payload_sizes)
                if len(done) >= len(shards):
                    break
                requeues += self._requeue_dead_claims(
                    work, done, procs, dead_workers, hb_seen
                )
                self._reenqueue_lost(work, shards, done)
                if self.spawn_local:
                    respawns = self._tend_pool(
                        work, shards, done, procs, dead_workers, respawns
                    )
                if deadline is not None and time.monotonic() > deadline:
                    raise ReproError(
                        f"distributed batch timed out after {self.timeout_s:.0f}s: "
                        f"{len(done)}/{len(shards)} shards done, "
                        f"{len(work.pending_ids())} pending, "
                        f"{len(work.claims())} claimed"
                    )
                time.sleep(self.poll_s)
        finally:
            work.stop()
            self._shutdown(procs)
            if created_tmp and tmp_root is not None:
                # The throwaway work dir (pickled specs include whole G-code
                # programs) must not outlive the run, success or failure;
                # every result that matters is already merged in memory.
                shutil.rmtree(tmp_root, ignore_errors=True)

        per_host: Dict[str, Dict[str, Any]] = {}
        for result in done.values():
            stats = per_host.setdefault(
                result.worker_id,
                {"worker": result.worker_id, "shards": 0, "sessions": 0,
                 "failures": 0, "wall_clock_s": 0.0},
            )
            stats["shards"] += 1
            stats["sessions"] += result.sessions
            stats["failures"] += result.failures
            stats["wall_clock_s"] = round(
                stats["wall_clock_s"] + result.wall_clock_s, 3
            )
        host_stats = sorted(per_host.values(), key=lambda s: s["worker"])
        return done, host_stats, requeues, sum(payload_sizes.values())

    def _collect_done(
        self,
        work: Transport,
        shards: Dict[int, WorkShard],
        done: Dict[int, ShardResult],
        payload_sizes: Dict[int, int],
    ) -> None:
        for shard_id in work.done_ids():
            if shard_id in done or shard_id not in shards:
                continue
            size = work.result_size(shard_id)
            try:
                result = work.load_result(shard_id)
            except WireFormatError as exc:
                # A worker running different code "completed" this shard.
                # Its payload cannot be trusted or even deserialized — and
                # re-queueing would just collect the same skewed result
                # forever. Fail the sweep loudly instead.
                raise ReproError(
                    f"shard {shard_id} was completed by an incompatible "
                    f"worker: {exc}"
                ) from exc
            if not isinstance(result, ShardResult):
                # Torn/stale done payload: burn it and re-enqueue from memory.
                work.discard_done(shard_id)
                work.enqueue(shards[shard_id])
                continue
            done[shard_id] = result
            payload_sizes[shard_id] = size

    def _worker_dead(
        self,
        work: Transport,
        worker_id: str,
        procs: Dict[str, subprocess.Popen],
        dead_workers: set,
        hb_seen: Dict[str, Tuple[float, float]],
    ) -> bool:
        if worker_id in dead_workers:
            return True  # its process already exited; claims stay forfeit
        proc = procs.get(worker_id)
        if proc is not None and proc.poll() is not None:
            return True  # local transport: process exit is definitive
        mtime = work.heartbeat_mtime(worker_id)
        if mtime is None:
            # No heartbeat at all: for an unknown (external) worker the
            # claim has outlived its owner — workers beat before their
            # first claim. A still-running local proc just hasn't started.
            return proc is None
        now = time.monotonic()
        last = hb_seen.get(worker_id)
        if last is None or mtime != last[0]:
            hb_seen[worker_id] = (mtime, now)
            return False
        # The mtime has not advanced since we first saw it: measure the
        # wait on *our* clock, so worker-host clock skew cannot condemn a
        # live worker. A live-but-wedged process stops beating too, so
        # staleness covers the wedge case the process check cannot.
        return now - last[1] > self.heartbeat_timeout_s

    def _requeue_dead_claims(
        self,
        work: Transport,
        done: Dict[int, ShardResult],
        procs: Dict[str, subprocess.Popen],
        dead_workers: set,
        hb_seen: Dict[str, Tuple[float, float]],
    ) -> int:
        requeued = 0
        for shard_id, worker_id, claim_path in work.claims():
            if shard_id in done:
                continue
            if self._worker_dead(
                work, worker_id, procs, dead_workers, hb_seen
            ) and work.requeue(claim_path):
                requeued += 1
        return requeued

    def _reenqueue_lost(
        self,
        work: Transport,
        shards: Dict[int, WorkShard],
        done: Dict[int, ShardResult],
    ) -> None:
        """Restore shards that fell out of the protocol entirely.

        A shard is *lost* when it is neither pending, claimed, nor done —
        e.g. its claim was dropped as corrupt. The coordinator's
        in-memory copy is authoritative, so it simply enqueues again.
        """
        visible = set(work.pending_ids())
        visible.update(shard_id for shard_id, _, _ in work.claims())
        # The on-disk done listing, not just the collected dict: a shard
        # completed since the last _collect_done is *not* lost.
        visible.update(work.done_ids())
        visible.update(done)
        for shard_id, shard in shards.items():
            if shard_id not in visible:
                work.enqueue(shard)

    def _tend_pool(
        self,
        work: Transport,
        shards: Dict[int, WorkShard],
        done: Dict[int, ShardResult],
        procs: Dict[str, subprocess.Popen],
        dead_workers: set,
        respawns: int,
    ) -> int:
        """Keep the local pool at strength; drain inline as a last resort."""
        outstanding = len(shards) - len(done)
        for worker_id, proc in list(procs.items()):
            if proc.poll() is None:
                continue
            procs.pop(worker_id)
            # Remember the death: a claim from this worker that comes into
            # view *after* this pass must still be requeued promptly, not
            # after a full heartbeat staleness wait.
            dead_workers.add(worker_id)
            if outstanding > 0 and respawns < self.max_respawns:
                respawns += 1
                replacement = f"local-r{respawns}"
                procs[replacement] = self._spawn(work, replacement)
        if not procs and outstanding > 0 and work.pending_ids():
            # The whole pool is gone and the budget is spent: finish the
            # queue ourselves rather than failing the sweep. A *separate*
            # cache instance over the same directory keeps the coordinator's
            # own hit/miss accounting (one lookup per unique key) honest.
            inline_cache = None
            if self.cache is not None and self.cache.directory:
                from repro.experiments.batch import SessionCache

                inline_cache = SessionCache(directory=self.cache.directory)
            inline = Worker(
                work,
                worker_id="coordinator-inline",
                cache=inline_cache,
                poll_s=self.poll_s,
                idle_timeout_s=0.0,
                workers=self.workers,
            )
            inline.run()
        return respawns

    def _shutdown(self, procs: Dict[str, subprocess.Popen]) -> None:
        deadline = time.monotonic() + 5.0
        for proc in procs.values():
            while proc.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            if proc.poll() is None:
                proc.terminate()
        for proc in procs.values():
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def run_distributed(
    specs: Sequence[SessionSpec],
    hosts: int = 2,
    cache: CacheOption = None,
    work_dir: Optional[str] = None,
    **coordinator_kwargs: Any,
) -> DistributedResult:
    """Convenience wrapper: one batch through a fresh :class:`Coordinator`."""
    coordinator = Coordinator(
        hosts=hosts, cache=cache, work_dir=work_dir, **coordinator_kwargs
    )
    return coordinator.run(specs)


def run_distributed_scored(
    jobs: Sequence[ScenarioJob],
    hosts: int = 2,
    cache: CacheOption = None,
    work_dir: Optional[str] = None,
    **coordinator_kwargs: Any,
) -> ScoredResult:
    """Convenience wrapper: one scored sweep through a fresh :class:`Coordinator`."""
    coordinator = Coordinator(
        hosts=hosts, cache=cache, work_dir=work_dir, **coordinator_kwargs
    )
    return coordinator.run_scored(jobs)
