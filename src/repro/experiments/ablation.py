"""Ablation: UART transaction period vs detection margin.

The paper notes its 5 % margin "can be made significantly smaller with a
faster communication protocol, as fewer steps possible per transaction would
lower the potential drift in counts". This sweep quantifies that design
space on the stealthiest Table II Trojans: for each UART period we measure
the worst clean-print drift (which lower-bounds a safe margin) and whether
the stealthy Trojans produce *transient* mismatches at that margin — i.e.
detection without relying on the end-of-print check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detection.comparator import CaptureComparator
from repro.experiments.batch import CacheOption, SessionSpec, run_sessions
from repro.experiments.workloads import sliced_program, tiny_part
from repro.gcode.ast import GcodeProgram
from repro.gcode.transforms.flaw3d import Flaw3dReduction, Flaw3dRelocation

DEFAULT_PERIODS_MS = (400, 200, 100, 50, 25)
DEFAULT_MARGINS = (0.01, 0.02, 0.05, 0.10)


@dataclass
class AblationCell:
    """One (period, margin) operating point."""

    period_ms: int
    margin: float
    false_positive: bool
    clean_max_drift_percent: float
    transient_detections: Dict[str, bool] = field(default_factory=dict)

    def render(self) -> str:
        detections = ", ".join(
            f"{name}={'yes' if hit else 'no'}"
            for name, hit in sorted(self.transient_detections.items())
        )
        return (
            f"period={self.period_ms:>4}ms margin={self.margin * 100:>4.0f}% "
            f"fp={'YES' if self.false_positive else 'no '} "
            f"drift={self.clean_max_drift_percent:5.2f}% transient: {detections}"
        )


@dataclass
class AblationResult:
    cells: List[AblationCell]

    def render(self) -> str:
        return "\n".join(cell.render() for cell in self.cells)

    def usable_margins(self, period_ms: int) -> List[float]:
        """Margins with no false positives at the given period."""
        return sorted(
            cell.margin
            for cell in self.cells
            if cell.period_ms == period_ms and not cell.false_positive
        )


def run_ablation(
    program: Optional[GcodeProgram] = None,
    periods_ms: Sequence[int] = DEFAULT_PERIODS_MS,
    margins: Sequence[float] = DEFAULT_MARGINS,
    noise_sigma: float = 0.0005,
    workers: Optional[int] = 1,
    cache: CacheOption = None,
) -> AblationResult:
    """Sweep UART periods and margins on the stealthiest Trojans.

    Every (period × {golden, control, suspects}) print is declared up front
    and submitted as one flat batch — the sweep's whole grid parallelizes.
    """
    if program is None:
        program = sliced_program(tiny_part())
    stealthy: List[Tuple[str, GcodeProgram]] = [
        ("reduce0.98", Flaw3dReduction(0.98).apply(program)),
        ("relocate100", Flaw3dRelocation(100).apply(program)),
    ]

    specs: List[SessionSpec] = []
    for period_ms in periods_ms:
        specs.append(
            SessionSpec(
                program=program,
                noise_sigma=noise_sigma,
                noise_seed=9001,
                uart_period_ms=period_ms,
                label=f"golden@{period_ms}ms",
                cacheable=True,
            )
        )
        specs.append(
            SessionSpec(
                program=program,
                noise_sigma=noise_sigma,
                noise_seed=9002,
                uart_period_ms=period_ms,
                label=f"control@{period_ms}ms",
                cacheable=True,
            )
        )
        for i, (name, modified) in enumerate(stealthy):
            specs.append(
                SessionSpec(
                    program=modified,
                    noise_sigma=noise_sigma,
                    noise_seed=9100 + i,
                    uart_period_ms=period_ms,
                    label=f"{name}@{period_ms}ms",
                )
            )
    summaries = run_sessions(specs, workers=workers, cache=cache)
    per_period = len(stealthy) + 2

    cells: List[AblationCell] = []
    for slot, period_ms in enumerate(periods_ms):
        block = summaries[slot * per_period : (slot + 1) * per_period]
        golden, control = block[0], block[1]
        suspects = {
            name: block[2 + i] for i, (name, _) in enumerate(stealthy)
        }
        for margin in margins:
            # The transient-only question: disable the final 0% check so the
            # cell isolates what the margin itself can see.
            comparator = CaptureComparator(margin=margin, final_check=False)
            control_report = comparator.compare_captures(golden.capture, control.capture)
            detections = {
                name: comparator.compare_captures(
                    golden.capture, suspect.capture
                ).trojan_likely
                for name, suspect in suspects.items()
            }
            cells.append(
                AblationCell(
                    period_ms=period_ms,
                    margin=margin,
                    false_positive=control_report.trojan_likely,
                    clean_max_drift_percent=control_report.largest_percent_diff,
                    transient_detections=detections,
                )
            )
    return AblationResult(cells=cells)
