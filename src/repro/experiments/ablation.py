"""Ablation: UART transaction period vs detection margin.

The paper notes its 5 % margin "can be made significantly smaller with a
faster communication protocol, as fewer steps possible per transaction would
lower the potential drift in counts". This sweep quantifies that design
space on the stealthiest Table II Trojans: for each UART period we measure
the worst clean-print drift (which lower-bounds a safe margin) and whether
the stealthy Trojans produce *transient* mismatches at that margin — i.e.
detection without relying on the end-of-print check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.detection.protocol import GoldenComparisonDetector
from repro.experiments.batch import CacheOption
from repro.experiments.scenario import (
    ScenarioSpec,
    flaw3d_reduction_attack,
    flaw3d_relocation_attack,
    register_program_part,
    run_scenarios,
)
from repro.gcode.ast import GcodeProgram

DEFAULT_PERIODS_MS = (400, 200, 100, 50, 25)
DEFAULT_MARGINS = (0.01, 0.02, 0.05, 0.10)

ABLATION_GOLDEN_SEED = 9001
ABLATION_CONTROL_SEED = 9002


@dataclass
class AblationCell:
    """One (period, margin) operating point."""

    period_ms: int
    margin: float
    false_positive: bool
    clean_max_drift_percent: float
    transient_detections: Dict[str, bool] = field(default_factory=dict)

    def render(self) -> str:
        detections = ", ".join(
            f"{name}={'yes' if hit else 'no'}"
            for name, hit in sorted(self.transient_detections.items())
        )
        return (
            f"period={self.period_ms:>4}ms margin={self.margin * 100:>4.0f}% "
            f"fp={'YES' if self.false_positive else 'no '} "
            f"drift={self.clean_max_drift_percent:5.2f}% transient: {detections}"
        )


@dataclass
class AblationResult:
    cells: List[AblationCell]

    def render(self) -> str:
        return "\n".join(cell.render() for cell in self.cells)

    def usable_margins(self, period_ms: int) -> List[float]:
        """Margins with no false positives at the given period."""
        return sorted(
            cell.margin
            for cell in self.cells
            if cell.period_ms == period_ms and not cell.false_positive
        )


def run_ablation(
    program: Optional[GcodeProgram] = None,
    periods_ms: Sequence[int] = DEFAULT_PERIODS_MS,
    margins: Sequence[float] = DEFAULT_MARGINS,
    noise_sigma: float = 0.0005,
    workers: Optional[int] = 1,
    cache: CacheOption = None,
) -> AblationResult:
    """Sweep UART periods and margins on the stealthiest Trojans.

    Thin grid over the scenario layer: every (period × {control, suspects})
    scenario compiles up front and the whole grid runs as one flat batch.
    Margins are a pure scoring axis — each margin re-scores the same
    summaries through a fresh ``golden`` Detector with the end-of-print
    check disabled.
    """
    part = "tiny" if program is None else register_program_part(program)
    stealthy = [
        ("reduce0.98", flaw3d_reduction_attack(0.98)),
        ("relocate100", flaw3d_relocation_attack(100)),
    ]

    scenarios: List[ScenarioSpec] = []
    for period_ms in periods_ms:
        scenarios.append(
            ScenarioSpec(
                name=f"control@{period_ms}ms",
                part=part,
                attack=None,
                seed=ABLATION_CONTROL_SEED,
                golden_seed=ABLATION_GOLDEN_SEED,
                noise_sigma=noise_sigma,
                uart_period_ms=period_ms,
            )
        )
        for i, (name, attack) in enumerate(stealthy):
            scenarios.append(
                ScenarioSpec(
                    name=f"{name}@{period_ms}ms",
                    part=part,
                    attack=attack,
                    seed=9100 + i,
                    golden_seed=ABLATION_GOLDEN_SEED,
                    noise_sigma=noise_sigma,
                    uart_period_ms=period_ms,
                )
            )
    runs = run_scenarios(scenarios, workers=workers, cache=cache)
    per_period = len(stealthy) + 1

    cells: List[AblationCell] = []
    for slot, period_ms in enumerate(periods_ms):
        block = runs[slot * per_period : (slot + 1) * per_period]
        golden, control = block[0].golden, block[0].suspect
        suspects = {name: block[1 + i].suspect for i, (name, _) in enumerate(stealthy)}
        for margin in margins:
            # The transient-only question: disable the final 0% check so the
            # cell isolates what the margin itself can see.
            detector = GoldenComparisonDetector(
                margin=margin, final_check=False
            ).fit(golden)
            control_report = detector.score(control).report
            detections = {
                name: detector.score(suspect).trojan_likely
                for name, suspect in suspects.items()
            }
            cells.append(
                AblationCell(
                    period_ms=period_ms,
                    margin=margin,
                    false_positive=control_report.trojan_likely,
                    clean_max_drift_percent=control_report.largest_percent_diff,
                    transient_detections=detections,
                )
            )
    return AblationResult(cells=cells)
