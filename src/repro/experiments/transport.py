"""The pluggable shard-queue transport behind distributed sweeps.

The distribution protocol (:mod:`repro.experiments.distrib`) is a small
state machine per shard::

    pending --claim--> claimed --complete--> done
       ^                  |
       +----requeue-------+   (staleness forfeit / dead worker)

plus a queue-wide STOP flag and per-worker heartbeats. PR 4/5 implemented
that machine directly on a shared filesystem (atomic renames under a work
dir). This module extracts the machine's *surface* into the
:class:`Transport` interface so the same coordinator/worker loops run over
any backend that can honor the contract:

* ``fs`` — the original shared-filesystem work dir
  (:class:`repro.experiments.distrib.WorkDir`); claims are atomic renames.
* ``http`` — a shard server riding the sweep service
  (:mod:`repro.experiments.transport_http`); claims are SQLite conditional
  UPDATEs behind HTTP endpoints, so workers join over the network with no
  shared mount.
* ``memory`` — an in-process fake (:class:`InMemoryTransport`) for tests
  and the transport contract suite; claims are dict moves under one lock.

Every backend ships the **same wire bytes**: payloads are pickled inside a
``{"format": WIRE_FORMAT, "payload": ...}`` envelope
(:func:`encode_wire` / :func:`decode_wire`), so version-skew detection and
torn-payload degradation behave identically whether the bytes crossed a
rename, a socket, or a dict. The backend-agnostic behavioral contract —
claim exclusivity under concurrent claimers, requeue-after-forfeit,
torn-write degradation, wire-format skew failing loud, STOP propagation,
done-payload round-trip — is pinned by ``tests/test_transport_contract.py``,
which every registered backend inherits.

Backends register under a URL scheme via :func:`register_transport`;
:func:`create_transport` resolves a target string (a filesystem path,
``http://host:port/queues/name``, or ``memory://name``) to a live
transport. ``repro worker <target>`` accepts any of them, which is how
late-joining hosts steal work from an in-flight sweep.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError

WIRE_FORMAT = 3
"""Shard-queue payload format version.

Bumped whenever the pickled shard/result schema — or the protocol the
envelope travels through — changes shape (2: shards may carry scenario
jobs, results verdict rows + digests; 3: payloads travel over pluggable
transports, claims are transport tokens rather than claim-file paths, and
shard queues may be served over HTTP). A payload whose envelope names a
*different* version is a protocol-level incompatibility — some host is
running different code — and raises :class:`WireFormatError` rather than
being quietly re-queued: silent re-queueing of a version skew loops
forever, and deserializing the payload anyway risks scoring garbage.
"""


class WireFormatError(ReproError):
    """A shard-queue payload was written by an incompatible protocol version."""

    def __init__(self, source: str, found: Any) -> None:
        super().__init__(
            f"shard-queue payload {os.path.basename(str(source))!r} has wire "
            f"format {found!r}, but this process speaks {WIRE_FORMAT}; every "
            "host sharing a shard queue must run the same repro version"
        )
        self.path = source
        self.found = found


def encode_wire(payload: Any) -> bytes:
    """Serialize a payload into the versioned wire envelope."""
    return pickle.dumps(
        {"format": WIRE_FORMAT, "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_wire(data: bytes, source: str) -> Optional[Any]:
    """Deserialize wire bytes; ``None`` on corruption, loud on skew.

    Corruption (a torn write, truncation, unpicklable bytes) reads as
    absent — the worst outcome is a re-queue/re-simulation. A *cleanly
    readable envelope carrying a different format version* is not
    corruption, it is a host running different code, and silently treating
    it as absent would either loop (coordinator re-enqueues, the skewed
    worker "completes" again) or deserialize a payload whose schema this
    process does not understand — so it raises :class:`WireFormatError`.
    """
    try:
        envelope = pickle.loads(data)
    except Exception:
        return None
    if not isinstance(envelope, dict) or "format" not in envelope:
        return None
    if envelope["format"] != WIRE_FORMAT:
        raise WireFormatError(source, envelope["format"])
    return envelope.get("payload")


@dataclass(frozen=True)
class Claim:
    """A successfully claimed shard and the token that records the claim.

    ``token`` is backend-specific — the claim-file path on the filesystem
    transport, a ``"<shard_id>@<worker_id>"`` lease elsewhere — and is what
    :meth:`Transport.requeue` consumes to forfeit the claim.
    """

    shard: Any
    token: str

    @property
    def path(self) -> str:
        """Filesystem-transport compatibility alias for :attr:`token`."""
        return self.token


class Transport:
    """The claim/requeue/done/heartbeat/STOP surface every backend implements.

    One transport instance fronts one shard queue. The coordinator calls
    the full surface; a worker only ``beat``/``stop_requested``/
    ``pending_ids``/``claim``/``complete``. Implementations must keep two
    invariants the contract suite enforces:

    * **claim exclusivity** — for one shard id, at most one concurrent
      :meth:`claim` returns a :class:`Claim`; everyone else gets ``None``.
    * **conditional requeue** — :meth:`requeue` returns the shard to
      pending only while the token's claim is still live, so a worker that
      completed after being declared dead is never double-queued (the done
      payload wins).
    """

    scheme = "?"

    # -- queue lifecycle (coordinator) ---------------------------------
    def reset(self) -> None:
        """Clear a previous sweep's protocol state from a reused queue."""
        raise NotImplementedError

    def enqueue(self, shard: Any) -> None:
        """Queue one shard (its ``shard_id`` names it)."""
        self.put_pending(shard.shard_id, encode_wire(shard))

    def put_pending(self, shard_id: int, data: bytes) -> None:
        """Place raw wire bytes in the pending queue (enqueue's low half).

        Exposed separately so the contract suite can inject torn or
        version-skewed payloads through the same door real ones use.
        """
        raise NotImplementedError

    def stop(self) -> None:
        """Raise the queue-wide STOP flag (workers drain out)."""
        raise NotImplementedError

    # -- results (coordinator) -----------------------------------------
    def done_ids(self) -> List[int]:
        raise NotImplementedError

    def load_result(self, shard_id: int) -> Optional[Any]:
        """The shard's result; ``None`` when absent/corrupt, loud on skew."""
        raise NotImplementedError

    def result_size(self, shard_id: int) -> int:
        """The result payload's size in bytes (0 when absent) — economics."""
        raise NotImplementedError

    def discard_done(self, shard_id: int) -> None:
        raise NotImplementedError

    def put_result(self, shard_id: int, data: bytes) -> None:
        """Place raw result bytes (complete's low half; contract-test door)."""
        raise NotImplementedError

    # -- claims (both sides) -------------------------------------------
    def pending_ids(self) -> List[int]:
        raise NotImplementedError

    def claim(self, shard_id: int, worker_id: str) -> Optional[Claim]:
        """Try to claim one pending shard; ``None`` if another worker won.

        Raises :class:`WireFormatError` — after returning the shard to
        pending, so a compatible worker can still take it — when the shard
        was enqueued by an incompatible coordinator. A corrupt payload
        drops out of the queue entirely (the coordinator re-enqueues from
        its in-memory copy once it notices the shard went missing).
        """
        raise NotImplementedError

    def complete(self, claim: Claim, result: Any) -> None:
        """Publish the result and release the claim (done beats requeue)."""
        raise NotImplementedError

    def claims(self) -> List[Tuple[int, str, str]]:
        """Live claims as ``(shard_id, worker_id, token)`` triples."""
        raise NotImplementedError

    def requeue(self, token: str) -> bool:
        """Forfeit a claim back to pending; False when the claim is gone."""
        raise NotImplementedError

    # -- liveness (both sides) -----------------------------------------
    def stop_requested(self) -> bool:
        raise NotImplementedError

    def beat(self, worker_id: str) -> None:
        """Record forward progress for this worker."""
        raise NotImplementedError

    def heartbeat_mtime(self, worker_id: str) -> Optional[float]:
        """A value that advances on every beat; ``None`` before the first.

        The coordinator never interprets the value as a clock — it only
        watches for *advancement* against its own monotonic time, which
        survives cross-host clock skew on every backend.
        """
        raise NotImplementedError

    # -- plumbing -------------------------------------------------------
    def worker_target(self) -> str:
        """What ``repro worker <target>`` needs to reach this queue."""
        raise NotImplementedError

    def log_path(self, worker_id: str) -> str:
        """Where a spawned local worker's stdio lands (always a local path)."""
        if getattr(self, "_log_dir", None) is None:
            self._log_dir = tempfile.mkdtemp(prefix="repro-worker-logs-")
        return os.path.join(self._log_dir, f"{worker_id}.log")

    def describe(self) -> str:
        return f"{self.scheme} transport"


class InMemoryTransport(Transport):
    """The in-process reference backend: dict moves under one lock.

    Exists for the transport contract suite and fast fault-injection tests
    — same claim exclusivity, requeue, torn-payload, and skew semantics as
    the real backends, with zero filesystem or network. ``memory://name``
    resolves to a per-process shared instance so coordinator and worker
    threads in one process can meet on it (it cannot cross processes;
    spawned ``repro worker`` subprocesses need ``fs`` or ``http``).
    """

    scheme = "memory"

    _shared: Dict[str, "InMemoryTransport"] = {}
    _shared_lock = threading.Lock()

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._pending: Dict[int, bytes] = {}
        self._claimed: Dict[int, Tuple[str, bytes]] = {}
        self._done: Dict[int, bytes] = {}
        self._beats: Dict[str, int] = {}
        self._stop = False

    @classmethod
    def named(cls, name: str) -> "InMemoryTransport":
        """The process-wide instance behind ``memory://<name>``."""
        with cls._shared_lock:
            if name not in cls._shared:
                cls._shared[name] = cls(name)
            return cls._shared[name]

    def _source(self, shard_id: int) -> str:
        return f"shard-{shard_id:04d} (memory://{self.name})"

    def reset(self) -> None:
        with self._lock:
            self._pending.clear()
            self._claimed.clear()
            self._done.clear()
            self._beats.clear()
            self._stop = False

    def put_pending(self, shard_id: int, data: bytes) -> None:
        with self._lock:
            self._pending[shard_id] = data

    def stop(self) -> None:
        with self._lock:
            self._stop = True

    def stop_requested(self) -> bool:
        with self._lock:
            return self._stop

    def done_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._done)

    def load_result(self, shard_id: int) -> Optional[Any]:
        with self._lock:
            data = self._done.get(shard_id)
        if data is None:
            return None
        return decode_wire(data, self._source(shard_id))

    def result_size(self, shard_id: int) -> int:
        with self._lock:
            data = self._done.get(shard_id)
        return len(data) if data is not None else 0

    def discard_done(self, shard_id: int) -> None:
        with self._lock:
            self._done.pop(shard_id, None)

    def put_result(self, shard_id: int, data: bytes) -> None:
        with self._lock:
            self._done[shard_id] = data

    def pending_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._pending)

    def claim(self, shard_id: int, worker_id: str) -> Optional[Claim]:
        with self._lock:
            data = self._pending.pop(shard_id, None)
            if data is None:
                return None
            self._claimed[shard_id] = (worker_id, data)
        try:
            payload = decode_wire(data, self._source(shard_id))
        except WireFormatError:
            # Back to pending for a compatible worker; executing a schema
            # this process does not speak is never an option.
            self.requeue(f"{shard_id}@{worker_id}")
            raise
        if payload is None:
            # Corrupt payload: drop the claim entirely; the coordinator
            # re-enqueues from its in-memory copy once the shard is lost.
            with self._lock:
                held = self._claimed.get(shard_id)
                if held is not None and held[0] == worker_id:
                    self._claimed.pop(shard_id)
            return None
        return Claim(shard=payload, token=f"{shard_id}@{worker_id}")

    def complete(self, claim: Claim, result: Any) -> None:
        shard_id, worker_id = _parse_token(claim.token)
        with self._lock:
            self._done[shard_id] = encode_wire(result)
            held = self._claimed.get(shard_id)
            if held is not None and held[0] == worker_id:
                self._claimed.pop(shard_id)

    def claims(self) -> List[Tuple[int, str, str]]:
        with self._lock:
            return [
                (shard_id, worker_id, f"{shard_id}@{worker_id}")
                for shard_id, (worker_id, _) in sorted(self._claimed.items())
            ]

    def requeue(self, token: str) -> bool:
        shard_id, worker_id = _parse_token(token)
        with self._lock:
            held = self._claimed.get(shard_id)
            if held is None or held[0] != worker_id:
                return False  # completed or already forfeited — done wins
            self._claimed.pop(shard_id)
            self._pending[shard_id] = held[1]
            return True

    def beat(self, worker_id: str) -> None:
        with self._lock:
            self._beats[worker_id] = self._beats.get(worker_id, 0) + 1

    def heartbeat_mtime(self, worker_id: str) -> Optional[float]:
        with self._lock:
            count = self._beats.get(worker_id)
        return float(count) if count is not None else None

    def worker_target(self) -> str:
        return f"memory://{self.name}"

    def describe(self) -> str:
        return f"memory transport ({self.name or 'anonymous'})"


def _parse_token(token: str) -> Tuple[int, str]:
    """Split a ``"<shard_id>@<worker_id>"`` lease token.

    Worker ids are sanitized to ``[A-Za-z0-9_.-]`` before they reach any
    token (see :func:`repro.experiments.distrib.sanitize_worker_id`), so
    the first ``@`` is always the separator.
    """
    shard, _, worker = token.partition("@")
    try:
        return int(shard), worker
    except ValueError:
        raise ReproError(f"malformed claim token {token!r}") from None


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------

def _make_filesystem(target: str) -> Transport:
    from repro.experiments.distrib import WorkDir

    return WorkDir(target)


def _make_memory(target: str) -> Transport:
    name = target.partition("://")[2]
    return InMemoryTransport.named(name)


def _make_http(target: str) -> Transport:
    from repro.experiments.transport_http import HttpTransport

    return HttpTransport(target)


TRANSPORT_SCHEMES: Dict[str, Callable[[str], Transport]] = {
    "fs": _make_filesystem,
    "memory": _make_memory,
    "http": _make_http,
}
"""Registered backends: URL scheme -> factory taking the full target string.

``tests/test_transport_contract.py`` asserts every entry here has a
contract-suite subclass, so a new backend cannot register without
inheriting the behavioral tests.
"""


def register_transport(scheme: str, factory: Callable[[str], Transport]) -> None:
    """Register a backend under a URL scheme (``https`` rides ``http``)."""
    TRANSPORT_SCHEMES[scheme] = factory


def registered_schemes() -> List[str]:
    return sorted(TRANSPORT_SCHEMES)


def create_transport(target: str) -> Transport:
    """Resolve a worker/coordinator target string to a live transport.

    ``http://`` / ``https://`` / ``memory://`` dispatch on their scheme;
    anything else is a filesystem work-dir path (the PR 4 contract —
    ``repro worker <dir>`` keeps working unchanged).
    """
    scheme, sep, _ = target.partition("://")
    if sep and scheme in TRANSPORT_SCHEMES:
        return TRANSPORT_SCHEMES[scheme](target)
    if scheme == "https" and sep:
        return TRANSPORT_SCHEMES["http"](target)
    if sep:
        raise ReproError(
            f"unknown transport scheme {scheme!r} in {target!r}; "
            f"registered: {registered_schemes()} (or a filesystem path)"
        )
    return TRANSPORT_SCHEMES["fs"](target)
