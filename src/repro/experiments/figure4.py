"""Figure 4: detection of an emulated Flaw3D relocation Trojan.

Reproduces the three panels: (a) a transaction excerpt from the golden
reference, (b) the matching excerpt from the Trojaned print, and (c) the
detection tool's output — mismatch lines, largest percent difference, totals,
and the "Trojan likely!" verdict. The excerpt window is centred on the first
out-of-margin transaction, as the paper's excerpt is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.detection.report import DetectionReport
from repro.experiments.batch import CacheOption
from repro.experiments.scenario import (
    DEFAULT_NOISE_SIGMA,
    ScenarioSpec,
    flaw3d_relocation_attack,
    register_program_part,
    run_sweep,
)
from repro.gcode.ast import GcodeProgram

EXCERPT_ROWS = 6


@dataclass
class Figure4Output:
    """The three panels of Figure 4, as text."""

    golden_excerpt: str
    trojan_excerpt: str
    detector_output: str
    report: DetectionReport

    def render(self) -> str:
        return "\n".join(
            [
                "(a) golden reference excerpt:",
                self.golden_excerpt,
                "",
                "(b) Flaw3D relocation print excerpt:",
                self.trojan_excerpt,
                "",
                "(c) detection tool output:",
                self.detector_output,
            ]
        )


def run_figure4(
    program: Optional[GcodeProgram] = None,
    relocation_period: int = 20,
    noise_sigma: float = DEFAULT_NOISE_SIGMA,
    workers: Optional[int] = 1,
    cache: CacheOption = None,
) -> Figure4Output:
    """Regenerate Figure 4 (relocation Trojan, period 20 by default).

    A one-scenario grid over the scenario layer: the relocation attack on
    the standard part, scored through the ``golden`` Detector entry.
    """
    part = "standard" if program is None else register_program_part(program)
    scenario = ScenarioSpec(
        name=f"figure4:relocate{relocation_period}",
        part=part,
        attack=flaw3d_relocation_attack(relocation_period),
        detectors=("golden",),
        seed=2042,
        noise_sigma=noise_sigma,
    )
    outcome = run_sweep([scenario], workers=workers, cache=cache).outcomes[0]
    golden_capture = outcome.golden.capture
    suspect_capture = outcome.suspect.capture
    report = outcome.verdicts["golden"].report

    # Centre the excerpt on the first mismatch (mid-print, like the paper's).
    if report.mismatches:
        start = max(1, report.mismatches[0].index - 1)
    else:
        start = max(1, len(golden_capture) // 2)
    golden_rows = golden_capture.excerpt(start, EXCERPT_ROWS)
    suspect_rows = suspect_capture.excerpt(start, EXCERPT_ROWS)

    return Figure4Output(
        golden_excerpt=golden_capture.render(golden_rows),
        trojan_excerpt=suspect_capture.render(suspect_rows),
        detector_output=report.render(max_mismatch_lines=2),
        report=report,
    )
