"""Figure 4: detection of an emulated Flaw3D relocation Trojan.

Reproduces the three panels: (a) a transaction excerpt from the golden
reference, (b) the matching excerpt from the Trojaned print, and (c) the
detection tool's output — mismatch lines, largest percent difference, totals,
and the "Trojan likely!" verdict. The excerpt window is centred on the first
out-of-margin transaction, as the paper's excerpt is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.detection.comparator import CaptureComparator
from repro.detection.report import DetectionReport
from repro.experiments.batch import CacheOption, SessionSpec, run_sessions
from repro.experiments.workloads import sliced_program, standard_part
from repro.experiments.table2 import DEFAULT_NOISE_SIGMA, GOLDEN_SEED
from repro.gcode.ast import GcodeProgram
from repro.gcode.transforms.flaw3d import Flaw3dRelocation

EXCERPT_ROWS = 6


@dataclass
class Figure4Output:
    """The three panels of Figure 4, as text."""

    golden_excerpt: str
    trojan_excerpt: str
    detector_output: str
    report: DetectionReport

    def render(self) -> str:
        return "\n".join(
            [
                "(a) golden reference excerpt:",
                self.golden_excerpt,
                "",
                "(b) Flaw3D relocation print excerpt:",
                self.trojan_excerpt,
                "",
                "(c) detection tool output:",
                self.detector_output,
            ]
        )


def run_figure4(
    program: Optional[GcodeProgram] = None,
    relocation_period: int = 20,
    noise_sigma: float = DEFAULT_NOISE_SIGMA,
    workers: Optional[int] = 1,
    cache: CacheOption = None,
) -> Figure4Output:
    """Regenerate Figure 4 (relocation Trojan, period 20 by default)."""
    if program is None:
        program = sliced_program(standard_part())
    trojaned_program = Flaw3dRelocation(relocation_period).apply(program)
    golden, suspect = run_sessions(
        [
            SessionSpec(
                program=program,
                noise_sigma=noise_sigma,
                noise_seed=GOLDEN_SEED,
                label="golden",
                cacheable=True,
            ),
            SessionSpec(
                program=trojaned_program,
                noise_sigma=noise_sigma,
                noise_seed=2042,
                label=f"relocate{relocation_period}",
            ),
        ],
        workers=workers,
        cache=cache,
    )
    golden_capture, suspect_capture = golden.capture, suspect.capture

    comparator = CaptureComparator()
    report = comparator.compare_captures(golden_capture, suspect_capture)

    # Centre the excerpt on the first mismatch (mid-print, like the paper's).
    if report.mismatches:
        start = max(1, report.mismatches[0].index - 1)
    else:
        start = max(1, len(golden_capture) // 2)
    golden_rows = golden_capture.excerpt(start, EXCERPT_ROWS)
    suspect_rows = suspect_capture.excerpt(start, EXCERPT_ROWS)

    return Figure4Output(
        golden_excerpt=golden_capture.render(golden_rows),
        trojan_excerpt=suspect_capture.render(suspect_rows),
        detector_output=report.render(max_mismatch_lines=2),
        report=report,
    )
