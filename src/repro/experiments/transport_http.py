"""The HTTP shard-queue transport: distributed sweeps with no shared mount.

Rides the sweep service (:mod:`repro.service.app`): a coordinator resets a
named queue on the server, enqueues wire-envelope shard payloads with PUT,
and workers anywhere on the network — including hosts that join after the
sweep started — claim them with ``POST .../claim``. Server-side the claim
is one SQLite conditional UPDATE (``WHERE state = 'pending'``), so claim
exclusivity is the database's atomicity rather than a filesystem rename;
everything above the wire is the same protocol, pinned by the same
transport contract suite as the filesystem backend.

Targets look like ``http://host:8035`` (queue ``default``) or
``http://host:8035/queues/nightly`` — the same string works for
``repro sweep --transport`` on the coordinator and ``repro worker`` on
every joining host. Like a filesystem work dir, one queue hosts one sweep
at a time.

Payload bytes cross the network exactly as they would cross a rename, so
:func:`~repro.experiments.transport.decode_wire`'s guarantees carry over
unchanged: a torn/corrupt payload degrades to a re-enqueue, a cleanly
readable payload with a different ``WIRE_FORMAT`` fails loud.
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request
from typing import Any, List, Optional, Tuple

from repro.errors import ReproError
from repro.experiments.transport import (
    Claim,
    Transport,
    WireFormatError,
    _parse_token,
    decode_wire,
    encode_wire,
)

_TARGET_RE = re.compile(
    r"^(?P<base>https?://[^/]+)(?:/queues/(?P<queue>[A-Za-z0-9_.-]+))?/?$"
)

DEFAULT_QUEUE = "default"


class TransportHTTPError(ReproError):
    """The shard server answered with an unexpected status (or not at all)."""


class HttpTransport(Transport):
    """One shard queue on a sweep service, spoken over stdlib urllib."""

    scheme = "http"

    def __init__(self, target: str, timeout_s: float = 30.0) -> None:
        match = _TARGET_RE.match(target)
        if match is None:
            raise ReproError(
                f"bad HTTP transport target {target!r}; expected "
                "http://host:port or http://host:port/queues/<name>"
            )
        self.base = match.group("base")
        self.queue = match.group("queue") or DEFAULT_QUEUE
        self.timeout_s = timeout_s

    # -- HTTP plumbing ---------------------------------------------------

    def _url(self, suffix: str) -> str:
        return f"{self.base}/queues/{self.queue}{suffix}"

    def _request(
        self,
        method: str,
        suffix: str,
        body: Optional[bytes] = None,
        tolerate: Tuple[int, ...] = (),
    ) -> Tuple[int, bytes]:
        """One round trip; statuses outside 200/``tolerate`` raise.

        4xx/5xx the caller did not ask to tolerate — and transport-level
        failures like a refused connection — are infrastructure errors,
        never silently treated as protocol outcomes.
        """
        request = urllib.request.Request(
            self._url(suffix), data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/octet-stream")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            data = exc.read()
            if exc.code in tolerate:
                return exc.code, data
            raise TransportHTTPError(
                f"{method} {self._url(suffix)} -> {exc.code}: "
                f"{data[:200]!r}"
            ) from None
        except urllib.error.URLError as exc:
            raise TransportHTTPError(
                f"{method} {self._url(suffix)} failed: {exc.reason}"
            ) from None

    def _status(self) -> dict:
        _, data = self._request("GET", "")
        return json.loads(data)

    def _source(self, shard_id: int) -> str:
        return f"shard-{shard_id:04d} ({self._url('')})"

    # -- Transport surface ------------------------------------------------

    def reset(self) -> None:
        self._request("POST", "/reset", body=b"")

    def put_pending(self, shard_id: int, data: bytes) -> None:
        self._request("PUT", f"/shards/{shard_id}", body=data)

    def stop(self) -> None:
        self._request("POST", "/stop", body=b"")

    def stop_requested(self) -> bool:
        return bool(self._status()["stop"])

    def pending_ids(self) -> List[int]:
        return [int(sid) for sid in self._status()["pending"]]

    def done_ids(self) -> List[int]:
        return [int(sid) for sid in self._status()["done"]]

    def claims(self) -> List[Tuple[int, str, str]]:
        return [
            (int(sid), str(worker), f"{int(sid)}@{worker}")
            for sid, worker in self._status()["claims"]
        ]

    def claim(self, shard_id: int, worker_id: str) -> Optional[Claim]:
        status, data = self._request(
            "POST", f"/shards/{shard_id}/claim?worker={worker_id}", body=b"",
            tolerate=(409,),
        )
        if status == 409:
            return None  # another worker won the conditional UPDATE
        token = f"{shard_id}@{worker_id}"
        try:
            payload = decode_wire(data, self._source(shard_id))
        except WireFormatError:
            # Skew: hand the shard back for a compatible worker, then fail
            # loud — this process must not execute a schema it can't read.
            self.requeue(token)
            raise
        if payload is None:
            # Corrupt in transit/storage: drop the shard entirely so the
            # coordinator re-enqueues it from its in-memory copy.
            self._request(
                "POST", f"/shards/{shard_id}/abandon?worker={worker_id}",
                body=b"", tolerate=(409,),
            )
            return None
        return Claim(shard=payload, token=token)

    def complete(self, claim: Claim, result: Any) -> None:
        shard_id, _ = _parse_token(claim.token)
        self._request(
            "PUT", f"/shards/{shard_id}/result", body=encode_wire(result)
        )

    def requeue(self, token: str) -> bool:
        shard_id, worker_id = _parse_token(token)
        status, _ = self._request(
            "POST", f"/shards/{shard_id}/requeue?worker={worker_id}", body=b"",
            tolerate=(409,),
        )
        return status == 200

    def put_result(self, shard_id: int, data: bytes) -> None:
        self._request("PUT", f"/shards/{shard_id}/result", body=data)

    def load_result(self, shard_id: int) -> Optional[Any]:
        status, data = self._request(
            "GET", f"/shards/{shard_id}/result", tolerate=(404,)
        )
        if status == 404:
            return None
        return decode_wire(data, self._source(shard_id))

    def result_size(self, shard_id: int) -> int:
        status, data = self._request(
            "GET", f"/shards/{shard_id}/result", tolerate=(404,)
        )
        return len(data) if status == 200 else 0

    def discard_done(self, shard_id: int) -> None:
        self._request("DELETE", f"/shards/{shard_id}/result")

    def beat(self, worker_id: str) -> None:
        self._request("POST", f"/workers/{worker_id}/beat", body=b"")

    def heartbeat_mtime(self, worker_id: str) -> Optional[float]:
        status, data = self._request(
            "GET", f"/workers/{worker_id}", tolerate=(404,)
        )
        if status == 404:
            return None
        return float(json.loads(data)["beats"])

    def worker_target(self) -> str:
        return f"{self.base}/queues/{self.queue}"

    def describe(self) -> str:
        return f"http transport ({self.worker_target()})"
