"""PrintSession: assemble the full stack, print, and capture.

One session owns an entire simulated bench: kernel, harness, plant, RAMPS,
firmware, the OFFRAMPS board with its monitoring modules, optionally a
Trojan, optionally a signal tracer, and a pulse capture. ``run()`` executes
the print to completion (or kill/timeout), flushes the final UART
transaction, and returns a :class:`SessionResult` with everything the
experiments score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.board import OfframpsBoard
from repro.core.capture import PulseCapture
from repro.core.fpga import FpgaFabric
from repro.core.modules.axis_tracker import AxisTracker
from repro.core.modules.homing_detect import HomingDetector
from repro.core.modules.trojan_ctrl import TrojanControl
from repro.core.modules.uart_export import UartExporter
from repro.core.trojans.base import Trojan, TrojanContext
from repro.electronics.harness import SignalHarness
from repro.electronics.pins import AXES
from repro.electronics.ramps import RampsBoard
from repro.electronics.uart import UartBus
from repro.errors import ReproError
from repro.firmware.config import MarlinConfig
from repro.firmware.marlin import MarlinFirmware, PrinterStatus
from repro.firmware.serial_host import SerialHost
from repro.gcode.ast import GcodeProgram
from repro.physics.printer import PlantProfile, PrinterPlant
from repro.sim.kernel import Simulator
from repro.sim.time import MS, S
from repro.sim.trace import Tracer

_CONTROL_SIGNALS = tuple(
    [f"{axis}_{fn}" for axis in AXES for fn in ("STEP", "DIR", "EN")]
    + ["D10_HOTEND", "D8_BED", "D9_FAN"]
)


@dataclass
class SessionResult:
    """Everything observable after one simulated print."""

    status: PrinterStatus
    kill_reason: Optional[str]
    duration_s: float
    events_dispatched: int
    capture: PulseCapture
    plant: PrinterPlant
    firmware: MarlinFirmware
    ramps: RampsBoard
    board: OfframpsBoard
    tracker: AxisTracker
    tracer: Optional[Tracer] = None
    trojan: Optional[Trojan] = None

    @property
    def completed(self) -> bool:
        return self.status is PrinterStatus.DONE

    @property
    def killed(self) -> bool:
        return self.status is PrinterStatus.KILLED

    @property
    def timed_out(self) -> bool:
        return self.status is PrinterStatus.TIMED_OUT

    @property
    def missed_steps(self) -> int:
        return self.ramps.total_missed_steps()

    def final_counts(self) -> Dict[str, int]:
        """Axis-tracker totals at end of print (the 0 %-margin quantities)."""
        return self.tracker.snapshot()


class PrintSession:
    """Builds the bench and runs exactly one print job."""

    def __init__(
        self,
        program: GcodeProgram,
        config: Optional[MarlinConfig] = None,
        plant_profile: Optional[PlantProfile] = None,
        trojan: Optional[Trojan] = None,
        trojan_seed: int = 0,
        uart_period_ms: int = 100,
        trace_signals: bool = False,
        use_host_protocol: bool = False,
        fast_path: bool = False,
        wire_traces_only: bool = False,
    ) -> None:
        if wire_traces_only and trojan is not None:
            raise ReproError("wire_traces_only replay cannot host a Trojan")
        self.program = program
        self.sim = Simulator()
        self.harness = SignalHarness(self.sim)
        self.plant = PrinterPlant(self.sim, plant_profile)
        self.ramps = RampsBoard(self.sim, self.harness, self.plant)
        self.firmware = MarlinFirmware(
            self.sim, config or MarlinConfig(), self.harness, fast_path=fast_path
        )
        self.wire_traces_only = wire_traces_only

        # The OFFRAMPS platform and its monitoring modules.
        self.fabric = FpgaFabric(self.sim)
        self.board = OfframpsBoard(self.sim, self.harness, self.fabric)
        self.homing_detector = HomingDetector(self.harness)
        self.tracker = AxisTracker(self.harness)
        self.uart_bus = UartBus()
        # Replay mode consumes only the wire traces: skip the periodic UART
        # export (and with it the tracker arm/first-step sync) so the event
        # queue carries nothing but motion — the capture stays empty.
        self.exporter: Optional[UartExporter] = None
        if not wire_traces_only:
            self.exporter = UartExporter(
                self.sim,
                self.tracker,
                self.homing_detector,
                bus=self.uart_bus,
                period_ms=uart_period_ms,
            )
        self.capture = PulseCapture(self.uart_bus)

        self.trojan_control = TrojanControl(
            TrojanContext(
                sim=self.sim,
                board=self.board,
                harness=self.harness,
                homing=self.homing_detector,
                seed=trojan_seed,
            )
        )
        self.trojan = trojan
        if trojan is not None:
            self.trojan_control.load(trojan)
            self.trojan_control.enable(trojan.trojan_id)

        self.tracer: Optional[Tracer] = None
        if trace_signals or wire_traces_only:
            self.tracer = Tracer()
            self.tracer.watch(self.harness.upstream(name) for name in _CONTROL_SIGNALS)

        self._use_host_protocol = use_host_protocol
        self._ran = False

    # ------------------------------------------------------------------
    def run(
        self,
        timeout_s: float = 900.0,
        grace_s: float = 1.0,
    ) -> SessionResult:
        """Execute the print; returns after teardown.

        ``grace_s`` keeps the simulation (and physics!) running after the
        firmware finishes or dies — long enough for the final UART
        transaction to flush, and for destructive Trojans to finish wrecking
        the hardware after the firmware's kill() (T7's whole point).
        """
        if self._ran:
            raise ReproError("a PrintSession can only run once")
        self._ran = True

        if not self.wire_traces_only:
            self.plant.start_sampling()
        if self._use_host_protocol:
            self.firmware.attach_source(SerialHost(self.program))
        else:
            self.firmware.start_print(self.program)

        deadline = int(timeout_s * S)
        chunk = 500 * MS
        while not self.firmware.finished and self.sim.now < deadline:
            self.sim.run_for(chunk)
        if not self.firmware.finished:
            # Surface the deadline distinctly: a print still PRINTING here
            # has exhausted its budget, not completed or been killed.
            self.firmware.timeout(f"print timed out after {timeout_s:g}s")
        self.sim.run_for(int(grace_s * S))

        duration_s = self.sim.now / 1e9
        # Teardown: stop periodic activity so the event queue can drain.
        if self.exporter is not None:
            self.exporter.stop()
        self.firmware.power_off()
        self.ramps.shutdown()
        self.plant.stop_sampling()
        if self.trojan is not None:
            self.trojan_control.disable(self.trojan.trojan_id)

        return SessionResult(
            status=self.firmware.status,
            kill_reason=self.firmware.kill_reason,
            duration_s=duration_s,
            events_dispatched=self.sim.events_dispatched,
            capture=self.capture,
            plant=self.plant,
            firmware=self.firmware,
            ramps=self.ramps,
            board=self.board,
            tracker=self.tracker,
            tracer=self.tracer,
            trojan=self.trojan,
        )


def run_print(
    program: GcodeProgram,
    noise_sigma: float = 0.0,
    noise_seed: int = 0,
    trojan: Optional[Trojan] = None,
    trojan_seed: int = 0,
    uart_period_ms: int = 100,
    grace_s: float = 1.0,
    trace_signals: bool = False,
    use_host_protocol: bool = False,
    config: Optional[MarlinConfig] = None,
    fast_path: bool = False,
    wire_traces_only: bool = False,
) -> SessionResult:
    """Convenience wrapper: one call, one printed part, one result."""
    base_config = config or MarlinConfig()
    if noise_sigma > 0:
        base_config = base_config.with_noise(noise_sigma, noise_seed)
    session = PrintSession(
        program,
        config=base_config,
        trojan=trojan,
        trojan_seed=trojan_seed,
        uart_period_ms=uart_period_ms,
        trace_signals=trace_signals,
        use_host_protocol=use_host_protocol,
        fast_path=fast_path,
        wire_traces_only=wire_traces_only,
    )
    return session.run(grace_s=grace_s)
