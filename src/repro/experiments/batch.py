"""Batched, parallel experiment execution.

Every paper artifact (Table I, Table II, Figure 4, drift, ablation,
overhead) is a set of independent simulated prints followed by scoring.
This module turns that shape into infrastructure:

* :class:`SessionSpec` — a picklable, content-addressable description of
  one print session (program, config, noise, Trojan, routing, budgets);
* :class:`SessionSummary` — the picklable reduction of a
  :class:`~repro.experiments.runner.SessionResult` carrying everything the
  scorers consume (capture, deposition trace, final counts, thermal peaks,
  Trojan counters, signal traces);
* :class:`GoldenPrintCache` — a content-keyed cache so the same golden
  print is simulated once and shared by every comparison that needs it;
* :class:`BatchRunner` — fans a list of specs across worker processes
  (``concurrent.futures.ProcessPoolExecutor``), deduplicating identical
  specs within a batch. With ``workers=1`` everything runs serially
  in-process through the very same execution path, so results are
  bit-identical between the serial and parallel modes.

Future scenario sweeps (more trojans, more parts, more seeds) should
declare their sessions as specs and submit them here rather than calling
:func:`~repro.experiments.runner.run_print` in a loop.
"""

from __future__ import annotations

import copy
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.capture import PulseCapture, Transaction
from repro.core.trojans import make_trojan
from repro.experiments.runner import PrintSession, SessionResult
from repro.firmware.config import MarlinConfig
from repro.firmware.marlin import PrinterStatus
from repro.gcode.ast import GcodeProgram
from repro.gcode.writer import write_line
from repro.physics.deposition import PartTrace
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class SessionSpec:
    """A self-contained, picklable description of one print session.

    Trojans are carried as ``(trojan_id, trojan_params)`` rather than live
    objects — the worker constructs the Trojan via
    :func:`~repro.core.trojans.make_trojan`, since an attached Trojan holds
    simulator references that cannot cross a process boundary.
    """

    program: GcodeProgram
    config: Optional[MarlinConfig] = None
    noise_sigma: float = 0.0
    noise_seed: int = 0
    trojan_id: Optional[str] = None
    trojan_params: Mapping[str, Any] = field(default_factory=dict)
    trojan_seed: int = 0
    uart_period_ms: int = 100
    grace_s: float = 1.0
    timeout_s: float = 900.0
    trace_signals: bool = False
    use_host_protocol: bool = False
    route_all_through_fpga: bool = False
    label: str = ""
    cacheable: bool = False

    def content_key(self) -> str:
        """Stable digest of everything that determines the session outcome.

        ``label`` and ``cacheable`` are presentation/policy, not physics, so
        they are deliberately excluded: two specs that print the same thing
        share a key no matter how their experiments name them.
        """
        digest = hashlib.sha256()
        for line in map(write_line, self.program):
            digest.update(line.encode())
            digest.update(b"\n")
        digest.update(repr(self.config).encode())
        params = sorted((str(k), repr(v)) for k, v in self.trojan_params.items())
        digest.update(
            repr(
                (
                    self.noise_sigma,
                    self.noise_seed,
                    self.trojan_id,
                    params,
                    self.trojan_seed,
                    self.uart_period_ms,
                    self.grace_s,
                    self.timeout_s,
                    self.trace_signals,
                    self.use_host_protocol,
                    self.route_all_through_fpga,
                )
            ).encode()
        )
        return digest.hexdigest()


@dataclass
class SessionSummary:
    """The picklable reduction of a :class:`SessionResult`.

    Carries every quantity the experiment scorers read, with live
    simulator-bound objects (firmware, plant, boards) reduced to their
    observable outcomes.
    """

    label: str
    spec_key: str
    status: PrinterStatus
    kill_reason: Optional[str]
    timed_out: bool
    duration_s: float
    events_dispatched: int
    transactions: List[Transaction]
    final_counts: Dict[str, int]
    missed_steps: int
    trace: PartTrace
    mean_fan_duty: float
    hotend_peak_c: float
    hotend_damaged: bool
    bed_peak_c: float
    bed_damaged: bool
    trojan_id: Optional[str] = None
    trojan_category: Optional[str] = None
    trojan_scenario: Optional[str] = None
    trojan_effect: Optional[str] = None
    trojan_stats: Dict[str, float] = field(default_factory=dict)
    tracer: Optional[Tracer] = None

    @property
    def completed(self) -> bool:
        return self.status is PrinterStatus.DONE

    @property
    def killed(self) -> bool:
        return self.status is PrinterStatus.KILLED

    @property
    def capture(self) -> PulseCapture:
        """The transaction stream rebuilt as a :class:`PulseCapture`."""
        cached = getattr(self, "_capture", None)
        if cached is None:
            cached = PulseCapture()
            for transaction in self.transactions:
                cached.append(transaction)
            self._capture = cached
        return cached

    def relabeled(self, label: str) -> "SessionSummary":
        """A shallow copy under another label (data is shared, read-only)."""
        clone = copy.copy(self)
        clone.label = label
        return clone


def _trojan_counters(trojan) -> Dict[str, float]:
    """Harvest a Trojan's public numeric counters (shifts_injected, ...).

    Collects both instance attributes and numeric class properties (e.g.
    T4's ``layer_events_seen``), so scorers can read every counter from the
    summary without the live object.
    """
    counters = {
        name: value
        for name, value in vars(trojan).items()
        if not name.startswith("_") and isinstance(value, (bool, int, float))
    }
    for name in dir(type(trojan)):
        if name.startswith("_") or name in counters:
            continue
        if isinstance(getattr(type(trojan), name), property):
            value = getattr(trojan, name)
            if isinstance(value, (bool, int, float)):
                counters[name] = value
    return counters


def summarize_result(
    result: SessionResult, label: str = "", spec_key: str = ""
) -> SessionSummary:
    """Reduce a live :class:`SessionResult` to its picklable summary."""
    summary = SessionSummary(
        label=label,
        spec_key=spec_key,
        status=result.status,
        kill_reason=result.kill_reason,
        timed_out=result.timed_out,
        duration_s=result.duration_s,
        events_dispatched=result.events_dispatched,
        transactions=list(result.capture.transactions),
        final_counts=result.final_counts(),
        missed_steps=result.missed_steps,
        trace=result.plant.trace,
        mean_fan_duty=result.plant.mean_fan_duty(),
        hotend_peak_c=result.plant.hotend.peak_temp_c,
        hotend_damaged=result.plant.hotend.damaged,
        bed_peak_c=result.plant.bed.peak_temp_c,
        bed_damaged=result.plant.bed.damaged,
        tracer=result.tracer,
    )
    if result.trojan is not None:
        trojan = result.trojan
        summary.trojan_id = trojan.trojan_id
        summary.trojan_category = trojan.category.value
        summary.trojan_scenario = trojan.scenario
        summary.trojan_effect = trojan.effect
        summary.trojan_stats = _trojan_counters(trojan)
    return summary


def execute_spec(spec: SessionSpec) -> SessionResult:
    """Build the bench described by ``spec`` and run it (in this process)."""
    config = spec.config or MarlinConfig()
    if spec.noise_sigma > 0:
        config = config.with_noise(spec.noise_sigma, spec.noise_seed)
    trojan = None
    if spec.trojan_id is not None:
        trojan = make_trojan(spec.trojan_id, **dict(spec.trojan_params))
    session = PrintSession(
        spec.program,
        config=config,
        trojan=trojan,
        trojan_seed=spec.trojan_seed,
        uart_period_ms=spec.uart_period_ms,
        trace_signals=spec.trace_signals,
        use_host_protocol=spec.use_host_protocol,
    )
    if spec.route_all_through_fpga:
        session.board.route_through_fpga(
            name
            for name in session.harness.paths
            if session.harness.path(name).spec.direction.value == "a2r"
        )
    return session.run(timeout_s=spec.timeout_s, grace_s=spec.grace_s)


def _execute_to_summary(spec: SessionSpec) -> SessionSummary:
    """Worker entry point: run one spec, return its summary (picklable)."""
    return summarize_result(
        execute_spec(spec), label=spec.label, spec_key=spec.content_key()
    )


class GoldenPrintCache:
    """Content-keyed store of completed session summaries.

    Keyed by :meth:`SessionSpec.content_key`, so any two experiments that
    print the same program under the same conditions share one simulation.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, SessionSummary] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[SessionSummary]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: str, summary: SessionSummary) -> None:
        self._entries[key] = summary

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_SHARED_CACHE = GoldenPrintCache()

CacheOption = Union[None, bool, GoldenPrintCache]


def shared_cache() -> GoldenPrintCache:
    """The process-wide cache used when callers pass ``cache=True``."""
    return _SHARED_CACHE


def resolve_cache(cache: CacheOption) -> Optional[GoldenPrintCache]:
    """Normalize the user-facing cache option to a cache instance (or None)."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return _SHARED_CACHE
    return cache


class BatchRunner:
    """Execute a batch of :class:`SessionSpec` across worker processes.

    ``workers=1`` (the default) runs everything serially in-process —
    the fallback that keeps results bit-identical and debuggable.
    ``workers=None`` (or ``0``) uses one worker per CPU. Identical specs within a
    batch are computed once regardless of worker count, and specs marked
    ``cacheable`` consult/populate the given :class:`GoldenPrintCache`
    across batches.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: CacheOption = None,
    ) -> None:
        if not workers:  # None or 0: one worker per CPU
            workers = os.cpu_count() or 1
        self.workers = max(1, workers)
        self.cache = resolve_cache(cache)

    def run(self, specs: Sequence[SessionSpec]) -> List[SessionSummary]:
        """Run all specs; returns summaries in the order specs were given."""
        keys = [spec.content_key() for spec in specs]
        results: Dict[str, SessionSummary] = {}

        # A key is cache-eligible if ANY spec carrying it opts in, so the
        # outcome doesn't depend on which duplicate happens to come first.
        cacheable_keys = {
            key for key, spec in zip(keys, specs) if spec.cacheable
        }

        pending: List[Tuple[str, SessionSpec]] = []
        seen = set()
        for key, spec in zip(keys, specs):
            if key in seen:
                continue
            seen.add(key)
            if self.cache is not None and key in cacheable_keys:
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    continue
            pending.append((key, spec))

        if self.workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            ) as pool:
                summaries = list(
                    pool.map(_execute_to_summary, [spec for _, spec in pending])
                )
        else:
            summaries = [_execute_to_summary(spec) for _, spec in pending]

        for (key, spec), summary in zip(pending, summaries):
            results[key] = summary
            if self.cache is not None and key in cacheable_keys:
                self.cache.put(key, summary)

        out: List[SessionSummary] = []
        for key, spec in zip(keys, specs):
            summary = results[key]
            if summary.label != spec.label:
                # A dedup/cache hit served this slot under another label;
                # report it under the label this spec asked for.
                summary = summary.relabeled(spec.label)
            out.append(summary)
        return out


def run_sessions(
    specs: Sequence[SessionSpec],
    workers: Optional[int] = 1,
    cache: CacheOption = None,
) -> List[SessionSummary]:
    """Convenience wrapper: one batch through a fresh :class:`BatchRunner`."""
    return BatchRunner(workers=workers, cache=cache).run(specs)
