"""Batched, parallel experiment execution.

Every paper artifact (Table I, Table II, Figure 4, drift, ablation,
overhead) is a set of independent simulated prints followed by scoring.
This module turns that shape into infrastructure:

* :class:`SessionSpec` — a picklable, content-addressable description of
  one print session (program, config, noise, Trojan, routing, budgets);
* :class:`SessionSummary` — the picklable reduction of a
  :class:`~repro.experiments.runner.SessionResult` carrying everything the
  scorers consume (capture, deposition trace, final counts, thermal peaks,
  Trojan counters, signal traces);
* :class:`SessionCache` — a content-keyed cache of completed session
  summaries (golden *and* suspect prints: the key covers the G-code, the
  Trojan id/config/seed, the firmware config, and every sim parameter), so
  any session already simulated anywhere is never simulated again;
  optionally persistent on disk (``directory=...`` / ``REPRO_CACHE_DIR``),
  so sessions survive across processes and runs and repeat sweeps become
  zero-resimulation no-ops (``GoldenPrintCache`` remains as an alias from
  the era when only golden prints were cached);
* :class:`BatchRunner` — fans a list of specs across worker processes
  (``concurrent.futures.ProcessPoolExecutor``), deduplicating identical
  specs within a batch and submitting longest-expected-first (see
  :meth:`SessionSpec.estimated_cost`) so one long T7-style session cannot
  straggle the whole batch. With ``workers=1`` everything runs serially
  in-process through the very same execution path, so results are
  bit-identical between the serial and parallel modes.

Scenario sweeps (:mod:`repro.experiments.scenario`) compile their grids
down to specs and submit them here rather than calling
:func:`~repro.experiments.runner.run_print` in a loop.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.capture import PulseCapture, Transaction
from repro.core.trojans import make_trojan
from repro.errors import ReproError
from repro.experiments.runner import PrintSession, SessionResult
from repro.firmware.config import MarlinConfig
from repro.firmware.marlin import PrinterStatus
from repro.gcode.ast import GcodeProgram
from repro.gcode.writer import write_line
from repro.physics.deposition import PartTrace
from repro.sim.trace import Tracer
from repro.util import atomic_pickle


@dataclass(frozen=True)
class SessionSpec:
    """A self-contained, picklable description of one print session.

    Trojans are carried as ``(trojan_id, trojan_params)`` rather than live
    objects — the worker constructs the Trojan via
    :func:`~repro.core.trojans.make_trojan`, since an attached Trojan holds
    simulator references that cannot cross a process boundary.
    """

    program: GcodeProgram
    config: Optional[MarlinConfig] = None
    noise_sigma: float = 0.0
    noise_seed: int = 0
    trojan_id: Optional[str] = None
    trojan_params: Mapping[str, Any] = field(default_factory=dict)
    trojan_seed: int = 0
    uart_period_ms: int = 100
    grace_s: float = 1.0
    timeout_s: float = 900.0
    trace_signals: bool = False
    use_host_protocol: bool = False
    route_all_through_fpga: bool = False
    fast_path: bool = False
    wire_traces_only: bool = False
    label: str = ""
    cacheable: bool = False

    def estimated_cost(self) -> float:
        """Heuristic wall-clock proxy used to schedule longest-first.

        Simulation cost grows with the program length, with the UART event
        rate, and — dominating for T7-style destructive sessions — with the
        post-kill grace window the plant keeps integrating through. The
        absolute scale is meaningless; only the ordering matters.
        """
        uart_factor = max(1.0, 100.0 / max(1, self.uart_period_ms))
        return len(self.program) * uart_factor + self.grace_s * 40.0

    def content_key(self) -> str:
        """Stable digest of everything that determines the session outcome.

        ``label`` and ``cacheable`` are presentation/policy, not physics, so
        they are deliberately excluded: two specs that print the same thing
        share a key no matter how their experiments name them.

        Memoized per instance (the fields are frozen, so the digest cannot
        change): sweeps hash each spec's whole program once, not once per
        layer that asks for the key.
        """
        memo = self.__dict__.get("_content_key")
        if memo is not None:
            return memo
        digest = hashlib.sha256()
        for line in map(write_line, self.program):
            digest.update(line.encode())
            digest.update(b"\n")
        digest.update(repr(self.config).encode())
        params = sorted((str(k), repr(v)) for k, v in self.trojan_params.items())
        digest.update(
            repr(
                (
                    self.noise_sigma,
                    self.noise_seed,
                    self.trojan_id,
                    params,
                    self.trojan_seed,
                    self.uart_period_ms,
                    self.grace_s,
                    self.timeout_s,
                    self.trace_signals,
                    self.use_host_protocol,
                    self.route_all_through_fpga,
                    self.fast_path,
                    self.wire_traces_only,
                )
            ).encode()
        )
        key = digest.hexdigest()
        object.__setattr__(self, "_content_key", key)
        return key


@dataclass
class SessionSummary:
    """The picklable reduction of a :class:`SessionResult`.

    Carries every quantity the experiment scorers read, with live
    simulator-bound objects (firmware, plant, boards) reduced to their
    observable outcomes.
    """

    label: str
    spec_key: str
    status: PrinterStatus
    kill_reason: Optional[str]
    timed_out: bool
    duration_s: float
    events_dispatched: int
    transactions: List[Transaction]
    final_counts: Dict[str, int]
    missed_steps: int
    trace: PartTrace
    mean_fan_duty: float
    hotend_peak_c: float
    hotend_damaged: bool
    bed_peak_c: float
    bed_damaged: bool
    trojan_id: Optional[str] = None
    trojan_category: Optional[str] = None
    trojan_scenario: Optional[str] = None
    trojan_effect: Optional[str] = None
    trojan_stats: Dict[str, float] = field(default_factory=dict)
    tracer: Optional[Tracer] = None
    fan_profile: List[Tuple[int, float]] = field(default_factory=list)
    end_time_ns: int = 0
    error: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.status is PrinterStatus.DONE

    @property
    def killed(self) -> bool:
        return self.status is PrinterStatus.KILLED

    @property
    def failed(self) -> bool:
        """True when the session's *execution* raised (see :func:`failure_summary`)."""
        return self.status is PrinterStatus.FAILED

    @property
    def capture(self) -> PulseCapture:
        """The transaction stream rebuilt as a :class:`PulseCapture`."""
        cached = getattr(self, "_capture", None)
        if cached is None:
            cached = PulseCapture()
            for transaction in self.transactions:
                cached.append(transaction)
            self._capture = cached
        return cached

    def relabeled(self, label: str) -> "SessionSummary":
        """A shallow copy under another label (data is shared, read-only)."""
        clone = copy.copy(self)
        clone.label = label
        return clone

    def __getstate__(self):
        """Serialize without the ``_capture`` memo.

        ``capture`` is rebuilt on demand from ``transactions``; pickling the
        memo would ship every transaction twice across every process/host/
        disk boundary a summary crosses.
        """
        state = dict(self.__dict__)
        state.pop("_capture", None)
        return state


def _trojan_counters(trojan) -> Dict[str, float]:
    """Harvest a Trojan's public numeric counters (shifts_injected, ...).

    Collects both instance attributes and numeric class properties (e.g.
    T4's ``layer_events_seen``), so scorers can read every counter from the
    summary without the live object.
    """
    counters = {
        name: value
        for name, value in vars(trojan).items()
        if not name.startswith("_") and isinstance(value, (bool, int, float))
    }
    for name in dir(type(trojan)):
        if name.startswith("_") or name in counters:
            continue
        if isinstance(getattr(type(trojan), name), property):
            value = getattr(trojan, name)
            if isinstance(value, (bool, int, float)):
                counters[name] = value
    return counters


def summarize_result(
    result: SessionResult, label: str = "", spec_key: str = ""
) -> SessionSummary:
    """Reduce a live :class:`SessionResult` to its picklable summary."""
    summary = SessionSummary(
        label=label,
        spec_key=spec_key,
        status=result.status,
        kill_reason=result.kill_reason,
        timed_out=result.timed_out,
        duration_s=result.duration_s,
        events_dispatched=result.events_dispatched,
        transactions=list(result.capture.transactions),
        final_counts=result.final_counts(),
        missed_steps=result.missed_steps,
        trace=result.plant.trace,
        mean_fan_duty=result.plant.mean_fan_duty(),
        hotend_peak_c=result.plant.hotend.peak_temp_c,
        hotend_damaged=result.plant.hotend.damaged,
        bed_peak_c=result.plant.bed.peak_temp_c,
        bed_damaged=result.plant.bed.damaged,
        tracer=result.tracer,
        fan_profile=list(result.plant.fan_profile),
        end_time_ns=result.plant.sim.now,
    )
    if result.trojan is not None:
        trojan = result.trojan
        summary.trojan_id = trojan.trojan_id
        summary.trojan_category = trojan.category.value
        summary.trojan_scenario = trojan.scenario
        summary.trojan_effect = trojan.effect
        summary.trojan_stats = _trojan_counters(trojan)
    return summary


def execute_spec(spec: SessionSpec) -> SessionResult:
    """Build the bench described by ``spec`` and run it (in this process)."""
    config = spec.config or MarlinConfig()
    if spec.noise_sigma > 0:
        config = config.with_noise(spec.noise_sigma, spec.noise_seed)
    trojan = None
    if spec.trojan_id is not None:
        trojan = make_trojan(spec.trojan_id, **dict(spec.trojan_params))
    session = PrintSession(
        spec.program,
        config=config,
        trojan=trojan,
        trojan_seed=spec.trojan_seed,
        uart_period_ms=spec.uart_period_ms,
        trace_signals=spec.trace_signals,
        use_host_protocol=spec.use_host_protocol,
        fast_path=spec.fast_path,
        wire_traces_only=spec.wire_traces_only,
    )
    if spec.route_all_through_fpga:
        session.board.route_through_fpga(
            name
            for name in session.harness.paths
            if session.harness.path(name).spec.direction.value == "a2r"
        )
    return session.run(timeout_s=spec.timeout_s, grace_s=spec.grace_s)


def _execute_to_summary(spec: SessionSpec) -> SessionSummary:
    """Worker entry point: run one spec, return its summary (picklable)."""
    return summarize_result(
        execute_spec(spec), label=spec.label, spec_key=spec.content_key()
    )


def failure_summary(spec: SessionSpec, error: BaseException) -> SessionSummary:
    """A FAILED-status summary standing in for a session that raised.

    Carries the spec's label/key and the exception text, so a crashing
    session surfaces as one reportable row instead of aborting its whole
    batch and discarding every completed sibling.
    """
    return SessionSummary(
        label=spec.label,
        spec_key=spec.content_key(),
        status=PrinterStatus.FAILED,
        kill_reason=None,
        timed_out=False,
        duration_s=0.0,
        events_dispatched=0,
        transactions=[],
        final_counts={},
        missed_steps=0,
        trace=PartTrace(),
        mean_fan_duty=0.0,
        hotend_peak_c=0.0,
        hotend_damaged=False,
        bed_peak_c=0.0,
        bed_damaged=False,
        trojan_id=spec.trojan_id,
        error=f"{type(error).__name__}: {error}",
    )


CACHE_DIR_ENV = "REPRO_CACHE_DIR"
"""Environment variable that makes the shared cache persistent on disk."""

_CACHE_FORMAT = 3
"""On-disk entry format version; bumped when SessionSummary changes shape.

Format history: 1 = golden-print-only cache; 2 = SessionSummary grew
``fan_profile``/``end_time_ns`` (duration-aware fan detection) and suspect
sessions became cacheable; 3 = SessionSummary grew ``error`` (failure-
isolated batches) and stopped serializing the ``_capture`` memo. A
mismatched version is a miss, so stale entries degrade to re-simulation,
never to a wrong result.
"""


def cache_schema_version() -> int:
    """The on-disk entry format version (for external cache keys, e.g. CI)."""
    return _CACHE_FORMAT


class SessionCache:
    """Content-keyed store of completed session summaries — golden or suspect.

    Keyed by :meth:`SessionSpec.content_key`, so any two experiments that
    print the same program under the same conditions (same Trojan config and
    seed, same firmware config, same sim parameters) share one simulation.

    With ``directory`` set the cache is persistent: every ``put`` also
    pickles the summary to ``<directory>/<key>.summary.pkl`` (written
    atomically via rename, so a crashed writer never leaves a torn entry
    under the final name), and a miss in memory falls through to disk —
    completed sessions survive across processes and runs, which is what
    makes repeat sweeps incremental (only never-seen scenarios simulate).
    A corrupted, truncated, wrong-format, or wrong-key on-disk entry is
    treated as a miss, so the worst failure mode is re-simulation, never a
    wrong result.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._entries: Dict[str, SessionSummary] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.summary.pkl")

    def _load_from_disk(self, key: str) -> Optional[SessionSummary]:
        try:
            with open(self._path(key), "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn write, truncation, unpicklable garbage, stale classes —
            # all degrade to a miss (and a fresh simulation).
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != _CACHE_FORMAT or payload.get("key") != key:
            return None
        summary = payload.get("summary")
        return summary if isinstance(summary, SessionSummary) else None

    def get(self, key: str) -> Optional[SessionSummary]:
        entry = self._entries.get(key)
        if entry is None and self.directory is not None:
            entry = self._load_from_disk(key)
            if entry is not None:
                self._entries[key] = entry
                self.disk_hits += 1
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: str, summary: SessionSummary, persist: bool = True) -> None:
        """Store an entry; ``persist=False`` keeps it in memory only.

        Callers that *know* the entry is already on disk (a distribution
        coordinator merging summaries its workers persisted) pass
        ``persist=False`` to avoid rewriting every entry a second time.
        """
        self._entries[key] = summary
        if persist and self.directory is not None:
            self._store_to_disk(key, summary)

    def has_on_disk(self, key: str) -> bool:
        """True when a file for ``key`` exists (contents not validated)."""
        return self.directory is not None and os.path.exists(self._path(key))

    def probe(self, key: str) -> bool:
        """Cheap presence check: no loading, no hit/miss accounting.

        True when the key is in memory or a file for it exists on disk.
        Because the file's contents are not validated, a probe can say
        True for an entry a subsequent :meth:`get` rejects as corrupt —
        callers that act on a probe must handle that ``get`` miss. The
        distribution coordinator uses this to decide *where* a session
        will be scored without deserializing summaries it would never
        read.
        """
        return key in self._entries or self.has_on_disk(key)

    def _store_to_disk(self, key: str, summary: SessionSummary) -> None:
        # A failed disk write (full/read-only filesystem) must not discard a
        # completed batch: the in-memory entry is already stored, so degrade
        # to a warning and lose only cross-run persistence for this entry.
        payload = {"format": _CACHE_FORMAT, "key": key, "summary": summary}
        try:
            atomic_pickle(self._path(key), payload, prefix=f".{key[:16]}.")
        except (OSError, pickle.PickleError) as exc:
            warnings.warn(
                f"session cache entry {key[:16]}… not persisted to "
                f"{self.directory}: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )

    def clear(self) -> None:
        """Drop the in-memory entries and counters (disk files are kept)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def stats(self) -> Dict[str, int]:
        """The hit/miss counters as one dict (for reports and benchmarks)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "entries": len(self._entries),
        }


GoldenPrintCache = SessionCache
"""Backward-compatible alias from when only golden prints were cached."""


_SHARED_CACHE: Optional[SessionCache] = None

CacheOption = Union[None, bool, str, SessionCache]


def shared_cache() -> SessionCache:
    """The process-wide cache used when callers pass ``cache=True``.

    Created lazily; honors :data:`CACHE_DIR_ENV` (``REPRO_CACHE_DIR``) at
    first use, so setting the variable before any experiment runs makes
    every default-cached run persistent.
    """
    global _SHARED_CACHE
    if _SHARED_CACHE is None:
        _SHARED_CACHE = SessionCache(
            directory=os.environ.get(CACHE_DIR_ENV) or None
        )
    return _SHARED_CACHE


def resolve_cache(cache: CacheOption) -> Optional[SessionCache]:
    """Normalize the user-facing cache option to a cache instance (or None).

    ``True`` resolves to the process-wide shared cache, a string to a
    persistent cache rooted at that directory, an instance to itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return shared_cache()
    if isinstance(cache, str):
        return SessionCache(directory=cache)
    return cache


class BatchRunner:
    """Execute a batch of :class:`SessionSpec` across worker processes.

    ``workers=1`` (the default) runs everything serially in-process —
    the fallback that keeps results bit-identical and debuggable.
    ``workers=None`` (or ``0``) uses one worker per CPU. Identical specs within a
    batch are computed once regardless of worker count, and specs marked
    ``cacheable`` consult/populate the given :class:`SessionCache`
    across batches.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: CacheOption = None,
    ) -> None:
        if not workers:  # None or 0: one worker per CPU
            workers = os.cpu_count() or 1
        self.workers = max(1, workers)
        self.cache = resolve_cache(cache)

    def run(
        self,
        specs: Sequence[SessionSpec],
        progress: Optional[Callable[[SessionSummary], None]] = None,
    ) -> List[SessionSummary]:
        """Run all specs; returns summaries in the order specs were given.

        ``progress`` is invoked from the *calling* process once per
        completed session (cache hits excluded — they cost nothing and
        prove nothing). Distribution workers hook their heartbeat here, so
        forward progress stays coordinator-visible even when the whole
        shard runs as one parallel batch: each completed future ticks the
        heartbeat, exactly like the old between-sessions beat of the serial
        path. A raising ``progress`` callback is deliberately not shielded
        — it is the caller's own code.
        """
        keys = [spec.content_key() for spec in specs]
        results: Dict[str, SessionSummary] = {}

        # A key is cache-eligible if ANY spec carrying it opts in, so the
        # outcome doesn't depend on which duplicate happens to come first.
        cacheable_keys = {
            key for key, spec in zip(keys, specs) if spec.cacheable
        }

        pending: List[Tuple[str, SessionSpec]] = []
        seen = set()
        for key, spec in zip(keys, specs):
            if key in seen:
                continue
            seen.add(key)
            if self.cache is not None and key in cacheable_keys:
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    continue
            pending.append((key, spec))

        if self.workers > 1 and len(pending) > 1:
            # Cost-aware scheduling: submit longest-expected-first, one spec
            # per task (chunk size 1). A T7-style long session therefore
            # starts immediately instead of landing last in some worker's
            # pre-assigned chunk and straggling the whole batch.
            ordered = sorted(
                pending, key=lambda item: item[1].estimated_cost(), reverse=True
            )
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            ) as pool:
                futures = {
                    pool.submit(_execute_to_summary, spec): (key, spec)
                    for key, spec in ordered
                }
                executed: Dict[str, SessionSummary] = {}
                for future in as_completed(futures):
                    key, spec = futures[future]
                    try:
                        executed[key] = future.result()
                    except Exception as exc:
                        # One raising session (or a broken pool) must not
                        # abandon the siblings that already completed.
                        executed[key] = failure_summary(spec, exc)
                    if progress is not None:
                        progress(executed[key])
            summaries = [executed[key] for key, _ in pending]
        else:
            summaries = []
            for _key, spec in pending:
                try:
                    summaries.append(_execute_to_summary(spec))
                except Exception as exc:
                    summaries.append(failure_summary(spec, exc))
                if progress is not None:
                    progress(summaries[-1])

        for (key, _spec), summary in zip(pending, summaries):
            results[key] = summary
            # Failures are returned but never cached: the condition that
            # crashed this session may be transient (broken pool, OOM), and
            # a cached failure would otherwise shadow a future clean run.
            if (
                self.cache is not None
                and key in cacheable_keys
                and not summary.failed
            ):
                self.cache.put(key, summary)

        out: List[SessionSummary] = []
        for key, spec in zip(keys, specs):
            summary = results[key]
            if summary.label != spec.label:
                # A dedup/cache hit served this slot under another label;
                # report it under the label this spec asked for.
                summary = summary.relabeled(spec.label)
            out.append(summary)
        return out


def run_sessions(
    specs: Sequence[SessionSpec],
    workers: Optional[int] = 1,
    cache: CacheOption = None,
    strict: bool = False,
    progress: Optional[Callable[[SessionSummary], None]] = None,
) -> List[SessionSummary]:
    """Convenience wrapper: one batch through a fresh :class:`BatchRunner`.

    ``strict=True`` raises :class:`ReproError` if any session FAILED —
    *after* the batch completed and the survivors were cached. Callers that
    compute directly over summary fields (the drift/overhead artifacts)
    use it so a crashed session fails their artifact loudly instead of
    silently contributing empty data; sweep-style callers score FAILED
    summaries as reportable rows instead.

    ``progress`` is forwarded to :meth:`BatchRunner.run`: one call per
    *completed* session (cache hits excluded). Distribution workers
    heartbeat through it; the service layer ticks its job-store progress
    counters through it.
    """
    summaries = BatchRunner(workers=workers, cache=cache).run(specs, progress=progress)
    if strict:
        failures = [s for s in summaries if s.failed]
        if failures:
            details = "; ".join(
                f"{s.label or s.spec_key[:12]}: {s.error}" for s in failures[:5]
            )
            raise ReproError(
                f"{len(failures)} of {len(summaries)} sessions failed: {details}"
            )
    return summaries
