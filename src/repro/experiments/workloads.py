"""Standard workloads: the parts and profiles the experiments print.

The paper prints small calibration parts (photographed on 1/4-inch graph
paper). Three sizes are provided: ``tiny`` for fast unit/ablation runs,
``standard`` for the detection experiments, and a slightly larger part for
Table I so slow-trigger Trojans (T1's 10-second period, T8's outage cycle)
fire several times within the print.
"""

from __future__ import annotations

from repro.gcode.ast import GcodeProgram
from repro.gcode.slicer import Box, PrintProfile, SliceResult, Slicer
from repro.gcode.slicer.shapes import Shape


def detection_profile() -> PrintProfile:
    """The profile used for all reproduction experiments (PLA draft)."""
    return PrintProfile(
        layer_height_mm=0.3,
        first_layer_height_mm=0.3,
        perimeter_count=1,
        infill_spacing_mm=2.5,
        print_speed_mm_s=45.0,
        first_layer_speed_mm_s=20.0,
        travel_speed_mm_s=120.0,
        hotend_temp_c=210.0,
        bed_temp_c=60.0,
    )


def tiny_part() -> Shape:
    """A 10x10x0.9 mm coupon: three layers, prints in ~15 simulated seconds."""
    return Box(width_mm=10.0, depth_mm=10.0, height=0.9, center=(100.0, 100.0), name="tiny_box")


def standard_part() -> Shape:
    """The 16x16x1.5 mm calibration square used for detection experiments."""
    return Box(width_mm=16.0, depth_mm=16.0, height=1.5, center=(100.0, 100.0), name="cal_square")


def table1_part() -> Shape:
    """A 20x20x1.8 mm part: long enough for periodic Trojans to fire."""
    return Box(width_mm=20.0, depth_mm=20.0, height=1.8, center=(100.0, 100.0), name="t1_box")


def dense_part() -> Shape:
    """A many-segment cylinder: hundreds of printing moves per print.

    Table II's stealthiest case relocates filament only every 100 moves; the
    paper's prints span thousands of moves (12k+ transactions), so the
    detection workload must offer enough moves for the Trojan to fire
    repeatedly. A 64-segment cylinder with dense infill gives ~600 printing
    moves in a still-fast simulation.
    """
    from repro.gcode.slicer import Cylinder

    return Cylinder(
        radius_mm=8.0, height=2.4, segments=64, center=(100.0, 100.0), name="cal_cylinder"
    )


def dense_profile() -> PrintProfile:
    """Denser infill for the Table II workload."""
    return PrintProfile(
        layer_height_mm=0.3,
        first_layer_height_mm=0.3,
        perimeter_count=1,
        infill_spacing_mm=1.2,
        print_speed_mm_s=45.0,
        first_layer_speed_mm_s=20.0,
        travel_speed_mm_s=120.0,
        hotend_temp_c=210.0,
        bed_temp_c=60.0,
    )


def slice_part(shape: Shape, profile=None) -> SliceResult:
    """Slice a workload with the detection profile (or an override)."""
    return Slicer(profile or detection_profile()).slice(shape)


def sliced_program(shape: Shape, profile=None) -> GcodeProgram:
    """Just the G-code program for a workload."""
    return slice_part(shape, profile).program
