"""Experiment orchestration: regenerate every table and figure of the paper.

Each module maps to one artifact (see DESIGN.md's per-experiment index):

* :mod:`repro.experiments.table1` — the Trojan suite evaluation (Table I);
* :mod:`repro.experiments.table2` — Flaw3D emulation + detection (Table II);
* :mod:`repro.experiments.figure4` — the detection-output excerpt (Figure 4);
* :mod:`repro.experiments.overhead` — Section V-B's delay budget;
* :mod:`repro.experiments.drift` — Section V-C's time-noise margin evidence;
* :mod:`repro.experiments.ablation` — the UART-period / margin sweep the
  paper suggests as the path to tighter margins.

:mod:`repro.experiments.runner` provides :class:`PrintSession`, the one-stop
"build the whole machine, print, capture" harness everything else uses, and
:mod:`repro.experiments.batch` provides the batched, parallel execution
layer (:class:`SessionSpec` → :class:`BatchRunner` → :class:`SessionSummary`)
every experiment submits its sessions through.
"""

from repro.experiments.batch import (
    BatchRunner,
    GoldenPrintCache,
    SessionSpec,
    SessionSummary,
    run_sessions,
    shared_cache,
)
from repro.experiments.runner import PrintSession, SessionResult
from repro.experiments.workloads import (
    detection_profile,
    standard_part,
    table1_part,
    tiny_part,
)

__all__ = [
    "BatchRunner",
    "GoldenPrintCache",
    "PrintSession",
    "SessionResult",
    "SessionSpec",
    "SessionSummary",
    "detection_profile",
    "run_sessions",
    "shared_cache",
    "standard_part",
    "table1_part",
    "tiny_part",
]
