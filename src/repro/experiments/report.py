"""Sweep reports: the text table's CSV and self-contained-HTML siblings.

Verdict rows are the unit of truth here, not the in-memory
:class:`~repro.experiments.scenario.SweepResult` that produced them. A
sweep flattens into

* :func:`sweep_rows` — one plain-dict row per scenario × detector (built
  from :meth:`~repro.detection.protocol.Verdict.as_dict`, so serialized
  verdicts agree with the text output by construction);
* :func:`summary_stats` — the sweep's headline numbers as one plain dict.

Both are JSON/SQL-safe by construction: the service layer
(:mod:`repro.service`) persists exactly these shapes in its SQLite job
store and the renderers below consume them back *without* needing the
original ``SweepResult`` — a report can be rendered from rows fetched out
of a store just as well as from a sweep that finished a second ago:

* :func:`render_csv_rows` / :func:`render_csv` — RFC-4180 CSV via
  :mod:`csv` (rows-first core, ``SweepResult`` convenience wrapper);
* :func:`render_html_rows` / :func:`render_html` — one self-contained
  HTML file (inline CSS, no external assets) with the per-scenario verdict
  table and the summary statistics: attacks detected, false positives,
  cache hits/misses, sessions simulated, wall clock;
* :func:`write_reports` — write either/both next to the text artifact.

Because the CSV serializer is shared, a verdict CSV fetched from the
service's store is byte-identical to the one ``repro sweep --csv`` writes
for the same grid — the invariant ``make smoke-service`` pins in CI.
"""

from __future__ import annotations

import csv
import html
import io
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.scenario import ScenarioOutcome, SweepResult

CSV_COLUMNS = (
    "scenario",
    "part",
    "attack",
    "kind",
    "detector",
    "verdict",
    "score",
    "detail",
    "outcome",
    "suspect_status",
    "duration_s",
)
"""The row schema shared by the CSV/HTML renderers and the service job store."""


def _outcome_class(outcome: ScenarioOutcome) -> str:
    """Scenario-level disposition: ok / detected / missed / false-positive / failed."""
    if outcome.failed:
        return "failed"
    if outcome.scenario.is_attack:
        return "detected" if outcome.detected else "missed"
    return "false-positive" if outcome.detected else "ok"


def sweep_rows(result: SweepResult) -> List[Dict[str, Any]]:
    """Flatten a sweep to one row per scenario × detector."""
    rows: List[Dict[str, Any]] = []
    for outcome in result.outcomes:
        disposition = _outcome_class(outcome)
        for verdict in outcome.verdicts.values():
            flat = verdict.as_dict()
            rows.append(
                {
                    "scenario": outcome.scenario.name,
                    "part": outcome.scenario.part,
                    "attack": outcome.scenario.attack or "",
                    "kind": "attack" if outcome.scenario.is_attack else "clean",
                    "detector": flat["detector"],
                    "verdict": "TROJAN" if flat["trojan_likely"] else "clean",
                    "score": flat["score"],
                    "detail": flat["detail"],
                    "outcome": disposition,
                    "suspect_status": outcome.suspect.status.value,
                    "duration_s": round(outcome.suspect.duration_s, 3),
                }
            )
    return rows


def summary_stats(result: SweepResult) -> Dict[str, Any]:
    """The sweep's headline numbers (shared by HTML, benchmarks, job store)."""
    return {
        "grid": result.grid,
        "scenarios": len(result.outcomes),
        "attacks": len(result.attack_outcomes),
        "attacks_detected": result.attacks_detected,
        "clean": len(result.clean_outcomes),
        "false_positives": result.false_positives,
        "ok": result.ok,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "cache_disk_hits": result.cache_disk_hits,
        "sessions_total": result.sessions_total,
        "sessions_simulated": result.sessions_simulated,
        "sessions_failed": result.sessions_failed,
        "wall_clock_s": round(result.wall_clock_s, 2),
        "hosts": len(result.host_stats),
        "requeues": result.requeues,
        "transport": result.transport,
        "payload_bytes": result.payload_bytes,
    }


def render_csv_rows(rows: Sequence[Mapping[str, Any]]) -> str:
    """Verdict rows as CSV — the serializer both the CLI and service share.

    Rows may come straight from :func:`sweep_rows` or back out of the
    service's SQLite store; extra keys are ignored so store rows can carry
    bookkeeping columns without perturbing the bytes.
    """
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=CSV_COLUMNS, lineterminator="\n", extrasaction="ignore"
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def render_csv(result: SweepResult) -> str:
    """The sweep as CSV, one row per scenario × detector."""
    return render_csv_rows(sweep_rows(result))


_HTML_STYLE = """
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a202c; }
h1 { font-size: 1.4rem; }
.stats { display: flex; flex-wrap: wrap; gap: 0.75rem; margin: 1rem 0; }
.stat { border: 1px solid #cbd5e0; border-radius: 6px; padding: 0.5rem 0.9rem; }
.stat b { display: block; font-size: 1.15rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { border: 1px solid #cbd5e0; padding: 0.35rem 0.55rem; text-align: left; }
th { background: #edf2f7; }
tr.missed td, tr.false-positive td { background: #fed7d7; }
tr.failed td { background: #feebc8; }
tr.detected td.verdict { color: #276749; font-weight: 600; }
tr.missed td.verdict, tr.false-positive td.verdict { color: #9b2c2c; font-weight: 700; }
.badge-ok { color: #276749; } .badge-bad { color: #9b2c2c; }
h2 { font-size: 1.1rem; margin-top: 1.5rem; }
"""


def render_html_rows(
    rows: Sequence[Mapping[str, Any]],
    stats: Mapping[str, Any],
    host_stats: Sequence[Mapping[str, Any]] = (),
    title: Optional[str] = None,
) -> str:
    """Verdict rows + stats as one self-contained HTML page.

    The rows-first core of :func:`render_html`: everything it consumes is
    plain JSON-safe dicts, so the service renders job reports directly from
    its store without rebuilding a ``SweepResult``.
    """
    title = title or (
        f"repro sweep — grid {stats['grid']!r}" if stats.get("grid") else "repro sweep"
    )
    badge = (
        '<span class="badge-ok">all attacks caught, no false positives</span>'
        if stats["ok"]
        else '<span class="badge-bad">detection gap or false positive</span>'
    )
    tiles = [
        ("scenarios", stats["scenarios"]),
        ("attacks detected", f"{stats['attacks_detected']}/{stats['attacks']}"),
        ("false positives", stats["false_positives"]),
        ("cache hits / misses", f"{stats['cache_hits']} / {stats['cache_misses']}"),
        ("served from disk", stats["cache_disk_hits"]),
        (
            "sessions simulated",
            f"{stats['sessions_simulated']}/{stats['sessions_total']}",
        ),
        ("sessions failed", stats["sessions_failed"]),
        ("wall clock", f"{stats['wall_clock_s']:.1f}s"),
    ]
    if stats["hosts"]:
        tiles.append(("worker hosts", stats["hosts"]))
    if stats["requeues"]:
        tiles.append(("shards re-queued", stats["requeues"]))
    if stats["payload_bytes"]:
        tiles.append(
            (
                f"done/ payload ({stats['transport'] or 'results'})",
                f"{stats['payload_bytes']} B",
            )
        )
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)} &mdash; {badge}</h1>",
        '<div class="stats">',
    ]
    for label, value in tiles:
        parts.append(
            f'<div class="stat"><b>{html.escape(str(value))}</b>'
            f"{html.escape(label)}</div>"
        )
    parts.append("</div><table><thead><tr>")
    for column in CSV_COLUMNS:
        parts.append(f"<th>{html.escape(column)}</th>")
    parts.append("</tr></thead><tbody>")
    for row in rows:
        parts.append(f'<tr class="{row["outcome"]}">')
        for column in CSV_COLUMNS:
            css = ' class="verdict"' if column == "verdict" else ""
            parts.append(f"<td{css}>{html.escape(str(row[column]))}</td>")
        parts.append("</tr>")
    parts.append("</tbody></table>")
    if host_stats:
        parts.append("<h2>Per-host economics</h2><table><thead><tr>")
        for column in ("worker", "shards", "sessions", "failures", "wall clock"):
            parts.append(f"<th>{html.escape(column)}</th>")
        parts.append("</tr></thead><tbody>")
        for host in host_stats:
            parts.append("<tr>")
            for value in (
                host["worker"],
                host["shards"],
                host["sessions"],
                host["failures"],
                f"{host['wall_clock_s']:.1f}s",
            ):
                parts.append(f"<td>{html.escape(str(value))}</td>")
            parts.append("</tr>")
        parts.append("</tbody></table>")
    parts.append("</body></html>")
    return "\n".join(parts)


def render_html(result: SweepResult, title: Optional[str] = None) -> str:
    """The sweep as one self-contained HTML page (inline CSS, no assets)."""
    return render_html_rows(
        sweep_rows(result), summary_stats(result), result.host_stats, title
    )


def write_reports(
    result: SweepResult,
    csv_path: Optional[str] = None,
    html_path: Optional[str] = None,
) -> List[str]:
    """Write the requested report files; returns the paths written."""
    written: List[str] = []
    for path, renderer in ((csv_path, render_csv), (html_path, render_html)):
        if not path:
            continue
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(renderer(result))
        written.append(path)
    return written
