"""Table II: emulated Flaw3D Trojans, all detected.

Re-creates the paper's evaluation: the eight Flaw3D test cases (reduction
factors 0.5/0.85/0.9/0.98, relocation periods 5/10/20/100) applied to the
workload's G-code, each printed with an independent time-noise realization,
captured through the OFFRAMPS monitoring pipeline, and compared against the
golden capture with the 5 % margin + final 0 % check. A golden-vs-control
row (two clean prints, different noise seeds) verifies the margin produces
no false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.detection.report import DetectionReport
from repro.experiments.batch import CacheOption, SessionSummary
from repro.experiments.scenario import (
    CONTROL_SEED,
    DEFAULT_NOISE_SIGMA,
    GOLDEN_SEED,
    ScenarioSpec,
    flaw3d_scenarios,
    register_program_part,
    run_sweep,
)
from repro.gcode.ast import GcodeProgram
from repro.gcode.transforms.flaw3d import table2_test_cases


@dataclass
class Table2Row:
    """One Flaw3D test case's detection outcome."""

    case: int
    trojan_type: str
    modification_value: float
    report: DetectionReport

    @property
    def detected(self) -> bool:
        return self.report.trojan_likely

    def render(self) -> str:
        mark = "yes" if self.detected else "MISSED"
        return (
            f"{self.case:<5} {self.trojan_type:<11} {self.modification_value:<7g} "
            f"{mark:<8} {self.report.summary()}"
        )


@dataclass
class Table2Result:
    """The whole Table II run."""

    rows: List[Table2Row]
    control_report: DetectionReport
    golden: SessionSummary

    @property
    def all_detected(self) -> bool:
        return all(row.detected for row in self.rows)

    @property
    def false_positive(self) -> bool:
        return self.control_report.trojan_likely

    def render(self) -> str:
        header = f"{'Case':<5} {'Type':<11} {'Value':<7} {'Detected':<8} Detail"
        lines = [header, "-" * len(header)]
        lines.extend(row.render() for row in self.rows)
        lines.append("")
        lines.append(f"control (golden vs golden): {self.control_report.summary()}")
        lines.append(
            f"=> {'ALL 8 TROJANS DETECTED' if self.all_detected else 'DETECTION GAP'}"
            f"{', no false positives' if not self.false_positive else ', FALSE POSITIVE'}"
        )
        return "\n".join(lines)


def run_table2(
    program: Optional[GcodeProgram] = None,
    noise_sigma: float = DEFAULT_NOISE_SIGMA,
    margin: float = 0.05,
    uart_period_ms: int = 100,
    workers: Optional[int] = 1,
    cache: CacheOption = None,
) -> Table2Result:
    """Run the full Table II evaluation.

    Thin grid over the scenario layer: one clean-control scenario plus the
    eight ``flaw3d`` scenarios, all ten prints submitted as one batch
    (``workers>1`` fans them across processes) and scored through the
    ``golden`` entry of the Detector protocol.
    """
    if program is None:
        # The dense workload: period-100 relocation must get to fire several
        # times, as it did over the paper's much longer prints.
        part = "dense"
    else:
        part = register_program_part(program)

    control = ScenarioSpec(
        name="control",
        part=part,
        attack=None,
        detectors=("golden",),
        seed=CONTROL_SEED,
        noise_sigma=noise_sigma,
        uart_period_ms=uart_period_ms,
        margin=margin,
    )
    scenarios = [control] + [
        replace(sc, detectors=("golden",))
        for sc in flaw3d_scenarios(
            part=part,
            noise_sigma=noise_sigma,
            uart_period_ms=uart_period_ms,
            margin=margin,
        )
    ]
    sweep = run_sweep(scenarios, workers=workers, cache=cache)
    control_report = sweep.outcomes[0].verdicts["golden"].report

    rows: List[Table2Row] = []
    for (case, transform), outcome in zip(table2_test_cases(), sweep.outcomes[1:]):
        trojan_type = "Reduction" if "reduction" in transform.label else "Relocation"
        value = (
            transform.factor if trojan_type == "Reduction" else float(transform.period)
        )
        rows.append(
            Table2Row(case, trojan_type, value, outcome.verdicts["golden"].report)
        )

    return Table2Result(
        rows=rows,
        control_report=control_report,
        golden=sweep.outcomes[0].golden,
    )
