"""Declarative scenarios: parts × attacks × detectors × seeds.

The paper's central claim — lossless control-signal access lets one platform
analyze *any* trojan against *any* print — becomes a first-class workload
here. A :class:`ScenarioSpec` names a registered part, an optional registered
attack (an FPGA Trojan T1–T9 or a G-code rewrite such as Flaw3D/dr0wned), a
detector set, and seeds; it *compiles down* to the existing picklable
:class:`~repro.experiments.batch.SessionSpec` pair (golden + suspect), so an
entire grid of scenarios executes as one flat :class:`BatchRunner` batch —
deduplicated, cache-backed, and cost-scheduled.

Three registries make the space enumerable:

* **parts** (:func:`register_part` / :data:`PARTS`) — every slicer workload;
* **attacks** (:func:`register_attack` / :data:`ATTACKS`) — the Trojan suite
  with its Table I parameters plus the Table II G-code attacks;
* **grids** (:func:`register_grid` / :data:`GRIDS`) — named scenario grids
  (``table1``, ``flaw3d``, ``dr0wned``, ``clean``, ``trojans``, ``full``)
  behind the ``repro sweep`` CLI command, plus parametric **axis sweeps**
  (:class:`AxisSweep` / :func:`register_axis_sweep`: ``t2-curve``,
  ``t9-curve``, ``curves``) that declare a Trojan-parameter curve as data
  and expand to ordinary scenarios.

Every compiled session — golden *and* suspect — is content-keyed and
cacheable, so sweeps over a persistent ``--cache-dir`` are incremental:
repeats re-simulate nothing, grown grids pay only for their delta.

Scoring goes through the unified Detector protocol
(:mod:`repro.detection.protocol`): each scenario's detectors are fitted on
the golden summary and score the suspect, yielding normalized
:class:`~repro.detection.protocol.Verdict` rows.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.detection.protocol import ScoreSpec, Verdict
from repro.errors import ReproError
from repro.experiments.batch import (
    CacheOption,
    SessionSpec,
    SessionSummary,
    resolve_cache,
    run_sessions,
)
from repro.experiments.workloads import (
    dense_part,
    dense_profile,
    sliced_program,
    standard_part,
    table1_part,
    tiny_part,
)
from repro.gcode.ast import GcodeProgram
from repro.gcode.slicer.shapes import Shape
from repro.gcode.transforms.edits import insert_void
from repro.gcode.transforms.flaw3d import Flaw3dReduction, Flaw3dRelocation
from repro.gcode.writer import write_line

DEFAULT_NOISE_SIGMA = 0.0005
"""The time-noise sigma used by the detection experiments."""

GOLDEN_SEED = 1001
"""Noise seed of every golden (reference) print."""

CONTROL_SEED = 1002
"""Noise seed of the clean control print (the false-positive check)."""


# ----------------------------------------------------------------------
# Part registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PartDef:
    """A named printable workload: how to get its program (and shape)."""

    name: str
    build: Callable[[], GcodeProgram]
    shape: Optional[Callable[[], Shape]] = None
    description: str = ""


PARTS: Dict[str, PartDef] = {}
_ADHOC_PARTS: Dict[str, PartDef] = {}
_PROGRAM_CACHE: Dict[str, GcodeProgram] = {}


def register_part(part: PartDef) -> PartDef:
    """Add (or replace) a part in the registry (and in grid enumeration)."""
    PARTS[part.name] = part
    _PROGRAM_CACHE.pop(part.name, None)
    return part


def part_names() -> List[str]:
    """The enumerable parts — what the default grids cross attacks with.

    Ad-hoc program parts (:func:`register_program_part`) are resolvable by
    name but deliberately excluded, so a caller-supplied workload never
    silently inflates the ``full``/``trojans``/``clean`` grids.
    """
    return sorted(PARTS)


def get_part(name: str) -> PartDef:
    part = PARTS.get(name) or _ADHOC_PARTS.get(name)
    if part is None:
        raise ReproError(f"unknown part {name!r}; registered: {part_names()}")
    return part


def part_program(name: str) -> GcodeProgram:
    """The part's sliced program (sliced once per process)."""
    if name not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[name] = get_part(name).build()
    return _PROGRAM_CACHE[name]


def part_shape(name: str) -> Optional[Shape]:
    part = get_part(name)
    return part.shape() if part.shape is not None else None


def _program_digest(program: GcodeProgram) -> str:
    digest = hashlib.sha256()
    for line in map(write_line, program):
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def register_program_part(program: GcodeProgram, name: Optional[str] = None) -> str:
    """Register an ad-hoc program (e.g. a caller-supplied workload) as a part.

    The generated name is content-derived, so registering the same program
    twice maps to the same part (and the same golden cache entries). Ad-hoc
    parts are resolvable by name but stay out of :func:`part_names`, so
    they never change what the default grids enumerate. Registering a
    *different* program under an already-taken name is an error — silently
    resolving to the old program would make scenarios print the wrong part.
    """
    content = _program_digest(program)
    if name is None:
        name = f"custom-{content[:12]}"
    if name in PARTS or name in _ADHOC_PARTS:
        if _program_digest(part_program(name)) != content:
            raise ReproError(
                f"part name {name!r} is already registered with different content"
            )
        return name
    _ADHOC_PARTS[name] = PartDef(
        name=name, build=lambda: program, description="ad-hoc program"
    )
    _PROGRAM_CACHE[name] = program
    return name


register_part(PartDef("tiny", lambda: sliced_program(tiny_part()), tiny_part,
                      "10mm 3-layer coupon (fast)"))
register_part(PartDef("standard", lambda: sliced_program(standard_part()), standard_part,
                      "16mm calibration square"))
register_part(PartDef("table1", lambda: sliced_program(table1_part()), table1_part,
                      "20mm box sized for slow-trigger Trojans"))
register_part(PartDef("dense", lambda: sliced_program(dense_part(), dense_profile()), dense_part,
                      "64-segment cylinder, dense infill (Table II)"))


# ----------------------------------------------------------------------
# Attack registry
# ----------------------------------------------------------------------

FPGA_ATTACK = "fpga"
GCODE_ATTACK = "gcode"


@dataclass(frozen=True)
class AttackDef:
    """One registered attack: an FPGA Trojan or a G-code rewrite.

    FPGA attacks carry the Trojan id/parameters the worker instantiates;
    G-code attacks carry a transform ``(program, shape) -> program`` applied
    at compile time (the shape is passed for geometry-aware rewrites like
    the dr0wned void and may be ``None`` for ad-hoc parts).
    """

    name: str
    kind: str
    description: str = ""
    trojan_id: Optional[str] = None
    trojan_params: Mapping[str, Any] = field(default_factory=dict)
    grace_s: float = 1.0
    transform: Optional[Callable[[GcodeProgram, Optional[Shape]], GcodeProgram]] = None

    def __post_init__(self) -> None:
        if self.kind not in (FPGA_ATTACK, GCODE_ATTACK):
            raise ReproError(f"attack kind must be fpga|gcode, got {self.kind!r}")
        if self.kind == FPGA_ATTACK and self.trojan_id is None:
            raise ReproError(f"fpga attack {self.name!r} needs a trojan_id")
        if self.kind == GCODE_ATTACK and self.transform is None:
            raise ReproError(f"gcode attack {self.name!r} needs a transform")


ATTACKS: Dict[str, AttackDef] = {}


def register_attack(attack: AttackDef) -> AttackDef:
    ATTACKS[attack.name] = attack
    return attack


def attack_names() -> List[str]:
    return sorted(ATTACKS)


def get_attack(name: str) -> AttackDef:
    try:
        return ATTACKS[name]
    except KeyError:
        raise ReproError(
            f"unknown attack {name!r}; registered: {attack_names()}"
        ) from None


TABLE1_TROJAN_PARAMS: Dict[str, Dict[str, Any]] = {
    "T1": dict(period_s=8.0, min_shift_steps=40, max_shift_steps=90),
    "T2": dict(keep_fraction=0.5),
    "T3": dict(mode="over"),
    "T4": dict(probability=0.6, min_shift_steps=30, max_shift_steps=60),
    "T5": dict(at_layer=2, extra_z_mm=0.35),
    "T6": dict(targets=("hotend",)),
    "T7": dict(targets=("hotend",)),
    "T8": dict(axes=("X", "Y"), period_s=8.0, outage_s=1.0),
    "T9": dict(scale=0.15, arm_delay_s=10.0),
}
"""Per-Trojan parameters tuned to the Table I workload's duration."""

TROJAN_IDS: Tuple[str, ...] = tuple(sorted(TABLE1_TROJAN_PARAMS))

_TROJAN_DESCRIPTIONS = {
    "T1": "periodic axis shift (loose belt)",
    "T2": "extrusion pulse masking (50% flow)",
    "T3": "retraction weakening (over-extrusion)",
    "T4": "per-layer Z-wobble shifts",
    "T5": "single-layer Z shift (delamination)",
    "T6": "heater denial of service",
    "T7": "thermal runaway (destructive)",
    "T8": "stepper driver outages",
    "T9": "fan sabotage",
}

for _tid in TROJAN_IDS:
    register_attack(
        AttackDef(
            name=_tid,
            kind=FPGA_ATTACK,
            description=_TROJAN_DESCRIPTIONS[_tid],
            trojan_id=_tid,
            trojan_params=TABLE1_TROJAN_PARAMS[_tid],
            # T7 keeps heating after the firmware dies; give the plant time
            # to show the damage.
            grace_s=40.0 if _tid == "T7" else 1.0,
        )
    )


def _gcode_attack_from(transform) -> Callable[[GcodeProgram, Optional[Shape]], GcodeProgram]:
    return lambda program, shape: transform.apply(program)


def flaw3d_reduction_attack(factor: float) -> str:
    """Register (idempotently) a Flaw3D reduction attack; returns its name."""
    transform = Flaw3dReduction(factor)
    if transform.label not in ATTACKS:
        register_attack(
            AttackDef(
                name=transform.label,
                kind=GCODE_ATTACK,
                description=f"Flaw3D bootloader: extrusion x{factor:g}",
                transform=_gcode_attack_from(transform),
            )
        )
    return transform.label


def flaw3d_relocation_attack(period: int) -> str:
    """Register (idempotently) a Flaw3D relocation attack; returns its name."""
    transform = Flaw3dRelocation(period)
    if transform.label not in ATTACKS:
        register_attack(
            AttackDef(
                name=transform.label,
                kind=GCODE_ATTACK,
                description=f"Flaw3D bootloader: relocate filament every {period} moves",
                transform=_gcode_attack_from(transform),
            )
        )
    return transform.label


TABLE2_CASES: Tuple[Tuple[int, str], ...] = tuple(
    [(case, flaw3d_reduction_attack(factor)) for case, factor in
     ((1, 0.5), (2, 0.85), (3, 0.9), (4, 0.98))]
    + [(case, flaw3d_relocation_attack(period)) for case, period in
       ((5, 5), (6, 10), (7, 20), (8, 100))]
)
"""Table II's eight Flaw3D test cases as (case number, attack name)."""


def _dr0wned_void(program: GcodeProgram, shape: Optional[Shape]) -> GcodeProgram:
    """The dr0wned-style internal void, centred and sized from the part.

    The attack removes material from the middle of the part (the paper's
    propeller void): here, a box covering the central half of the footprint
    over the lower half of the part's height.
    """
    if shape is None:
        raise ReproError("the dr0wned void attack needs a part with a shape")
    outline = shape.outline_at(0.0)
    xs = [p[0] for p in outline]
    ys = [p[1] for p in outline]
    cx, cy = (min(xs) + max(xs)) / 2, (min(ys) + max(ys)) / 2
    hw, hd = (max(xs) - min(xs)) / 4, (max(ys) - min(ys)) / 4
    return insert_void(
        program, (cx - hw, cy - hd, 0.0, cx + hw, cy + hd, shape.height_mm / 2)
    )


register_attack(
    AttackDef(
        name="dr0wned-void",
        kind=GCODE_ATTACK,
        description="dr0wned-style internal void (central half-footprint)",
        transform=_dr0wned_void,
    )
)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: part × attack × detector set × seed.

    ``attack=None`` is a clean baseline — the suspect is an independent
    noise realization of the golden print, so every detector *should* stay
    quiet (the false-positive check). ``seed`` is the suspect's noise seed
    for G-code/clean scenarios and the Trojan seed for FPGA scenarios.
    """

    name: str
    part: str = "standard"
    attack: Optional[str] = None
    detectors: Tuple[str, ...] = ("golden",)
    seed: int = CONTROL_SEED
    golden_seed: int = GOLDEN_SEED
    noise_sigma: float = DEFAULT_NOISE_SIGMA
    uart_period_ms: int = 100
    margin: float = 0.05

    @property
    def is_attack(self) -> bool:
        return self.attack is not None


def compile_scenario(
    scenario: ScenarioSpec, fast_path: bool = True
) -> Tuple[SessionSpec, SessionSpec]:
    """Compile a scenario to its (golden, suspect) SessionSpec pair.

    Noise seeds are normalized to 0 whenever ``noise_sigma == 0`` so that
    noise-free scenarios share content keys (and cached golden prints) with
    every other noise-free run of the same part, regardless of the seed a
    grid nominally carries.

    *Both* specs are marked cacheable: the content key covers the G-code
    (post-transform for G-code attacks), the Trojan id/params/seed, the
    firmware config, and every sim parameter, so any scenario this host has
    simulated before — golden *or* suspect — is served from the
    :class:`~repro.experiments.batch.SessionCache`. A repeat sweep over a
    persistent cache directory re-simulates nothing; a grown grid simulates
    only its delta.

    ``fast_path`` (on by default) compiles both sessions for the batched
    step-emission fast path; it is part of the content key, so fast and
    precise runs of the same scenario never alias in the cache. The parity
    harness pins their verdict rows byte-identical regardless.
    """
    program = part_program(scenario.part)
    noise = scenario.noise_sigma
    common = dict(
        noise_sigma=noise,
        uart_period_ms=scenario.uart_period_ms,
        fast_path=fast_path,
    )
    golden = SessionSpec(
        program=program,
        noise_seed=scenario.golden_seed if noise > 0 else 0,
        label=f"{scenario.name}/golden",
        cacheable=True,
        **common,
    )
    if scenario.attack is None:
        suspect = SessionSpec(
            program=program,
            noise_seed=scenario.seed if noise > 0 else 0,
            label=f"{scenario.name}/clean",
            cacheable=True,
            **common,
        )
        return golden, suspect
    attack = get_attack(scenario.attack)
    if attack.kind == GCODE_ATTACK:
        suspect = SessionSpec(
            program=attack.transform(program, part_shape(scenario.part)),
            noise_seed=scenario.seed if noise > 0 else 0,
            label=f"{scenario.name}/{attack.name}",
            cacheable=True,
            **common,
        )
    else:
        suspect = SessionSpec(
            program=program,
            noise_seed=scenario.golden_seed if noise > 0 else 0,
            trojan_id=attack.trojan_id,
            trojan_params=attack.trojan_params,
            trojan_seed=scenario.seed,
            grace_s=attack.grace_s,
            label=f"{scenario.name}/{attack.name}",
            cacheable=True,
            **common,
        )
    return golden, suspect


@dataclass
class ScenarioRun:
    """A scenario's executed sessions, before detector scoring."""

    scenario: ScenarioSpec
    golden: SessionSummary
    suspect: SessionSummary


def _compile_all(
    scenarios: Sequence[ScenarioSpec], fast_path: bool = True
) -> List[SessionSpec]:
    """Every scenario's (golden, suspect) specs, flattened in order."""
    specs: List[SessionSpec] = []
    for scenario in scenarios:
        specs.extend(compile_scenario(scenario, fast_path=fast_path))
    return specs


def _pair_runs(
    scenarios: Sequence[ScenarioSpec], summaries: Sequence[SessionSummary]
) -> List[ScenarioRun]:
    """Re-pair a flat summary batch with the scenarios that compiled it."""
    return [
        ScenarioRun(scenario, summaries[2 * i], summaries[2 * i + 1])
        for i, scenario in enumerate(scenarios)
    ]


def run_scenarios(
    scenarios: Sequence[ScenarioSpec],
    workers: Optional[int] = 1,
    cache: CacheOption = None,
    fast_path: bool = True,
) -> List[ScenarioRun]:
    """Execute every scenario's sessions as one flat deduplicated batch.

    Strict: a session whose execution raised aborts the call (preserving
    this API's pre-failure-isolation contract). Callers here — table1,
    ablation — score the returned summaries directly; a FAILED stub with
    an empty capture would read as a maximal mismatch and masquerade as a
    TROJAN verdict. :func:`run_sweep` handles failures as reportable rows
    instead.
    """
    summaries = run_sessions(
        _compile_all(scenarios, fast_path=fast_path),
        workers=workers,
        cache=cache,
        strict=True,
    )
    return _pair_runs(scenarios, summaries)


def scenario_score_spec(scenario: ScenarioSpec) -> ScoreSpec:
    """The scenario's scoring recipe as a picklable :class:`ScoreSpec`.

    This is the *only* place a scenario's detector set is turned into
    detector constructions (margin threaded into the margin-based
    detectors, defaults elsewhere), so serial sweeps and worker-side
    scoring in distributed sweeps are the same computation by definition.
    """
    return ScoreSpec.for_detectors(scenario.detectors, margin=scenario.margin)


@dataclass
class ScenarioOutcome:
    """One scenario scored by its full detector set.

    ``golden``/``suspect`` are full :class:`SessionSummary`\\ s when the
    scoring ran in this process, or wire-sized
    :class:`~repro.experiments.distrib.SessionDigest`\\ s when a
    distributed sweep scored the scenario worker-side (verdict shipping) —
    both expose the fields this layer and the reports read (``status``,
    ``duration_s``, ``failed``, ``error``, ``spec_key``).
    """

    scenario: ScenarioSpec
    golden: Any
    suspect: Any
    verdicts: Dict[str, Verdict]

    @property
    def failed(self) -> bool:
        """True when either session's *execution* raised (not scoreable)."""
        return self.golden.failed or self.suspect.failed

    @property
    def detected(self) -> bool:
        return any(v.trojan_likely for v in self.verdicts.values())

    @property
    def false_positive(self) -> bool:
        return not self.scenario.is_attack and self.detected

    @property
    def missed(self) -> bool:
        return self.scenario.is_attack and not self.detected and not self.failed


@dataclass
class SweepResult:
    """Every outcome of one sweep, plus the session-cache economics.

    ``cache_misses`` is exactly the number of sessions this sweep had to
    simulate (every unique cacheable spec is looked up once); on a repeat
    sweep over a persistent cache directory it is 0 — the incremental-sweep
    invariant the tests pin down.
    """

    outcomes: List[ScenarioOutcome]
    cache_hits: int = 0
    cache_misses: int = 0
    cache_disk_hits: int = 0
    sessions_total: int = 0
    sessions_simulated: int = 0
    sessions_failed: int = 0
    wall_clock_s: float = 0.0
    grid: str = ""
    host_stats: List[Dict[str, Any]] = field(default_factory=list)
    requeues: int = 0
    transport: str = ""
    payload_bytes: int = 0

    @property
    def attack_outcomes(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if o.scenario.is_attack]

    @property
    def clean_outcomes(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.scenario.is_attack]

    @property
    def failed_outcomes(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def attacks_detected(self) -> int:
        return sum(1 for o in self.attack_outcomes if o.detected)

    @property
    def false_positives(self) -> int:
        return sum(1 for o in self.clean_outcomes if o.detected)

    @property
    def ok(self) -> bool:
        """Every attack caught, no false positives, and no failed sessions."""
        return (
            self.attacks_detected == len(self.attack_outcomes)
            and self.false_positives == 0
            and not self.failed_outcomes
        )

    def render(self) -> str:
        name_w = max([len(o.scenario.name) for o in self.outcomes] + [8])
        det_w = max(
            [len(d) for o in self.outcomes for d in o.verdicts] + [8]
        )
        header = f"{'scenario':<{name_w}} {'detector':<{det_w}} {'verdict':<7} detail"
        lines = [header, "-" * len(header)]
        for outcome in self.outcomes:
            for det_name, verdict in outcome.verdicts.items():
                flag = "TROJAN" if verdict.trojan_likely else "clean"
                lines.append(
                    f"{outcome.scenario.name:<{name_w}} {det_name:<{det_w}} "
                    f"{flag:<7} {verdict.detail}"
                )
        lines.append("")
        cache_note = f"session cache {self.cache_hits} hits / {self.cache_misses} misses"
        if self.cache_disk_hits:
            cache_note += f" ({self.cache_disk_hits} served from disk)"
        lines.append(
            f"{len(self.outcomes)} scenarios "
            f"({len(self.attack_outcomes)} attacks, {len(self.clean_outcomes)} clean): "
            f"{self.attacks_detected}/{len(self.attack_outcomes)} attacks detected, "
            f"{self.false_positives} false positives; "
            + cache_note
        )
        if self.sessions_total:
            lines.append(
                f"{self.sessions_simulated}/{self.sessions_total} unique sessions "
                f"simulated in {self.wall_clock_s:.1f}s wall clock"
            )
        if self.sessions_failed:
            names = ", ".join(o.scenario.name for o in self.failed_outcomes)
            lines.append(
                f"{self.sessions_failed} sessions FAILED "
                f"(scenarios affected: {names or 'none scored'})"
            )
        if self.host_stats:
            host_bits = "; ".join(
                f"{h['worker']}: {h['shards']} shards / {h['sessions']} sessions "
                f"in {h['wall_clock_s']:.1f}s"
                for h in self.host_stats
            )
            note = f"hosts ({len(self.host_stats)}): {host_bits}"
            if self.requeues:
                note += f"; {self.requeues} shard(s) re-queued from dead workers"
            lines.append(note)
            if self.payload_bytes:
                lines.append(
                    f"done/ payload: {self.payload_bytes} bytes shipped as "
                    f"{self.transport or 'results'}"
                )
        return "\n".join(lines)


def _score_run(run: ScenarioRun) -> Dict[str, Verdict]:
    """One scenario's verdicts — or failure placeholders when unscoreable.

    Delegates to the scenario's :class:`ScoreSpec` (the exact recipe a
    distribution worker would receive), including its FAILED-session
    handling: a session whose execution raised becomes a non-detection
    verdict carrying the failure text, so the sweep renders the failure as
    a row instead of dying on a stack trace mid-scoring.
    """
    return scenario_score_spec(run.scenario).score_pair(run.golden, run.suspect)


def run_sweep(
    scenarios: Sequence[ScenarioSpec],
    workers: Optional[int] = 1,
    cache: CacheOption = None,
    grid: str = "",
    hosts: int = 1,
    work_dir: Optional[str] = None,
    transport: Optional[str] = None,
    steal: bool = False,
    ship_summaries: bool = False,
    fast_path: bool = True,
    progress: Optional[Callable[[SessionSummary], None]] = None,
) -> SweepResult:
    """Execute and score a scenario grid: one batch, then detector verdicts.

    With a persistent cache the run is *incremental*: only sessions whose
    summaries are not already cached are simulated, so repeating a sweep is
    a zero-resimulation no-op and growing a grid pays only for its delta.
    The returned result carries the cache hit/miss accounting and wall clock
    that the CSV/HTML reports (:mod:`repro.experiments.report`) surface.

    With ``hosts > 1`` the sweep distributes via
    :mod:`repro.experiments.distrib` (subprocess workers over a pluggable
    shard-queue backend: ``transport`` names it — a filesystem path,
    ``http://host:port/queues/name``, or ``memory://name``; else
    ``work_dir`` or a temp dir selects the filesystem backend), and
    ``workers`` becomes the *per-host* parallelism: each worker runs its
    shard through a parallel ``BatchRunner``, so total parallelism is
    ``hosts × workers``. ``steal=True`` carves many small shards instead
    of one per host, so idle and late-joining workers rebalance a
    straggling sweep by claiming from the shared queue — verdicts are
    byte-identical either way. By
    default the workers also *score* their scenarios and ship back only
    verdict rows + session digests (full summaries persist in the shared
    cache directory, written by the workers); ``ship_summaries=True``
    restores the old full-summary transport — needed when the caller wants
    the summaries themselves (or runs without a shared cache *directory*
    and wants this process's in-memory cache warmed). Either way the
    verdicts are identical to a single-host run by construction, and the
    result additionally carries per-host economics (``host_stats``), the
    dead-worker re-queue count, and the ``done/`` payload byte count.

    Sessions compile for the batched step-emission fast path by default;
    ``fast_path=False`` (CLI ``--precise``) forces the per-event reference
    path. The two populate distinct cache keys and, by the parity harness's
    contract, identical verdict rows.

    ``progress`` (in-process sweeps only) is invoked once per *completed*
    session — cache hits excluded — exactly the
    :meth:`~repro.experiments.batch.BatchRunner.run` callback contract.
    The service layer (:mod:`repro.service`) streams job progress through
    it. Distributed sweeps ignore it: their workers already report forward
    progress through the work-dir heartbeat protocol.
    """
    resolved = resolve_cache(cache)
    before = resolved.stats() if resolved is not None else {}
    pairs = [compile_scenario(scenario, fast_path=fast_path) for scenario in scenarios]
    specs = [spec for pair in pairs for spec in pair]
    unique_keys = {spec.content_key() for spec in specs}
    # repro: lint-ignore[DET003] sweep wall-clock reporting (wall_clock_s column), never verdict content
    started = time.perf_counter()
    host_stats: List[Dict[str, Any]] = []
    requeues = 0
    payload_mode = ""
    payload_bytes = 0
    simulated_override: Optional[int] = None
    if hosts and hosts > 1 and not ship_summaries:
        from repro.experiments.distrib import ScenarioJob, run_distributed_scored

        jobs = [
            ScenarioJob(
                index=index,
                name=scenario.name,
                golden=golden,
                suspect=suspect,
                score=scenario_score_spec(scenario),
            )
            for index, (scenario, (golden, suspect)) in enumerate(
                zip(scenarios, pairs)
            )
        ]
        scored = run_distributed_scored(
            jobs, hosts=hosts, cache=resolved, work_dir=work_dir,
            workers=workers, transport=transport, steal=steal,
        )
        outcomes = [
            ScenarioOutcome(scenario, row.golden, row.suspect, row.verdicts)
            for scenario, row in zip(scenarios, scored.rows)
        ]
        host_stats = scored.host_stats
        requeues = scored.requeues
        payload_mode = "verdict rows"
        payload_bytes = scored.payload_bytes
        # The coordinator probes the cache (no miss accounting) and loads
        # only what it scores locally, so "sessions simulated" is its
        # dispatch count, not this cache instance's miss delta.
        simulated_override = scored.sessions_dispatched
    else:
        if hosts and hosts > 1:
            from repro.experiments.distrib import run_distributed

            distributed = run_distributed(
                specs, hosts=hosts, cache=resolved, work_dir=work_dir,
                workers=workers, transport=transport, steal=steal,
            )
            summaries = distributed.summaries
            host_stats = distributed.host_stats
            requeues = distributed.requeues
            payload_mode = "summaries"
            payload_bytes = distributed.payload_bytes
        else:
            summaries = run_sessions(
                specs, workers=workers, cache=resolved, progress=progress
            )
        runs = _pair_runs(scenarios, summaries)
        outcomes = [
            ScenarioOutcome(run.scenario, run.golden, run.suspect, _score_run(run))
            for run in runs
        ]
    wall_clock_s = time.perf_counter() - started  # repro: lint-ignore[DET003] reporting only
    after = resolved.stats() if resolved is not None else {}
    misses = after.get("misses", 0) - before.get("misses", 0)
    if simulated_override is not None:
        misses = simulated_override
    failed_keys = {
        session.spec_key
        for outcome in outcomes
        for session in (outcome.golden, outcome.suspect)
        if session.failed
    }
    return SweepResult(
        outcomes=outcomes,
        cache_hits=after.get("hits", 0) - before.get("hits", 0),
        cache_misses=misses,
        cache_disk_hits=after.get("disk_hits", 0) - before.get("disk_hits", 0),
        sessions_total=len(unique_keys),
        sessions_simulated=misses if resolved is not None else len(unique_keys),
        sessions_failed=len(failed_keys),
        wall_clock_s=wall_clock_s,
        grid=grid,
        host_stats=host_stats,
        requeues=requeues,
        transport=payload_mode,
        payload_bytes=payload_bytes,
    )


# ----------------------------------------------------------------------
# Grid registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GridDef:
    """A named, enumerable scenario grid."""

    name: str
    description: str
    build: Callable[[], List[ScenarioSpec]]


GRIDS: Dict[str, GridDef] = {}


def register_grid(name: str, description: str,
                  build: Callable[[], List[ScenarioSpec]]) -> GridDef:
    grid = GridDef(name=name, description=description, build=build)
    GRIDS[name] = grid
    return grid


def grid_names() -> List[str]:
    return sorted(GRIDS)


def grid_scenarios(name: str) -> List[ScenarioSpec]:
    try:
        return GRIDS[name].build()
    except KeyError:
        raise ReproError(
            f"unknown grid {name!r}; registered: {grid_names()}"
        ) from None


def clean_scenarios(parts: Optional[Sequence[str]] = None) -> List[ScenarioSpec]:
    """Clean baselines: one independent noise realization per part."""
    return [
        ScenarioSpec(
            name=f"clean@{part}",
            part=part,
            attack=None,
            detectors=("golden", "realtime"),
            seed=CONTROL_SEED,
        )
        for part in (parts or part_names())
    ]


def trojan_scenarios(
    parts: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> List[ScenarioSpec]:
    """Every FPGA Trojan T1–T9 on every requested part (noise-free bench)."""
    return [
        ScenarioSpec(
            name=f"{trojan_id}@{part}",
            part=part,
            attack=trojan_id,
            detectors=("golden", "quality"),
            seed=seed,
            noise_sigma=0.0,
        )
        for part in (parts or part_names())
        for trojan_id in TROJAN_IDS
    ]


def flaw3d_scenarios(
    part: str = "dense",
    noise_sigma: float = DEFAULT_NOISE_SIGMA,
    uart_period_ms: int = 100,
    margin: float = 0.05,
) -> List[ScenarioSpec]:
    """The eight Table II Flaw3D cases (with Table II's seeds) on one part."""
    return [
        ScenarioSpec(
            name=f"case{case}:{attack}",
            part=part,
            attack=attack,
            detectors=("golden", "sidechannel"),
            seed=2000 + case,
            noise_sigma=noise_sigma,
            uart_period_ms=uart_period_ms,
            margin=margin,
        )
        for case, attack in TABLE2_CASES
    ]


def dr0wned_scenarios(parts: Sequence[str] = ("standard", "dense")) -> List[ScenarioSpec]:
    """The dr0wned-style void attack on geometry-bearing parts."""
    return [
        ScenarioSpec(
            name=f"dr0wned@{part}",
            part=part,
            attack="dr0wned-void",
            detectors=("golden", "realtime"),
            seed=2042,
        )
        for part in parts
    ]


def full_grid() -> List[ScenarioSpec]:
    """Everything: clean baselines + all Trojans × all parts + G-code attacks."""
    return (
        clean_scenarios()
        + trojan_scenarios()
        + flaw3d_scenarios()
        + dr0wned_scenarios()
    )


def smoke_grid() -> List[ScenarioSpec]:
    """A seconds-long sanity grid on the tiny part (one clean, two attacks)."""
    return [
        clean_scenarios(parts=("tiny",))[0],
        ScenarioSpec(
            name="flaw3d-reduction-0.5@tiny",
            part="tiny",
            attack=flaw3d_reduction_attack(0.5),
            detectors=("golden", "realtime"),
            seed=2001,
        ),
        ScenarioSpec(
            name="T2@tiny",
            part="tiny",
            attack="T2",
            detectors=("golden", "quality"),
            seed=42,
            noise_sigma=0.0,
        ),
    ]


register_grid("clean", "clean baselines on every part (false-positive check)",
              clean_scenarios)
register_grid("smoke", "seconds-long sanity grid on the tiny part",
              smoke_grid)
register_grid("table1", "Trojan suite T1-T9 on the Table I part",
              lambda: trojan_scenarios(parts=("table1",)))
register_grid("trojans", "every Trojan T1-T9 on every registered part",
              trojan_scenarios)
register_grid("flaw3d", "the eight Table II Flaw3D cases on the dense part",
              flaw3d_scenarios)
register_grid("dr0wned", "dr0wned-style void attacks",
              dr0wned_scenarios)
register_grid("full", "clean + trojans x parts + flaw3d + dr0wned",
              full_grid)


# ----------------------------------------------------------------------
# Parametric axis sweeps
# ----------------------------------------------------------------------

def _format_param(value: Any) -> str:
    return f"{value:g}" if isinstance(value, float) else str(value)


def trojan_attack_variant(trojan_id: str, **overrides: Any) -> str:
    """Register (idempotently) a Trojan attack with overridden parameters.

    The name encodes the overrides (``"T2[keep_fraction=0.25]"``), so the
    same variant registers once no matter how many sweeps declare it. The
    variant flows through the ordinary compile/cache path: its session's
    content key covers the overridden Trojan config, so each curve point is
    simulated exactly once ever (per cache directory).

    A name collision with *different* parameters — a ``%g`` formatting
    collision between two nearby floats, or a user-registered attack that
    happens to share the name — raises :class:`ReproError` rather than
    silently running the wrong Trojan config (mirroring how
    :func:`register_program_part` rejects content mismatches).
    """
    base = get_attack(trojan_id)
    if base.kind != FPGA_ATTACK:
        raise ReproError(f"{trojan_id!r} is not an FPGA Trojan attack")
    suffix = ",".join(
        f"{key}={_format_param(value)}" for key, value in sorted(overrides.items())
    )
    if not suffix:
        return trojan_id
    name = f"{trojan_id}[{suffix}]"
    params = {**dict(base.trojan_params), **overrides}
    existing = ATTACKS.get(name)
    if existing is not None:
        if (
            existing.kind != FPGA_ATTACK
            or existing.trojan_id != base.trojan_id
            or dict(existing.trojan_params) != params
        ):
            raise ReproError(
                f"attack name {name!r} is already registered with different "
                f"parameters ({dict(existing.trojan_params)!r} vs {params!r}); "
                "refusing to run the wrong Trojan config under a shared name"
            )
        return name
    register_attack(
        AttackDef(
            name=name,
            kind=FPGA_ATTACK,
            description=f"{base.description} ({suffix})",
            trojan_id=base.trojan_id,
            trojan_params=params,
            grace_s=base.grace_s,
        )
    )
    return name


@dataclass(frozen=True)
class AxisSweep:
    """A parametric grid: one Trojan parameter swept over a value curve.

    Declares e.g. T2's ``keep_fraction`` curve or T9's arm-delay curve as
    data; :meth:`expand` turns each (part, value) into an ordinary
    :class:`ScenarioSpec` under a variant attack, so parametric grids run
    through the same batch/cache/report machinery as every other grid —
    and growing a curve by one value re-simulates exactly one session.
    """

    name: str
    attack: str
    param: str
    values: Tuple[Any, ...]
    parts: Tuple[str, ...] = ("tiny",)
    detectors: Tuple[str, ...] = ("golden", "quality")
    seed: int = 42
    noise_sigma: float = 0.0
    description: str = ""

    def expand(self) -> List[ScenarioSpec]:
        return [
            ScenarioSpec(
                name=f"{attack_name}@{part}",
                part=part,
                attack=attack_name,
                detectors=self.detectors,
                seed=self.seed,
                noise_sigma=self.noise_sigma,
            )
            for part in self.parts
            for value in self.values
            for attack_name in (
                trojan_attack_variant(self.attack, **{self.param: value}),
            )
        ]


AXIS_SWEEPS: Dict[str, AxisSweep] = {}


def register_axis_sweep(sweep: AxisSweep) -> AxisSweep:
    """Register an axis sweep; it becomes a named grid of the same name."""
    AXIS_SWEEPS[sweep.name] = sweep
    register_grid(
        sweep.name,
        sweep.description or f"{sweep.attack} {sweep.param} curve over {sweep.values}",
        sweep.expand,
    )
    return sweep


register_axis_sweep(
    AxisSweep(
        name="t2-curve",
        attack="T2",
        param="keep_fraction",
        values=(0.25, 0.5, 0.75, 0.9),
        description="T2 extrusion-masking keep_fraction curve on the tiny part",
    )
)
register_axis_sweep(
    AxisSweep(
        name="t9-curve",
        attack="T9",
        param="arm_delay_s",
        values=(0.0, 2.5, 5.0, 10.0),
        description="T9 fan-sabotage arm-delay curve on the tiny part "
        "(exercises duration-aware fan detection)",
    )
)
register_grid(
    "curves",
    "every registered parametric axis sweep",
    lambda: [sc for sweep in AXIS_SWEEPS.values() for sc in sweep.expand()],
)
