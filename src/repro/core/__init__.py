"""The OFFRAMPS platform: an FPGA machine-in-the-middle for 3D printers.

This package is the paper's primary contribution, reproduced in simulation:

* :class:`~repro.core.board.OfframpsBoard` — the PCB with its jumper banks:
  every harness signal can run in BYPASS (straight through) or FPGA mode
  (routed through the fabric), matching Figure 3's three signal paths
  (bypass, modification, recording — recording is passive taps, available in
  both modes).
* :class:`~repro.core.fpga.FpgaFabric` — the Cmod-A7 stand-in: a 100 MHz
  clock quantum, a propagation-delay model (the paper measured 12.923 ns
  worst case), and the module registry.
* :mod:`repro.core.modules` — the paper's VHDL sub-modules re-created:
  edge detection, pulse generation, homing detection, axis tracking, UART
  export, and the Trojan control mux.
* :mod:`repro.core.trojans` — the nine Table I Trojans.
* :mod:`repro.core.capture` — transaction recording in the Figure 4 format.
"""

from repro.core.board import JumperMode, OfframpsBoard
from repro.core.capture import PulseCapture, Transaction, load_capture_csv, save_capture_csv
from repro.core.fpga import FPGA_CLOCK_HZ, FpgaFabric
from repro.core.modules.axis_tracker import AxisTracker
from repro.core.modules.homing_detect import HomingDetector
from repro.core.modules.uart_export import UartExporter
from repro.core.trojans import TROJAN_CLASSES, TrojanCategory, make_trojan

__all__ = [
    "AxisTracker",
    "FPGA_CLOCK_HZ",
    "FpgaFabric",
    "HomingDetector",
    "JumperMode",
    "OfframpsBoard",
    "PulseCapture",
    "TROJAN_CLASSES",
    "Transaction",
    "TrojanCategory",
    "UartExporter",
    "load_capture_csv",
    "make_trojan",
    "save_capture_csv",
]
