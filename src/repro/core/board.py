"""The OFFRAMPS board: jumper banks and the Trojan-control signal mux.

Per signal, the jumpers select one of the paper's Figure 3 paths:

* **BYPASS** — the harness forwards directly (Figure 3a). Passive capture
  taps still see everything (Figure 3c), since recording never claims a
  signal.
* **FPGA** — the signal is intercepted and re-driven by the fabric
  (Figure 3b): every upstream event is offered to the enabled Trojans in
  registration order; the first one that claims it decides (drop / replace /
  pass), and the result is forwarded downstream after the propagation delay.
  Trojans may also *inject* events the Arduino never produced.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterable, List, Optional

from repro.electronics.harness import SignalHarness, SignalPath
from repro.electronics.pins import SignalKind
from repro.errors import OfframpsError
from repro.core.fpga import FpgaFabric
from repro.sim.kernel import Simulator

_OWNER = "offramps"


class JumperMode(enum.Enum):
    """Position of one signal's jumper bank."""

    BYPASS = "bypass"
    FPGA = "fpga"


class TrojanAction:
    """What a Trojan wants done with one intercepted event."""

    __slots__ = ("kind", "value")

    PASS = "pass"
    DROP = "drop"
    REPLACE = "replace"

    def __init__(self, kind: str, value: Optional[float] = None) -> None:
        self.kind = kind
        self.value = value

    @classmethod
    def passthrough(cls) -> "TrojanAction":
        return cls(cls.PASS)

    @classmethod
    def drop(cls) -> "TrojanAction":
        return cls(cls.DROP)

    @classmethod
    def replace(cls, value: float) -> "TrojanAction":
        return cls(cls.REPLACE, value)


class OfframpsBoard:
    """The MITM platform, installed in a harness."""

    def __init__(self, sim: Simulator, harness: SignalHarness, fabric: Optional[FpgaFabric] = None) -> None:
        self.sim = sim
        self.harness = harness
        self.fabric = fabric or FpgaFabric(sim)
        self._modes: Dict[str, JumperMode] = {name: JumperMode.BYPASS for name in harness.paths}
        self._interceptors: Dict[str, List[Callable]] = {}
        self.events_intercepted = 0
        self.events_dropped = 0
        self.events_replaced = 0
        self.events_injected = 0

    # ------------------------------------------------------------------
    # Jumper configuration
    # ------------------------------------------------------------------
    def mode(self, signal: str) -> JumperMode:
        try:
            return self._modes[signal]
        except KeyError:
            raise OfframpsError(f"no such signal on the board: {signal!r}") from None

    def set_mode(self, signal: str, mode: JumperMode) -> None:
        """Move one signal's jumpers (only while that signal is quiescent)."""
        current = self.mode(signal)
        if current is mode:
            return
        path = self.harness.path(signal)
        if mode is JumperMode.FPGA:
            path.install_interceptor(_OWNER, self._on_intercepted)
        else:
            path.remove_interceptor(_OWNER)
        self._modes[signal] = mode

    def route_through_fpga(self, signals: Iterable[str]) -> None:
        for signal in signals:
            self.set_mode(signal, JumperMode.FPGA)

    def intercepted_signals(self) -> List[str]:
        return sorted(
            name for name, mode in self._modes.items() if mode is JumperMode.FPGA
        )

    # ------------------------------------------------------------------
    # Trojan-control mux
    # ------------------------------------------------------------------
    def register_interceptor(
        self, signal: str, handler: Callable[[SignalPath, str, float, int], TrojanAction]
    ) -> None:
        """Attach Trojan logic to an FPGA-routed signal.

        ``handler(path, kind, value, time_ns)`` returns a
        :class:`TrojanAction`. Handlers are consulted in registration order;
        the first non-PASS action wins (the paper's output mux).
        """
        self._interceptors.setdefault(signal, []).append(handler)

    def unregister_interceptor(self, signal: str, handler: Callable) -> None:
        handlers = self._interceptors.get(signal, [])
        if handler in handlers:
            handlers.remove(handler)

    def _on_intercepted(self, path: SignalPath, kind: str, value: float, time_ns: int) -> None:
        self.events_intercepted += 1
        action = TrojanAction.passthrough()
        for handler in self._interceptors.get(path.spec.name, []):
            candidate = handler(path, kind, value, time_ns)
            if candidate is not None and candidate.kind != TrojanAction.PASS:
                action = candidate
                break
        if action.kind == TrojanAction.DROP:
            self.events_dropped += 1
            return
        out_value = value if action.kind == TrojanAction.PASS else action.value
        if action.kind == TrojanAction.REPLACE:
            self.events_replaced += 1
        self._drive_downstream(path, kind, out_value)

    def _drive_downstream(self, path: SignalPath, kind: str, value: float) -> None:
        if kind == "pulse":
            self.fabric.forward(lambda: path.downstream.pulse(int(value)))
        else:
            self.fabric.forward(lambda: path.downstream.drive(value))

    # ------------------------------------------------------------------
    # Injection (events the Arduino never sent)
    # ------------------------------------------------------------------
    def inject_pulse(self, signal: str, width_ns: int = 2_000) -> None:
        """Emit one pulse on the downstream side of a step signal."""
        path = self.harness.path(signal)
        if path.spec.kind is not SignalKind.STEP:
            raise OfframpsError(f"inject_pulse on non-step signal {signal!r}")
        self.events_injected += 1
        path.downstream.pulse(width_ns)

    def inject_level(self, signal: str, value: float) -> None:
        """Drive a level/duty value on the downstream side of a signal."""
        path = self.harness.path(signal)
        if path.spec.kind is SignalKind.STEP:
            raise OfframpsError(f"inject_level on step signal {signal!r}")
        self.events_injected += 1
        path.downstream.drive(value)

    def downstream_level(self, signal: str) -> float:
        """Read a downstream wire's current level/duty (for Trojan logic)."""
        path = self.harness.path(signal)
        wire = path.downstream
        return wire.duty if path.spec.kind is SignalKind.PWM else wire.value
