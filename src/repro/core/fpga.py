"""FPGA fabric model: clocking and propagation for the Cmod-A7 stand-in.

The real OFFRAMPS deploys VHDL modules on an Artix-7 at 100 MHz. The
behaviours that matter to the system are (a) the fabric observes and drives
signals with a small, bounded latency, and (b) Trojan logic can act at
FPGA-clock resolution, e.g. inserting pulses *between* original step pulses.
Both are captured here: event times are quantised to the 10 ns clock and
forwarded signals incur a configurable propagation delay, defaulting to the
paper's measured worst case of 12.923 ns (rounded up to 13 ns — the kernel's
integer tick).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import OfframpsError
from repro.sim.kernel import Simulator

FPGA_CLOCK_HZ = 100_000_000
"""The Cmod-A7 design clock used by the paper."""

FPGA_CLOCK_PERIOD_NS = 10

MAX_PROPAGATION_DELAY_NS = 12.923
"""The paper's reported worst-case MITM propagation delay (on Y_DIR)."""


class FpgaFabric:
    """Clock-domain utilities shared by all OFFRAMPS modules."""

    def __init__(self, sim: Simulator, propagation_delay_ns: float = MAX_PROPAGATION_DELAY_NS) -> None:
        if propagation_delay_ns < 0:
            raise OfframpsError("propagation delay cannot be negative")
        self.sim = sim
        self.propagation_delay_ns = float(propagation_delay_ns)
        self._delay_ticks = max(1, -(-int(propagation_delay_ns) // 1))  # ceil to >=1ns
        self.forwarded_events = 0

    @property
    def clock_period_ns(self) -> int:
        return FPGA_CLOCK_PERIOD_NS

    def quantize(self, time_ns: int) -> int:
        """Round ``time_ns`` up to the next FPGA clock edge."""
        remainder = time_ns % FPGA_CLOCK_PERIOD_NS
        return time_ns if remainder == 0 else time_ns + (FPGA_CLOCK_PERIOD_NS - remainder)

    def forward(self, action: Callable[[], None]) -> None:
        """Run ``action`` after the fabric's propagation delay.

        Used by the board to drive downstream wires: the delay is what the
        overhead analysis (Section V-B) budgets against the signal timing.
        """
        self.forwarded_events += 1
        delay = max(1, int(round(self.propagation_delay_ns)))
        self.sim.schedule(delay, action)

    def at_next_tick(self, action: Callable[[], None]) -> None:
        """Run ``action`` on the next clock edge (module-to-module timing)."""
        target = self.quantize(self.sim.now + 1)
        self.sim.schedule_at(target, action)
