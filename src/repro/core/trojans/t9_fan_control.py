"""Trojan T9 — part-cooling fan sabotage.

"Trojan T9 affects the part-cooling fan on the printer and causes either
over- or under-cooling during printing. ... Print quality can be degraded by
either over- or under-cooling. It can fail if excessively cooled at the first
layer causing it to pull off the build plate." Table I's variant arbitrarily
*reduces* fan speed mid-print.

After an arm delay following homing, every firmware duty update on D9 is
scaled by ``scale`` (< 1 under-cools, > 1 over-cools, clamped to 1.0 by the
wire), and the current duty is rewritten at engagement so the sabotage takes
effect immediately, not only at the next M106.
"""

from __future__ import annotations

from typing import Optional

from repro.core.board import TrojanAction
from repro.core.trojans.base import Trojan, TrojanCategory
from repro.electronics.harness import SignalPath
from repro.sim.time import S


class FanControlTrojan(Trojan):
    """Scale the part-cooling fan duty mid-print."""

    trojan_id = "T9"
    category = TrojanCategory.PART_MODIFICATION
    scenario = "Hardware Failure"
    effect = "Arbitrarily reducing part fan speed mid-print"
    signals_intercepted = ("D9_FAN",)

    def __init__(self, scale: float = 0.15, arm_delay_s: float = 15.0) -> None:
        super().__init__()
        if scale < 0:
            raise ValueError("scale cannot be negative")
        self.scale = scale
        self.arm_delay_s = arm_delay_s
        self.engaged = False
        self.engagements = 0  # persists across deactivation (for scoring)
        self.duty_updates_scaled = 0

    def _on_attach(self) -> None:
        self.ctx.homing.on_homed(self._homed)

    def _homed(self, _time_ns: int) -> None:
        self.ctx.sim.schedule(int(self.arm_delay_s * S), self._engage)

    def _engage(self) -> None:
        if not self.active or self.engaged:
            return
        self.engaged = True
        self.engagements += 1
        current = self.ctx.harness.upstream("D9_FAN").duty
        self.ctx.board.inject_level("D9_FAN", current * self.scale)

    def _on_deactivate(self) -> None:
        if self.engaged:
            current = self.ctx.harness.upstream("D9_FAN").duty
            self.ctx.board.inject_level("D9_FAN", current)
            self.engaged = False

    def on_event(
        self, path: SignalPath, kind: str, value: float, time_ns: int
    ) -> Optional[TrojanAction]:
        if not self.active or not self.engaged:
            return None
        self.duty_updates_scaled += 1
        return TrojanAction.replace(value * self.scale)
