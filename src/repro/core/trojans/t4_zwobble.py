"""Trojan T4 — emulated Z-wobble.

"Z-wobble is a common build issue with 3D printers, where the frame holding
the Z-axis is not rigid; thus, the print head can shift during printing.
Trojan T4 emulates this error by adding steps on one axis during printing
causing layer shifts" — "small shift along X and Y axis on random Z layer
increments" (Table I).

A :class:`~repro.core.trojans.layer_watch.LayerChangeWatcher` detects layer
changes from the Z/XY step streams; on each one the Trojan flips a (seeded)
coin and, on success, injects a small X or Y burst.
"""

from __future__ import annotations

from typing import Optional

from repro.core.modules.pulse_gen import PulseGenerator
from repro.core.trojans.base import Trojan, TrojanCategory
from repro.core.trojans.layer_watch import LayerChangeWatcher


class ZWobbleTrojan(Trojan):
    """Random small X/Y shifts at layer changes."""

    trojan_id = "T4"
    category = TrojanCategory.PART_MODIFICATION
    scenario = "Z-Wobble"
    effect = "Small Shift along X and Y axis on random Z layer increments"

    def __init__(
        self,
        probability: float = 0.5,
        min_shift_steps: int = 25,
        max_shift_steps: int = 60,
        injection_rate_hz: float = 20_000.0,
    ) -> None:
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.min_shift_steps = min_shift_steps
        self.max_shift_steps = max_shift_steps
        self.injection_rate_hz = injection_rate_hz
        self.shifts_injected = 0
        self._watcher: Optional[LayerChangeWatcher] = None
        self._generator: Optional[PulseGenerator] = None

    @property
    def layer_events_seen(self) -> int:
        return self._watcher.layer_events if self._watcher is not None else 0

    def _on_attach(self) -> None:
        self._watcher = LayerChangeWatcher(
            self.ctx.harness, gate=lambda: self.ctx.homing.homed
        )
        self._watcher.on_layer_change(self._layer_change)

    def _layer_change(self, _time_ns: int) -> None:
        if not self.active:
            return
        if self.rng.random() >= self.probability:
            return
        if self._generator is not None and self._generator.busy:
            return
        axis = self.rng.choice(("X", "Y"))
        count = self.rng.randint(self.min_shift_steps, self.max_shift_steps)
        signal = f"{axis}_STEP"
        board = self.ctx.board
        self._generator = PulseGenerator(
            self.ctx.sim, lambda width: board.inject_pulse(signal, width)
        )
        self._generator.burst(count, self.injection_rate_hz)
        self.shifts_injected += 1

    def _on_deactivate(self) -> None:
        if self._generator is not None:
            self._generator.stop()
