"""The Table I Trojan suite.

Nine Trojans spanning part modification (PM), denial of service (DoS), and
destructive (D) classes — "the largest suite ever supported by a single
platform". :data:`TROJAN_CLASSES` maps Table I identifiers to classes;
:func:`make_trojan` builds one by id with optional parameter overrides.
"""

from typing import Dict, Type

from repro.core.trojans.base import Trojan, TrojanCategory, TrojanContext
from repro.core.trojans.t1_axis_shift import AxisShiftTrojan
from repro.core.trojans.t2_extrusion_scale import ExtrusionScaleTrojan
from repro.core.trojans.t3_retraction import RetractionTrojan
from repro.core.trojans.t4_zwobble import ZWobbleTrojan
from repro.core.trojans.t5_zshift import ZShiftTrojan
from repro.core.trojans.t6_heater_dos import HeaterDosTrojan
from repro.core.trojans.t7_thermal_runaway import ThermalRunawayTrojan
from repro.core.trojans.t8_stepper_disable import StepperDisableTrojan
from repro.core.trojans.t9_fan_control import FanControlTrojan

TROJAN_CLASSES: Dict[str, Type[Trojan]] = {
    "T1": AxisShiftTrojan,
    "T2": ExtrusionScaleTrojan,
    "T3": RetractionTrojan,
    "T4": ZWobbleTrojan,
    "T5": ZShiftTrojan,
    "T6": HeaterDosTrojan,
    "T7": ThermalRunawayTrojan,
    "T8": StepperDisableTrojan,
    "T9": FanControlTrojan,
}


def make_trojan(trojan_id: str, **params) -> Trojan:
    """Instantiate a Table I Trojan by its identifier."""
    try:
        cls = TROJAN_CLASSES[trojan_id.upper()]
    except KeyError:
        raise KeyError(
            f"unknown trojan {trojan_id!r}; expected one of {sorted(TROJAN_CLASSES)}"
        ) from None
    return cls(**params)


__all__ = [
    "AxisShiftTrojan",
    "ExtrusionScaleTrojan",
    "FanControlTrojan",
    "HeaterDosTrojan",
    "RetractionTrojan",
    "StepperDisableTrojan",
    "TROJAN_CLASSES",
    "ThermalRunawayTrojan",
    "Trojan",
    "TrojanCategory",
    "TrojanContext",
    "ZShiftTrojan",
    "ZWobbleTrojan",
    "make_trojan",
]
