"""Trojan T2 — constant under-extrusion ("Incorrect Slicing").

"The Trojaned part was printed while masking half of extruder stepper motor
pulses sent to the RAMPS board, reducing the flow and amount of material
extruded by 50%. This implements reduction Trojans from Flaw3D."

Deposition pulses are kept with probability ``keep_fraction`` using an exact
accumulator, so the realised flow ratio equals the parameter. Retraction and
its matching re-prime are left untouched: a retraction-debt counter
(reverse pulses add debt, forward pulses first pay it down) distinguishes a
prime from fresh deposition at pure signal level — masking primes would
desynchronise the retraction state rather than starve the part.
"""

from __future__ import annotations

from typing import Optional

from repro.core.board import TrojanAction
from repro.core.trojans.base import Trojan, TrojanCategory
from repro.electronics.harness import SignalPath


class ExtrusionScaleTrojan(Trojan):
    """Mask a fraction of forward extruder STEP pulses."""

    trojan_id = "T2"
    category = TrojanCategory.PART_MODIFICATION
    scenario = "Incorrect Slicing"
    effect = "Constant over / under extrusion per print"
    signals_intercepted = ("E_STEP",)

    def __init__(self, keep_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        self.keep_fraction = keep_fraction
        self._accumulator = 0.0
        self._retraction_debt = 0
        self.pulses_masked = 0
        self.pulses_kept = 0
        self._e_dir = None

    def _on_attach(self) -> None:
        self._e_dir = self.ctx.harness.upstream("E_DIR")

    def on_event(
        self, path: SignalPath, kind: str, value: float, time_ns: int
    ) -> Optional[TrojanAction]:
        if not self.active or kind != "pulse":
            return None
        if self._e_dir.value == 0:
            self._retraction_debt += 1
            return None  # retraction: pass through
        if self._retraction_debt > 0:
            self._retraction_debt -= 1
            return None  # re-prime after a retraction: pass through
        self._accumulator += self.keep_fraction
        if self._accumulator >= 1.0:
            self._accumulator -= 1.0
            self.pulses_kept += 1
            return None
        self.pulses_masked += 1
        return TrojanAction.drop()
