"""Trojan T6 — heater denial of service.

"This Trojan was observed to successfully turn off the PID controlled
MOSFETs employed in providing power to the heating elements, causing the
Marlin firmware to enter an error state and end the print prematurely."

The D10 (hotend) and/or D8 (bed) gate signals are intercepted and forced to
zero duty. The firmware keeps commanding heat, sees no temperature rise, and
its heating watchdog kills the print — the denial of service.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.board import TrojanAction
from repro.core.trojans.base import Trojan, TrojanCategory
from repro.electronics.harness import SignalPath

_SIGNAL_FOR = {"hotend": "D10_HOTEND", "bed": "D8_BED"}


class HeaterDosTrojan(Trojan):
    """Force heater MOSFET gates off regardless of firmware commands."""

    trojan_id = "T6"
    category = TrojanCategory.DENIAL_OF_SERVICE
    scenario = "Hardware Failure"
    effect = "Denial of service via disabling D8/D10 heating element power"

    def __init__(self, targets: Tuple[str, ...] = ("hotend",)) -> None:
        super().__init__()
        for target in targets:
            if target not in _SIGNAL_FOR:
                raise ValueError(f"unknown heater target {target!r}")
        self.targets = tuple(targets)
        self.signals_intercepted = tuple(_SIGNAL_FOR[t] for t in targets)
        self.duty_updates_blocked = 0

    def _on_activate(self) -> None:
        for signal in self.signals_intercepted:
            self.ctx.board.inject_level(signal, 0.0)

    def on_event(
        self, path: SignalPath, kind: str, value: float, time_ns: int
    ) -> Optional[TrojanAction]:
        if not self.active:
            return None
        self.duty_updates_blocked += 1
        return TrojanAction.replace(0.0)
