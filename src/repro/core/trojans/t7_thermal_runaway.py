"""Trojan T7 — forced thermal runaway (destructive).

"Trojan T7 forces the heated elements to continue heating regardless of the
firmware temperature control. By implementing this Trojan in hardware we are
not only able to force overheating, but also able to ignore the firmware's
thermal runaway panic and continue heating the elements. ... the MOSFETs are
fully turned on at a 100% duty cycle, the temperature of the hot-end was
observed to rise extremely fast, passing the intended temperature within a
few seconds of activation."

Every firmware duty update on the intercepted gate is replaced with 100%,
and activation immediately drives the gate on. The firmware's MAXTEMP panic
fires and *its* kill() zeroes the upstream signal — which this Trojan also
replaces, so the physical heater never turns off and the plant records a
damage event.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.board import TrojanAction
from repro.core.trojans.base import Trojan, TrojanCategory
from repro.electronics.harness import SignalPath

_SIGNAL_FOR = {"hotend": "D10_HOTEND", "bed": "D8_BED"}


class ThermalRunawayTrojan(Trojan):
    """Permanently enable heater MOSFETs at 100% duty."""

    trojan_id = "T7"
    category = TrojanCategory.DESTRUCTIVE
    scenario = "Hardware Failure"
    effect = (
        "Forcing thermal runaway and permanently enabling heating elements"
    )

    def __init__(self, targets: Tuple[str, ...] = ("hotend",)) -> None:
        super().__init__()
        for target in targets:
            if target not in _SIGNAL_FOR:
                raise ValueError(f"unknown heater target {target!r}")
        self.targets = tuple(targets)
        self.signals_intercepted = tuple(_SIGNAL_FOR[t] for t in targets)
        self.firmware_commands_overridden = 0

    def _on_activate(self) -> None:
        for signal in self.signals_intercepted:
            self.ctx.board.inject_level(signal, 1.0)

    def _on_deactivate(self) -> None:
        # Restore whatever the firmware is currently commanding.
        for signal in self.signals_intercepted:
            upstream = self.ctx.harness.upstream(signal)
            self.ctx.board.inject_level(signal, upstream.duty)

    def on_event(
        self, path: SignalPath, kind: str, value: float, time_ns: int
    ) -> Optional[TrojanAction]:
        if not self.active:
            return None
        self.firmware_commands_overridden += 1
        return TrojanAction.replace(1.0)
