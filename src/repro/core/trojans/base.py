"""Trojan base class and shared context.

Each Table I Trojan is a small event-driven module: it may *intercept*
signals routed through the FPGA (returning drop/replace/pass actions to the
mux) and it may *inject* events the Arduino never produced. Activation
triggers commonly key off the homing detector — "the first action taken at
the start of print and can determine when to activate Trojans".
"""

from __future__ import annotations

import enum
import random
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.board import OfframpsBoard, TrojanAction
from repro.core.modules.homing_detect import HomingDetector
from repro.electronics.harness import SignalHarness, SignalPath
from repro.errors import OfframpsError
from repro.sim.kernel import Simulator


class TrojanCategory(enum.Enum):
    """Table I's Trojan taxonomy."""

    PART_MODIFICATION = "PM"
    DENIAL_OF_SERVICE = "DoS"
    DESTRUCTIVE = "D"


@dataclass
class TrojanContext:
    """Everything a Trojan may touch, handed over at attach time."""

    sim: Simulator
    board: OfframpsBoard
    harness: SignalHarness
    homing: HomingDetector
    seed: int = 0

    def rng_for(self, trojan_id: str) -> random.Random:
        """A deterministic per-Trojan RNG (reproducible experiments).

        The id is mixed in via CRC-32, not ``hash()``: string hashing is
        randomized per process (PYTHONHASHSEED), which used to make every
        stochastic Trojan's draws differ from run to run — the exact
        irreproducibility the seed exists to prevent.
        """
        return random.Random((self.seed << 8) ^ zlib.crc32(trojan_id.encode()))


class Trojan:
    """Base class for the Table I Trojans."""

    trojan_id: str = "T?"
    category: TrojanCategory = TrojanCategory.PART_MODIFICATION
    scenario: str = ""
    effect: str = ""
    signals_intercepted: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.ctx: Optional[TrojanContext] = None
        self.rng: Optional[random.Random] = None
        self.active = False
        self.activations = 0

    # ------------------------------------------------------------------
    def attach(self, ctx: TrojanContext) -> None:
        """Bind the Trojan to a platform; called once by TrojanControl."""
        if self.ctx is not None:
            raise OfframpsError(f"{self.trojan_id} is already attached")
        self.ctx = ctx
        self.rng = ctx.rng_for(self.trojan_id)
        self._on_attach()

    def activate(self) -> None:
        if self.ctx is None:
            raise OfframpsError(f"{self.trojan_id} must be attached before activation")
        if not self.active:
            self.active = True
            self.activations += 1
            self._on_activate()

    def deactivate(self) -> None:
        if self.active:
            self.active = False
            self._on_deactivate()

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _on_attach(self) -> None:
        """Install passive taps (runs once, before any activation)."""

    def _on_activate(self) -> None:
        """Begin malicious behaviour."""

    def _on_deactivate(self) -> None:
        """Cease malicious behaviour and restore pass-through state."""

    def on_event(
        self, path: SignalPath, kind: str, value: float, time_ns: int
    ) -> Optional[TrojanAction]:
        """Mux callback for intercepted signals; default is pass-through."""
        return None

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"{self.trojan_id} [{self.category.value}] scenario={self.scenario!r} "
            f"effect={self.effect!r}"
        )
