"""Trojan T1 — random X/Y axis shifts ("Loose Belt").

"Implements an arbitrary shift along the X and Y axes every ten seconds ...
The FPGA allows injection of stepper motor pulses in between the original
control pulses, causing longer travel motions of the print head. This effect
is used by the Trojan to add extra steps without adding extra print time."

The Trojan is pure *injection*: the original pulse stream passes untouched
while a pulse-generator burst adds extra steps in whatever direction the DIR
line currently holds — so the shift direction is effectively arbitrary, as
in the paper's print.
"""

from __future__ import annotations

from typing import Optional

from repro.core.modules.pulse_gen import PulseGenerator
from repro.core.trojans.base import Trojan, TrojanCategory
from repro.sim.kernel import PeriodicTask
from repro.sim.time import S


class AxisShiftTrojan(Trojan):
    """Inject extra X/Y step pulses on a fixed period after homing."""

    trojan_id = "T1"
    category = TrojanCategory.PART_MODIFICATION
    scenario = "Loose Belt"
    effect = "Randomly changes steps from X or Y axis during print"

    def __init__(
        self,
        period_s: float = 10.0,
        min_shift_steps: int = 30,
        max_shift_steps: int = 90,
        injection_rate_hz: float = 20_000.0,
    ) -> None:
        super().__init__()
        self.period_s = period_s
        self.min_shift_steps = min_shift_steps
        self.max_shift_steps = max_shift_steps
        self.injection_rate_hz = injection_rate_hz
        self.shifts_injected = 0
        self.steps_injected = 0
        self._task: Optional[PeriodicTask] = None
        self._generator: Optional[PulseGenerator] = None

    def _on_attach(self) -> None:
        self.ctx.homing.on_homed(self._homed)

    def _homed(self, _time_ns: int) -> None:
        if self.active and self._task is None:
            self._task = self.ctx.sim.every(int(self.period_s * S), self._fire)

    def _on_activate(self) -> None:
        if self.ctx.homing.homed and self._task is None:
            self._task = self.ctx.sim.every(int(self.period_s * S), self._fire)

    def _on_deactivate(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self._generator is not None:
            self._generator.stop()

    def _fire(self) -> None:
        if not self.active:
            return
        if self._generator is not None and self._generator.busy:
            return  # previous burst still draining
        axis = self.rng.choice(("X", "Y"))
        count = self.rng.randint(self.min_shift_steps, self.max_shift_steps)
        signal = f"{axis}_STEP"
        board = self.ctx.board
        self._generator = PulseGenerator(
            self.ctx.sim, lambda width: board.inject_pulse(signal, width)
        )
        self._generator.burst(count, self.injection_rate_hz)
        self.shifts_injected += 1
        self.steps_injected += count
