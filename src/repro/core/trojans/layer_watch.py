"""Layer-change watcher: shared trigger logic for the Z-keyed Trojans.

A layer change, seen from the harness, is the first upward Z step that
follows meaningful X/Y activity since the previous Z motion — a 0.3 mm layer
move is ~120 Z steps, but it must count as *one* event. T4 (Z-wobble) and
T5 (Z shift) both trigger on these events.
"""

from __future__ import annotations

from typing import Callable, List

from repro.electronics.harness import SignalHarness

_MIN_XY_STEPS_BETWEEN_LAYERS = 400  # ~4 mm of motion: filters micro-jogs


class LayerChangeWatcher:
    """Fires a callback once per observed layer change."""

    def __init__(self, harness: SignalHarness, gate: Callable[[], bool]) -> None:
        """``gate()`` must return True for events to fire (e.g. homed)."""
        self._gate = gate
        self._xy_steps_since_z = 0
        self.layer_events = 0
        self._listeners: List[Callable[[int], None]] = []
        self._z_dir = harness.upstream("Z_DIR")
        # Z pulses stay per-step (no batch handler): the layer decision and
        # its listeners depend on exact interleaving with X/Y counts, so any
        # step window containing a Z pulse falls back to precise dispatch —
        # which also means the X/Y bulk increments below can never reorder
        # around a Z pulse.
        harness.upstream("Z_STEP").on_pulse(self._on_z_step)
        harness.upstream("X_STEP").on_pulse(self._on_xy_step, batch=self._on_xy_batch)
        harness.upstream("Y_STEP").on_pulse(self._on_xy_step, batch=self._on_xy_batch)

    def on_layer_change(self, callback: Callable[[int], None]) -> None:
        """Subscribe ``callback(time_ns)`` to layer-change events."""
        self._listeners.append(callback)

    def _on_xy_step(self, _wire, _time_ns: int, _width_ns: int) -> None:
        self._xy_steps_since_z += 1

    def _on_xy_batch(self, _wire, times_ns, _width_ns: int) -> None:
        self._xy_steps_since_z += len(times_ns)

    def _on_z_step(self, _wire, time_ns: int, _width_ns: int) -> None:
        moved_enough = self._xy_steps_since_z >= _MIN_XY_STEPS_BETWEEN_LAYERS
        self._xy_steps_since_z = 0
        if not moved_enough or not self._gate():
            return
        if self._z_dir.value != 1:
            return  # layer changes go up
        self.layer_events += 1
        for listener in list(self._listeners):
            listener(time_ns)
