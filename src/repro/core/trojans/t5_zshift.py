"""Trojan T5 — Z-layer shift / delamination.

"Causes an arbitrarily sized shift on the Z-axis, causing poor layer adhesion
or, in severe cases, layer delamination. This mimics improper slicing
settings if the layer spacing is modified throughout the print, and poor
hardware setup if a shift is done at the start of print."

At the configured layer change the Trojan injects extra upward Z pulses: the
physical nozzle rises above where the firmware believes it is, so the layer
deposited after the shift sits above an opened gap — delamination.
"""

from __future__ import annotations

from typing import Optional

from repro.core.modules.pulse_gen import PulseGenerator
from repro.core.trojans.base import Trojan, TrojanCategory
from repro.core.trojans.layer_watch import LayerChangeWatcher


class ZShiftTrojan(Trojan):
    """Inject an extra Z rise at one (or every Nth) layer change."""

    trojan_id = "T5"
    category = TrojanCategory.PART_MODIFICATION
    scenario = "Incorrect Slicing"
    effect = "Layer delamination via Z-layer shift"

    def __init__(
        self,
        at_layer: int = 2,
        extra_z_mm: float = 0.35,
        repeat_every: Optional[int] = None,
        injection_rate_hz: float = 2_000.0,
    ) -> None:
        super().__init__()
        if at_layer < 1:
            raise ValueError("at_layer must be >= 1")
        if extra_z_mm <= 0:
            raise ValueError("extra_z_mm must be positive")
        self.at_layer = at_layer
        self.extra_z_mm = extra_z_mm
        self.repeat_every = repeat_every
        self.injection_rate_hz = injection_rate_hz
        self.shifts_injected = 0
        self._watcher: Optional[LayerChangeWatcher] = None
        self._generator: Optional[PulseGenerator] = None

    @property
    def layer_events_seen(self) -> int:
        return self._watcher.layer_events if self._watcher is not None else 0

    def _on_attach(self) -> None:
        self._watcher = LayerChangeWatcher(
            self.ctx.harness, gate=lambda: self.ctx.homing.homed
        )
        self._watcher.on_layer_change(self._layer_change)

    def _layer_change(self, _time_ns: int) -> None:
        if not self.active:
            return
        layer = self._watcher.layer_events
        fire = layer == self.at_layer
        if self.repeat_every and layer > self.at_layer:
            fire = (layer - self.at_layer) % self.repeat_every == 0
        if not fire:
            return
        if self._generator is not None and self._generator.busy:
            return
        # DIR is already "up" at a layer change; the injected pulses ride it.
        # 400 steps/mm is the Z drivetrain fact shared with the plant profile.
        count = max(1, int(self.extra_z_mm * 400))
        board = self.ctx.board
        self._generator = PulseGenerator(
            self.ctx.sim, lambda width: board.inject_pulse("Z_STEP", width)
        )
        self._generator.burst(count, self.injection_rate_hz)
        self.shifts_injected += 1

    def _on_deactivate(self) -> None:
        if self._generator is not None:
            self._generator.stop()
