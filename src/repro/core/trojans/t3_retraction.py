"""Trojan T3 — retraction tampering ("Incorrect Slicing").

"Retraction refers to the amount of filament that is pulled back during
certain movements. By affecting extruder steps during some movements we can
cause over or under extrusion in a way that could appear to a user as if part
settings were incorrect when sliced."

Two modes, keyed to recent Y-axis motion (the paper's trigger: "filament
retraction during Y steps"):

* ``over`` — retraction-direction pulses are masked, so less filament is
  pulled back and the restart over-extrudes (the Table I photo's mode);
* ``under`` — each retraction pulse is doubled by injection, pulling back
  extra filament and starving the restart.
"""

from __future__ import annotations

from typing import Optional

from repro.core.board import TrojanAction
from repro.core.trojans.base import Trojan, TrojanCategory
from repro.electronics.harness import SignalPath
from repro.sim.time import MS

_Y_RECENT_WINDOW_NS = 200 * MS


class RetractionTrojan(Trojan):
    """Tamper with retraction-direction extruder pulses near Y motion."""

    trojan_id = "T3"
    category = TrojanCategory.PART_MODIFICATION
    scenario = "Incorrect Slicing"
    effect = "Increases or decreases filament retraction during Y steps"
    signals_intercepted = ("E_STEP",)

    def __init__(self, mode: str = "over", mask_fraction: float = 1.0) -> None:
        super().__init__()
        if mode not in ("over", "under"):
            raise ValueError(f"mode must be 'over' or 'under', got {mode!r}")
        if not 0.0 < mask_fraction <= 1.0:
            raise ValueError("mask_fraction must be in (0, 1]")
        self.mode = mode
        self.mask_fraction = mask_fraction
        self.retraction_pulses_affected = 0
        self._accumulator = 0.0
        self._last_y_step_ns = -(10**18)
        self._e_dir = None

    def _on_attach(self) -> None:
        self._e_dir = self.ctx.harness.upstream("E_DIR")
        # Batch-capable tap: only the *latest* Y time is read, and it is only
        # read while intercepting E_STEP pulses — which always dispatch
        # per-step (interception vetoes batching), after any Y bulk window
        # they could share a chunk with has fully applied.
        self.ctx.harness.upstream("Y_STEP").on_pulse(
            self._note_y_step, batch=self._note_y_batch
        )

    def _note_y_step(self, _wire, time_ns: int, _width_ns: int) -> None:
        self._last_y_step_ns = time_ns

    def _note_y_batch(self, _wire, times_ns, _width_ns: int) -> None:
        self._last_y_step_ns = int(times_ns[-1])

    def _y_recent(self, time_ns: int) -> bool:
        return time_ns - self._last_y_step_ns <= _Y_RECENT_WINDOW_NS

    def on_event(
        self, path: SignalPath, kind: str, value: float, time_ns: int
    ) -> Optional[TrojanAction]:
        if not self.active or kind != "pulse":
            return None
        if self._e_dir.value != 0:
            return None  # only retraction-direction pulses are targeted
        if not self._y_recent(time_ns):
            return None
        self._accumulator += self.mask_fraction
        if self._accumulator < 1.0:
            return None
        self._accumulator -= 1.0
        self.retraction_pulses_affected += 1
        if self.mode == "over":
            return TrojanAction.drop()  # weaker retraction -> over-extrusion
        # "under": double the retraction by injecting a twin pulse. DIR is
        # already reverse, so the injected pulse also retracts.
        self.ctx.board.inject_pulse("E_STEP", int(value))
        return None
