"""Trojan T8 — stepper driver denial of service.

"Each stepper motor driver has an input signal *_EN which determines if the
motor is engaged and able to be moved. By actuating this signal throughout
the print we can disable stepper motor movements strategically to fail a
print."

After homing, the Trojan periodically forces the targeted axes' EN lines
high (A4988 enable is active low) for a window; step pulses arriving during
the window are lost by the physical driver, desynchronising the true head
position from the firmware's and wrecking the part.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.board import TrojanAction
from repro.core.trojans.base import Trojan, TrojanCategory
from repro.electronics.harness import SignalPath
from repro.sim.kernel import PeriodicTask
from repro.sim.time import S


class StepperDisableTrojan(Trojan):
    """Periodically disable selected stepper drivers mid-print."""

    trojan_id = "T8"
    category = TrojanCategory.DENIAL_OF_SERVICE
    scenario = "Hardware Failure"
    effect = "Arbitrarily deactivating stepper motors via EN signals"

    def __init__(
        self,
        axes: Tuple[str, ...] = ("X", "Y"),
        period_s: float = 8.0,
        outage_s: float = 1.5,
    ) -> None:
        super().__init__()
        if outage_s >= period_s:
            raise ValueError("outage must be shorter than the period")
        self.axes = tuple(axes)
        self.signals_intercepted = tuple(f"{axis}_EN" for axis in axes)
        self.period_s = period_s
        self.outage_s = outage_s
        self.outages = 0
        self._override = False
        self._task: Optional[PeriodicTask] = None

    def _on_attach(self) -> None:
        self.ctx.homing.on_homed(self._homed)

    def _homed(self, _time_ns: int) -> None:
        self._maybe_start()

    def _on_activate(self) -> None:
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self.active and self.ctx.homing.homed and self._task is None:
            self._task = self.ctx.sim.every(int(self.period_s * S), self._begin_outage)

    def _begin_outage(self) -> None:
        if not self.active:
            return
        self._override = True
        self.outages += 1
        for signal in self.signals_intercepted:
            self.ctx.board.inject_level(signal, 1.0)  # disable (active low)
        self.ctx.sim.schedule(int(self.outage_s * S), self._end_outage)

    def _end_outage(self) -> None:
        self._override = False
        if not self.active:
            return
        for signal in self.signals_intercepted:
            upstream = self.ctx.harness.upstream(signal)
            self.ctx.board.inject_level(signal, upstream.value)

    def _on_deactivate(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self._override:
            self._end_outage()

    def on_event(
        self, path: SignalPath, kind: str, value: float, time_ns: int
    ) -> Optional[TrojanAction]:
        if not self.active:
            return None
        if self._override:
            return TrojanAction.replace(1.0)  # hold disabled during an outage
        return None
