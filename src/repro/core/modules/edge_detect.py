"""Edge-detection module.

"Implements an edge detector to identify events such as print head movements
or extrusions via observation of the STEP and DIR stepper motor driver
signals ... or endstop actuation for homing detection" (Section IV-B). In
this reproduction it is the uniform tap other modules build on: it counts
rising edges / pulses on any wire and fans events out to listeners.
"""

from __future__ import annotations

from typing import Callable, List, Union

from repro.sim.signals import DigitalWire, Edge, StepWire


class EdgeDetector:
    """Counts and re-publishes rising events on one wire (STEP or level)."""

    def __init__(self, wire: Union[StepWire, DigitalWire]) -> None:
        self.wire = wire
        self.rising_edges = 0
        self.last_event_ns: int = -1
        self._listeners: List[Callable[[int], None]] = []
        if isinstance(wire, StepWire):
            wire.on_pulse(self._on_pulse)
        else:
            wire.on_edge(self._on_edge, Edge.RISING)

    def on_rising(self, callback: Callable[[int], None]) -> None:
        """Subscribe ``callback(time_ns)`` to each rising event."""
        self._listeners.append(callback)

    def _on_pulse(self, _wire: StepWire, time_ns: int, _width_ns: int) -> None:
        self._record(time_ns)

    def _on_edge(self, _wire: DigitalWire, _value: int, time_ns: int) -> None:
        self._record(time_ns)

    def _record(self, time_ns: int) -> None:
        self.rising_edges += 1
        self.last_event_ns = time_ns
        for listener in list(self._listeners):
            listener(time_ns)
