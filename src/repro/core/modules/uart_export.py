"""UART export unit: periodic step-count transactions to the host.

"With the analysis started, the UART control unit sends a 16-byte transaction
containing step counts for all of the motors each 0.1 seconds" (Section V-B),
and the counter "starts after the print head is homed and the first STEP edge
is found" — the synchronisation the paper credits with significantly
increased accuracy. Both behaviours are reproduced: the exporter arms on the
homing detector, begins its period at the first tracked step edge, and packs
each snapshot into a 16-byte frame on the UART bus.
"""

from __future__ import annotations

from typing import Optional

from repro.core.modules.axis_tracker import AxisTracker
from repro.core.modules.homing_detect import HomingDetector
from repro.electronics.uart import UartBus, pack_step_counts
from repro.errors import OfframpsError
from repro.sim.kernel import PeriodicTask, Simulator
from repro.sim.time import MS

DEFAULT_PERIOD_MS = 100
"""The paper's 0.1 s transaction period."""


class UartExporter:
    """Streams axis-tracker snapshots as fixed-period UART transactions."""

    def __init__(
        self,
        sim: Simulator,
        tracker: AxisTracker,
        homing: HomingDetector,
        bus: Optional[UartBus] = None,
        period_ms: int = DEFAULT_PERIOD_MS,
    ) -> None:
        if period_ms <= 0:
            raise OfframpsError(f"UART period must be positive, got {period_ms}ms")
        self.sim = sim
        self.tracker = tracker
        self.bus = bus or UartBus()
        self.period_ms = period_ms
        self.transactions_sent = 0
        self._task: Optional[PeriodicTask] = None
        self._stopped = False
        homing.on_homed(self._on_homed)

    def _on_homed(self, time_ns: int) -> None:
        # The homed event fires *during* the endstop-triggering step event; in
        # hardware the counters reset on the following FPGA clock edge, so the
        # in-flight pulse must not be counted. Arm one tick later.
        def arm() -> None:
            self.tracker.arm(self.sim.now)
            self.tracker.on_first_step(self._on_first_step)

        self.sim.schedule(1, arm)

    def _on_first_step(self, _time_ns: int) -> None:
        if self._task is not None or self._stopped:
            return
        self._task = self.sim.every(self.period_ms * MS, self._export)

    def _export(self) -> None:
        counts = self.tracker.snapshot()
        frame = pack_step_counts(counts["X"], counts["Y"], counts["Z"], counts["E"])
        self.bus.send(self.sim.now, frame)
        self.transactions_sent += 1

    def stop(self) -> None:
        """End the export stream (end-of-print housekeeping)."""
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            self._task = None
