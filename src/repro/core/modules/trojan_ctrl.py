"""Trojan control module: enable logic and the output multiplexer.

"Trojan Control Module has logic to enable or disable each of the Trojans,
along with control units for each Trojan. The modified signals produced by
this module are multiplexed with the original control signals so the Trojans
can be dynamically activated or deactivated" (Section IV-B).

:class:`TrojanControl` owns a set of Trojan instances, routes their required
signals through the FPGA when enabled, registers their interceptors with the
board's mux, and tears everything down on disable — the dynamic (de)activation
the paper highlights.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.trojans.base import Trojan, TrojanContext
from repro.errors import OfframpsError


class TrojanControl:
    """Lifecycle manager for the Trojans loaded into the fabric."""

    def __init__(self, context: TrojanContext) -> None:
        self.context = context
        self._trojans: Dict[str, Trojan] = {}
        self._enabled: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def load(self, trojan: Trojan) -> None:
        """Install a Trojan into the fabric (initially disabled)."""
        if trojan.trojan_id in self._trojans:
            raise OfframpsError(f"trojan {trojan.trojan_id} already loaded")
        self._trojans[trojan.trojan_id] = trojan
        self._enabled[trojan.trojan_id] = False
        trojan.attach(self.context)

    def enable(self, trojan_id: str) -> None:
        """Route the Trojan's signals through the FPGA and activate it."""
        trojan = self._get(trojan_id)
        if self._enabled[trojan_id]:
            return
        board = self.context.board
        board.route_through_fpga(trojan.signals_intercepted)
        for signal in trojan.signals_intercepted:
            board.register_interceptor(signal, trojan.on_event)
        trojan.activate()
        self._enabled[trojan_id] = True

    def disable(self, trojan_id: str) -> None:
        """Deactivate a Trojan and detach its interceptors.

        Signals stay routed through the FPGA (moving jumpers mid-print is a
        physical act); with no interceptor registered the mux forwards
        unchanged, which is electrically equivalent to bypass plus the
        propagation delay.
        """
        trojan = self._get(trojan_id)
        if not self._enabled[trojan_id]:
            return
        trojan.deactivate()
        for signal in trojan.signals_intercepted:
            self.context.board.unregister_interceptor(signal, trojan.on_event)
        self._enabled[trojan_id] = False

    # ------------------------------------------------------------------
    def _get(self, trojan_id: str) -> Trojan:
        try:
            return self._trojans[trojan_id]
        except KeyError:
            raise OfframpsError(f"trojan {trojan_id!r} is not loaded") from None

    def enabled_ids(self) -> List[str]:
        return sorted(tid for tid, on in self._enabled.items() if on)

    def trojan(self, trojan_id: str) -> Trojan:
        return self._get(trojan_id)

    def __contains__(self, trojan_id: str) -> bool:
        return trojan_id in self._trojans
