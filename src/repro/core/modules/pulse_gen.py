"""Pulse-generation module.

"Handles the generation of pulses for the stepper motor drivers, and allows
for the customization of both frequency and pulse width" (Section IV-B).
Trojan T1 uses it to inject extra step pulses between the original control
pulses; tests use it as a deterministic stimulus source.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import OfframpsError
from repro.sim.kernel import EventHandle, Simulator


class PulseGenerator:
    """Emits a programmable train of pulses through a callback."""

    def __init__(self, sim: Simulator, emit: Callable[[int], None]) -> None:
        """``emit(width_ns)`` is invoked once per generated pulse."""
        self.sim = sim
        self._emit = emit
        self._handle: Optional[EventHandle] = None
        self._remaining = 0
        self._interval_ns = 0
        self._width_ns = 0
        self.pulses_generated = 0
        self.on_done: Optional[Callable[[], None]] = None

    @property
    def busy(self) -> bool:
        return self._remaining > 0

    def burst(
        self,
        count: int,
        frequency_hz: float,
        width_ns: int = 2_000,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Generate ``count`` pulses at ``frequency_hz``."""
        if self.busy:
            raise OfframpsError("pulse generator is already running a burst")
        if count <= 0 or frequency_hz <= 0:
            raise OfframpsError("burst needs a positive count and frequency")
        self._remaining = count
        self._interval_ns = max(1, int(1e9 / frequency_hz))
        self._width_ns = width_ns
        self.on_done = on_done
        self._handle = self.sim.schedule(self._interval_ns, self._tick)

    def _tick(self) -> None:
        if self._remaining <= 0:
            return
        self._emit(self._width_ns)
        self.pulses_generated += 1
        self._remaining -= 1
        if self._remaining > 0:
            self._handle = self.sim.schedule(self._interval_ns, self._tick)
        else:
            self._handle = None
            if self.on_done is not None:
                self.on_done()

    def stop(self) -> None:
        """Abort an in-flight burst."""
        self._remaining = 0
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
