"""Axis-tracking module: signed step counters per motor.

"This consists of a set of rising edge detectors and counters, which
increment for each STEP rising edge when DIR dictated that the motors were
moving in the positive direction and decrement when they moved negatively"
(Section V-B). Counters are zeroed when the homing detector fires, so they
represent absolute position within the build volume (in steps) and total
extruded filament — the columns of Figure 4.

The tracker taps the *upstream* (Arduino-side) wires: it records what the
firmware commanded, which is exactly why it detects Trojans acting at or
before the firmware (Flaw3D, dr0wned) — their edits are visible in the
command stream itself.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.electronics.harness import SignalHarness
from repro.electronics.pins import AXES


class AxisTracker:
    """Signed step counters for X/Y/Z/E, synchronised to homing."""

    def __init__(self, harness: SignalHarness) -> None:
        self.counts: Dict[str, int] = dict.fromkeys(AXES, 0)
        self.armed = False
        self.first_step_ns: int = -1
        self._dir_wires = {axis: harness.upstream(f"{axis}_DIR") for axis in AXES}
        self._first_step_listeners: List[Callable[[int], None]] = []
        for axis in AXES:
            harness.upstream(f"{axis}_STEP").on_pulse(
                self._make_handler(axis),
                batch=self._make_batch_handler(axis),
                ready=self._batch_ready,
            )

    def _make_handler(self, axis: str):
        dir_wire = self._dir_wires[axis]

        def handle(_wire, time_ns: int, _width_ns: int) -> None:
            if not self.armed:
                return
            self.counts[axis] += 1 if dir_wire.value else -1
            if self.first_step_ns < 0:
                self.first_step_ns = time_ns
                for listener in list(self._first_step_listeners):
                    listener(time_ns)

        return handle

    def _batch_ready(self, _count: int) -> bool:
        # The first armed step fires listeners that schedule kernel events
        # (the UART export sync) — that pulse must dispatch individually.
        return not self.armed or self.first_step_ns >= 0

    def _make_batch_handler(self, axis: str):
        dir_wire = self._dir_wires[axis]

        def handle(_wire, times_ns, _width_ns: int) -> None:
            if not self.armed:
                return
            count = len(times_ns)
            self.counts[axis] += count if dir_wire.value else -count

        return handle

    # ------------------------------------------------------------------
    def arm(self, _time_ns: int = 0) -> None:
        """Zero the counters and start counting (wired to the homed event)."""
        self.counts = dict.fromkeys(AXES, 0)
        self.first_step_ns = -1
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def on_first_step(self, callback: Callable[[int], None]) -> None:
        """Subscribe to the first STEP edge after arming (UART sync point)."""
        self._first_step_listeners.append(callback)
        if self.first_step_ns >= 0:
            callback(self.first_step_ns)

    def snapshot(self) -> Dict[str, int]:
        """Copy of the current counters."""
        return dict(self.counts)
