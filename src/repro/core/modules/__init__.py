"""The paper's VHDL sub-modules, re-created as event-driven components.

Section IV-B names the framework's building blocks: a pulse-generation
module, an edge-detection module, a homing-detection state machine, and a
Trojan control module; Section V adds the axis-tracking counters and the
UART export unit. Each lives in its own file here with the same role.
"""

from repro.core.modules.axis_tracker import AxisTracker
from repro.core.modules.edge_detect import EdgeDetector
from repro.core.modules.homing_detect import HomingDetector
from repro.core.modules.pulse_gen import PulseGenerator
from repro.core.modules.trojan_ctrl import TrojanControl
from repro.core.modules.uart_export import UartExporter

__all__ = [
    "AxisTracker",
    "EdgeDetector",
    "HomingDetector",
    "PulseGenerator",
    "TrojanControl",
    "UartExporter",
]
