"""Homing-detection state machine.

"A state machine which tracks actuation of the endstops in a defined order to
determine when the print head has homed. This is the first action taken at
the start of print and can determine when to activate Trojans" (Section
IV-B). The FSM expects the Marlin homing order X → Y → Z on the endstop
signals; repeated actuations of an already-passed axis (back-off re-bumps)
are ignored. Reaching the Z actuation declares the machine homed, which arms
Trojans and resets the axis-tracking counters.
"""

from __future__ import annotations

from typing import Callable, List

from repro.electronics.harness import SignalHarness
from repro.sim.signals import Edge

_ORDER = ("X_MIN", "Y_MIN", "Z_MIN")


class HomingDetector:
    """Watches the endstop signals from the middle of the harness."""

    def __init__(self, harness: SignalHarness) -> None:
        self._stage = 0
        self.homed = False
        self.homed_at_ns: int = -1
        self.homing_count = 0
        self._listeners: List[Callable[[int], None]] = []
        for index, name in enumerate(_ORDER):
            harness.upstream(name).on_edge(
                self._make_handler(index), Edge.RISING
            )

    def _make_handler(self, index: int):
        def handle(_wire, _value: int, time_ns: int) -> None:
            if self.homed:
                return
            if index == self._stage:
                self._stage += 1
                if self._stage == len(_ORDER):
                    self._declare_homed(time_ns)

        return handle

    def _declare_homed(self, time_ns: int) -> None:
        self.homed = True
        self.homed_at_ns = time_ns
        self.homing_count += 1
        for listener in list(self._listeners):
            listener(time_ns)

    def on_homed(self, callback: Callable[[int], None]) -> None:
        """Subscribe ``callback(time_ns)`` to the homed event."""
        self._listeners.append(callback)
        if self.homed:
            callback(self.homed_at_ns)

    def reset(self) -> None:
        """Re-arm for the next print's homing sequence."""
        self._stage = 0
        self.homed = False
        self.homed_at_ns = -1
