"""Pulse capture: recording the UART transaction stream (Figure 4 format).

A :class:`PulseCapture` listens on the UART bus, decodes each 16-byte frame
into a :class:`Transaction`, and assigns sequential indices. CSV I/O uses the
column layout of the paper's Figure 4 excerpts, optionally extended with a
``Time_ns`` column so a save/load round-trip preserves timestamps::

    Index, X, Y, Z, E, Time_ns
    5113, 6060, 8266, 960, 52843, 511300000000
    ...

:func:`load_capture_csv` accepts both the bare Figure-4 layout and the
extended one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.electronics.uart import UartBus, unpack_step_counts
from repro.errors import CaptureError

COLUMNS = ("X", "Y", "Z", "E")


@dataclass(frozen=True)
class Transaction:
    """One exported step-count snapshot."""

    index: int
    x: int
    y: int
    z: int
    e: int
    time_ns: int = 0

    def value(self, column: str) -> int:
        try:
            return {"X": self.x, "Y": self.y, "Z": self.z, "E": self.e}[column.upper()]
        except KeyError:
            raise CaptureError(f"unknown column {column!r}") from None

    def as_row(self) -> str:
        return f"{self.index}, {self.x}, {self.y}, {self.z}, {self.e}"


class PulseCapture:
    """Accumulates the transaction stream of one print."""

    def __init__(self, bus: Optional[UartBus] = None, start_index: int = 1) -> None:
        self.transactions: List[Transaction] = []
        self._next_index = start_index
        if bus is not None:
            bus.on_frame(self._on_frame)

    def _on_frame(self, time_ns: int, frame: bytes) -> None:
        x, y, z, e = unpack_step_counts(frame)
        self.transactions.append(
            Transaction(self._next_index, x, y, z, e, time_ns=time_ns)
        )
        self._next_index += 1

    def append(self, transaction: Transaction) -> None:
        """Append an externally produced transaction.

        Keeps index allocation in sync so later bus frames never reuse an
        index already present in the capture.
        """
        self.transactions.append(transaction)
        self._next_index = max(self._next_index, transaction.index + 1)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self):
        return iter(self.transactions)

    def __getitem__(self, i):
        return self.transactions[i]

    @property
    def final(self) -> Optional[Transaction]:
        """The last transaction (the end-of-print totals)."""
        return self.transactions[-1] if self.transactions else None

    def excerpt(self, start_index: int, count: int) -> List[Transaction]:
        """Transactions with ``index`` in [start_index, start_index+count)."""
        return [
            t
            for t in self.transactions
            if start_index <= t.index < start_index + count
        ]

    def render(self, transactions: Optional[Iterable[Transaction]] = None) -> str:
        """Figure-4-style text rendering."""
        rows = ["Index, X, Y, Z, E"]
        rows.extend(t.as_row() for t in (transactions if transactions is not None else self))
        return "\n".join(rows)


def save_capture_csv(capture: PulseCapture, path, include_time: bool = True) -> None:
    """Write a capture to disk in the Figure 4 CSV layout.

    ``include_time`` (the default) appends the ``Time_ns`` column so a
    round-trip through :func:`load_capture_csv` preserves timestamps; pass
    ``False`` for the bare five-column layout of the paper's excerpts.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if include_time:
            handle.write("Index, X, Y, Z, E, Time_ns\n")
            for t in capture:
                handle.write(f"{t.as_row()}, {t.time_ns}\n")
        else:
            handle.write(capture.render())
            handle.write("\n")


def load_capture_csv(path) -> PulseCapture:
    """Read a capture previously written by :func:`save_capture_csv`."""
    capture = PulseCapture()
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise CaptureError(f"empty capture file: {path}")
    header = [col.strip().upper() for col in lines[0].split(",")]
    if header not in (
        ["INDEX", "X", "Y", "Z", "E"],
        ["INDEX", "X", "Y", "Z", "E", "TIME_NS"],
    ):
        raise CaptureError(f"unexpected capture header {lines[0]!r}")
    width = len(header)
    for line in lines[1:]:
        fields = [field.strip() for field in line.split(",")]
        if len(fields) != width:
            raise CaptureError(f"malformed capture row {line!r}")
        try:
            values = [int(field) for field in fields]
        except ValueError as exc:
            raise CaptureError(f"non-integer capture row {line!r}") from exc
        index, x, y, z, e = values[:5]
        time_ns = values[5] if width == 6 else 0
        capture.append(Transaction(index, x, y, z, e, time_ns=time_ns))
    return capture
