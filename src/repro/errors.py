"""Exception hierarchy for the OFFRAMPS reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary. Subsystems define narrower
types below it; a few (for example :class:`FirmwareKill`) double as control
flow for faithfully modelled firmware behaviour such as Marlin's ``kill()``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. scheduling in the past)."""


class GcodeError(ReproError):
    """A G-code stream could not be lexed, parsed, or serialized."""


class GcodeChecksumError(GcodeError):
    """A host-protocol line failed its checksum or line-number validation."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


class SlicerError(ReproError):
    """The miniature slicer was given unsliceable geometry or settings."""


class ElectronicsError(ReproError):
    """A board-model invariant was violated (unknown pin, double drive, ...)."""


class FirmwareError(ReproError):
    """The firmware simulator hit an unrecoverable condition."""


class FirmwareKill(FirmwareError):
    """Marlin-style ``kill()``: firmware halted the machine.

    Carries the reason string the firmware would print, e.g.
    ``"Thermal Runaway, system stopped!"``.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class PlantError(ReproError):
    """The physical plant model was driven outside its envelope."""


class OfframpsError(ReproError):
    """Misuse of the OFFRAMPS board model (bad jumper config, unknown signal)."""


class CaptureError(ReproError):
    """A capture file or transaction stream is malformed."""


class DetectionError(ReproError):
    """The detection pipeline was given incomparable captures."""
