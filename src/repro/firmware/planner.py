"""Lookahead trapezoidal motion planner (the core of Marlin's motion stack).

Moves enter as signed step deltas plus a requested feedrate. The planner:

1. clamps feedrate and acceleration per axis;
2. computes the classic-jerk junction speed with the previous queued block
   (per-axis instantaneous velocity change at the corner must stay within the
   configured jerk);
3. runs the reverse/forward lookahead passes so every block's entry/exit
   speeds are reachable under the acceleration limit and the chain always
   ends at zero speed (the machine can always stop).

The stepper executor pops blocks and freezes them (``busy``); lookahead never
rewrites a block that has started executing — same contract as Marlin.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.errors import FirmwareError
from repro.firmware.config import MarlinConfig

AXES = ("X", "Y", "Z", "E")


@dataclass
class MotionBlock:
    """One planned motion segment."""

    steps: Dict[str, int]  # signed step delta per axis
    distance_mm: float  # length of the dominant path (XYZ, or |dE| if E-only)
    nominal_speed: float  # cruise speed along the path, mm/s
    acceleration: float  # path acceleration, mm/s^2
    unit: Dict[str, float]  # unit direction in axis-space (per mm of path)
    max_entry_speed: float  # junction limit with the previous block
    entry_speed: float = 0.0
    exit_speed: float = 0.0
    busy: bool = False
    _step_event_count: Optional[int] = None

    @property
    def step_event_count(self) -> int:
        """Number of step events: the dominant axis's |steps| (memoized —
        ``steps`` is never mutated after construction and the stepper ISR
        reads this per event)."""
        if self._step_event_count is None:
            self._step_event_count = max(abs(count) for count in self.steps.values())
        return self._step_event_count

    def max_allowable_entry(self, exit_speed: float) -> float:
        """Fastest entry speed that can still decelerate to ``exit_speed``."""
        return math.sqrt(exit_speed * exit_speed + 2.0 * self.acceleration * self.distance_mm)


class MotionPlanner:
    """Bounded lookahead queue with junction-speed planning."""

    def __init__(self, config: MarlinConfig) -> None:
        self.config = config
        self.queue: Deque[MotionBlock] = deque()
        self._previous_unit: Optional[Dict[str, float]] = None
        self._previous_nominal: float = 0.0
        self.blocks_planned = 0

    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        return len(self.queue) >= self.config.planner_buffer_size

    @property
    def is_empty(self) -> bool:
        return not self.queue

    def __len__(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------------
    def add_move(
        self,
        steps: Dict[str, int],
        feedrate_mm_s: float,
        accel_mm_s2: Optional[float] = None,
    ) -> MotionBlock:
        """Plan one move given signed step deltas and a requested feedrate."""
        if self.is_full:
            raise FirmwareError("planner buffer full")
        steps = {axis: int(steps.get(axis, 0)) for axis in AXES}
        if all(count == 0 for count in steps.values()):
            raise FirmwareError("empty move")

        config = self.config
        delta_mm = {axis: steps[axis] / config.steps_per_mm[axis] for axis in AXES}
        xyz_distance = math.sqrt(sum(delta_mm[a] ** 2 for a in ("X", "Y", "Z")))
        distance = xyz_distance if xyz_distance > 1e-12 else abs(delta_mm["E"])
        if distance <= 0:
            raise FirmwareError("zero-distance move")
        unit = {axis: delta_mm[axis] / distance for axis in AXES}

        # Clamp the requested feedrate so no axis exceeds its maximum.
        speed = max(feedrate_mm_s, config.min_feedrate_mm_s)
        for axis in AXES:
            component = abs(unit[axis]) * speed
            limit = config.max_feedrate_mm_s[axis]
            if component > limit:
                speed *= limit / component

        # Clamp acceleration the same way.
        accel = accel_mm_s2 if accel_mm_s2 is not None else config.default_accel_mm_s2
        for axis in AXES:
            component = abs(unit[axis]) * accel
            limit = config.max_accel_mm_s2[axis]
            if component > limit:
                accel *= limit / component

        max_entry = self._junction_speed(unit, speed)
        block = MotionBlock(
            steps=steps,
            distance_mm=distance,
            nominal_speed=speed,
            acceleration=accel,
            unit=unit,
            max_entry_speed=max_entry,
            entry_speed=0.0,
            exit_speed=0.0,
        )
        self.queue.append(block)
        self.blocks_planned += 1
        self._previous_unit = unit
        self._previous_nominal = speed
        self._recalculate()
        return block

    def _junction_speed(self, unit: Dict[str, float], nominal: float) -> float:
        """Classic-jerk junction limit with the previously queued move."""
        if self._previous_unit is None or not self.queue:
            # Starting from rest: allow up to half the smallest relevant jerk.
            start_limit = min(
                self.config.jerk_mm_s[axis] / max(abs(unit[axis]), 1e-9)
                for axis in AXES
                if abs(unit[axis]) > 1e-9
            )
            return min(nominal, start_limit / 2.0)

        v_junction = min(nominal, self._previous_nominal)
        for axis in AXES:
            dv = abs(unit[axis] - self._previous_unit[axis]) * v_junction
            jerk = self.config.jerk_mm_s[axis]
            if dv > jerk:
                v_junction *= jerk / dv
        return v_junction

    # ------------------------------------------------------------------
    def _recalculate(self) -> None:
        """Reverse + forward lookahead passes over non-busy blocks."""
        blocks = [block for block in self.queue if not block.busy]
        if not blocks:
            return

        # Reverse pass: the chain must end stopped.
        next_entry = 0.0
        for block in reversed(blocks):
            block.exit_speed = next_entry
            block.entry_speed = min(
                block.max_entry_speed, block.max_allowable_entry(block.exit_speed)
            )
            next_entry = block.entry_speed

        # Forward pass: entry speeds must be reachable from the predecessor.
        # The first non-busy block's entry is pinned: either the executing
        # block's frozen exit speed, or standstill.
        if self.queue[0].busy:
            reachable = self.queue[0].exit_speed
        else:
            reachable = 0.0
        for block in blocks:
            block.entry_speed = min(block.entry_speed, reachable)
            reachable = min(
                block.nominal_speed, block.max_allowable_entry(block.entry_speed)
            )
        # Re-run exit speeds to match the possibly-lowered entries.
        for i, block in enumerate(blocks):
            if i + 1 < len(blocks):
                block.exit_speed = blocks[i + 1].entry_speed
            else:
                block.exit_speed = 0.0

    # ------------------------------------------------------------------
    def pop_block(self) -> Optional[MotionBlock]:
        """Hand the oldest block to the stepper, freezing its speeds."""
        while self.queue and self.queue[0].busy:
            self.queue.popleft()
        if not self.queue:
            return None
        block = self.queue[0]
        block.busy = True
        return block

    def release_block(self, block: MotionBlock) -> None:
        """Called by the stepper when a block finishes executing."""
        if self.queue and self.queue[0] is block:
            self.queue.popleft()

    def clear(self) -> None:
        """Drop all queued motion (kill/abort path)."""
        self.queue.clear()
        self._previous_unit = None
        self._previous_nominal = 0.0
