"""A Marlin-like 3D printer firmware simulator.

This is the "Arduino Mega running Marlin" of the paper's stack, rebuilt as an
event-driven simulator: G-code dispatch, a lookahead trapezoidal motion
planner with classic per-axis jerk limits, integer step bookkeeping, a
stepper executor that emits STEP/DIR/EN onto the harness, PID heater control
with Marlin's thermal-protection watchdogs, endstop homing, and the serial
host protocol (line numbers + checksums + ok/resend).

The detection experiments depend on this layer being faithful in one precise
sense: the same G-code must always produce the same *step counts*, with
timing realistic enough that 100 ms transaction windows look like Figure 4.
"""

from repro.firmware.config import MarlinConfig
from repro.firmware.marlin import MarlinFirmware, PrinterStatus
from repro.firmware.planner import MotionBlock, MotionPlanner
from repro.firmware.serial_host import SerialHost

__all__ = [
    "MarlinConfig",
    "MarlinFirmware",
    "MotionBlock",
    "MotionPlanner",
    "PrinterStatus",
    "SerialHost",
]
