"""The firmware top level: G-code dispatch, waits, kill, print lifecycle.

:class:`MarlinFirmware` glues the planner, stepper, heater controllers, and
homing controller into the machine a host talks to. It pulls parsed commands
from a source (a program iterator or a :class:`~repro.firmware.serial_host.
SerialHost`), honours planner backpressure, implements the blocking commands
(G4, G28, M109, M190), and provides Marlin's ``kill()`` semantics: on a
protection fault everything the *firmware* controls stops — which, as the
paper demonstrates with Trojan T7, is not necessarily everything the
*hardware* does.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterator, List, Optional

from repro.electronics.harness import SignalHarness
from repro.errors import FirmwareError
from repro.firmware.config import MarlinConfig
from repro.firmware.endstops import HomingController
from repro.firmware.planner import AXES, MotionPlanner
from repro.firmware.state import MachineState
from repro.firmware.stepper import StepperExecutor
from repro.firmware.temperature import HeaterController
from repro.gcode.ast import Command, GcodeProgram
from repro.sim.kernel import PeriodicTask, Simulator
from repro.sim.time import MS, US

_WAIT_POLL_MS = 100


class PrinterStatus(enum.Enum):
    """Print-job lifecycle states.

    ``FAILED`` is never entered by the firmware itself: it marks a session
    whose *execution* raised (bad spec, worker crash) at the batch layer,
    so a failed print session can be reported alongside real outcomes
    instead of aborting a whole batch.
    """

    IDLE = "idle"
    PRINTING = "printing"
    DONE = "done"
    KILLED = "killed"
    TIMED_OUT = "timed_out"
    FAILED = "failed"


class MarlinFirmware:
    """A Marlin-like controller bound to one harness."""

    def __init__(
        self,
        sim: Simulator,
        config: MarlinConfig,
        harness: SignalHarness,
        fast_path: bool = False,
    ) -> None:
        self.sim = sim
        self.config = config
        self.harness = harness
        self.state = MachineState(config)
        self.planner = MotionPlanner(config)
        self.stepper = StepperExecutor(sim, config, harness, self.planner, fast_path=fast_path)
        self.homing = HomingController(sim, config, harness, self.stepper, self.state)

        self.hotend = HeaterController(
            sim,
            "hotend",
            sensor=harness.downstream("T0_HOTEND"),
            gate=harness.upstream("D10_HOTEND"),
            gains=config.hotend_pid,
            maxtemp_c=config.hotend_maxtemp_c,
            config=config,
            on_kill=self.kill,
        )
        self.bed = HeaterController(
            sim,
            "bed",
            sensor=harness.downstream("T1_BED"),
            gate=harness.upstream("D8_BED"),
            gains=config.bed_pid,
            maxtemp_c=config.bed_maxtemp_c,
            config=config,
            on_kill=self.kill,
        )
        self._fan_gate = harness.upstream("D9_FAN")

        self.status = PrinterStatus.IDLE
        self.kill_reason: Optional[str] = None
        self.log: List[str] = []
        self.on_complete: List[Callable[[], None]] = []
        self.on_kill: List[Callable[[str], None]] = []

        self._source: Optional[Iterator[Command]] = None
        self._pending: Optional[Command] = None  # command stalled on backpressure
        self._waiting = False
        self._wait_task: Optional[PeriodicTask] = None
        self._powered = False
        self.commands_processed = 0
        self._allow_cold_extrusion = config.allow_cold_extrusion

        self._handlers: Dict[str, Callable[[Command], None]] = {
            "G0": self._g_move,
            "G1": self._g_move,
            "G4": self._g_dwell,
            "G28": self._g_home,
            "G90": lambda cmd: self._set_abs_coords(True),
            "G91": lambda cmd: self._set_abs_coords(False),
            "G92": self._g_set_position,
            "M82": lambda cmd: self._set_abs_e(True),
            "M83": lambda cmd: self._set_abs_e(False),
            "M84": self._m_disable_steppers,
            "M18": self._m_disable_steppers,
            "M17": lambda cmd: self.stepper.enable_steppers(),
            "M104": self._m_set_hotend,
            "M109": self._m_wait_hotend,
            "M140": self._m_set_bed,
            "M190": self._m_wait_bed,
            "M105": self._m_report_temps,
            "M106": self._m_fan_on,
            "M107": lambda cmd: self._set_fan(0.0),
            "M112": lambda cmd: self.kill("Emergency stop (M112)"),
            "M114": self._m_report_position,
            "M204": self._m_set_accel,
            "M220": self._m_feedrate_percent,
            "M221": self._m_flow_percent,
            "M302": self._m_cold_extrusion,
            "M110": lambda cmd: None,  # line-number reset: handled by the host layer
        }
        self._accel_override: Optional[float] = None

        self.stepper.on_block_done.append(self._on_stepper_progress)

    # ------------------------------------------------------------------
    # Power and lifecycle
    # ------------------------------------------------------------------
    def power_on(self) -> None:
        """Start the periodic controllers (thermistor ticks, PID loops)."""
        if not self._powered:
            self.hotend.start()
            self.bed.start()
            self._powered = True

    def power_off(self) -> None:
        """Stop periodic controllers so the event queue can drain."""
        self.hotend.stop()
        self.bed.stop()
        if self._wait_task is not None:
            self._wait_task.cancel()
            self._wait_task = None
        self._powered = False

    def start_print(self, program: GcodeProgram) -> None:
        """Begin executing ``program`` (as if streamed from a host)."""
        self.attach_source(iter(list(program.executable())))

    def attach_source(self, source: Iterator[Command]) -> None:
        """Begin pulling commands from an arbitrary source iterator."""
        if self.status is PrinterStatus.PRINTING:
            raise FirmwareError("already printing")
        if self.status in (PrinterStatus.KILLED, PrinterStatus.TIMED_OUT):
            raise FirmwareError(
                f"printer is halted ({self.status.value}); reset required"
            )
        self.power_on()
        self._source = source
        self.status = PrinterStatus.PRINTING
        self._schedule_pump()

    @property
    def finished(self) -> bool:
        return self.status in (
            PrinterStatus.DONE,
            PrinterStatus.KILLED,
            PrinterStatus.TIMED_OUT,
        )

    def kill(self, reason: str) -> None:
        """Marlin ``kill()``: halt everything the firmware controls."""
        if self.status is PrinterStatus.KILLED:
            return
        self.status = PrinterStatus.KILLED
        self.kill_reason = reason
        self._log(f"Error: {reason}")
        self._log("Error: Printer halted. kill() called!")
        self.stepper.abort()
        self.planner.clear()
        self.stepper.disable_steppers()
        for heater in (self.hotend, self.bed):
            heater.target_c = 0.0
            heater.gate.drive(0.0)
        self._fan_gate.drive(0.0)
        if self._wait_task is not None:
            self._wait_task.cancel()
            self._wait_task = None
        for callback in list(self.on_kill):
            callback(reason)

    def timeout(self, reason: str) -> None:
        """Abort a print that exceeded its simulation-time budget.

        Same physical teardown as :meth:`kill` but with a distinct status,
        so callers can tell a protection-fault halt (a Trojan effect) from a
        harness-imposed deadline; ``on_kill`` hooks are not invoked.
        """
        if self.finished:
            return
        self.status = PrinterStatus.TIMED_OUT
        self.kill_reason = reason
        self._log(f"Error: {reason}")
        self.stepper.abort()
        self.planner.clear()
        self.stepper.disable_steppers()
        for heater in (self.hotend, self.bed):
            heater.target_c = 0.0
            heater.gate.drive(0.0)
        self._fan_gate.drive(0.0)
        if self._wait_task is not None:
            self._wait_task.cancel()
            self._wait_task = None

    # ------------------------------------------------------------------
    # Command pump
    # ------------------------------------------------------------------
    def _schedule_pump(self, delay_ns: Optional[int] = None) -> None:
        delay = self.config.command_latency_us * US if delay_ns is None else delay_ns
        self.sim.schedule(delay, self._pump)

    def _pump(self) -> None:
        if self.status is not PrinterStatus.PRINTING or self._waiting:
            return
        command = self._pending
        self._pending = None
        if command is None:
            command = self._next_command()
        if command is None:
            self._maybe_finish()
            return
        handler = self._handlers.get(command.name)
        if handler is None:
            self._log(f"echo:Unknown command: \"{command.name}\"")
        else:
            handler(command)
            if self._pending is command:
                return  # stalled on planner backpressure; resumed by stepper
        self.commands_processed += 1
        if self.status is PrinterStatus.PRINTING and not self._waiting:
            self._schedule_pump()

    def _next_command(self) -> Optional[Command]:
        if self._source is None:
            return None
        try:
            return next(self._source)
        except StopIteration:
            self._source = None
            return None

    def _maybe_finish(self) -> None:
        if (
            self.status is PrinterStatus.PRINTING
            and self._source is None
            and self._pending is None
            and self.planner.is_empty
            and self.stepper.idle
        ):
            self.status = PrinterStatus.DONE
            for callback in list(self.on_complete):
                callback()

    def _on_stepper_progress(self) -> None:
        if self._pending is not None and not self.planner.is_full:
            self._schedule_pump(0)
        elif self.status is PrinterStatus.PRINTING and self._source is None:
            self._maybe_finish()

    # ------------------------------------------------------------------
    # Waits
    # ------------------------------------------------------------------
    def _begin_wait(self, predicate: Callable[[], bool]) -> None:
        """Block the pump until ``predicate()`` holds."""
        self._waiting = True

        def poll() -> None:
            if self.status is not PrinterStatus.PRINTING:
                task.cancel()
                return
            if predicate():
                task.cancel()
                self._waiting = False
                self._schedule_pump(0)

        task = self.sim.every(_WAIT_POLL_MS * MS, poll)
        self._wait_task = task

    def _residency_predicate(self, heater: HeaterController) -> Callable[[], bool]:
        stable_since: List[Optional[int]] = [None]
        residency_ns = int(self.config.temp_residency_s * 1e9)

        def check() -> bool:
            if heater.at_target():
                if stable_since[0] is None:
                    stable_since[0] = self.sim.now
                return self.sim.now - stable_since[0] >= residency_ns
            stable_since[0] = None
            return False

        return check

    # ------------------------------------------------------------------
    # Motion handlers
    # ------------------------------------------------------------------
    def _g_move(self, cmd: Command) -> None:
        state = self.state
        if cmd.has("F"):
            feed = (cmd.get("F") or 0.0) / 60.0
            if feed > 0:
                state.feedrate_mm_s = feed

        target_mm: Dict[str, float] = {}
        for axis in ("X", "Y", "Z"):
            if cmd.has(axis):
                value = cmd.get(axis) or 0.0
                target_mm[axis] = (
                    value if state.absolute_coords else state.position_mm[axis] + value
                )
        e_delta = 0.0
        if cmd.has("E"):
            value = cmd.get("E") or 0.0
            e_delta = (value - state.position_mm["E"]) if state.absolute_e else value

        if e_delta != 0.0 and not self._cold_extrusion_ok():
            self._log("echo:cold extrusion prevented")
            e_delta = 0.0
            # keep the logical E chain consistent with what the host sent
            if cmd.has("E"):
                value = cmd.get("E") or 0.0
                state.position_mm["E"] = value if state.absolute_e else state.position_mm["E"] + value
                state.position_steps["E"] = state.steps_for("E", state.position_mm["E"])

        steps: Dict[str, int] = {}
        for axis in ("X", "Y", "Z"):
            if axis in target_mm:
                new_steps = state.steps_for(axis, target_mm[axis])
                steps[axis] = new_steps - state.position_steps[axis]
            else:
                steps[axis] = 0
        if e_delta != 0.0:
            flow = state.flow_percent / 100.0
            e_target_steps = state.position_steps["E"] + round(
                e_delta * flow * self.config.steps_per_mm["E"]
            )
            steps["E"] = e_target_steps - state.position_steps["E"]
        else:
            steps["E"] = 0

        if all(count == 0 for count in steps.values()):
            self._commit_move_state(cmd, target_mm, e_delta, steps)
            return

        if self.planner.is_full:
            self._pending = cmd
            return

        speed = state.feedrate_mm_s * state.feedrate_percent / 100.0
        self.planner.add_move(steps, speed, self._accel_override)
        self._commit_move_state(cmd, target_mm, e_delta, steps)
        self.stepper.wake()

    def _commit_move_state(
        self,
        cmd: Command,
        target_mm: Dict[str, float],
        e_delta: float,
        steps: Dict[str, int],
    ) -> None:
        state = self.state
        for axis, value in target_mm.items():
            state.position_mm[axis] = value
            state.position_steps[axis] += steps[axis]
        if e_delta != 0.0 or cmd.has("E"):
            if cmd.has("E"):
                value = cmd.get("E") or 0.0
                state.position_mm["E"] = (
                    value if state.absolute_e else state.position_mm["E"] + value
                )
            state.position_steps["E"] += steps["E"]

    def _cold_extrusion_ok(self) -> bool:
        if self._allow_cold_extrusion:
            return True
        return self.hotend.read_temp_c() >= self.config.min_extrude_temp_c

    def _g_dwell(self, cmd: Command) -> None:
        ms = cmd.get("P", 0.0) or 0.0
        seconds = cmd.get("S", 0.0) or 0.0
        total_ns = int(ms * 1e6 + seconds * 1e9)
        if total_ns <= 0:
            return
        deadline = self.sim.now + total_ns
        self._begin_wait(
            lambda: self.sim.now >= deadline
            and self.planner.is_empty
            and self.stepper.idle
        )

    def _g_home(self, cmd: Command) -> None:
        axes = [axis for axis in ("X", "Y", "Z") if cmd.has(axis)] or None
        self._waiting = True

        def done() -> None:
            self._waiting = False
            self._schedule_pump(0)

        self.homing.home(axes, done, self.kill)

    def _g_set_position(self, cmd: Command) -> None:
        for axis in AXES:
            if cmd.has(axis):
                self.state.set_logical_position(axis, cmd.get(axis) or 0.0)

    # ------------------------------------------------------------------
    # Mode / misc handlers
    # ------------------------------------------------------------------
    def _set_abs_coords(self, absolute: bool) -> None:
        self.state.absolute_coords = absolute

    def _set_abs_e(self, absolute: bool) -> None:
        self.state.absolute_e = absolute

    def _m_disable_steppers(self, cmd: Command) -> None:
        # Marlin's M84 synchronizes: queued motion finishes before power-off.
        if not (self.planner.is_empty and self.stepper.idle):
            self._pending = cmd
            return
        axes = [axis for axis in AXES if cmd.has(axis)]
        self.stepper.disable_steppers(axes or None)

    def _m_set_hotend(self, cmd: Command) -> None:
        target = cmd.get("S", 0.0) or 0.0
        self.state.target_hotend_c = target
        self.hotend.set_target(target)

    def _m_wait_hotend(self, cmd: Command) -> None:
        self._m_set_hotend(cmd)
        if (self.state.target_hotend_c or 0) > 0:
            self._begin_wait(self._residency_predicate(self.hotend))

    def _m_set_bed(self, cmd: Command) -> None:
        target = cmd.get("S", 0.0) or 0.0
        self.state.target_bed_c = target
        self.bed.set_target(target)

    def _m_wait_bed(self, cmd: Command) -> None:
        self._m_set_bed(cmd)
        if (self.state.target_bed_c or 0) > 0:
            self._begin_wait(self._residency_predicate(self.bed))

    def _m_report_temps(self, cmd: Command) -> None:
        self._log(
            f"ok T:{self.hotend.read_temp_c():.2f} /{self.hotend.target_c:.2f} "
            f"B:{self.bed.read_temp_c():.2f} /{self.bed.target_c:.2f}"
        )

    def _m_fan_on(self, cmd: Command) -> None:
        raw = cmd.get("S", 255.0)
        raw = 255.0 if raw is None else raw
        self._set_fan(min(255.0, max(0.0, raw)) / 255.0)

    def _set_fan(self, duty: float) -> None:
        self.state.fan_duty = duty
        self._fan_gate.drive(duty)

    def _m_report_position(self, cmd: Command) -> None:
        pos = self.state.position_mm
        self._log(
            f"X:{pos['X']:.2f} Y:{pos['Y']:.2f} Z:{pos['Z']:.2f} E:{pos['E']:.2f}"
        )

    def _m_set_accel(self, cmd: Command) -> None:
        accel = cmd.get("S") or cmd.get("P")
        if accel and accel > 0:
            self._accel_override = float(accel)

    def _m_feedrate_percent(self, cmd: Command) -> None:
        value = cmd.get("S")
        if value and value > 0:
            self.state.feedrate_percent = float(value)

    def _m_flow_percent(self, cmd: Command) -> None:
        value = cmd.get("S")
        if value and value > 0:
            self.state.flow_percent = float(value)

    def _m_cold_extrusion(self, cmd: Command) -> None:
        if cmd.has("P"):
            self._allow_cold_extrusion = bool(cmd.get("P"))
        elif cmd.has("S"):
            # M302 S0 allows extrusion at any temperature
            self._allow_cold_extrusion = (cmd.get("S") or 0.0) <= 0
        else:
            self._allow_cold_extrusion = True

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        self.log.append(f"[{self.sim.now}] {message}")
