"""Stepper executor: planned blocks → STEP/DIR/EN events on the harness.

Executes one :class:`~repro.firmware.planner.MotionBlock` at a time. For each
block it solves the trapezoid (entry/cruise/exit), derives the time of every
step event by inverting the motion profile, distributes secondary-axis steps
with a Bresenham/DDA accumulator (guaranteeing exact signed step totals), and
schedules events one at a time so aborts and endstop stops are immediate.

The optional *time-noise* model scales each block's execution rate by a
zero-mean random factor — the "time noise" of asynchronous manufacturing
systems the paper cites as the reason for its 5 % detection margin.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional

from repro.errors import FirmwareError
from repro.firmware.config import MarlinConfig
from repro.firmware.planner import AXES, MotionBlock, MotionPlanner
from repro.electronics.harness import SignalHarness
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.time import US

_DIR_SETTLE_NS = 2 * US  # DIR→STEP setup time honoured at block start


class StepperExecutor:
    """Drives the upstream (Arduino-side) motion wires from planner blocks."""

    def __init__(
        self,
        sim: Simulator,
        config: MarlinConfig,
        harness: SignalHarness,
        planner: MotionPlanner,
    ) -> None:
        self.sim = sim
        self.config = config
        self.harness = harness
        self.planner = planner
        self._rng = random.Random(config.time_noise_seed)

        self._step_wires = {axis: harness.upstream(f"{axis}_STEP") for axis in AXES}
        self._dir_wires = {axis: harness.upstream(f"{axis}_DIR") for axis in AXES}
        self._en_wires = {axis: harness.upstream(f"{axis}_EN") for axis in AXES}
        for wire in self._en_wires.values():
            wire.drive(1)  # active low: start disabled

        self._block: Optional[MotionBlock] = None
        self._times: List[int] = []
        self._index = 0
        self._dda: Dict[str, int] = {}
        self._block_start_ns = 0
        self._handle: Optional[EventHandle] = None
        self._homing = False

        self.on_block_done: List[Callable[[], None]] = []
        self.on_idle: List[Callable[[], None]] = []
        self.blocks_executed = 0
        self.steps_emitted: Dict[str, int] = dict.fromkeys(AXES, 0)

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return self._block is None and not self._homing

    def enable_steppers(self) -> None:
        for wire in self._en_wires.values():
            wire.drive(0)

    def disable_steppers(self, axes: Optional[List[str]] = None) -> None:
        for axis in axes if axes is not None else list(AXES):
            self._en_wires[axis].drive(1)

    @property
    def steppers_enabled(self) -> bool:
        return all(wire.value == 0 for wire in self._en_wires.values())

    # ------------------------------------------------------------------
    # Planned-block execution
    # ------------------------------------------------------------------
    def wake(self) -> None:
        """Start executing if idle and the planner has work."""
        if not self.idle:
            return
        block = self.planner.pop_block()
        if block is None:
            return
        self._begin_block(block)

    def _begin_block(self, block: MotionBlock) -> None:
        self.enable_steppers()
        self._block = block
        self._index = 0
        count = block.step_event_count
        self._dda = {axis: count // 2 for axis in AXES}
        for axis in AXES:
            if block.steps[axis] != 0:
                self._dir_wires[axis].drive(1 if block.steps[axis] > 0 else 0)
        self._times = self._step_times(block)
        self._block_start_ns = self.sim.now
        self._schedule_next()

    def _step_times(self, block: MotionBlock) -> List[int]:
        """Absolute-offset (ns) times of each step event within the block."""
        v_entry, v_exit = block.entry_speed, block.exit_speed
        v_nominal, accel, distance = block.nominal_speed, block.acceleration, block.distance_mm

        d_accel = max(0.0, (v_nominal**2 - v_entry**2) / (2 * accel))
        d_decel = max(0.0, (v_nominal**2 - v_exit**2) / (2 * accel))
        if d_accel + d_decel > distance:
            v_peak = math.sqrt(max((2 * accel * distance + v_entry**2 + v_exit**2) / 2, 0.0))
            v_peak = max(v_peak, v_entry, v_exit)
            d_accel = max(0.0, (v_peak**2 - v_entry**2) / (2 * accel))
            d_decel = max(0.0, distance - d_accel)
            d_cruise = 0.0
        else:
            v_peak = v_nominal
            d_cruise = distance - d_accel - d_decel

        t_accel = (v_peak - v_entry) / accel
        t_cruise = d_cruise / v_peak if v_peak > 0 else 0.0

        noise = 1.0
        sigma = self.config.time_noise_sigma
        if sigma > 0:
            noise = 1.0 + max(-3 * sigma, min(3 * sigma, self._rng.gauss(0.0, sigma)))

        count = block.step_event_count
        times: List[int] = []
        for k in range(1, count + 1):
            s = distance * k / count
            if s <= d_accel + 1e-12:
                t = (math.sqrt(max(v_entry**2 + 2 * accel * s, 0.0)) - v_entry) / accel
            elif s <= d_accel + d_cruise + 1e-12:
                t = t_accel + (s - d_accel) / v_peak
            else:
                s_decel = s - d_accel - d_cruise
                v_term = math.sqrt(max(v_peak**2 - 2 * accel * s_decel, 0.0))
                t = t_accel + t_cruise + (v_peak - v_term) / accel
            times.append(_DIR_SETTLE_NS + int(t * noise * 1e9))
        # Guarantee strictly nondecreasing times (rounding can tie).
        for i in range(1, len(times)):
            if times[i] < times[i - 1]:
                times[i] = times[i - 1]
        return times

    def _schedule_next(self) -> None:
        if self._block is None:
            return
        if self._index >= len(self._times):
            self._finish_block()
            return
        at = self._block_start_ns + self._times[self._index]
        self._handle = self.sim.schedule_at(at, self._emit_step)

    def _emit_step(self) -> None:
        block = self._block
        if block is None:
            return
        count = block.step_event_count
        width = self.config.step_pulse_width_ns
        for axis in AXES:
            axis_steps = abs(block.steps[axis])
            if axis_steps == 0:
                continue
            self._dda[axis] += axis_steps
            if self._dda[axis] >= count:
                self._dda[axis] -= count
                self._step_wires[axis].pulse(width)
                self.steps_emitted[axis] += 1 if block.steps[axis] > 0 else -1
        self._index += 1
        self._schedule_next()

    def _finish_block(self) -> None:
        block = self._block
        self._block = None
        self._handle = None
        if block is not None:
            self.planner.release_block(block)
            self.blocks_executed += 1
        for callback in list(self.on_block_done):
            callback()
        # Chain into the next block with no dead time (junction continuity).
        self.wake()
        if self.idle:
            for callback in list(self.on_idle):
                callback()

    # ------------------------------------------------------------------
    # Homing moves (bypass the planner: constant speed, stop on a wire)
    # ------------------------------------------------------------------
    def home_move(
        self,
        axis: str,
        direction: int,
        max_mm: float,
        feedrate_mm_s: float,
        stop_when: Optional[Callable[[], bool]],
        on_done: Callable[[bool, int], None],
    ) -> None:
        """Constant-speed move on one axis until ``stop_when()`` or ``max_mm``.

        ``on_done(hit, steps_taken)`` fires when the move ends; ``hit`` tells
        whether the stop condition (endstop) ended it.
        """
        if not self.idle:
            raise FirmwareError("home_move while the stepper is busy")
        if direction not in (1, -1):
            raise FirmwareError("home_move direction must be +1/-1")
        self.enable_steppers()
        self._homing = True
        self._dir_wires[axis].drive(1 if direction > 0 else 0)
        spm = self.config.steps_per_mm[axis]
        interval_ns = max(1, int(1e9 / (feedrate_mm_s * spm)))
        remaining = int(max_mm * spm)
        state = {"taken": 0}

        def step_once() -> None:
            if stop_when is not None and stop_when():
                finish(True)
                return
            if state["taken"] >= remaining:
                finish(False)
                return
            self._step_wires[axis].pulse(self.config.step_pulse_width_ns)
            self.steps_emitted[axis] += direction
            state["taken"] += 1
            self._handle = self.sim.schedule(interval_ns, step_once)

        def finish(hit: bool) -> None:
            self._homing = False
            self._handle = None
            on_done(hit, state["taken"])

        self._handle = self.sim.schedule(_DIR_SETTLE_NS, step_once)

    # ------------------------------------------------------------------
    def abort(self) -> None:
        """Stop motion immediately (kill path)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if self._block is not None:
            self.planner.release_block(self._block)
            self._block = None
        self._homing = False
