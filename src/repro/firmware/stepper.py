"""Stepper executor: planned blocks → STEP/DIR/EN events on the harness.

Executes one :class:`~repro.firmware.planner.MotionBlock` at a time. For each
block it solves the trapezoid (entry/cruise/exit), derives the time of every
step event by inverting the motion profile, distributes secondary-axis steps
with a Bresenham/DDA accumulator (guaranteeing exact signed step totals), and
schedules events one at a time so aborts and endstop stops are immediate.

The optional *time-noise* model scales each block's execution rate by a
zero-mean random factor — the "time noise" of asynchronous manufacturing
systems the paper cites as the reason for its 5 % detection margin.

Fast path (``fast_path=True``, requires numpy): step times are solved as
array ops (:meth:`StepperExecutor._step_times_array`, pinned int-for-int
equal to the scalar reference) and steps are emitted in *chunks* — one
kernel event per run of steps spanning an event-free window, with pulses
delivered in bulk through :meth:`~repro.sim.signals.StepWire.pulse_batch`.
Every consumer on the wire must declare itself batch-capable for the
window's pulse count; anything that needs per-step granularity (a Trojan
interceptor on the path, an endstop the run would cross, a travel-limit
clamp, the armed tracker's first-step sync, a plain test tap) vetoes the
batch and that step dispatches precisely. Chunks never span a pending
kernel event, never outrun ``Simulator.run``'s window, and the final step
of a block is always precise, so aborts, homing, and block-done chaining
keep their exact per-event semantics — the byte-identical-verdict contract
is preserved by construction, not by luck.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional

try:  # the fast path vectorizes over numpy; without it we run precise-only.
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None

from repro.errors import FirmwareError
from repro.firmware.config import MarlinConfig
from repro.firmware.planner import AXES, MotionBlock, MotionPlanner
from repro.electronics.harness import SignalHarness
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.time import MS, US

_DIR_SETTLE_NS = 2 * US  # DIR→STEP setup time honoured at block start

# Latency ceiling for one emitted chunk of steps. Chunks already stop at the
# next pending kernel event — in a full session the 20 ms deposition sampler
# and 50 ms thermistor refresh bound every window — so this cap only matters
# when the queue is otherwise empty; it bounds how far a single bulk event
# can run ahead of anything a test or module might schedule next.
FAST_CHUNK_MAX_NS = 20 * MS


class StepperExecutor:
    """Drives the upstream (Arduino-side) motion wires from planner blocks."""

    def __init__(
        self,
        sim: Simulator,
        config: MarlinConfig,
        harness: SignalHarness,
        planner: MotionPlanner,
        fast_path: bool = False,
    ) -> None:
        self.sim = sim
        self.config = config
        self.harness = harness
        self.planner = planner
        self.fast_path = bool(fast_path and np is not None)
        self._rng = random.Random(config.time_noise_seed)

        self._step_wires = {axis: harness.upstream(f"{axis}_STEP") for axis in AXES}
        self._dir_wires = {axis: harness.upstream(f"{axis}_DIR") for axis in AXES}
        self._en_wires = {axis: harness.upstream(f"{axis}_EN") for axis in AXES}
        for wire in self._en_wires.values():
            wire.drive(1)  # active low: start disabled

        self._block: Optional[MotionBlock] = None
        self._times: List[int] = []
        self._index = 0
        self._dda: Dict[str, int] = {}
        self._block_start_ns = 0
        self._handle: Optional[EventHandle] = None
        self._homing = False
        # Fast-path per-block state (None while executing precisely):
        # _pulse_cum[axis][j] = cumulative pulses after j step events (the
        # closed-form DDA), _pulse_idx[axis] = sorted event indices at which
        # the axis pulses, _abs_times = absolute ns of every step event.
        self._pulse_cum: Optional[Dict[str, "np.ndarray"]] = None
        self._pulse_idx: Optional[Dict[str, "np.ndarray"]] = None
        self._abs_times: Optional["np.ndarray"] = None
        # Some vetoes are one-step transient (the armed tracker's first-step
        # sync), others block-stable (an interceptor on the path, an endstop
        # in range). Retrying the window scan after every vetoed step would
        # cost more than the precise path it falls back to, so after a few
        # consecutive vetoes chunking is abandoned for the rest of the block.
        self._chunking = False
        self._veto_streak = 0

        self.on_block_done: List[Callable[[], None]] = []
        self.on_idle: List[Callable[[], None]] = []
        self.blocks_executed = 0
        self.steps_emitted: Dict[str, int] = dict.fromkeys(AXES, 0)

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return self._block is None and not self._homing

    def enable_steppers(self) -> None:
        for wire in self._en_wires.values():
            wire.drive(0)

    def disable_steppers(self, axes: Optional[List[str]] = None) -> None:
        for axis in axes if axes is not None else list(AXES):
            self._en_wires[axis].drive(1)

    @property
    def steppers_enabled(self) -> bool:
        return all(wire.value == 0 for wire in self._en_wires.values())

    # ------------------------------------------------------------------
    # Planned-block execution
    # ------------------------------------------------------------------
    def wake(self) -> None:
        """Start executing if idle and the planner has work."""
        if not self.idle:
            return
        block = self.planner.pop_block()
        if block is None:
            return
        self._begin_block(block)

    def _begin_block(self, block: MotionBlock) -> None:
        self.enable_steppers()
        self._block = block
        self._index = 0
        count = block.step_event_count
        self._dda = {axis: count // 2 for axis in AXES}
        for axis in AXES:
            if block.steps[axis] != 0:
                self._dir_wires[axis].drive(1 if block.steps[axis] > 0 else 0)
        self._block_start_ns = self.sim.now
        if self.fast_path:
            times = self._step_times_array(block)
            self._times = times
            self._abs_times = self._block_start_ns + times
            cum: Dict[str, "np.ndarray"] = {}
            idx: Dict[str, "np.ndarray"] = {}
            for axis in AXES:
                axis_steps = abs(block.steps[axis])
                if axis_steps == 0:
                    continue
                # Closed form of the DDA: after j events the accumulator is
                # (count//2 + j*a) mod count, and the axis has pulsed
                # (count//2 + j*a) // count times — event j-1 pulses exactly
                # when that quotient increments.
                cumulative = (
                    count // 2 + np.arange(0, count + 1, dtype=np.int64) * axis_steps
                ) // count
                cum[axis] = cumulative
                idx[axis] = np.nonzero(cumulative[1:] > cumulative[:-1])[0]
            self._pulse_cum = cum
            self._pulse_idx = idx
            self._chunking = True
            self._veto_streak = 0
        else:
            self._times = self._step_times(block)
            self._pulse_cum = None
            self._pulse_idx = None
            self._abs_times = None
            self._chunking = False
        self._schedule_next()

    def _block_profile(self, block: MotionBlock):
        """Solve the block's trapezoid; shared by scalar and vector paths.

        Returns ``(d_accel, d_cruise, v_peak, t_accel, t_cruise, noise)``.
        Draws at most one noise sample from the RNG, so scalar and vector
        executions consume the stream identically.
        """
        v_entry, v_exit = block.entry_speed, block.exit_speed
        v_nominal, accel, distance = block.nominal_speed, block.acceleration, block.distance_mm

        d_accel = max(0.0, (v_nominal**2 - v_entry**2) / (2 * accel))
        d_decel = max(0.0, (v_nominal**2 - v_exit**2) / (2 * accel))
        if d_accel + d_decel > distance:
            v_peak = math.sqrt(max((2 * accel * distance + v_entry**2 + v_exit**2) / 2, 0.0))
            v_peak = max(v_peak, v_entry, v_exit)
            d_accel = max(0.0, (v_peak**2 - v_entry**2) / (2 * accel))
            d_decel = max(0.0, distance - d_accel)
            d_cruise = 0.0
        else:
            v_peak = v_nominal
            d_cruise = distance - d_accel - d_decel

        t_accel = (v_peak - v_entry) / accel
        t_cruise = d_cruise / v_peak if v_peak > 0 else 0.0

        noise = 1.0
        sigma = self.config.time_noise_sigma
        if sigma > 0:
            noise = 1.0 + max(-3 * sigma, min(3 * sigma, self._rng.gauss(0.0, sigma)))
        return d_accel, d_cruise, v_peak, t_accel, t_cruise, noise

    def _step_times(self, block: MotionBlock) -> List[int]:
        """Absolute-offset (ns) times of each step event within the block.

        The scalar reference implementation. :meth:`_step_times_array` must
        return exactly these integers — the property test in
        ``tests/test_fast_path.py`` pins the equality.
        """
        d_accel, d_cruise, v_peak, t_accel, t_cruise, noise = self._block_profile(block)
        v_entry = block.entry_speed
        accel, distance = block.acceleration, block.distance_mm

        count = block.step_event_count
        times: List[int] = []
        for k in range(1, count + 1):
            s = distance * k / count
            if s <= d_accel + 1e-12:
                t = (math.sqrt(max(v_entry**2 + 2 * accel * s, 0.0)) - v_entry) / accel
            elif s <= d_accel + d_cruise + 1e-12:
                t = t_accel + (s - d_accel) / v_peak
            else:
                s_decel = s - d_accel - d_cruise
                v_term = math.sqrt(max(v_peak**2 - 2 * accel * s_decel, 0.0))
                t = t_accel + t_cruise + (v_peak - v_term) / accel
            times.append(_DIR_SETTLE_NS + int(t * noise * 1e9))
        # Guarantee strictly nondecreasing times (rounding can tie).
        for i in range(1, len(times)):
            if times[i] < times[i - 1]:
                times[i] = times[i - 1]
        return times

    def _step_times_array(self, block: MotionBlock) -> "np.ndarray":
        """Vectorized :meth:`_step_times`: same integers, numpy throughput.

        Every operation mirrors the scalar path's order and associativity
        (``(2*accel)*s`` not ``2*(accel*s)``, scalar ``t_accel + t_cruise``
        folded first, truncation via int64 cast) so IEEE-754 rounding — and
        therefore the emitted nanosecond — is bit-identical.
        """
        d_accel, d_cruise, v_peak, t_accel, t_cruise, noise = self._block_profile(block)
        v_entry = block.entry_speed
        accel, distance = block.acceleration, block.distance_mm

        count = block.step_event_count
        k = np.arange(1, count + 1, dtype=np.float64)
        s = distance * k / count

        t = np.empty(count, dtype=np.float64)
        accel_mask = s <= d_accel + 1e-12
        cruise_mask = ~accel_mask & (s <= d_accel + d_cruise + 1e-12)
        decel_mask = ~(accel_mask | cruise_mask)
        if accel_mask.any():
            sa = s[accel_mask]
            t[accel_mask] = (
                np.sqrt(np.maximum(v_entry**2 + 2 * accel * sa, 0.0)) - v_entry
            ) / accel
        if cruise_mask.any():
            sc = s[cruise_mask]
            t[cruise_mask] = t_accel + (sc - d_accel) / v_peak
        if decel_mask.any():
            s_decel = s[decel_mask] - d_accel - d_cruise
            v_term = np.sqrt(np.maximum(v_peak**2 - 2 * accel * s_decel, 0.0))
            t[decel_mask] = (t_accel + t_cruise) + (v_peak - v_term) / accel

        times = _DIR_SETTLE_NS + (t * noise * 1e9).astype(np.int64)
        # Guarantee strictly nondecreasing times (rounding can tie).
        return np.maximum.accumulate(times)

    def _schedule_next(self) -> None:
        if self._block is None:
            return
        n = len(self._times)
        if self._index >= n:
            self._finish_block()
            return
        at = self._block_start_ns + int(self._times[self._index])
        if self._chunking and self._index < n - 1:
            # The final step of a block always dispatches precisely so
            # _finish_block (and the command pump it wakes) runs at the
            # last step's own timestamp, exactly as in precise mode.
            self._handle = self.sim.schedule_at(at, self._emit_chunk)
        else:
            self._handle = self.sim.schedule_at(at, self._emit_step)

    def _emit_step(self) -> None:
        block = self._block
        if block is None:
            return
        width = self.config.step_pulse_width_ns
        if self._pulse_cum is not None:
            # Fast block, precise step: read the closed-form DDA instead of
            # the accumulator (which bulk emission does not maintain).
            i = self._index
            for axis, cumulative in self._pulse_cum.items():
                if cumulative[i + 1] > cumulative[i]:
                    self._step_wires[axis].pulse(width)
                    self.steps_emitted[axis] += 1 if block.steps[axis] > 0 else -1
            self._index += 1
            self._schedule_next()
            return
        count = block.step_event_count
        for axis in AXES:
            axis_steps = abs(block.steps[axis])
            if axis_steps == 0:
                continue
            self._dda[axis] += axis_steps
            if self._dda[axis] >= count:
                self._dda[axis] -= count
                self._step_wires[axis].pulse(width)
                self.steps_emitted[axis] += 1 if block.steps[axis] > 0 else -1
        self._index += 1
        self._schedule_next()

    def _emit_chunk(self) -> None:
        """Emit every step in the largest provably-safe event-free window.

        Fires at the first pending step's own timestamp. The window ends
        strictly before the next pending kernel event (so no foreign
        callback ever observes half-applied bulk state), at the kernel's
        ``run`` bound, at :data:`FAST_CHUNK_MAX_NS`, and always before the
        block's final step. If the window is empty or any wire consumer
        vetoes bulk delivery, exactly one step dispatches precisely and
        the next scheduling decision tries again.
        """
        block = self._block
        if block is None:
            return
        abs_times = self._abs_times
        i0 = self._index
        n = len(abs_times)

        limit = self._block_start_ns + int(self._times[i0]) + FAST_CHUNK_MAX_NS
        until = self.sim.run_until_ns
        if until is not None and until < limit:
            limit = until
        # Steps at or before `limit` (inclusive: run() dispatches events at
        # exactly until_ns), but strictly before the next pending event.
        i1 = int(np.searchsorted(abs_times, limit, side="right"))
        next_event = self.sim.next_event_time()
        if next_event is not None:
            i1 = min(i1, int(np.searchsorted(abs_times, next_event, side="left")))
        i1 = min(i1, n - 1)

        if i1 <= i0:
            self._emit_step()
            return

        width = self.config.step_pulse_width_ns
        spans = []
        for axis, indices in self._pulse_idx.items():
            lo = int(np.searchsorted(indices, i0, side="left"))
            hi = int(np.searchsorted(indices, i1, side="left"))
            if hi > lo:
                spans.append((axis, indices, lo, hi))
        for axis, _indices, lo, hi in spans:
            if not self._step_wires[axis].batch_ready(hi - lo):
                self._veto_streak += 1
                if self._veto_streak >= 3:
                    self._chunking = False
                self._emit_step()
                return
        self._veto_streak = 0

        for axis, indices, lo, hi in spans:
            times = abs_times[indices[lo:hi]]
            self._step_wires[axis].pulse_batch(times, width)
            pulses = hi - lo
            self.steps_emitted[axis] += pulses if block.steps[axis] > 0 else -pulses
        self._index = i1
        self._schedule_next()

    def _finish_block(self) -> None:
        block = self._block
        self._block = None
        self._handle = None
        self._pulse_cum = None
        self._pulse_idx = None
        self._abs_times = None
        if block is not None:
            self.planner.release_block(block)
            self.blocks_executed += 1
        for callback in list(self.on_block_done):
            callback()
        # Chain into the next block with no dead time (junction continuity).
        self.wake()
        if self.idle:
            for callback in list(self.on_idle):
                callback()

    # ------------------------------------------------------------------
    # Homing moves (bypass the planner: constant speed, stop on a wire)
    # ------------------------------------------------------------------
    def home_move(
        self,
        axis: str,
        direction: int,
        max_mm: float,
        feedrate_mm_s: float,
        stop_when: Optional[Callable[[], bool]],
        on_done: Callable[[bool, int], None],
    ) -> None:
        """Constant-speed move on one axis until ``stop_when()`` or ``max_mm``.

        ``on_done(hit, steps_taken)`` fires when the move ends; ``hit`` tells
        whether the stop condition (endstop) ended it.
        """
        if not self.idle:
            raise FirmwareError("home_move while the stepper is busy")
        if direction not in (1, -1):
            raise FirmwareError("home_move direction must be +1/-1")
        self.enable_steppers()
        self._homing = True
        self._dir_wires[axis].drive(1 if direction > 0 else 0)
        spm = self.config.steps_per_mm[axis]
        interval_ns = max(1, int(1e9 / (feedrate_mm_s * spm)))
        remaining = int(max_mm * spm)
        state = {"taken": 0}

        def step_once() -> None:
            if stop_when is not None and stop_when():
                finish(True)
                return
            if state["taken"] >= remaining:
                finish(False)
                return
            self._step_wires[axis].pulse(self.config.step_pulse_width_ns)
            self.steps_emitted[axis] += direction
            state["taken"] += 1
            self._handle = self.sim.schedule(interval_ns, step_once)

        def finish(hit: bool) -> None:
            self._homing = False
            self._handle = None
            on_done(hit, state["taken"])

        self._handle = self.sim.schedule(_DIR_SETTLE_NS, step_once)

    # ------------------------------------------------------------------
    def abort(self) -> None:
        """Stop motion immediately (kill path)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if self._block is not None:
            self.planner.release_block(self._block)
            self._block = None
        self._homing = False
        self._pulse_cum = None
        self._pulse_idx = None
        self._abs_times = None
