"""Firmware configuration: the compile-time constants of a Marlin build.

Defaults mirror a Prusa-i3-MK3S-class machine and must agree with the plant's
:class:`~repro.physics.printer.PlantProfile` on steps-per-mm (the drivetrain
is a physical fact both sides share). Thermal-protection windows follow
Marlin's ``WATCH_TEMP_*`` / ``THERMAL_PROTECTION_*`` defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import FirmwareError


@dataclass(frozen=True)
class PidGains:
    """PID controller gains (duty per °C, per °C·s, per °C/s)."""

    kp: float
    ki: float
    kd: float


@dataclass(frozen=True)
class MarlinConfig:
    """Everything the firmware simulator needs to know at build time."""

    steps_per_mm: Dict[str, float] = field(
        default_factory=lambda: {"X": 100.0, "Y": 100.0, "Z": 400.0, "E": 280.0}
    )
    max_feedrate_mm_s: Dict[str, float] = field(
        default_factory=lambda: {"X": 200.0, "Y": 200.0, "Z": 12.0, "E": 120.0}
    )
    max_accel_mm_s2: Dict[str, float] = field(
        default_factory=lambda: {"X": 1000.0, "Y": 1000.0, "Z": 200.0, "E": 5000.0}
    )
    default_accel_mm_s2: float = 1000.0
    jerk_mm_s: Dict[str, float] = field(
        default_factory=lambda: {"X": 8.0, "Y": 8.0, "Z": 0.4, "E": 4.5}
    )
    min_feedrate_mm_s: float = 0.5
    planner_buffer_size: int = 16
    step_pulse_width_ns: int = 2_000

    # Homing
    homing_feedrate_mm_s: Dict[str, float] = field(
        default_factory=lambda: {"X": 50.0, "Y": 50.0, "Z": 8.0}
    )
    homing_bump_mm: Dict[str, float] = field(
        default_factory=lambda: {"X": 3.0, "Y": 3.0, "Z": 1.0}
    )
    homing_bump_divisor: float = 4.0  # re-bump at feedrate / divisor
    homing_max_travel_mm: Dict[str, float] = field(
        default_factory=lambda: {"X": 260.0, "Y": 220.0, "Z": 220.0}
    )

    # Temperature control
    hotend_pid: PidGains = PidGains(kp=0.25, ki=0.02, kd=0.9)
    bed_pid: PidGains = PidGains(kp=0.25, ki=0.01, kd=0.0)
    hotend_maxtemp_c: float = 275.0
    bed_maxtemp_c: float = 125.0
    mintemp_c: float = 5.0
    temp_window_c: float = 2.0  # M109/M190 "reached" hysteresis
    temp_residency_s: float = 3.0
    temp_control_period_ms: int = 100
    watch_temp_period_s: float = 20.0  # Marlin WATCH_TEMP_PERIOD
    watch_temp_increase_c: float = 2.0  # Marlin WATCH_TEMP_INCREASE
    runaway_period_s: float = 40.0  # THERMAL_PROTECTION_PERIOD
    runaway_hysteresis_c: float = 4.0  # THERMAL_PROTECTION_HYSTERESIS
    min_extrude_temp_c: float = 170.0
    allow_cold_extrusion: bool = False

    # Host / command pipeline
    command_latency_us: int = 2_000  # serial transfer + parse time per line

    # Execution time noise ("time noise" of Liang et al., Section V-C): each
    # planner block's execution rate wanders by a zero-mean factor with this
    # sigma. 0 disables. Seed selects the realization.
    time_noise_sigma: float = 0.0
    time_noise_seed: int = 0

    def __post_init__(self) -> None:
        for axis in ("X", "Y", "Z", "E"):
            if axis not in self.steps_per_mm:
                raise FirmwareError(f"steps_per_mm missing axis {axis}")
            if self.steps_per_mm[axis] <= 0:
                raise FirmwareError(f"steps_per_mm[{axis}] must be positive")
        if self.planner_buffer_size < 2:
            raise FirmwareError("planner buffer must hold at least 2 blocks")
        if not 0.0 <= self.time_noise_sigma < 0.05:
            raise FirmwareError("time_noise_sigma must be in [0, 0.05)")

    def with_noise(self, sigma: float, seed: int) -> "MarlinConfig":
        """Copy of this config with the time-noise model configured."""
        from dataclasses import replace

        return replace(self, time_noise_sigma=sigma, time_noise_seed=seed)
