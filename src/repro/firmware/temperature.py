"""Heater control: PID loops plus Marlin's thermal-protection watchdogs.

Each heater (hotend, bed) runs a fixed-period control tick that samples its
thermistor channel through the harness ADC path, computes a PID duty, drives
the PWM gate wire, and evaluates three protections:

* **MAXTEMP / MINTEMP** — sensor reads outside the sane range → kill.
* **Heating watch** (``WATCH_TEMP_PERIOD`` / ``WATCH_TEMP_INCREASE``) — after
  a target raise, temperature must climb by the watch increase within the
  watch period or the firmware declares "Heating failed" (what Trojan T6
  provokes by cutting MOSFET power).
* **Thermal runaway** (``THERMAL_PROTECTION_PERIOD`` / ``HYSTERESIS``) — once
  the target is reached, a sustained sag below target - hysteresis kills the
  machine.

Kills are delivered through a callback so the firmware can stop everything;
crucially, the kill only drives the *upstream* heater wire to zero — if an
interposer forces the downstream gate on (Trojan T7), the physical heater
keeps heating, exactly the paper's observation that the Trojan "ignores the
firmware's thermal runaway panic".
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.electronics.thermistor import adc_to_temp, voltage_to_adc
from repro.firmware.config import MarlinConfig, PidGains
from repro.sim.kernel import PeriodicTask, Simulator
from repro.sim.signals import AnalogWire, PwmWire
from repro.sim.time import MS


class _ProtectionState(enum.Enum):
    INACTIVE = "inactive"  # no target set
    FIRST_HEATING = "first_heating"  # climbing toward a new target
    TRACKING = "tracking"  # target reached; watching for sag


class HeaterController:
    """PID + protection for one heater."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        sensor: AnalogWire,
        gate: PwmWire,
        gains: PidGains,
        maxtemp_c: float,
        config: MarlinConfig,
        on_kill: Callable[[str], None],
    ) -> None:
        self.sim = sim
        self.name = name
        self.sensor = sensor
        self.gate = gate
        self.gains = gains
        self.maxtemp_c = maxtemp_c
        self.config = config
        self._on_kill = on_kill

        self.target_c = 0.0
        self._integral = 0.0
        self._d_smoothed = 0.0
        self._previous_temp: Optional[float] = None
        self._state = _ProtectionState.INACTIVE
        self._watch_deadline_ns: Optional[int] = None
        self._watch_temp_c = 0.0
        self._sag_since_ns: Optional[int] = None
        self._killed = False
        self._task: Optional[PeriodicTask] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic control loop."""
        if self._task is None or self._task.cancelled:
            self._task = self.sim.every(
                self.config.temp_control_period_ms * MS, self._tick
            )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def read_temp_c(self) -> float:
        """Sample the thermistor through the ADC quantisation path."""
        return adc_to_temp(voltage_to_adc(self.sensor.value))

    def set_target(self, target_c: float) -> None:
        """M104/M140-style target update; arms the heating watch on a raise."""
        current = self.read_temp_c()
        if target_c > 0 and target_c > current + self.config.watch_temp_increase_c:
            self._state = _ProtectionState.FIRST_HEATING
            self._arm_watch(current)
        elif target_c > 0:
            self._state = _ProtectionState.TRACKING
            self._sag_since_ns = None
        else:
            self._state = _ProtectionState.INACTIVE
            self._watch_deadline_ns = None
            self._sag_since_ns = None
        self.target_c = target_c
        self._integral = 0.0
        self._d_smoothed = 0.0
        self._previous_temp = None

    def _arm_watch(self, current_c: float) -> None:
        self._watch_temp_c = current_c + self.config.watch_temp_increase_c
        self._watch_deadline_ns = self.sim.now + int(self.config.watch_temp_period_s * 1e9)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._killed:
            return
        temp = self.read_temp_c()
        self._check_protection(temp)
        if self._killed:
            return
        self.gate.drive(self._pid(temp))

    _FUNCTIONAL_RANGE_C = 15.0  # Marlin PID_FUNCTIONAL_RANGE
    _D_SMOOTHING = 0.95  # Marlin PID_K1 measurement filter

    def _pid(self, temp: float) -> float:
        """Marlin-style PID: bang-bang outside the functional range, then PID
        with conditional integration and a filtered measurement derivative
        (the raw ADC-quantised signal is too noisy to differentiate)."""
        if self.target_c <= 0:
            self._integral = 0.0
            self._previous_temp = None
            return 0.0
        error = self.target_c - temp
        if error > self._FUNCTIONAL_RANGE_C:
            self._previous_temp = temp
            return 1.0
        if error < -self._FUNCTIONAL_RANGE_C:
            self._previous_temp = temp
            return 0.0

        dt_s = self.config.temp_control_period_ms / 1000.0
        if self._previous_temp is not None:
            k1 = self._D_SMOOTHING
            self._d_smoothed = k1 * self._d_smoothed + (1.0 - k1) * (
                temp - self._previous_temp
            )
        self._previous_temp = temp
        d_term = -self.gains.kd * self._d_smoothed / dt_s

        p_term = self.gains.kp * error
        raw = p_term + self.gains.ki * self._integral + d_term
        # Conditional integration: only wind while the output is unsaturated.
        if 0.0 < raw < 1.0 or (raw >= 1.0 and error < 0) or (raw <= 0.0 and error > 0):
            self._integral += error * dt_s
            if self.gains.ki > 0:
                self._integral = max(0.0, min(1.0 / self.gains.ki, self._integral))
        duty = p_term + self.gains.ki * self._integral + d_term
        return max(0.0, min(1.0, duty))

    # ------------------------------------------------------------------
    def _check_protection(self, temp: float) -> None:
        config = self.config
        if temp > self.maxtemp_c:
            self._kill(f"{self.name}: MAXTEMP triggered ({temp:.1f}C)")
            return
        if self.target_c > 0 and temp < config.mintemp_c:
            self._kill(f"{self.name}: MINTEMP triggered ({temp:.1f}C)")
            return

        if self._state is _ProtectionState.FIRST_HEATING:
            if temp >= self.target_c - config.temp_window_c:
                self._state = _ProtectionState.TRACKING
                self._sag_since_ns = None
                self._watch_deadline_ns = None
            elif self._watch_deadline_ns is not None and self.sim.now >= self._watch_deadline_ns:
                if temp < self._watch_temp_c:
                    self._kill(f"{self.name}: Heating failed, system stopped!")
                    return
                self._arm_watch(temp)  # progress made: watch the next increment
        elif self._state is _ProtectionState.TRACKING and self.target_c > 0:
            if temp < self.target_c - config.runaway_hysteresis_c:
                if self._sag_since_ns is None:
                    self._sag_since_ns = self.sim.now
                elif self.sim.now - self._sag_since_ns >= int(config.runaway_period_s * 1e9):
                    self._kill(f"{self.name}: Thermal Runaway, system stopped!")
                    return
            else:
                self._sag_since_ns = None

    def _kill(self, reason: str) -> None:
        self._killed = True
        self.gate.drive(0.0)
        self._on_kill(reason)

    # ------------------------------------------------------------------
    @property
    def killed(self) -> bool:
        return self._killed

    def at_target(self) -> bool:
        """True when within the M109 wait window of the target."""
        if self.target_c <= 0:
            return True
        return abs(self.read_temp_c() - self.target_c) <= self.config.temp_window_c
