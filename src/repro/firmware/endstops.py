"""G28 homing: endstop-seeking moves in the Marlin style.

Each axis homes with the classic sequence: fast approach until the minimum
endstop triggers, back off by the bump distance, slow re-bump for precision,
then zero the logical position at the trigger point. The endstop levels are
read from the *downstream* (Arduino-side) wires — the same signals the
OFFRAMPS homing-detection module watches from the middle of the harness.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.electronics.harness import SignalHarness
from repro.errors import FirmwareError
from repro.firmware.config import MarlinConfig
from repro.firmware.state import MachineState
from repro.firmware.stepper import StepperExecutor
from repro.sim.kernel import Simulator

_HOME_ORDER = ("X", "Y", "Z")


class HomingController:
    """Runs the multi-axis homing sequence via chained stepper home-moves."""

    def __init__(
        self,
        sim: Simulator,
        config: MarlinConfig,
        harness: SignalHarness,
        stepper: StepperExecutor,
        state: MachineState,
    ) -> None:
        self.sim = sim
        self.config = config
        self.stepper = stepper
        self.state = state
        self._endstop_wires = {
            axis: harness.downstream(f"{axis}_MIN") for axis in _HOME_ORDER
        }
        self.homing_cycles = 0

    def home(
        self,
        axes: Optional[List[str]],
        on_done: Callable[[], None],
        on_failed: Callable[[str], None],
    ) -> None:
        """Home the given axes (None = all) then invoke ``on_done``."""
        order = [axis for axis in _HOME_ORDER if axes is None or axis in axes]
        if not order:
            raise FirmwareError("G28 with no homeable axes")
        self._run_axis(order, 0, on_done, on_failed)

    # ------------------------------------------------------------------
    def _run_axis(
        self,
        order: List[str],
        index: int,
        on_done: Callable[[], None],
        on_failed: Callable[[str], None],
    ) -> None:
        if index >= len(order):
            self.homing_cycles += 1
            on_done()
            return
        axis = order[index]
        config = self.config
        endstop = self._endstop_wires[axis]
        fast = config.homing_feedrate_mm_s[axis]
        slow = fast / config.homing_bump_divisor
        bump = config.homing_bump_mm[axis]
        max_travel = config.homing_max_travel_mm[axis]

        def proceed() -> None:
            self._run_axis(order, index + 1, on_done, on_failed)

        def fast_done(hit: bool, _steps: int) -> None:
            if not hit:
                on_failed(f"Homing failed on {axis} (endstop never triggered)")
                return
            self.stepper.home_move(axis, +1, bump, fast, None, back_off_done)

        def back_off_done(_hit: bool, _steps: int) -> None:
            self.stepper.home_move(
                axis, -1, bump * 2, slow, lambda: endstop.value == 1, rebump_done
            )

        def rebump_done(hit: bool, _steps: int) -> None:
            if not hit:
                on_failed(f"Homing failed on {axis} (re-bump missed the endstop)")
                return
            self.state.set_logical_position(axis, 0.0)
            self.state.homed_axes.add(axis)
            proceed()

        self.stepper.home_move(
            axis, -1, max_travel, fast, lambda: endstop.value == 1, fast_done
        )
