"""Host-side print streaming: the Repetier-Host role in the paper's setup.

The RepRap host protocol frames every line as ``N<line> <body>*<checksum>``;
the firmware validates the checksum and the line-number sequence and answers
``ok`` or ``Resend: <n>``. :class:`SerialHost` models that exchange as a
command source the firmware pulls from: each pull serializes the next
program line with framing, passes it through an (optionally fault-injecting)
channel, re-parses and validates it as the firmware's serial front-end would,
and transparently performs the resend loop on corruption.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.errors import GcodeChecksumError, GcodeError
from repro.gcode.ast import Command, GcodeProgram
from repro.gcode.parser import parse_line
from repro.gcode.writer import write_line


class SerialHost:
    """Streams a program through the checksummed host protocol.

    ``corrupt`` optionally mangles the on-the-wire text of chosen line
    numbers exactly once (fault injection for tests); the protocol recovers
    by resending.
    """

    def __init__(
        self,
        program: GcodeProgram,
        corrupt: Optional[Callable[[int, str], Optional[str]]] = None,
    ) -> None:
        self._commands: List[Command] = list(program.executable())
        self._cursor = 0
        self._line_number = 1
        self._corrupt = corrupt
        self._corrupted_once: set = set()
        self.lines_sent = 0
        self.resends = 0

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Command]:
        return self

    def __next__(self) -> Command:
        if self._cursor >= len(self._commands):
            raise StopIteration
        command = self._commands[self._cursor]
        self._cursor += 1
        return self._transmit(command)

    # ------------------------------------------------------------------
    def _transmit(self, command: Command) -> Command:
        """One line's protocol round-trip, including the resend loop."""
        n = self._line_number
        self._line_number += 1
        body = write_line(
            Command(
                letter=command.letter,
                code=command.code,
                params=list(command.params),
                comment=None,  # hosts strip comments before transmission
                line_number=n,
            ),
            with_checksum=True,
        )
        while True:
            wire_text = body
            if self._corrupt is not None and n not in self._corrupted_once:
                mangled = self._corrupt(n, wire_text)
                if mangled is not None:
                    self._corrupted_once.add(n)
                    wire_text = mangled
            self.lines_sent += 1
            try:
                received = parse_line(wire_text, validate_checksum=True)
                if received.line_number != n:
                    raise GcodeChecksumError(n, "line number mismatch")
            except (GcodeChecksumError, GcodeError):
                self.resends += 1  # firmware answered "Resend: n"
                continue
            return received
