"""Mutable machine state: the firmware's view of the printer.

Logical positions are tracked both in millimetres (exact command targets, so
absolute-mode moves never accumulate rounding) and in integer steps (what the
stepper has been asked to emit — the quantity the paper's detection counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.firmware.config import MarlinConfig

AXES = ("X", "Y", "Z", "E")


@dataclass
class MachineState:
    """The G-code-visible state of the machine."""

    config: MarlinConfig
    position_mm: Dict[str, float] = field(default_factory=lambda: dict.fromkeys(AXES, 0.0))
    position_steps: Dict[str, int] = field(default_factory=lambda: dict.fromkeys(AXES, 0))
    absolute_coords: bool = True  # G90 / G91
    absolute_e: bool = True  # M82 / M83
    feedrate_mm_s: float = 30.0
    feedrate_percent: float = 100.0  # M220
    flow_percent: float = 100.0  # M221
    fan_duty: float = 0.0  # M106 / M107
    homed_axes: Set[str] = field(default_factory=set)
    target_hotend_c: float = 0.0
    target_bed_c: float = 0.0

    @property
    def all_homed(self) -> bool:
        return {"X", "Y", "Z"}.issubset(self.homed_axes)

    def set_logical_position(self, axis: str, position_mm: float) -> None:
        """G92-style re-zeroing: adjust both mm and step bookkeeping."""
        self.position_mm[axis] = position_mm
        self.position_steps[axis] = round(position_mm * self.config.steps_per_mm[axis])

    def steps_for(self, axis: str, target_mm: float) -> int:
        """Integer step coordinate for a target position on ``axis``."""
        return round(target_mm * self.config.steps_per_mm[axis])
