"""In-process WSGI client: drive the service without sockets.

Speaks the WSGI protocol directly against a :class:`ServiceApp` (or any
WSGI callable), so tests and the CI smoke script exercise the real routing,
serialization, and store layers with no server process, no port, and no
HTTP client dependency. The surface mirrors the familiar requests/httpx
shape (``client.get(...).json()``) to keep call sites readable.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple


class ClientResponse:
    """Materialized response: status, headers, body — plus json()/text sugar."""

    def __init__(
        self, status_code: int, headers: List[Tuple[str, str]], content: bytes
    ) -> None:
        self.status_code = status_code
        self.headers = dict(headers)
        self.content = content

    @property
    def text(self) -> str:
        return self.content.decode("utf-8")

    def json(self) -> Any:
        return json.loads(self.content)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClientResponse {self.status_code} {len(self.content)}B>"


class ServiceClient:
    """requests-like facade over a WSGI app, entirely in-process."""

    def __init__(self, app) -> None:
        self.app = app

    # -- verb sugar -----------------------------------------------------

    def get(self, path: str) -> ClientResponse:
        return self.request("GET", path)

    def post(self, path: str, json_body: Any = None) -> ClientResponse:
        return self.request("POST", path, json_body=json_body)

    def stream(self, path: str) -> Iterator[bytes]:
        """Yield body chunks as the app produces them (for SSE endpoints)."""
        environ = self._environ("GET", path)
        _status, _headers, body = self._call(environ)
        return iter(body)

    # -- WSGI plumbing --------------------------------------------------

    def request(
        self, method: str, path: str, json_body: Any = None
    ) -> ClientResponse:
        environ = self._environ(method, path, json_body=json_body)
        status, headers, body = self._call(environ)
        content = b"".join(body)
        close = getattr(body, "close", None)
        if close is not None:
            close()
        return ClientResponse(int(status.split(" ", 1)[0]), headers, content)

    @staticmethod
    def _environ(method: str, path: str, json_body: Any = None) -> Dict[str, Any]:
        path, _, query = path.partition("?")
        raw = b"" if json_body is None else json.dumps(json_body).encode("utf-8")
        return {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": query,
            "CONTENT_TYPE": "application/json",
            "CONTENT_LENGTH": str(len(raw)),
            "SERVER_NAME": "testserver",
            "SERVER_PORT": "80",
            "SERVER_PROTOCOL": "HTTP/1.1",
            "wsgi.version": (1, 0),
            "wsgi.url_scheme": "http",
            "wsgi.input": io.BytesIO(raw),
            "wsgi.errors": io.StringIO(),
            "wsgi.multithread": False,
            "wsgi.multiprocess": False,
            "wsgi.run_once": False,
        }

    def _call(self, environ) -> Tuple[str, List[Tuple[str, str]], Any]:
        captured: Dict[str, Any] = {}

        def start_response(
            status: str,
            headers: List[Tuple[str, str]],
            exc_info: Optional[Any] = None,
        ):
            captured["status"] = status
            captured["headers"] = headers

        body = self.app(environ, start_response)
        return captured["status"], captured["headers"], body
