"""The service business layer: submissions → jobs → stored verdict rows.

:class:`JobManager` is the one code path every frontend (WSGI, FastAPI,
tests, the smoke script) drives. It owns

* **the dedup contract** — a submission is content-keyed
  (:func:`submission_key` folds every compiled session's content key with
  the scenario names and scoring recipe), and a key the store has already
  completed is answered *from the store*: the new job is born ``done``
  with 0 sessions simulated and its verdict rows are the original's. This
  is the across-users analogue of the session cache — identical work is
  never re-simulated, whoever submits it;
* **execution** — jobs run through the very same
  :func:`repro.experiments.scenario.run_sweep` the CLI calls (no parallel
  service-only path to drift), on a single background executor thread
  (FIFO, like the distribution coordinator's queue discipline), with the
  batch runner's per-completed-session ``progress`` callback ticking the
  store's ``sessions_done`` counter so polling clients see live progress;
* **result shaping** — verdict rows and summary stats land in the
  :class:`~repro.service.store.JobStore` via
  :func:`~repro.experiments.report.sweep_rows` /
  :func:`~repro.experiments.report.summary_stats`, the exact shapes the
  CSV/HTML renderers consume, so an API-fetched report is byte-identical
  to the CLI's.

A raising sweep fails *its job* (state ``failed``, error text stored),
never the service. ``background=False`` runs jobs synchronously inside
:meth:`JobManager.submit` — the deterministic mode tests use.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.experiments.batch import CacheOption, resolve_cache
from repro.experiments.report import summary_stats, sweep_rows
from repro.experiments.scenario import (
    ScenarioSpec,
    compile_scenario,
    run_sweep,
)
from repro.service.schemas import Submission, job_json, parse_submission
from repro.service.store import DONE, FAILED, JobStore


def submission_key(
    scenarios: Sequence[ScenarioSpec], fast_path: bool = True
) -> str:
    """Content digest of everything that determines a submission's rows.

    Folds, per scenario: its name (a CSV column), both compiled sessions'
    content keys (program, attack config, seeds, firmware, sim parameters
    — :meth:`SessionSpec.content_key` is the established physics digest),
    and the scoring recipe (detector set + margin). Two submissions with
    equal keys therefore produce byte-identical verdict CSVs, which is
    what licenses answering the second one from the store.
    """
    digest = hashlib.sha256()
    for scenario in scenarios:
        golden, suspect = compile_scenario(scenario, fast_path=fast_path)
        digest.update(
            repr(
                (
                    scenario.name,
                    golden.content_key(),
                    suspect.content_key(),
                    scenario.detectors,
                    scenario.margin,
                )
            ).encode()
        )
    return digest.hexdigest()


class JobManager:
    """Thin orchestration over :mod:`repro.experiments` + the job store."""

    def __init__(
        self,
        store: JobStore,
        cache: CacheOption = True,
        workers: Optional[int] = None,
        background: bool = True,
    ) -> None:
        self.store = store
        self.cache = resolve_cache(cache)
        self.workers = workers
        self.background = background
        interrupted = store.fail_inflight("interrupted: service restarted")
        if interrupted:
            # Surfaced (not hidden) so operators learn a previous process
            # died mid-job; the jobs stay queryable with their error text.
            self.restart_failures = interrupted
        else:
            self.restart_failures = 0
        self._queue: "queue.Queue[Optional[Tuple[int, Submission]]]" = queue.Queue()
        self._executor: Optional[threading.Thread] = None
        if background:
            self._executor = threading.Thread(
                target=self._run_queue, name="repro-service-executor", daemon=True
            )
            self._executor.start()

    # -- submission -----------------------------------------------------

    def submit(self, payload: Any) -> Tuple[Dict[str, Any], bool]:
        """Validate + enqueue (or dedup) a submission.

        Returns ``(job_json, created)``: ``created`` is False when the
        submission was answered from the store without running anything —
        frontends map that to 200 vs 201.
        """
        submission = parse_submission(payload)
        key = submission_key(submission.scenarios, submission.fast_path)
        source = self.store.find_done(key)
        if source is not None:
            job_id = self.store.create_deduped_job(
                key,
                source,
                grid=submission.grid,
                label=submission.label,
                scenarios=len(submission.scenarios),
            )
            return job_json(self.store.job(job_id)), False
        job_id = self.store.create_job(
            key,
            grid=submission.grid,
            label=submission.label,
            scenarios=len(submission.scenarios),
        )
        if self.background:
            self._queue.put((job_id, submission))
        else:
            self._execute(job_id, submission)
        return job_json(self.store.job(job_id)), True

    # -- execution ------------------------------------------------------

    def _run_queue(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job_id, submission = item
            self._execute(job_id, submission)

    def _execute(self, job_id: int, submission: Submission) -> None:
        try:
            pairs = [
                compile_scenario(scenario, fast_path=submission.fast_path)
                for scenario in submission.scenarios
            ]
            sessions_total = len(
                {spec.content_key() for pair in pairs for spec in pair}
            )
            self.store.mark_running(job_id, sessions_total)
            effective_workers = (
                submission.workers if self.workers is None else self.workers
            )
            result = run_sweep(
                list(submission.scenarios),
                workers=effective_workers,
                cache=self.cache,
                grid=submission.grid,
                fast_path=submission.fast_path,
                progress=lambda _summary: self.store.bump_progress(job_id),
            )
            self.store.finish_job(
                job_id,
                rows=sweep_rows(result),
                stats=summary_stats(result),
                ok=result.ok,
            )
        except Exception as exc:
            # Job isolation: one bad submission becomes one failed job row.
            self.store.fail_job(job_id, f"{type(exc).__name__}: {exc}")

    # -- queries (shared by every frontend) ------------------------------

    def job(self, job_id: int) -> Optional[Dict[str, Any]]:
        job = self.store.job(job_id)
        return job_json(job) if job is not None else None

    def jobs(self, limit: int = 50) -> list:
        return [job_json(job) for job in self.store.jobs(limit=limit)]

    def rows(self, job_id: int) -> list:
        return self.store.rows(job_id)

    def require_done(self, job_id: int) -> Dict[str, Any]:
        """The job, or a :class:`ReproError` explaining why rows aren't ready."""
        job = self.job(job_id)
        if job is None:
            raise KeyError(job_id)
        if job["state"] != DONE:
            raise ReproError(
                f"job {job_id} is {job['state']}"
                + (f": {job['error']}" if job["state"] == FAILED else "")
            )
        return job

    # -- waiting / streaming --------------------------------------------

    def wait(self, job_id: int, timeout_s: float = 600.0) -> Dict[str, Any]:
        """Block until the job reaches a terminal state (poll the store)."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job is None:
                raise KeyError(job_id)
            if job["state"] in (DONE, FAILED):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout_s:.0f}s"
                )
            time.sleep(0.05)

    def event_stream(
        self, job_id: int, poll_s: float = 0.2, timeout_s: float = 3600.0
    ) -> Iterator[str]:
        """Server-sent events: one ``data:`` line per observed change.

        Emits the job JSON whenever state or progress moves, and closes
        after the terminal event — the streaming face of the same store
        the polling endpoint reads.
        """
        deadline = time.monotonic() + timeout_s
        last = None
        while True:
            job = self.job(job_id)
            if job is None:
                yield 'event: gone\ndata: {"error": "job deleted"}\n\n'
                return
            snapshot = (job["state"], job["sessions_done"], job["sessions_total"])
            if snapshot != last:
                last = snapshot
                yield f"data: {json.dumps(job)}\n\n"
            if job["state"] in (DONE, FAILED):
                return
            if time.monotonic() >= deadline:
                yield 'event: timeout\ndata: {"error": "stream timeout"}\n\n'
                return
            time.sleep(poll_s)

    # -- shutdown -------------------------------------------------------

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop the executor thread (queued jobs stay queued in the store)."""
        if self._executor is not None and self._executor.is_alive():
            self._queue.put(None)
            self._executor.join(timeout=timeout_s)
        self.store.close()
