"""The persistent job store: sweeps and their verdict rows in SQLite.

One SQLite file holds two tables:

* ``jobs`` — one row per submission: its content-derived
  ``submission_key``, lifecycle state (``queued → running → done`` or
  ``failed``), progress counters (``sessions_done`` / ``sessions_total``,
  ticked by the batch runner's per-completed-session callback), the
  sweep's summary stats as JSON, and — for submissions served entirely
  from the store — the id of the job that actually computed the verdicts
  (``deduped_from``);
* ``verdict_rows`` — one row per scenario × detector, exactly the
  :data:`repro.experiments.report.CSV_COLUMNS` schema, so a report fetched
  from the store renders byte-identical to the CSV the CLI writes.

Durability discipline mirrors the session cache's: the worst failure mode
must be recomputation, never a wrong answer.

* The schema carries a version (SQLite ``PRAGMA user_version``); opening a
  store written under a *different* version drops it and starts fresh —
  stale rows can never be served under new semantics.
* A corrupt/unreadable database file is quarantined (renamed to
  ``<path>.corrupt``) and replaced by a fresh store, with a warning.
* Jobs left ``queued``/``running`` by a crashed service process are marked
  ``failed`` on the next open (:meth:`JobStore.fail_inflight`) instead of
  being reported as forever-running.

All methods are thread-safe (one connection guarded by a lock —
submissions arrive on request threads while the executor thread writes
progress), and everything stored is plain JSON/SQL scalars: no pickles
cross this boundary.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import warnings
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.report import CSV_COLUMNS

SERVICE_SCHEMA_VERSION = 1
"""Bump when the jobs/verdict_rows schema (or their semantics) change.

A mismatched on-disk version invalidates the whole store: cheap (verdicts
recompute from the session cache, which has its own versioning) and safe
(old rows are never reinterpreted under new column meanings).
"""

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_TERMINAL = (DONE, FAILED)

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    submission_key TEXT NOT NULL,
    grid TEXT NOT NULL DEFAULT '',
    label TEXT NOT NULL DEFAULT '',
    state TEXT NOT NULL DEFAULT '{QUEUED}',
    scenarios INTEGER NOT NULL DEFAULT 0,
    sessions_total INTEGER NOT NULL DEFAULT 0,
    sessions_done INTEGER NOT NULL DEFAULT 0,
    ok INTEGER,
    error TEXT,
    stats_json TEXT,
    deduped_from INTEGER,
    created_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_key_state ON jobs (submission_key, state);
CREATE TABLE IF NOT EXISTS verdict_rows (
    job_id INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    scenario TEXT NOT NULL,
    part TEXT NOT NULL,
    attack TEXT NOT NULL,
    kind TEXT NOT NULL,
    detector TEXT NOT NULL,
    verdict TEXT NOT NULL,
    score REAL NOT NULL,
    detail TEXT NOT NULL,
    outcome TEXT NOT NULL,
    suspect_status TEXT NOT NULL,
    duration_s REAL NOT NULL,
    PRIMARY KEY (job_id, seq)
);
"""


def _now() -> float:
    """Wall-clock job bookkeeping (created/started/finished columns).

    Job timestamps are operator-facing metadata; they never reach verdict
    content, which stays on the simulated clock.
    """
    return time.time()  # repro: lint-ignore[DET003] job-store bookkeeping timestamps only


class JobStore:
    """SQLite-backed store of sweep jobs and their verdict rows."""

    def __init__(
        self, path: str, schema_version: Optional[int] = None
    ) -> None:
        self.path = path
        self.schema_version = (
            SERVICE_SCHEMA_VERSION if schema_version is None else schema_version
        )
        self._lock = threading.RLock()
        parent = os.path.dirname(os.path.abspath(path))
        if path != ":memory:" and parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = self._open()

    # -- lifecycle ------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        conn.row_factory = sqlite3.Row
        return conn

    def _open(self) -> sqlite3.Connection:
        conn = self._connect()
        try:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            has_tables = conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' AND name='jobs'"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            # Not a SQLite file (torn write, garbage, another format):
            # quarantine it and start fresh — degraded, never wrong.
            conn.close()
            quarantine = f"{self.path}.corrupt"
            os.replace(self.path, quarantine)
            warnings.warn(
                f"job store {self.path} is unreadable ({exc}); "
                f"quarantined to {quarantine} and starting a fresh store",
                RuntimeWarning,
                stacklevel=3,
            )
            conn = self._connect()
            version, has_tables = 0, None
        if has_tables and version != self.schema_version:
            # Schema bump: old rows must never be served under new
            # semantics. Verdicts recompute from the session cache.
            conn.executescript(
                "DROP TABLE IF EXISTS jobs; DROP TABLE IF EXISTS verdict_rows;"
            )
        conn.executescript(_SCHEMA)
        conn.execute(f"PRAGMA user_version = {int(self.schema_version)}")
        return conn

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- writes ---------------------------------------------------------

    def create_job(
        self,
        submission_key: str,
        grid: str = "",
        label: str = "",
        scenarios: int = 0,
    ) -> int:
        """Insert a new ``queued`` job; returns its id."""
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO jobs (submission_key, grid, label, scenarios, created_at)"
                " VALUES (?, ?, ?, ?, ?)",
                (submission_key, grid, label, scenarios, _now()),
            )
            return int(cursor.lastrowid)

    def create_deduped_job(
        self,
        submission_key: str,
        source: Mapping[str, Any],
        grid: str = "",
        label: str = "",
        scenarios: int = 0,
    ) -> int:
        """Insert a job served entirely from ``source``'s stored verdicts.

        The new job is born ``done`` with **0 sessions simulated** — the
        across-users dedup the store exists for. Its stats record the
        source job id; its verdict rows are ``source``'s, by reference.
        """
        stats = dict(source.get("stats") or {})
        stats.update(
            sessions_simulated=0,
            cache_hits=0,
            cache_misses=0,
            cache_disk_hits=0,
            wall_clock_s=0.0,
            deduped_from=source["id"],
        )
        now = _now()
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO jobs (submission_key, grid, label, state, scenarios,"
                " sessions_total, sessions_done, ok, stats_json, deduped_from,"
                " created_at, started_at, finished_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    submission_key,
                    grid,
                    label,
                    DONE,
                    scenarios,
                    int(source.get("sessions_total") or 0),
                    0,
                    source.get("ok"),
                    json.dumps(stats),
                    source["id"],
                    now,
                    now,
                    now,
                ),
            )
            return int(cursor.lastrowid)

    def mark_running(self, job_id: int, sessions_total: int) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, sessions_total = ?, started_at = ?"
                " WHERE id = ?",
                (RUNNING, sessions_total, _now(), job_id),
            )

    def bump_progress(self, job_id: int) -> None:
        """One completed session (the batch runner's progress callback)."""
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET sessions_done = sessions_done + 1 WHERE id = ?",
                (job_id,),
            )

    def finish_job(
        self,
        job_id: int,
        rows: Sequence[Mapping[str, Any]],
        stats: Mapping[str, Any],
        ok: bool,
    ) -> None:
        """Store the sweep's verdict rows + stats and mark the job done."""
        with self._lock:
            self._conn.execute("BEGIN")
            try:
                self._conn.executemany(
                    "INSERT INTO verdict_rows (job_id, seq, "
                    + ", ".join(CSV_COLUMNS)
                    + ") VALUES (?, ?, "
                    + ", ".join("?" for _ in CSV_COLUMNS)
                    + ")",
                    [
                        (job_id, seq) + tuple(row[col] for col in CSV_COLUMNS)
                        for seq, row in enumerate(rows)
                    ],
                )
                self._conn.execute(
                    "UPDATE jobs SET state = ?, ok = ?, stats_json = ?,"
                    " finished_at = ? WHERE id = ?",
                    (DONE, int(bool(ok)), json.dumps(dict(stats)), _now(), job_id),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def fail_job(self, job_id: int, error: str) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, ok = 0, error = ?, finished_at = ?"
                " WHERE id = ?",
                (FAILED, error, _now(), job_id),
            )

    def fail_inflight(self, reason: str) -> int:
        """Fail every queued/running job (crash recovery on service start)."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, ok = 0, error = ?, finished_at = ?"
                " WHERE state IN (?, ?)",
                (FAILED, reason, _now(), QUEUED, RUNNING),
            )
            return cursor.rowcount

    # -- reads ----------------------------------------------------------

    @staticmethod
    def _job_dict(row: sqlite3.Row) -> Dict[str, Any]:
        job = {key: row[key] for key in row.keys()}
        stats_json = job.pop("stats_json", None)
        job["stats"] = json.loads(stats_json) if stats_json else None
        job["ok"] = None if job["ok"] is None else bool(job["ok"])
        return job

    def job(self, job_id: int) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return self._job_dict(row) if row is not None else None

    def jobs(self, limit: int = 50) -> List[Dict[str, Any]]:
        """The most recent jobs, newest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY id DESC LIMIT ?", (int(limit),)
            ).fetchall()
        return [self._job_dict(row) for row in rows]

    def find_done(self, submission_key: str) -> Optional[Dict[str, Any]]:
        """The newest *computed* done job for this key (dedup source).

        Jobs that were themselves deduped are skipped so the verdict rows
        are always fetched one hop away, and failed jobs never satisfy a
        dedup probe — a resubmission after a failure recomputes.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE submission_key = ? AND state = ?"
                " AND deduped_from IS NULL ORDER BY id DESC LIMIT 1",
                (submission_key, DONE),
            ).fetchone()
        return self._job_dict(row) if row is not None else None

    def rows(self, job_id: int) -> List[Dict[str, Any]]:
        """The job's verdict rows (following a dedup reference one hop)."""
        job = self.job(job_id)
        if job is None:
            return []
        source = job["deduped_from"] if job["deduped_from"] is not None else job_id
        with self._lock:
            rows = self._conn.execute(
                "SELECT "
                + ", ".join(CSV_COLUMNS)
                + " FROM verdict_rows WHERE job_id = ? ORDER BY seq",
                (source,),
            ).fetchall()
        return [{key: row[key] for key in row.keys()} for row in rows]

    def count(self) -> int:
        with self._lock:
            return int(self._conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0])
