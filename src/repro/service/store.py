"""The persistent job store: sweeps, verdict rows, and shard queues in SQLite.

One SQLite file holds four tables:

* ``jobs`` — one row per submission: its content-derived
  ``submission_key``, lifecycle state (``queued → running → done`` or
  ``failed``), progress counters (``sessions_done`` / ``sessions_total``,
  ticked by the batch runner's per-completed-session callback), the
  sweep's summary stats as JSON, and — for submissions served entirely
  from the store — the id of the job that actually computed the verdicts
  (``deduped_from``);
* ``verdict_rows`` — one row per scenario × detector, exactly the
  :data:`repro.experiments.report.CSV_COLUMNS` schema, so a report fetched
  from the store renders byte-identical to the CSV the CLI writes;
* ``shards`` + ``shard_workers`` — the HTTP shard-queue backend of the
  distributed sweep transport (:mod:`repro.experiments.transport_http`):
  one row per shard carrying its wire payload through
  ``pending → claimed → done``, plus per-worker heartbeat counters and a
  per-queue STOP flag. Claims are **conditional UPDATEs** (``WHERE state =
  'pending'``) so exactly one of any number of concurrent claimers wins —
  the SQL twin of the filesystem backend's atomic rename, with no
  check-then-act window.

Durability discipline mirrors the session cache's: the worst failure mode
must be recomputation, never a wrong answer.

* The schema carries a version (SQLite ``PRAGMA user_version``); opening a
  store written under a *different* version drops it and starts fresh —
  stale rows can never be served under new semantics.
* A corrupt/unreadable database file is quarantined (renamed to
  ``<path>.corrupt``) and replaced by a fresh store, with a warning.
* Jobs left ``queued``/``running`` by a crashed service process are marked
  ``failed`` on the next open (:meth:`JobStore.fail_inflight`) instead of
  being reported as forever-running.

All methods are thread-safe (one connection guarded by a lock —
submissions arrive on request threads while the executor thread writes
progress), and everything in the job tables is plain JSON/SQL scalars.
Shard payloads are the one exception: they are opaque BLOBs carrying the
transport's versioned wire envelope, and the store never deserializes
them — version skew and corruption are the *transport's* contract
(:func:`repro.experiments.transport.decode_wire`), enforced at the edges.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import warnings
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.report import CSV_COLUMNS

SERVICE_SCHEMA_VERSION = 2
"""Bump when any stored schema (or its semantics) changes.

2: shard-queue tables (``shards``, ``shard_workers``) — the HTTP transport
for distributed sweeps rides the job store.

A mismatched on-disk version invalidates the whole store: cheap (verdicts
recompute from the session cache, which has its own versioning) and safe
(old rows are never reinterpreted under new column meanings).
"""

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_TERMINAL = (DONE, FAILED)

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    submission_key TEXT NOT NULL,
    grid TEXT NOT NULL DEFAULT '',
    label TEXT NOT NULL DEFAULT '',
    state TEXT NOT NULL DEFAULT '{QUEUED}',
    scenarios INTEGER NOT NULL DEFAULT 0,
    sessions_total INTEGER NOT NULL DEFAULT 0,
    sessions_done INTEGER NOT NULL DEFAULT 0,
    ok INTEGER,
    error TEXT,
    stats_json TEXT,
    deduped_from INTEGER,
    created_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_key_state ON jobs (submission_key, state);
CREATE TABLE IF NOT EXISTS verdict_rows (
    job_id INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    scenario TEXT NOT NULL,
    part TEXT NOT NULL,
    attack TEXT NOT NULL,
    kind TEXT NOT NULL,
    detector TEXT NOT NULL,
    verdict TEXT NOT NULL,
    score REAL NOT NULL,
    detail TEXT NOT NULL,
    outcome TEXT NOT NULL,
    suspect_status TEXT NOT NULL,
    duration_s REAL NOT NULL,
    PRIMARY KEY (job_id, seq)
);
CREATE TABLE IF NOT EXISTS shard_queues (
    queue TEXT PRIMARY KEY,
    stop INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS shards (
    queue TEXT NOT NULL,
    shard_id INTEGER NOT NULL,
    state TEXT NOT NULL,
    worker TEXT NOT NULL DEFAULT '',
    payload BLOB NOT NULL,
    result BLOB,
    PRIMARY KEY (queue, shard_id)
);
CREATE INDEX IF NOT EXISTS idx_shards_queue_state ON shards (queue, state);
CREATE TABLE IF NOT EXISTS shard_workers (
    queue TEXT NOT NULL,
    worker TEXT NOT NULL,
    beats INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (queue, worker)
);
"""

PENDING = "pending"
CLAIMED = "claimed"
SHARD_DONE = "done"


def _now() -> float:
    """Wall-clock job bookkeeping (created/started/finished columns).

    Job timestamps are operator-facing metadata; they never reach verdict
    content, which stays on the simulated clock.
    """
    return time.time()  # repro: lint-ignore[DET003] job-store bookkeeping timestamps only


class JobStore:
    """SQLite-backed store of sweep jobs and their verdict rows."""

    def __init__(
        self, path: str, schema_version: Optional[int] = None
    ) -> None:
        self.path = path
        self.schema_version = (
            SERVICE_SCHEMA_VERSION if schema_version is None else schema_version
        )
        self._lock = threading.RLock()
        parent = os.path.dirname(os.path.abspath(path))
        if path != ":memory:" and parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = self._open()

    # -- lifecycle ------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        conn.row_factory = sqlite3.Row
        return conn

    def _open(self) -> sqlite3.Connection:
        conn = self._connect()
        try:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            has_tables = conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' AND name='jobs'"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            # Not a SQLite file (torn write, garbage, another format):
            # quarantine it and start fresh — degraded, never wrong.
            conn.close()
            quarantine = f"{self.path}.corrupt"
            os.replace(self.path, quarantine)
            warnings.warn(
                f"job store {self.path} is unreadable ({exc}); "
                f"quarantined to {quarantine} and starting a fresh store",
                RuntimeWarning,
                stacklevel=3,
            )
            conn = self._connect()
            version, has_tables = 0, None
        if has_tables and version != self.schema_version:
            # Schema bump: old rows must never be served under new
            # semantics. Verdicts recompute from the session cache.
            conn.executescript(
                "DROP TABLE IF EXISTS jobs; DROP TABLE IF EXISTS verdict_rows;"
                " DROP TABLE IF EXISTS shard_queues; DROP TABLE IF EXISTS shards;"
                " DROP TABLE IF EXISTS shard_workers;"
            )
        conn.executescript(_SCHEMA)
        conn.execute(f"PRAGMA user_version = {int(self.schema_version)}")
        return conn

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- writes ---------------------------------------------------------

    def create_job(
        self,
        submission_key: str,
        grid: str = "",
        label: str = "",
        scenarios: int = 0,
    ) -> int:
        """Insert a new ``queued`` job; returns its id."""
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO jobs (submission_key, grid, label, scenarios, created_at)"
                " VALUES (?, ?, ?, ?, ?)",
                (submission_key, grid, label, scenarios, _now()),
            )
            return int(cursor.lastrowid)

    def create_deduped_job(
        self,
        submission_key: str,
        source: Mapping[str, Any],
        grid: str = "",
        label: str = "",
        scenarios: int = 0,
    ) -> int:
        """Insert a job served entirely from ``source``'s stored verdicts.

        The new job is born ``done`` with **0 sessions simulated** — the
        across-users dedup the store exists for. Its stats record the
        source job id; its verdict rows are ``source``'s, by reference.
        """
        stats = dict(source.get("stats") or {})
        stats.update(
            sessions_simulated=0,
            cache_hits=0,
            cache_misses=0,
            cache_disk_hits=0,
            wall_clock_s=0.0,
            deduped_from=source["id"],
        )
        now = _now()
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO jobs (submission_key, grid, label, state, scenarios,"
                " sessions_total, sessions_done, ok, stats_json, deduped_from,"
                " created_at, started_at, finished_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    submission_key,
                    grid,
                    label,
                    DONE,
                    scenarios,
                    int(source.get("sessions_total") or 0),
                    0,
                    source.get("ok"),
                    json.dumps(stats),
                    source["id"],
                    now,
                    now,
                    now,
                ),
            )
            return int(cursor.lastrowid)

    def mark_running(self, job_id: int, sessions_total: int) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, sessions_total = ?, started_at = ?"
                " WHERE id = ?",
                (RUNNING, sessions_total, _now(), job_id),
            )

    def bump_progress(self, job_id: int) -> None:
        """One completed session (the batch runner's progress callback)."""
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET sessions_done = sessions_done + 1 WHERE id = ?",
                (job_id,),
            )

    def finish_job(
        self,
        job_id: int,
        rows: Sequence[Mapping[str, Any]],
        stats: Mapping[str, Any],
        ok: bool,
    ) -> None:
        """Store the sweep's verdict rows + stats and mark the job done."""
        with self._lock:
            self._conn.execute("BEGIN")
            try:
                self._conn.executemany(
                    "INSERT INTO verdict_rows (job_id, seq, "
                    + ", ".join(CSV_COLUMNS)
                    + ") VALUES (?, ?, "
                    + ", ".join("?" for _ in CSV_COLUMNS)
                    + ")",
                    [
                        (job_id, seq) + tuple(row[col] for col in CSV_COLUMNS)
                        for seq, row in enumerate(rows)
                    ],
                )
                self._conn.execute(
                    "UPDATE jobs SET state = ?, ok = ?, stats_json = ?,"
                    " finished_at = ? WHERE id = ?",
                    (DONE, int(bool(ok)), json.dumps(dict(stats)), _now(), job_id),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def fail_job(self, job_id: int, error: str) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, ok = 0, error = ?, finished_at = ?"
                " WHERE id = ?",
                (FAILED, error, _now(), job_id),
            )

    def fail_inflight(self, reason: str) -> int:
        """Fail every queued/running job (crash recovery on service start)."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, ok = 0, error = ?, finished_at = ?"
                " WHERE state IN (?, ?)",
                (FAILED, reason, _now(), QUEUED, RUNNING),
            )
            return cursor.rowcount

    # -- reads ----------------------------------------------------------

    @staticmethod
    def _job_dict(row: sqlite3.Row) -> Dict[str, Any]:
        job = {key: row[key] for key in row.keys()}
        stats_json = job.pop("stats_json", None)
        job["stats"] = json.loads(stats_json) if stats_json else None
        job["ok"] = None if job["ok"] is None else bool(job["ok"])
        return job

    def job(self, job_id: int) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return self._job_dict(row) if row is not None else None

    def jobs(self, limit: int = 50) -> List[Dict[str, Any]]:
        """The most recent jobs, newest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY id DESC LIMIT ?", (int(limit),)
            ).fetchall()
        return [self._job_dict(row) for row in rows]

    def find_done(self, submission_key: str) -> Optional[Dict[str, Any]]:
        """The newest *computed* done job for this key (dedup source).

        Jobs that were themselves deduped are skipped so the verdict rows
        are always fetched one hop away, and failed jobs never satisfy a
        dedup probe — a resubmission after a failure recomputes.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE submission_key = ? AND state = ?"
                " AND deduped_from IS NULL ORDER BY id DESC LIMIT 1",
                (submission_key, DONE),
            ).fetchone()
        return self._job_dict(row) if row is not None else None

    def rows(self, job_id: int) -> List[Dict[str, Any]]:
        """The job's verdict rows (following a dedup reference one hop)."""
        job = self.job(job_id)
        if job is None:
            return []
        source = job["deduped_from"] if job["deduped_from"] is not None else job_id
        with self._lock:
            rows = self._conn.execute(
                "SELECT "
                + ", ".join(CSV_COLUMNS)
                + " FROM verdict_rows WHERE job_id = ? ORDER BY seq",
                (source,),
            ).fetchall()
        return [{key: row[key] for key in row.keys()} for row in rows]

    def count(self) -> int:
        with self._lock:
            return int(self._conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0])

    # -- shard queues (the HTTP sweep transport) ------------------------

    def queue_reset(self, queue: str) -> None:
        """Clear a previous sweep's shards/heartbeats/STOP from a queue."""
        with self._lock:
            self._conn.execute("BEGIN")
            try:
                self._conn.execute("DELETE FROM shards WHERE queue = ?", (queue,))
                self._conn.execute(
                    "DELETE FROM shard_workers WHERE queue = ?", (queue,)
                )
                self._conn.execute(
                    "INSERT INTO shard_queues (queue, stop) VALUES (?, 0)"
                    " ON CONFLICT (queue) DO UPDATE SET stop = 0",
                    (queue,),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def queue_put_pending(self, queue: str, shard_id: int, payload: bytes) -> None:
        """Enqueue (or re-enqueue) one shard's wire payload as pending."""
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO shard_queues (queue) VALUES (?)", (queue,)
            )
            self._conn.execute(
                "INSERT INTO shards (queue, shard_id, state, worker, payload)"
                f" VALUES (?, ?, '{PENDING}', '', ?)"
                " ON CONFLICT (queue, shard_id) DO UPDATE SET"
                f" state = '{PENDING}', worker = '', payload = excluded.payload,"
                " result = NULL",
                (queue, shard_id, sqlite3.Binary(payload)),
            )

    def queue_pending_ids(self, queue: str) -> List[int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard_id FROM shards WHERE queue = ? AND state = ?"
                " ORDER BY shard_id",
                (queue, PENDING),
            ).fetchall()
        return [int(row[0]) for row in rows]

    def queue_claim(self, queue: str, shard_id: int, worker: str) -> Optional[bytes]:
        """Atomically claim a pending shard; its payload, or ``None`` if lost.

        The conditional UPDATE (``WHERE state = 'pending'``) is the whole
        claim protocol: of N concurrent claimers exactly one flips the row
        to ``claimed`` (rowcount 1) and reads the payload; the rest see
        rowcount 0. No separate existence check precedes the write.
        """
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE shards SET state = ?, worker = ?"
                " WHERE queue = ? AND shard_id = ? AND state = ?",
                (CLAIMED, worker, queue, shard_id, PENDING),
            )
            if cursor.rowcount != 1:
                return None
            row = self._conn.execute(
                "SELECT payload FROM shards WHERE queue = ? AND shard_id = ?",
                (queue, shard_id),
            ).fetchone()
        return bytes(row[0]) if row is not None else None

    def queue_requeue(self, queue: str, shard_id: int, worker: str) -> bool:
        """Return a claimed shard to pending — only while ``worker`` holds it.

        The worker condition makes forfeiture race-safe: a worker that
        completed (or lost the claim to an earlier forfeit) no-ops here,
        so a finished shard is never double-queued.
        """
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE shards SET state = ?, worker = ''"
                " WHERE queue = ? AND shard_id = ? AND state = ? AND worker = ?",
                (PENDING, queue, shard_id, CLAIMED, worker),
            )
            return cursor.rowcount == 1

    def queue_abandon(self, queue: str, shard_id: int, worker: str) -> bool:
        """Drop a claimed shard entirely (corrupt payload: force re-enqueue)."""
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM shards"
                " WHERE queue = ? AND shard_id = ? AND state = ? AND worker = ?",
                (queue, shard_id, CLAIMED, worker),
            )
            return cursor.rowcount == 1

    def queue_claims(self, queue: str) -> List[Any]:
        """Live claims as ``(shard_id, worker)`` pairs, shard order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard_id, worker FROM shards"
                " WHERE queue = ? AND state = ? ORDER BY shard_id",
                (queue, CLAIMED),
            ).fetchall()
        return [(int(row[0]), str(row[1])) for row in rows]

    def queue_put_result(self, queue: str, shard_id: int, result: bytes) -> None:
        """Publish a shard's result — done unconditionally wins.

        Mirrors the filesystem backend: a worker declared dead that
        finishes anyway still lands its result, and the coordinator
        prefers it over re-running the shard.
        """
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO shard_queues (queue) VALUES (?)", (queue,)
            )
            self._conn.execute(
                "INSERT INTO shards (queue, shard_id, state, worker, payload, result)"
                f" VALUES (?, ?, '{SHARD_DONE}', '', X'', ?)"
                " ON CONFLICT (queue, shard_id) DO UPDATE SET"
                f" state = '{SHARD_DONE}', worker = '', result = excluded.result",
                (queue, shard_id, sqlite3.Binary(result)),
            )

    def queue_done_ids(self, queue: str) -> List[int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard_id FROM shards WHERE queue = ? AND state = ?"
                " ORDER BY shard_id",
                (queue, SHARD_DONE),
            ).fetchall()
        return [int(row[0]) for row in rows]

    def queue_result(self, queue: str, shard_id: int) -> Optional[bytes]:
        with self._lock:
            row = self._conn.execute(
                "SELECT result FROM shards"
                " WHERE queue = ? AND shard_id = ? AND state = ?",
                (queue, shard_id, SHARD_DONE),
            ).fetchone()
        return bytes(row[0]) if row is not None and row[0] is not None else None

    def queue_discard_done(self, queue: str, shard_id: int) -> None:
        with self._lock:
            self._conn.execute(
                "DELETE FROM shards WHERE queue = ? AND shard_id = ? AND state = ?",
                (queue, shard_id, SHARD_DONE),
            )

    def queue_stop(self, queue: str) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT INTO shard_queues (queue, stop) VALUES (?, 1)"
                " ON CONFLICT (queue) DO UPDATE SET stop = 1",
                (queue,),
            )

    def queue_stop_requested(self, queue: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT stop FROM shard_queues WHERE queue = ?", (queue,)
            ).fetchone()
        return bool(row[0]) if row is not None else False

    def queue_beat(self, queue: str, worker: str) -> int:
        """Advance a worker's heartbeat counter; the new count.

        A monotonic counter, never a wall-clock timestamp: the coordinator
        only watches the value *advance* against its own clock, so hosts
        with skewed clocks still heartbeat correctly.
        """
        with self._lock:
            self._conn.execute(
                "INSERT INTO shard_workers (queue, worker, beats) VALUES (?, ?, 1)"
                " ON CONFLICT (queue, worker) DO UPDATE SET beats = beats + 1",
                (queue, worker),
            )
            row = self._conn.execute(
                "SELECT beats FROM shard_workers WHERE queue = ? AND worker = ?",
                (queue, worker),
            ).fetchone()
        return int(row[0])

    def queue_beats(self, queue: str, worker: str) -> Optional[int]:
        with self._lock:
            row = self._conn.execute(
                "SELECT beats FROM shard_workers WHERE queue = ? AND worker = ?",
                (queue, worker),
            ).fetchone()
        return int(row[0]) if row is not None else None

    def queue_status(self, queue: str) -> Dict[str, Any]:
        """One snapshot of a queue's protocol state (the status endpoint)."""
        with self._lock:
            stop = self._conn.execute(
                "SELECT stop FROM shard_queues WHERE queue = ?", (queue,)
            ).fetchone()
            shards = self._conn.execute(
                "SELECT shard_id, state, worker FROM shards WHERE queue = ?"
                " ORDER BY shard_id",
                (queue,),
            ).fetchall()
        pending = [int(r[0]) for r in shards if r[1] == PENDING]
        claims = [[int(r[0]), str(r[2])] for r in shards if r[1] == CLAIMED]
        done = [int(r[0]) for r in shards if r[1] == SHARD_DONE]
        return {
            "queue": queue,
            "stop": bool(stop[0]) if stop is not None else False,
            "pending": pending,
            "claims": claims,
            "done": done,
        }
