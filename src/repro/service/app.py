"""Sweep-as-a-service: the zero-dependency WSGI frontend.

The HTTP surface (shared verb-for-verb with the optional FastAPI frontend
in :mod:`repro.service.fastapi_app`):

=======  ==============================  =====================================
method   path                            meaning
=======  ==============================  =====================================
GET      ``/healthz``                    liveness + store size
GET      ``/grids``                      registered grids (name, description)
POST     ``/jobs``                       submit a grid or ad-hoc scenarios;
                                         201 + job JSON (200 when answered
                                         from the store without simulating)
GET      ``/jobs``                       recent jobs (``?limit=N``)
GET      ``/jobs/{id}``                  poll one job (state + progress)
GET      ``/jobs/{id}/events``           server-sent-events progress stream
GET      ``/jobs/{id}/verdicts``         verdict rows as JSON (done jobs)
GET      ``/jobs/{id}/report.csv``       verdict rows as CSV — byte-identical
                                         to ``repro sweep --csv`` for the
                                         same submission
GET      ``/jobs/{id}/report.html``      self-contained HTML report
=======  ==============================  =====================================

plus the **shard-queue surface** — the HTTP backend of the distributed
sweep transport (:mod:`repro.experiments.transport_http`), one endpoint
per :class:`~repro.experiments.transport.Transport` operation. Shard
bodies are opaque wire-envelope bytes (``application/octet-stream``); the
service stores and serves them without deserializing:

=======  ========================================  =========================
method   path                                      meaning
=======  ========================================  =========================
GET      ``/queues/{q}``                           queue status snapshot
POST     ``/queues/{q}/reset``                     clear shards/beats/STOP
POST     ``/queues/{q}/stop``                      raise the STOP flag
PUT      ``/queues/{q}/shards/{id}``               enqueue payload bytes
POST     ``/queues/{q}/shards/{id}/claim``         claim (``?worker=``);
                                                   200 payload | 409 lost
POST     ``/queues/{q}/shards/{id}/requeue``       forfeit back to pending
POST     ``/queues/{q}/shards/{id}/abandon``       drop a corrupt claim
PUT      ``/queues/{q}/shards/{id}/result``        publish result bytes
GET      ``/queues/{q}/shards/{id}/result``        fetch result | 404
DELETE   ``/queues/{q}/shards/{id}/result``        discard a done result
POST     ``/queues/{q}/workers/{w}/beat``          advance heartbeat counter
GET      ``/queues/{q}/workers/{w}``               read heartbeat counter
=======  ========================================  =========================

Routes are deliberately *thin*: every one of them is a line or two over
:class:`~repro.service.jobs.JobManager`, which in turn drives the same
:func:`~repro.experiments.scenario.run_sweep` the CLI uses — the service
adds storage and transport, never a second sweep semantics.

Implemented as a plain WSGI callable (stdlib only) so the service — like
the engine it fronts — runs with zero third-party dependencies;
``pip install .[service]`` adds the FastAPI/uvicorn production frontend
on top of the same manager.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Iterable, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.errors import ReproError
from repro.experiments.report import render_csv_rows, render_html_rows
from repro.service.jobs import JobManager
from repro.service.schemas import SchemaError, grid_listing, queue_status_json
from repro.service.store import JobStore

_STATUS_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

MAX_BODY_BYTES = 8 * 1024 * 1024
"""Submission bodies larger than this are rejected (400)."""


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Response:
    """One materialized WSGI response (status, headers, body chunks)."""

    def __init__(
        self,
        status: int,
        body: Iterable[bytes],
        content_type: str,
        extra_headers: Optional[List[Tuple[str, str]]] = None,
        content_length: Optional[int] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.headers = [("Content-Type", content_type)]
        if content_length is not None:
            self.headers.append(("Content-Length", str(content_length)))
        self.headers.extend(extra_headers or [])


def _json_response(status: int, payload: Any) -> Response:
    body = json.dumps(payload).encode("utf-8")
    return Response(
        status, [body], "application/json; charset=utf-8", content_length=len(body)
    )


def _text_response(status: int, text: str, content_type: str) -> Response:
    body = text.encode("utf-8")
    return Response(status, [body], content_type, content_length=len(body))


class ServiceApp:
    """The WSGI callable: thin routing over a :class:`JobManager`."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager
        self._routes: List[Tuple[str, re.Pattern, Callable]] = [
            ("GET", re.compile(r"^/healthz$"), self._healthz),
            ("GET", re.compile(r"^/grids$"), self._grids),
            ("POST", re.compile(r"^/jobs$"), self._submit),
            ("GET", re.compile(r"^/jobs$"), self._list_jobs),
            ("GET", re.compile(r"^/jobs/(\d+)$"), self._job),
            ("GET", re.compile(r"^/jobs/(\d+)/events$"), self._events),
            ("GET", re.compile(r"^/jobs/(\d+)/verdicts$"), self._verdicts),
            ("GET", re.compile(r"^/jobs/(\d+)/report\.csv$"), self._report_csv),
            ("GET", re.compile(r"^/jobs/(\d+)/report\.html$"), self._report_html),
        ]
        # Shard-queue routes: queue and worker names are validated by the
        # route pattern itself (the same [A-Za-z0-9_.-] alphabet worker-id
        # sanitization guarantees), so nothing path-unsafe reaches the store.
        name = r"([A-Za-z0-9_.-]+)"
        self._routes.extend(
            [
                ("GET", re.compile(rf"^/queues/{name}$"), self._queue_status),
                ("POST", re.compile(rf"^/queues/{name}/reset$"), self._queue_reset),
                ("POST", re.compile(rf"^/queues/{name}/stop$"), self._queue_stop),
                (
                    "PUT",
                    re.compile(rf"^/queues/{name}/shards/(\d+)$"),
                    self._queue_put_shard,
                ),
                (
                    "POST",
                    re.compile(rf"^/queues/{name}/shards/(\d+)/claim$"),
                    self._queue_claim,
                ),
                (
                    "POST",
                    re.compile(rf"^/queues/{name}/shards/(\d+)/requeue$"),
                    self._queue_requeue,
                ),
                (
                    "POST",
                    re.compile(rf"^/queues/{name}/shards/(\d+)/abandon$"),
                    self._queue_abandon,
                ),
                (
                    "PUT",
                    re.compile(rf"^/queues/{name}/shards/(\d+)/result$"),
                    self._queue_put_result,
                ),
                (
                    "GET",
                    re.compile(rf"^/queues/{name}/shards/(\d+)/result$"),
                    self._queue_get_result,
                ),
                (
                    "DELETE",
                    re.compile(rf"^/queues/{name}/shards/(\d+)/result$"),
                    self._queue_delete_result,
                ),
                (
                    "POST",
                    re.compile(rf"^/queues/{name}/workers/{name}/beat$"),
                    self._queue_beat,
                ),
                (
                    "GET",
                    re.compile(rf"^/queues/{name}/workers/{name}$"),
                    self._queue_worker,
                ),
            ]
        )

    # -- WSGI entry -----------------------------------------------------

    def __call__(self, environ, start_response):
        try:
            response = self._dispatch(environ)
        except _HttpError as exc:
            response = _json_response(exc.status, {"error": exc.message})
        except (SchemaError, ReproError) as exc:
            response = _json_response(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - last-resort guard
            response = _json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        reason = _STATUS_REASONS.get(response.status, "Unknown")
        start_response(f"{response.status} {reason}", response.headers)
        return response.body

    def _dispatch(self, environ) -> Response:
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        matched_path = False
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            matched_path = True
            if route_method != method:
                continue
            return handler(environ, *match.groups())
        if matched_path:
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no route for {path}")

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _query(environ) -> dict:
        return parse_qs(environ.get("QUERY_STRING", ""))

    @staticmethod
    def _read_json(environ) -> Any:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            raise _HttpError(400, "invalid Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(400, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = environ["wsgi.input"].read(length) if length else b""
        if not raw:
            raise _HttpError(400, "empty request body (expected JSON)")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None

    @staticmethod
    def _read_bytes(environ) -> bytes:
        """A raw request body (shard payloads), size-capped like JSON ones."""
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            raise _HttpError(400, "invalid Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(400, f"request body exceeds {MAX_BODY_BYTES} bytes")
        return environ["wsgi.input"].read(length) if length else b""

    def _worker_param(self, environ) -> str:
        values = self._query(environ).get("worker", [])
        if len(values) != 1 or not re.fullmatch(r"[A-Za-z0-9_.-]+", values[0]):
            raise _HttpError(
                400, "claim operations need exactly one well-formed ?worker="
            )
        return values[0]

    def _require_job(self, job_id: str) -> dict:
        job = self.manager.job(int(job_id))
        if job is None:
            raise _HttpError(404, f"no job {job_id}")
        return job

    def _require_rows(self, job_id: str) -> Tuple[dict, list]:
        job = self._require_job(job_id)
        try:
            self.manager.require_done(int(job_id))
        except ReproError as exc:
            raise _HttpError(409, str(exc)) from None
        return job, self.manager.rows(int(job_id))

    # -- handlers -------------------------------------------------------

    def _healthz(self, environ) -> Response:
        return _json_response(
            200, {"status": "ok", "jobs": self.manager.store.count()}
        )

    def _grids(self, environ) -> Response:
        return _json_response(200, {"grids": grid_listing()})

    def _submit(self, environ) -> Response:
        payload = self._read_json(environ)
        job, created = self.manager.submit(payload)
        return _json_response(201 if created else 200, job)

    def _list_jobs(self, environ) -> Response:
        query = self._query(environ)
        try:
            limit = int(query.get("limit", ["50"])[0])
        except ValueError:
            raise _HttpError(400, "limit must be an integer") from None
        return _json_response(200, {"jobs": self.manager.jobs(limit=limit)})

    def _job(self, environ, job_id: str) -> Response:
        return _json_response(200, self._require_job(job_id))

    def _events(self, environ, job_id: str) -> Response:
        self._require_job(job_id)
        query = self._query(environ)
        try:
            timeout_s = float(query.get("timeout_s", ["3600"])[0])
        except ValueError:
            raise _HttpError(400, "timeout_s must be a number") from None
        stream = self.manager.event_stream(int(job_id), timeout_s=timeout_s)
        return Response(
            200,
            (chunk.encode("utf-8") for chunk in stream),
            "text/event-stream; charset=utf-8",
            extra_headers=[("Cache-Control", "no-cache")],
        )

    def _verdicts(self, environ, job_id: str) -> Response:
        job, rows = self._require_rows(job_id)
        return _json_response(
            200, {"job": job["id"], "stats": job["stats"], "rows": rows}
        )

    def _report_csv(self, environ, job_id: str) -> Response:
        _job, rows = self._require_rows(job_id)
        return _text_response(
            200, render_csv_rows(rows), "text/csv; charset=utf-8"
        )

    def _report_html(self, environ, job_id: str) -> Response:
        job, rows = self._require_rows(job_id)
        title = f"repro serve — job {job['id']}" + (
            f" (grid {job['grid']!r})" if job["grid"] else ""
        )
        return _text_response(
            200,
            render_html_rows(rows, job["stats"] or {}, title=title),
            "text/html; charset=utf-8",
        )

    # -- shard-queue handlers (the HTTP sweep transport) ----------------

    def _queue_status(self, environ, queue: str) -> Response:
        return _json_response(
            200, queue_status_json(self.manager.store.queue_status(queue))
        )

    def _queue_reset(self, environ, queue: str) -> Response:
        self.manager.store.queue_reset(queue)
        return _json_response(200, {"queue": queue, "reset": True})

    def _queue_stop(self, environ, queue: str) -> Response:
        self.manager.store.queue_stop(queue)
        return _json_response(200, {"queue": queue, "stop": True})

    def _queue_put_shard(self, environ, queue: str, shard_id: str) -> Response:
        data = self._read_bytes(environ)
        if not data:
            raise _HttpError(400, "empty shard payload")
        self.manager.store.queue_put_pending(queue, int(shard_id), data)
        return _json_response(200, {"queue": queue, "shard": int(shard_id)})

    def _queue_claim(self, environ, queue: str, shard_id: str) -> Response:
        worker = self._worker_param(environ)
        payload = self.manager.store.queue_claim(queue, int(shard_id), worker)
        if payload is None:
            raise _HttpError(409, f"shard {shard_id} is not pending")
        return Response(
            200, [payload], "application/octet-stream", content_length=len(payload)
        )

    def _queue_requeue(self, environ, queue: str, shard_id: str) -> Response:
        worker = self._worker_param(environ)
        if not self.manager.store.queue_requeue(queue, int(shard_id), worker):
            raise _HttpError(409, f"shard {shard_id} is not claimed by {worker}")
        return _json_response(200, {"queue": queue, "requeued": int(shard_id)})

    def _queue_abandon(self, environ, queue: str, shard_id: str) -> Response:
        worker = self._worker_param(environ)
        if not self.manager.store.queue_abandon(queue, int(shard_id), worker):
            raise _HttpError(409, f"shard {shard_id} is not claimed by {worker}")
        return _json_response(200, {"queue": queue, "abandoned": int(shard_id)})

    def _queue_put_result(self, environ, queue: str, shard_id: str) -> Response:
        data = self._read_bytes(environ)
        if not data:
            raise _HttpError(400, "empty result payload")
        self.manager.store.queue_put_result(queue, int(shard_id), data)
        return _json_response(200, {"queue": queue, "done": int(shard_id)})

    def _queue_get_result(self, environ, queue: str, shard_id: str) -> Response:
        data = self.manager.store.queue_result(queue, int(shard_id))
        if data is None:
            raise _HttpError(404, f"no result for shard {shard_id}")
        return Response(
            200, [data], "application/octet-stream", content_length=len(data)
        )

    def _queue_delete_result(self, environ, queue: str, shard_id: str) -> Response:
        self.manager.store.queue_discard_done(queue, int(shard_id))
        return _json_response(200, {"queue": queue, "discarded": int(shard_id)})

    def _queue_beat(self, environ, queue: str, worker: str) -> Response:
        beats = self.manager.store.queue_beat(queue, worker)
        return _json_response(200, {"queue": queue, "worker": worker, "beats": beats})

    def _queue_worker(self, environ, queue: str, worker: str) -> Response:
        beats = self.manager.store.queue_beats(queue, worker)
        if beats is None:
            raise _HttpError(404, f"no heartbeats from {worker}")
        return _json_response(200, {"queue": queue, "worker": worker, "beats": beats})


def create_app(
    db: str = ":memory:",
    cache: Any = True,
    workers: Optional[int] = None,
    background: bool = True,
) -> ServiceApp:
    """Build the WSGI app over a fresh store/manager.

    ``db`` is the SQLite job-store path (``":memory:"`` for ephemeral),
    ``cache`` any :data:`~repro.experiments.batch.CacheOption` — pass a
    directory to share the session cache with CLI sweeps and other
    service instances. ``workers=None`` honors each submission's own
    ``workers`` field; an integer pins every job to that parallelism.
    """
    manager = JobManager(
        JobStore(db), cache=cache, workers=workers, background=background
    )
    return ServiceApp(manager)


def run_wsgi_server(app: ServiceApp, host: str, port: int) -> None:
    """Serve with the stdlib WSGI server (threaded: jobs run while polls answer)."""
    import socketserver
    from wsgiref.simple_server import WSGIServer, make_server

    class ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
        daemon_threads = True

    with make_server(host, port, app, server_class=ThreadingWSGIServer) as server:
        print(f"repro serve: http://{host}:{port} (Ctrl-C to stop)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            app.manager.close()
